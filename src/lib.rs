//! UniLoc — a unified mobile localization framework exploiting scheme
//! diversity.
//!
//! This is the facade crate of the [UniLoc reproduction] (Du, Tong, Li —
//! ICDCS 2018): it re-exports every workspace crate under one roof and
//! hosts the runnable examples and cross-crate integration tests.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `uniloc-core` | error modeling, confidence, UniLoc1/UniLoc2 engines, pipeline, energy & response models |
//! | [`schemes`] | `uniloc-schemes` | GPS, WiFi/cellular fingerprinting, PDR, fusion, oracle |
//! | [`env`] | `uniloc-env` | simulated venues, radio propagation, walker trajectories |
//! | [`sensors`] | `uniloc-sensors` | device profiles, scans, GPS fixes, IMU pipeline |
//! | [`filters`] | `uniloc-filters` | particle filter, Kalman filter, 2nd-order HMM |
//! | [`faults`] | `uniloc-faults` | deterministic fault injection: scripted sensor-fault schedules |
//! | [`iodetect`] | `uniloc-iodetect` | indoor/outdoor detection |
//! | [`obs`] | `uniloc-obs` | structured tracing, metrics registry, clocks |
//! | [`geom`] | `uniloc-geom` | planar geometry, floor plans, geo frames |
//! | [`stats`] | `uniloc-stats` | OLS regression, distributions, descriptive stats, JSON |
//! | [`rng`] | `uniloc-rng` | deterministic seeded random streams, property-test harness |
//!
//! See `examples/quickstart.rs` for the end-to-end train-then-localize
//! flow, and the `uniloc-bench` crate for the per-figure/table experiment
//! regenerators.
//!
//! [UniLoc reproduction]: https://doi.org/10.1109/ICDCS.2018.00149

pub use uniloc_core as core;
pub use uniloc_rng as rng;
pub use uniloc_env as env;
pub use uniloc_faults as faults;
pub use uniloc_filters as filters;
pub use uniloc_geom as geom;
pub use uniloc_iodetect as iodetect;
pub use uniloc_obs as obs;
pub use uniloc_schemes as schemes;
pub use uniloc_sensors as sensors;
pub use uniloc_stats as stats;
