//! Energy-aware localization: Section IV-C's techniques in action.
//!
//! UniLoc predicts GPS error *without touching the receiver* (the outdoor
//! model is a constant), powers GPS only when it would be the most accurate
//! scheme, and offloads particle filtering to a server. This example prints
//! the whole-phone power budget for every system and the response-time
//! decomposition of one fix.
//!
//! Run with: `cargo run --release --example energy_aware`

use uniloc::core::energy::PowerProfile;
use uniloc::core::error_model::train;
use uniloc::core::pipeline::{self, PipelineConfig};
use uniloc::core::response::ResponseTimeModel;
use uniloc::env::campus;
use uniloc::schemes::SchemeId;

fn main() {
    let cfg = PipelineConfig::default();
    let mut samples =
        pipeline::collect_training(&uniloc::env::venues::training_office(1), &cfg, 10);
    samples.extend(pipeline::collect_training(
        &uniloc::env::venues::training_open_space(2),
        &cfg,
        11,
    ));
    let models = train(&samples).expect("training venues produce enough samples");

    let scenario = campus::daily_path(3);
    println!("walking {} ({} m) ...", scenario.name, scenario.route.length());
    let records = pipeline::run_walk(&scenario, &models, &cfg, 12);

    let profile = PowerProfile::default();
    println!("\nwhole-phone power while localizing:");
    println!("{:<16}{:>12}{:>10}{:>12}", "system", "power (mW)", "time (s)", "energy (J)");
    for row in profile.tabulate(&records) {
        println!(
            "{:<16}{:>12.0}{:>10.1}{:>12.1}",
            row.system, row.power_mw, row.time_s, row.energy_j
        );
    }
    let motion = profile.scheme_power_mw(SchemeId::Motion);
    let duty =
        records.iter().filter(|r| r.gps_enabled).count() as f64 / records.len() as f64;
    println!(
        "\nUniLoc runs {} schemes for {:+.1}% over the cheapest one (GPS duty {:.1}%).",
        SchemeId::BUILTIN.len(),
        (profile.uniloc_power_mw(duty) / motion - 1.0) * 100.0,
        duty * 100.0
    );

    let response = ResponseTimeModel::default().report();
    println!("\nresponse time for one fix:");
    println!("  slowest scheme (server, parallel): {:5.1} ms", response.slowest_scheme_ms);
    println!("  server total incl. UniLoc stages : {:5.1} ms", response.server_ms);
    println!("  transmissions                     : {:5.1} ms", response.transmission_ms);
    println!("  end-to-end                        : {:5.1} ms", response.total_ms);
    println!(
        "  ({:.0}% of the budget is the radio link, not the algorithms)",
        response.transmission_fraction * 100.0
    );
}
