//! Quickstart: train UniLoc's error models once, then localize along the
//! paper's daily campus path and compare every scheme against UniLoc1,
//! UniLoc2 and the oracle.
//!
//! Run with: `cargo run --release --example quickstart`

use uniloc::core::error_model::train;
use uniloc::core::pipeline::{self, PipelineConfig};
use uniloc::env::{campus, venues};
use uniloc::schemes::SchemeId;

fn main() {
    // Step 1: collect training data in the two training venues (Section
    // III-B of the paper: an office and an open space, ~300 locations
    // each), then fit the per-scheme error models.
    let cfg = PipelineConfig::default();
    println!("collecting training data ...");
    let mut samples = pipeline::collect_training(&venues::training_office(1), &cfg, 10);
    samples.extend(pipeline::collect_training(&venues::training_open_space(2), &cfg, 11));
    println!("  {} training samples", samples.len());
    let models = train(&samples).expect("training venues produce enough samples");

    // Step 2: walk the 320 m daily path — a place the models never saw —
    // and let UniLoc fuse the five schemes.
    let scenario = campus::daily_path(3);
    println!("walking {} ({} m) ...", scenario.name, scenario.route.length());
    let records = pipeline::run_walk(&scenario, &models, &cfg, 12);

    println!("\nmean localization error over {} epochs:", records.len());
    for id in SchemeId::BUILTIN {
        let err = pipeline::scheme_mean_error(&records, id);
        let avail = records
            .iter()
            .filter(|r| {
                r.scheme_errors.iter().any(|(s, e)| *s == id && e.is_some())
            })
            .count() as f64
            / records.len() as f64;
        match err {
            Some(e) => println!("  {id:<10} {e:6.2} m   (available {:5.1}%)", avail * 100.0),
            None => println!("  {id:<10}   n/a"),
        }
    }
    let show = |name: &str, v: Option<f64>| match v {
        Some(e) => println!("  {name:<10} {e:6.2} m"),
        None => println!("  {name:<10}   n/a"),
    };
    show("oracle", pipeline::mean_defined(records.iter().map(|r| r.oracle_error)));
    show("uniloc1", pipeline::mean_defined(records.iter().map(|r| r.uniloc1_error)));
    show("uniloc2", pipeline::mean_defined(records.iter().map(|r| r.uniloc2_error)));

    let duty = records.iter().filter(|r| r.gps_enabled).count() as f64 / records.len() as f64;
    println!("\nGPS receiver duty cycle: {:.1}%", duty * 100.0);

    // Per-segment breakdown: where does each scheme win?
    println!("\nmean error by segment kind:");
    let kinds: Vec<_> = scenario.segments.iter().map(|s| s.kind).collect();
    print!("  {:<18}", "segment");
    for id in SchemeId::BUILTIN {
        print!("{:>9}", id.to_string());
    }
    println!("{:>9}{:>9}{:>9}", "oracle", "uniloc1", "uniloc2");
    for kind in kinds {
        let seg: Vec<_> = records
            .iter()
            .filter(|r| scenario.kind_at_station(r.station) == kind)
            .collect();
        if seg.is_empty() {
            continue;
        }
        print!("  {:<18}", kind.to_string());
        for id in SchemeId::BUILTIN {
            let err = pipeline::mean_defined(seg.iter().map(|r| {
                r.scheme_errors.iter().find(|(s, _)| *s == id).and_then(|(_, e)| *e)
            }));
            match err {
                Some(e) => print!("{e:>9.2}"),
                None => print!("{:>9}", "-"),
            }
        }
        let o = pipeline::mean_defined(seg.iter().map(|r| r.oracle_error)).unwrap_or(f64::NAN);
        let u1 = pipeline::mean_defined(seg.iter().map(|r| r.uniloc1_error)).unwrap_or(f64::NAN);
        let u2 = pipeline::mean_defined(seg.iter().map(|r| r.uniloc2_error)).unwrap_or(f64::NAN);
        println!("{o:>9.2}{u1:>9.2}{u2:>9.2}");
        // Mean BMA weight per scheme in this segment.
        print!("    weights        ");
        for id in SchemeId::BUILTIN {
            let w = pipeline::mean_defined(seg.iter().map(|r| {
                r.weights.iter().find(|(s, _)| *s == id).map(|(_, w)| *w)
            }))
            .unwrap_or(0.0);
            print!("{w:>9.3}");
        }
        println!();
        // Mean predicted error per scheme in this segment.
        print!("    predicted      ");
        for id in SchemeId::BUILTIN {
            let p = pipeline::mean_defined(seg.iter().map(|r| {
                r.predictions
                    .iter()
                    .find(|(s, _)| *s == id)
                    .and_then(|(_, p)| p.map(|p| p.mean))
            }));
            match p {
                Some(v) => print!("{v:>9.2}"),
                None => print!("{:>9}", "-"),
            }
        }
        println!();
    }
}
