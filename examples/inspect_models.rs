//! Prints the trained error-model coefficients (a quick view of Table II).
//!
//! Run with: `cargo run --release --example inspect_models`

use uniloc::core::error_model::train;
use uniloc::core::pipeline::{self, PipelineConfig};
use uniloc::env::venues;
use uniloc::iodetect::IoState;
use uniloc::schemes::SchemeId;

fn main() {
    let cfg = PipelineConfig::default();
    let mut samples = pipeline::collect_training(&venues::training_office(1), &cfg, 10);
    samples.extend(pipeline::collect_training(&venues::training_open_space(2), &cfg, 11));
    let models = train(&samples).expect("training venues produce enough samples");

    for io in [IoState::Indoor, IoState::Outdoor] {
        println!("== {io} ==");
        for id in SchemeId::BUILTIN {
            match models.model(id, io) {
                Some(m) => {
                    println!(
                        "  {id:<9} intercept={:+6.2}  coeffs={:?}  p={:?}  mu_eps={:+5.2} sigma={:5.2}  R2={:4.2}  n={}",
                        m.intercept,
                        m.coefficients.iter().map(|c| (c * 1000.0).round() / 1000.0).collect::<Vec<_>>(),
                        m.p_values.iter().map(|p| (p * 1000.0).round() / 1000.0).collect::<Vec<_>>(),
                        m.residual_mean,
                        m.sigma,
                        m.r_squared,
                        m.n_obs
                    );
                }
                None => println!("  {id:<9} (no model)"),
            }
        }
    }

    // Distribution of the motion training samples outdoors: does error grow
    // with distance-from-landmark?
    println!("\noutdoor motion samples (dist bucket -> mean error):");
    let mut buckets: Vec<(f64, Vec<f64>)> =
        (0..8).map(|i| (i as f64 * 30.0, Vec::new())).collect();
    for s in samples.iter().filter(|s| s.scheme == SchemeId::Motion && !s.indoor) {
        let d = s.features[0];
        let idx = ((d / 30.0) as usize).min(7);
        buckets[idx].1.push(s.error);
    }
    for (lo, v) in &buckets {
        if v.is_empty() {
            continue;
        }
        println!(
            "  {:>3}-{:>3} m: n={:<4} mean={:5.2}",
            lo,
            lo + 30.0,
            v.len(),
            v.iter().sum::<f64>() / v.len() as f64
        );
    }
}
