//! Domain scenario: track a shopper on a mall floor at basement level.
//!
//! The mall is the paper's hardest indoor venue: GPS is dead, only ~2 cell
//! towers are audible through the floor, and the error models were trained
//! in a different building — yet UniLoc keeps the shopper localized by
//! leaning on whichever scheme the context favors.
//!
//! Run with: `cargo run --release --example mall_tracking`

use uniloc::core::error_model::train;
use uniloc::core::pipeline::{self, PipelineConfig};
use uniloc::env::venues;
use uniloc::schemes::SchemeId;
use uniloc::stats::percentile;

fn main() {
    let cfg = PipelineConfig::default();
    println!("training error models (office + open space) ...");
    let mut samples = pipeline::collect_training(&venues::training_office(1), &cfg, 10);
    samples.extend(pipeline::collect_training(&venues::training_open_space(2), &cfg, 11));
    let models = train(&samples).expect("training venues produce enough samples");

    println!("tracking 5 shopper trajectories in the mall ...");
    let mut per_system: Vec<(String, Vec<f64>)> = Vec::new();
    let mut usage = vec![0usize; SchemeId::BUILTIN.len()];
    let mut epochs = 0usize;
    for (i, mall) in venues::shopping_mall(40, 5).into_iter().enumerate() {
        let records = pipeline::run_walk(&mall, &models, &cfg, 400 + i as u64 * 13);
        epochs += records.len();
        for r in &records {
            if let Some(choice) = r.uniloc1_choice {
                if let Some(idx) = SchemeId::BUILTIN.iter().position(|&s| s == choice) {
                    usage[idx] += 1;
                }
            }
        }
        for label in ["wifi", "cellular", "motion", "fusion", "uniloc2"] {
            let errs: Vec<f64> = records
                .iter()
                .filter_map(|r| match label {
                    "uniloc2" => r.uniloc2_error,
                    _ => {
                        let id = match label {
                            "wifi" => SchemeId::Wifi,
                            "cellular" => SchemeId::Cellular,
                            "motion" => SchemeId::Motion,
                            _ => SchemeId::Fusion,
                        };
                        r.scheme_errors.iter().find(|(s, _)| *s == id).and_then(|(_, e)| *e)
                    }
                })
                .collect();
            match per_system.iter_mut().find(|(l, _)| l == label) {
                Some((_, v)) => v.extend(errs),
                None => per_system.push((label.to_owned(), errs)),
            }
        }
    }

    println!("\nerrors over {epochs} epochs:");
    println!("{:<10}{:>10}{:>10}{:>10}", "system", "p50 (m)", "p90 (m)", "mean (m)");
    for (label, errs) in &per_system {
        if errs.is_empty() {
            println!("{label:<10}{:>10}{:>10}{:>10}", "-", "-", "-");
            continue;
        }
        let p50 = percentile(errs, 50.0).unwrap();
        let p90 = percentile(errs, 90.0).unwrap();
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        println!("{label:<10}{p50:>10.2}{p90:>10.2}{mean:>10.2}");
    }

    println!("\nscheme selected by UniLoc1:");
    for (i, id) in SchemeId::BUILTIN.iter().enumerate() {
        println!("  {id:<10} {:5.1}%", usage[i] as f64 / epochs as f64 * 100.0);
    }
    println!("\n(the mall floor hears no GPS and few towers; WiFi and fusion carry it)");
}
