//! Integrating a sixth localization scheme — the framework's "General"
//! feature: "any localization scheme can be easily integrated into UniLoc".
//!
//! The custom scheme here is a Kalman-smoothed cellular tracker. Three steps
//! integrate it:
//!
//!  1. implement [`LocalizationScheme`] (a black box over sensor frames);
//!  2. collect `(features, error)` training tuples for it — here we use a
//!     constant model, the simplest valid choice (what the paper does for
//!     GPS);
//!  3. insert the model into the [`ErrorModelSet`] and hand the scheme to
//!     the engine.
//!
//! Run with: `cargo run --release --example custom_scheme`

use uniloc_rng::Rng;
use uniloc::core::engine::UniLocEngine;
use uniloc::core::error_model::{train, LinearErrorModel};
use uniloc::core::pipeline::{self, PipelineConfig};
use uniloc::env::{venues, GaitProfile, Walker};
use uniloc::filters::Kalman2D;
use uniloc::iodetect::IoState;
use uniloc::schemes::{
    CellFingerprintDb, CellFingerprintScheme, LocalizationScheme, LocationEstimate, SchemeId,
};
use uniloc::sensors::{DeviceProfile, SensorFrame, SensorHub};

/// Step 1: the custom scheme — cellular fingerprinting smoothed by a
/// constant-velocity Kalman filter.
struct SmoothedCellular {
    inner: CellFingerprintScheme,
    kalman: Option<Kalman2D>,
    last_t: f64,
}

impl SmoothedCellular {
    fn new(db: CellFingerprintDb) -> Self {
        SmoothedCellular { inner: CellFingerprintScheme::new(db), kalman: None, last_t: 0.0 }
    }
}

impl LocalizationScheme for SmoothedCellular {
    fn id(&self) -> SchemeId {
        SchemeId::Custom(1)
    }
    fn name(&self) -> String {
        "kalman-cellular".to_owned()
    }
    fn update(&mut self, frame: &SensorFrame) -> Option<LocationEstimate> {
        let raw = self.inner.update(frame)?;
        let dt = (frame.t - self.last_t).max(0.1);
        self.last_t = frame.t;
        let kf = self
            .kalman
            .get_or_insert_with(|| Kalman2D::new(raw.position, 0.5, 64.0));
        kf.predict(dt);
        kf.update(raw.position);
        Some(LocationEstimate::with_spread(kf.position(), kf.position_variance().sqrt()))
    }
    fn reset(&mut self) {
        self.kalman = None;
        self.last_t = 0.0;
        self.inner.reset();
    }
}

fn main() {
    let cfg = PipelineConfig::default();
    let venue = venues::training_office(81);
    let ctx = pipeline::build_context(&venue, &cfg, 82);

    // Step 2: measure the custom scheme's typical error with ground truth.
    let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(83));
    let walk = walker.walk(&venue.route);
    let mut hub = SensorHub::new(&venue.world, DeviceProfile::nexus_5x(), 84);
    let frames = hub.sample_walk(&walk, 0.5);
    let mut probe = SmoothedCellular::new(ctx.cell_db.clone());
    let errs: Vec<f64> = frames
        .iter()
        .filter_map(|f| probe.update(f).map(|e| e.position.distance(f.true_position)))
        .collect();
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    let sd = (errs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>()
        / (errs.len() - 1) as f64)
        .sqrt();
    println!("custom scheme measured: mean error {mean:.2} m, sd {sd:.2} m");

    // Step 3: train the built-ins, insert the custom model, run everything.
    let mut samples = pipeline::collect_training(&venue, &cfg, 87);
    samples.extend(pipeline::collect_training(&venues::training_open_space(88), &cfg, 89));
    let mut models = train(&samples).expect("training venues produce enough samples");
    models.insert(
        SchemeId::Custom(1),
        IoState::Indoor,
        LinearErrorModel {
            intercept: mean,
            coefficients: vec![],
            sigma: sd.max(0.5),
            residual_mean: 0.0,
            r_squared: 0.0,
            p_values: vec![],
            n_obs: errs.len(),
        },
    );

    let mut schemes = pipeline::build_schemes(&venue, &ctx, &cfg, 90);
    schemes.push(Box::new(SmoothedCellular::new(ctx.cell_db.clone())));
    let mut engine = UniLocEngine::new(schemes, models, ctx);
    // Register the scheme's feature function (a constant model has an empty
    // feature vector; availability = a cellular scan exists indoors). With
    // model + features registered, the sixth scheme participates in the
    // BMA like any built-in.
    engine.register_custom_features(
        SchemeId::Custom(1),
        std::sync::Arc::new(|_ctx, io, frame, _loc| {
            (io == IoState::Indoor
                && frame.cell.as_ref().is_some_and(|c| !c.readings.is_empty()))
            .then(Vec::new)
        }),
    );
    println!("engine now aggregates {} schemes: {:?}", engine.scheme_ids().len(), engine.scheme_ids());

    let mut errs = Vec::new();
    let mut weight_sum = 0.0;
    for f in &frames {
        let out = engine.update(f);
        if let Some(p) = out.bayesian_average {
            errs.push(p.distance(f.true_position));
        }
        if let Some(r) = out.reports.iter().find(|r| r.id == SchemeId::Custom(1)) {
            weight_sum += r.weight;
        }
    }
    println!(
        "UniLoc2 with the sixth scheme aboard: mean error {:.2} m over {} epochs",
        errs.iter().sum::<f64>() / errs.len() as f64,
        errs.len()
    );
    println!(
        "the custom scheme carried {:.1}% of the BMA weight on average",
        weight_sum / frames.len() as f64 * 100.0
    );
}
