//! Heterogeneous devices (Fig. 8d): an LG G3 localizing against fingerprints
//! surveyed with a Google Nexus 5X, with and without the online RSSI offset
//! calibration `rssi_ref = alpha * rssi_dev + delta`.
//!
//! Run with: `cargo run --release --example heterogeneous_devices`

use uniloc::core::error_model::train;
use uniloc::core::pipeline::{self, PipelineConfig};
use uniloc::env::venues;
use uniloc::schemes::SchemeId;
use uniloc::sensors::{DeviceProfile, RssiCalibration, SensorHub};
use uniloc::stats::percentile;

fn main() {
    let base = PipelineConfig::default();
    let mut samples = pipeline::collect_training(&venues::training_office(1), &base, 10);
    samples.extend(pipeline::collect_training(&venues::training_open_space(2), &base, 11));
    let models = train(&samples).expect("training venues produce enough samples");

    let venue = venues::office("g3-office", 42, 50.0, 18.0);

    // Learn the transfer from paired scans (the "online-learned offset").
    let mut nexus = SensorHub::new(&venue.world, DeviceProfile::nexus_5x(), 50);
    let mut g3 = SensorHub::new(&venue.world, DeviceProfile::lg_g3(), 50);
    let mut pairs = Vec::new();
    for p in venue.survey_points(6.0, 12.0) {
        let a = nexus.scan_wifi(p);
        let b = g3.scan_wifi(p);
        for (ra, rb) in a.readings.iter().zip(&b.readings) {
            if ra.0 == rb.0 {
                pairs.push((rb.1, ra.1));
            }
        }
    }
    let cal = RssiCalibration::learn(&pairs).expect("paired scans identify the transfer");
    println!(
        "learned calibration: rssi_ref = {:.3} * rssi_g3 + {:+.2} dB  ({} pairs)",
        cal.alpha,
        cal.delta,
        pairs.len()
    );

    for (label, calibration) in [("without calibration", None), ("with calibration", Some(cal))] {
        let cfg = PipelineConfig {
            device: DeviceProfile::lg_g3(),
            calibration,
            ..PipelineConfig::default()
        };
        let records = pipeline::run_walk(&venue, &models, &cfg, 60);
        let wifi: Vec<f64> = records
            .iter()
            .filter_map(|r| {
                r.scheme_errors
                    .iter()
                    .find(|(s, _)| *s == SchemeId::Wifi)
                    .and_then(|(_, e)| *e)
            })
            .collect();
        let uniloc2: Vec<f64> =
            records.iter().filter_map(|r| r.uniloc2_error).collect();
        println!("\n{label}:");
        println!(
            "  wifi    p50 {:5.2} m   p90 {:5.2} m",
            percentile(&wifi, 50.0).unwrap_or(f64::NAN),
            percentile(&wifi, 90.0).unwrap_or(f64::NAN),
        );
        println!(
            "  uniloc2 p50 {:5.2} m   p90 {:5.2} m",
            percentile(&uniloc2, 50.0).unwrap_or(f64::NAN),
            percentile(&uniloc2, 90.0).unwrap_or(f64::NAN),
        );
    }
    println!("\npaper: calibration recovers most of the heterogeneity loss, and UniLoc");
    println!("assimilates the gain of the per-scheme heterogeneity handling (Fig. 8d).");
}
