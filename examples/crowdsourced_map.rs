//! Crowdsourced radio-map construction — turning the paper's assumption
//! ("we assume that a RSSI fingerprint database is updated by service
//! providers or crowdsourcing [9], [10]") into working code.
//!
//! Contributors walk the venue running PDR; each WiFi scan is stamped with
//! the contributor's *PDR estimate* (not ground truth) and a confidence
//! weight that is high right after a landmark calibration and decays with
//! distance walked since. The aggregated map then powers the WiFi scheme
//! with no manual survey at all.
//!
//! Run with: `cargo run --release --example crowdsourced_map`

use uniloc_rng::Rng;
use uniloc::env::{venues, GaitProfile, Walker};
use uniloc::schemes::{
    LocalizationScheme, PdrConfig, PdrScheme, RadioMapBuilder, WifiFingerprintDb,
    WifiFingerprintScheme,
};
use uniloc::sensors::{DeviceProfile, SensorHub};

fn main() {
    let venue = venues::training_office(200);
    let personas = GaitProfile::personas();

    // Phase 1: contributors walk the floor with PDR running; their scans
    // and PDR positions feed the map builder.
    let mut builder = RadioMapBuilder::new(3.0);
    for (i, gait) in personas.iter().enumerate() {
        let mut walker = Walker::new(gait.clone(), Rng::seed_from_u64(201 + i as u64));
        let walk = walker.walk(&venue.route);
        let mut hub =
            SensorHub::new(&venue.world, DeviceProfile::nexus_5x(), 210 + i as u64);
        let mut pdr = PdrScheme::new(
            venue.world.floorplan().clone(),
            venue.route.start(),
            PdrConfig::default(),
            220 + i as u64,
        );
        let mut since_landmark = 0.0f64;
        for frame in hub.sample_walk(&walk, 0.5) {
            for s in &frame.steps {
                since_landmark += s.length_est;
            }
            if frame.landmark.is_some() {
                since_landmark = 0.0;
            }
            let Some(est) = pdr.update(&frame) else { continue };
            if let Some(scan) = frame.wifi {
                // Confidence decays with distance since calibration.
                let weight = (1.0 - since_landmark / 60.0).clamp(0.1, 1.0);
                builder.observe(est.position, scan, weight);
            }
        }
        println!("contributor {} ({}) done — {} observations so far", i + 1, gait.name, builder.len());
    }
    let crowd_db = builder.build();
    println!("\ncrowdsourced map: {} fingerprints", crowd_db.len());

    // Phase 2: a fresh user localizes against (a) the crowdsourced map and
    // (b) a manually surveyed map.
    let mut survey_hub = SensorHub::new(&venue.world, DeviceProfile::nexus_5x(), 230);
    let surveyed =
        WifiFingerprintDb::survey_wifi(&mut survey_hub, &venue.survey_points(3.0, 12.0));
    println!("surveyed map:     {} fingerprints", surveyed.len());

    let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(240));
    let walk = walker.walk(&venue.route);
    let mut hub = SensorHub::new(&venue.world, DeviceProfile::nexus_5x(), 241);
    let frames = hub.sample_walk(&walk, 0.5);
    for (label, db) in [("crowdsourced", crowd_db), ("surveyed", surveyed)] {
        let mut scheme = WifiFingerprintScheme::new(db).with_min_aps(3);
        let errs: Vec<f64> = frames
            .iter()
            .filter_map(|f| scheme.update(f).map(|e| e.position.distance(f.true_position)))
            .collect();
        let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        println!("wifi scheme on the {label:<13} map: mean error {mean:5.2} m");
    }
    println!("\ncontributor position error smears cell positions, but averaging many");
    println!("observations per cell smooths RSSI noise — with several contributors the");
    println!("crowdsourced map rivals (here: beats) a single-sample manual survey,");
    println!("which is why the paper can lean on crowdsourcing to keep maps fresh.");
}
