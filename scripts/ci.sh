#!/usr/bin/env bash
# Tier-1 verification with the hermetic-build policy enforced.
#
# 1. Every dependency named in a workspace Cargo.toml must be an in-repo
#    `uniloc-*` path crate (the `bench-external` feature may reference
#    external crates once something opts in; nothing else may).
# 2. The workspace must build and test fully offline, with the registry
#    untouched.
#
# Run from anywhere inside the repository.

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. dependency audit -------------------------------------------------
# Walk every manifest's dependency tables and flag anything that is not a
# uniloc-* crate. Feature tables are exempt (that is where the default-off
# `bench-external` feature lives).
echo "==> auditing workspace manifests for external dependencies"
for manifest in Cargo.toml crates/*/Cargo.toml; do
    bad=$(awk '
        /^\[/ {
            in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/)
            next
        }
        in_deps && /^[a-zA-Z0-9_-]+[ \t]*=/ {
            dep = $1
            sub(/[ \t]*=.*/, "", dep)
            if (dep !~ /^uniloc-/) print dep
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "ERROR: $manifest names non-uniloc dependencies:" >&2
        echo "$bad" | sed 's/^/    /' >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "hermetic-build policy violated (see DESIGN.md)" >&2
    exit 1
fi
echo "    ok: all dependencies are in-repo uniloc-* crates"

# --- 2. tier-1 verify, fully offline ------------------------------------
export CARGO_NET_OFFLINE=true
echo "==> cargo build --release (offline)"
cargo build --release
echo "==> cargo test -q (offline)"
cargo test -q

# --- 3. metrics smoke ----------------------------------------------------
# Run a short scenario with the observability sidecar enabled, then assert
# the JSONL parses with the in-repo reader (via inspect-metrics) and
# carries the expected metric names.
echo "==> metrics smoke (uniloc run --metrics)"
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
target/release/uniloc train --seed 1 --out "$smoke/models.json" --quiet
target/release/uniloc run --models "$smoke/models.json" --scenario office \
    --seed 3 --metrics "$smoke/metrics.jsonl" --virtual-clock --quiet >/dev/null
target/release/uniloc inspect-metrics --file "$smoke/metrics.jsonl" > "$smoke/summary.txt"
for name in pipeline.epochs engine.fusion.mode.bma engine.scheme.available.wifi \
            engine.tau error_model.residual.wifi span.engine.update \
            span.scheme.estimate.fusion; do
    if ! grep -q "$name" "$smoke/summary.txt"; then
        echo "ERROR: metrics sidecar is missing \`$name\`" >&2
        exit 1
    fi
done
echo "    ok: sidecar parses and carries the expected metrics"
echo "==> ci.sh: all checks passed"
