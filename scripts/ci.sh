#!/usr/bin/env bash
# Tier-1 verification with the hermetic-build policy enforced.
#
# 1. Every dependency named in a workspace Cargo.toml must be an in-repo
#    `uniloc-*` path crate (the `bench-external` feature may reference
#    external crates once something opts in; nothing else may).
# 2. The workspace must build and test fully offline, with the registry
#    untouched.
#
# Run from anywhere inside the repository.

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. dependency audit -------------------------------------------------
# Walk every manifest's dependency tables and flag anything that is not a
# uniloc-* crate. Feature tables are exempt (that is where the default-off
# `bench-external` feature lives).
echo "==> auditing workspace manifests for external dependencies"
for manifest in Cargo.toml crates/*/Cargo.toml; do
    bad=$(awk '
        # Table-header form: [dependencies.foo] / [dev-dependencies.foo]
        /^\[(workspace\.)?(dev-|build-)?dependencies\./ {
            dep = $0
            sub(/^\[(workspace\.)?(dev-|build-)?dependencies\./, "", dep)
            sub(/\].*/, "", dep)
            if (dep !~ /^uniloc-/) print dep
            in_deps = 0
            next
        }
        /^\[/ {
            in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/)
            next
        }
        in_deps && /^[a-zA-Z0-9_-]+[ \t]*=/ {
            dep = $1
            sub(/[ \t]*=.*/, "", dep)
            if (dep !~ /^uniloc-/) print dep
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "ERROR: $manifest names non-uniloc dependencies:" >&2
        echo "$bad" | sed 's/^/    /' >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "hermetic-build policy violated (see DESIGN.md)" >&2
    exit 1
fi
echo "    ok: all dependencies are in-repo uniloc-* crates"

# --- 2. tier-1 verify, fully offline ------------------------------------
export CARGO_NET_OFFLINE=true
echo "==> cargo build --release --workspace (offline)"
cargo build --release --workspace
echo "==> cargo test -q --workspace (offline)"
cargo test -q --workspace
echo "==> cargo clippy --workspace --all-targets (offline, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

# --- 3. metrics smoke ----------------------------------------------------
# Run a short scenario with the observability sidecar enabled, then assert
# the JSONL parses with the in-repo reader (via inspect-metrics) and
# carries the expected metric names.
echo "==> metrics smoke (uniloc run --metrics)"
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
target/release/uniloc train --seed 1 --out "$smoke/models.json" --quiet
target/release/uniloc run --models "$smoke/models.json" --scenario office \
    --seed 3 --metrics "$smoke/metrics.jsonl" --virtual-clock --quiet >/dev/null
target/release/uniloc inspect-metrics --file "$smoke/metrics.jsonl" > "$smoke/summary.txt"
for name in pipeline.epochs engine.fusion.mode.bma engine.scheme.available.wifi \
            engine.tau error_model.residual.wifi span.engine.update \
            span.scheme.estimate.fusion; do
    if ! grep -q "$name" "$smoke/summary.txt"; then
        echo "ERROR: metrics sidecar is missing \`$name\`" >&2
        exit 1
    fi
done
echo "    ok: sidecar parses and carries the expected metrics"

# The same sidecar must round-trip through the calibration and flight
# inspectors: per-scheme reliability bins with coverage summaries, and the
# GPS-indoors scheme_unavailable postmortem the office walk always trips.
target/release/uniloc inspect-calibration --file "$smoke/metrics.jsonl" > "$smoke/calib.txt"
for needle in "reliability bins (PIT 0..1)" "coverage (nominal->observed)" "drift: cusum"; do
    if ! grep -qF "$needle" "$smoke/calib.txt"; then
        echo "ERROR: inspect-calibration output is missing \`$needle\`" >&2
        exit 1
    fi
done
target/release/uniloc inspect-flight --file "$smoke/metrics.jsonl" > "$smoke/flight.txt"
if ! grep -q "scheme_unavailable" "$smoke/flight.txt"; then
    echo "ERROR: inspect-flight shows no scheme_unavailable postmortem" >&2
    exit 1
fi
echo "    ok: calibration cells and flight postmortems inspect cleanly"

# --- 4. chaos smoke -------------------------------------------------------
# Sweep the small fault-plan set over one scenario, strict: a terminal
# `lost` ladder state, any non-finite fused estimate, or a quarantine that
# never lifts after its fault window fails CI. Runs the sweep at both
# --jobs 1 (the inline sequential path) and --jobs 4 (the worker pool) and
# requires byte-identical artifacts — the parallel engine's determinism
# contract. Reuses the models trained for the metrics smoke; stays fully
# offline.
echo "==> chaos smoke (uniloc chaos --strict, --jobs 1 vs --jobs 4)"
target/release/uniloc chaos --models "$smoke/models.json" --scenarios office \
    --plans smoke --seed 11 --out "$smoke/chaos" --strict --quiet --jobs 1
target/release/uniloc chaos --models "$smoke/models.json" --scenarios office \
    --plans smoke --seed 11 --out "$smoke/chaos4" --strict --quiet --jobs 4
if ! ls "$smoke/chaos"/CHAOS_*.json >/dev/null 2>&1; then
    echo "ERROR: chaos sweep wrote no CHAOS_*.json report" >&2
    exit 1
fi
if ! diff -r "$smoke/chaos" "$smoke/chaos4" >/dev/null; then
    echo "ERROR: chaos artifacts differ between --jobs 1 and --jobs 4" >&2
    diff -r "$smoke/chaos" "$smoke/chaos4" >&2 || true
    exit 1
fi
for needle in '"worst_ladder"' '"nonfinite_fused": 0' '"recovered": true'; do
    if ! grep -qF "$needle" "$smoke/chaos"/CHAOS_*.json; then
        echo "ERROR: chaos report is missing \`$needle\`" >&2
        exit 1
    fi
done
echo "    ok: fault sweep stayed finite, recovered, and is --jobs invariant"

# --- 5. fleet smoke -------------------------------------------------------
# Serve a 200-walker fleet (two venues, every 10th walker under a fault
# plan) through the session scheduler at --jobs 1 and --jobs 4 with
# different resident caps, strict: any non-finite fused estimate fails
# CI, and any quarantined clean walker is spot-checked against a solo
# legacy replay (divergence = isolation breach = fail). The FLEET.json
# report carries per-session record digests and no wall-clock numbers, so
# byte-identical artifacts across worker counts prove the fleet engine's
# determinism contract end to end (DESIGN.md §9).
echo "==> fleet smoke (uniloc fleet --strict, --jobs 1 vs --jobs 4)"
# --alloc-budget pins the allocation observatory's steady-state meter: the
# epoch loop is allocation-free once warm (tests/zero_alloc.rs), so the
# smoke fleet's steady state is ~0.07 alloc(s)/epoch today — all of it
# chaos-driven rare paths (frame scrubs, quarantine trips, postmortem
# events). A breach of 0.5 means a per-epoch allocation landed on the hot
# path (any real one adds >= 1/epoch). Re-bless by measuring the new
# steady state (`uniloc fleet ... --out` then `uniloc inspect-alloc`) and
# raising the budget in the same change that justifies it.
target/release/uniloc fleet --models "$smoke/models.json" --sessions 200 \
    --scenarios office,open-space --max-epochs 12 --chaos-every 10 --seed 17 \
    --out "$smoke/fleet" --strict --quiet --jobs 1 --resident 64 \
    --alloc-budget 0.5
target/release/uniloc fleet --models "$smoke/models.json" --sessions 200 \
    --scenarios office,open-space --max-epochs 12 --chaos-every 10 --seed 17 \
    --out "$smoke/fleet4" --strict --quiet --jobs 4 --resident 9 \
    --alloc-budget 0.5
if ! diff -r "$smoke/fleet" "$smoke/fleet4" >/dev/null; then
    echo "ERROR: fleet artifacts differ between --jobs 1 and --jobs 4" >&2
    diff -r "$smoke/fleet" "$smoke/fleet4" >&2 || true
    exit 1
fi
for needle in '"sessions": 200' '"fleet_digest"' '"quarantined_sessions"'; do
    if ! grep -qF "$needle" "$smoke/fleet/FLEET.json"; then
        echo "ERROR: fleet report is missing \`$needle\`" >&2
        exit 1
    fi
done
echo "    ok: 200-session fleet is clean and --jobs/--resident invariant"

# The fleet observatory artifacts ride the same determinism gate (the
# diff -r above already proved them byte-identical across worker counts);
# here assert they exist and that the health table renders from them.
for artifact in FLEET_HEALTH.json PROF_fleet.folded PROF_fleet.json \
                PROF_alloc.folded PROF_alloc.json; do
    if [ ! -s "$smoke/fleet/$artifact" ]; then
        echo "ERROR: fleet run wrote no $artifact" >&2
        exit 1
    fi
done
if ! grep -q '^fleet;engine.update;' "$smoke/fleet/PROF_fleet.folded"; then
    echo "ERROR: PROF_fleet.folded carries no engine.update stack" >&2
    exit 1
fi
if ! grep -q '^fleet;engine.update;' "$smoke/fleet/PROF_alloc.folded"; then
    echo "ERROR: PROF_alloc.folded carries no engine.update stack" >&2
    exit 1
fi
target/release/uniloc inspect-fleet --file "$smoke/fleet/FLEET_HEALTH.json" \
    > "$smoke/fleet-health.txt"
for needle in "fleet health — 200 session(s)" "availability.motion" \
              "worst sessions" "alloc observatory:"; do
    if ! grep -qF "$needle" "$smoke/fleet-health.txt"; then
        echo "ERROR: inspect-fleet output is missing \`$needle\`" >&2
        exit 1
    fi
done
# The machine-readable views must stay canonical JSON the in-repo reader
# accepts: --json on both inspectors round-trips through inspect-* itself.
target/release/uniloc inspect-fleet --file "$smoke/fleet/FLEET_HEALTH.json" \
    --json > "$smoke/fleet-health.json"
if ! grep -qF '"allocs_per_epoch"' "$smoke/fleet-health.json"; then
    echo "ERROR: inspect-fleet --json carries no allocs_per_epoch" >&2
    exit 1
fi
target/release/uniloc inspect-alloc --file "$smoke/fleet/PROF_alloc.json" \
    > "$smoke/fleet-alloc.txt"
for needle in "heap profile —" "engine.update" "steady alloc(s)/epoch"; do
    if ! grep -qF "$needle" "$smoke/fleet-alloc.txt"; then
        echo "ERROR: inspect-alloc output is missing \`$needle\`" >&2
        exit 1
    fi
done
target/release/uniloc inspect-alloc --file "$smoke/fleet/PROF_alloc.json" \
    --json > "$smoke/fleet-alloc.json"
if ! grep -qF '"prof":"alloc"' "$smoke/fleet-alloc.json"; then
    echo "ERROR: inspect-alloc --json is not the canonical alloc profile" >&2
    exit 1
fi
echo "    ok: observatory artifacts written and inspectors render them"

# Observability must stay cheap as well as inert: run the same smoke
# fleet with live and stubbed obs (paired, best-of-2, identical fleet
# digests required) and fail if the epochs/s cost exceeds 5%.
echo "==> obs-overhead gate (uniloc fleet --obs-overhead)"
target/release/uniloc fleet --models "$smoke/models.json" --sessions 200 \
    --scenarios office,open-space --max-epochs 12 --chaos-every 10 --seed 17 \
    --quiet --jobs 4 --obs-overhead --overhead-budget 0.05
echo "    ok: observability overhead within the 5% epochs/s budget"

# Crash recovery: the same smoke fleet is killed (simulated kill -9
# between scheduler rounds) after cutting durable checkpoints, then
# resumed under a different worker count. A crashed run must leave only
# the checkpoint behind, and the resumed run's artifacts must be
# byte-identical to the uninterrupted fleet above — an operator cannot
# tell a recovered fleet from one that never died (DESIGN.md §12).
echo "==> crash-recovery smoke (uniloc fleet --crash-after-rounds / --resume)"
target/release/uniloc fleet --models "$smoke/models.json" --sessions 200 \
    --scenarios office,open-space --max-epochs 12 --chaos-every 10 --seed 17 \
    --out "$smoke/fleet-crash" --strict --quiet --jobs 4 --resident 9 \
    --checkpoint-every 2 --crash-after-rounds 5
if [ ! -s "$smoke/fleet-crash/FLEET.ckpt.json" ]; then
    echo "ERROR: crashed fleet left no FLEET.ckpt.json checkpoint" >&2
    exit 1
fi
if [ -e "$smoke/fleet-crash/FLEET.json" ]; then
    echo "ERROR: crashed fleet wrote FLEET.json (artifacts must only come" >&2
    echo "       from completed runs)" >&2
    exit 1
fi
target/release/uniloc fleet --resume "$smoke/fleet-crash/FLEET.ckpt.json" \
    --models "$smoke/models.json" --out "$smoke/fleet-crash" --strict --quiet \
    --jobs 2 --resident 16
if ! diff -r --exclude=FLEET.ckpt.json "$smoke/fleet" "$smoke/fleet-crash" >/dev/null; then
    echo "ERROR: resumed fleet artifacts differ from the uninterrupted run" >&2
    diff -r --exclude=FLEET.ckpt.json "$smoke/fleet" "$smoke/fleet-crash" >&2 || true
    exit 1
fi
echo "    ok: killed fleet resumed byte-identical to the uninterrupted run"

# Poison isolation: arm a process-level panic fault in one lane. The
# supervisor must retry it, give up, quarantine just that session, and
# let the other 199 finish — the fleet completes (exit 0 under --strict)
# and the report counts exactly one poisoned session.
echo "==> poison smoke (uniloc fleet --panic-lane)"
# stderr is captured: the injected panic legitimately prints its panic
# message three times (one per strike) before the supervisor poisons it.
if ! target/release/uniloc fleet --models "$smoke/models.json" --sessions 200 \
    --scenarios office,open-space --max-epochs 12 --chaos-every 10 --seed 17 \
    --out "$smoke/fleet-poison" --strict --quiet --jobs 4 --resident 9 \
    --panic-lane 7 --panic-epoch 3 2> "$smoke/fleet-poison.stderr"; then
    echo "ERROR: the poison fleet failed instead of completing:" >&2
    cat "$smoke/fleet-poison.stderr" >&2
    exit 1
fi
if ! grep -qF '"poisoned_sessions": 1' "$smoke/fleet-poison/FLEET.json"; then
    echo "ERROR: poison fleet did not report exactly one poisoned session" >&2
    exit 1
fi
echo "    ok: one panicking session poisoned itself; the fleet completed"

# --- 6. bench-regression gate --------------------------------------------
# Strict self-diff first: re-parses every committed results/BENCH_*.json
# with the in-repo JSON reader (malformed or duplicate-key files are hard
# errors) and must report no regression against itself.
echo "==> bench gate (uniloc bench-diff)"
# The fleet throughput breakdown must be committed and inside the gate:
# bench-diff scans all of results/, so its presence check is all that is
# needed for it to be parsed and self-diffed below.
if [ ! -f results/BENCH_fleet.json ]; then
    echo "ERROR: results/BENCH_fleet.json is missing (regenerate with" >&2
    echo "       \`uniloc fleet --sessions 10000 --bench\`)" >&2
    exit 1
fi
target/release/uniloc bench-diff
# Then a fresh run of one representative bench, compared warn-only: latency
# on shared CI hardware is too noisy to gate hard, but structural drift
# (stages appearing/vanishing, per-stage counts changing) gets surfaced.
(cd "$smoke" && UNILOC_QUIET=1 "$OLDPWD/target/release/table5_response_time" >/dev/null)
target/release/uniloc bench-diff --baseline results --candidate "$smoke" --warn-only
echo "    ok: committed bench breakdowns parse and self-diff clean"
echo "==> ci.sh: all checks passed"
