//! Differential tests for the fleet session engine (`DESIGN.md` §9): N
//! sessions interleaved through the [`FleetScheduler`] must be
//! epoch-for-epoch byte-identical to each walker running alone through the
//! legacy batch path, at any worker count, resident cap and admission
//! order — and per-session fault/quarantine state must never leak between
//! sessions under a chaos plan.
//!
//! Fleet sessions deliberately emit no harness-level `pipeline.run_walk` /
//! `pipeline.build_context` spans (a span guard cannot be held across
//! scheduler rounds), so observability comparisons filter the
//! `span.pipeline.*` metrics out of the solo capture; everything else must
//! match byte for byte.

use std::collections::BTreeMap;
use std::sync::Arc;

use uniloc::core::error_model::{train, ErrorModelSet};
use uniloc::core::fleet::{FleetScheduler, FinishedSession};
use uniloc::core::pipeline::{self, EpochRecord, PipelineConfig};
use uniloc::core::session::Session;
use uniloc::env::venues;
use uniloc::obs::session as obs_session;
use uniloc::obs::ObsSession;
use uniloc_bench::fleet::{
    build_session, fleet_specs, records_digest, restore_session, solo_records, spec_frames,
    spec_pipeline_config, spec_scenario, FleetConfig, SessionSpec,
};

const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn models(seed: u64) -> Arc<ErrorModelSet> {
    let cfg = PipelineConfig::default();
    let mut samples =
        pipeline::collect_training(&venues::training_office(seed), &cfg, seed + 10);
    samples.extend(pipeline::collect_training(
        &venues::training_open_space(seed + 1),
        &cfg,
        seed + 11,
    ));
    Arc::new(train(&samples).expect("training venues produce enough samples"))
}

/// Drives a whole spec set through a scheduler and returns each finished
/// session keyed by lane. `admit_order` permutes the admission sequence;
/// the scheduler must canonicalize it away.
fn run_fleet_sessions(
    specs: &[SessionSpec],
    admit_order: &[usize],
    models: &Arc<ErrorModelSet>,
    base: &PipelineConfig,
    max_epochs: usize,
    jobs: usize,
    resident: usize,
) -> BTreeMap<u64, FinishedSession> {
    let mut scheduler = FleetScheduler::new(jobs, base.epoch_interval, resident);
    for &i in admit_order {
        let (spec, models, base) = (specs[i].clone(), Arc::clone(models), base.clone());
        scheduler.admit(spec.lane, move || build_session(spec, models, base, max_epochs));
    }
    let mut finished = BTreeMap::new();
    let mut last_lane = None;
    scheduler.run(|f| {
        assert!(last_lane < Some(f.lane), "retirement must stream in lane order");
        last_lane = Some(f.lane);
        finished.insert(f.lane, f);
    });
    assert_eq!(finished.len(), specs.len());
    finished
}

/// A deterministic shuffle: sort by a multiplicative hash of the index.
fn shuffled(n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17));
    order
}

/// Tentpole (a) + (b): a 1000-session fleet is epoch-for-epoch identical
/// to each walker alone through the legacy batch path, and its output is
/// invariant across jobs 1/2/4/8, resident caps and admission order.
#[test]
fn fleet_matches_legacy_batch_and_is_jobs_invariant() {
    let models = models(5);
    let base = PipelineConfig::default();
    let cfg = FleetConfig {
        seed: 11,
        sessions: 1000,
        scenario_names: vec!["office".to_owned(), "open-space".to_owned()],
        jobs: 0, // unused: each run below picks its own
        resident: 0,
        max_epochs: 12,
        chaos_every: 0,
        obs_stub: false,
        shards: 0,
        top_k: 0,
        panic_lane: None,
        panic_epoch: 0,
    };
    let specs = fleet_specs(&cfg).unwrap();
    let in_order: Vec<usize> = (0..specs.len()).collect();

    // Baseline: jobs = 1, admission in lane order.
    let baseline =
        run_fleet_sessions(&specs, &in_order, &models, &base, cfg.max_epochs, 1, 64);

    // (a) Epoch-for-epoch equality with the legacy batch path, walker by
    // walker.
    for spec in &specs {
        let solo = solo_records(spec, &models, &base, cfg.max_epochs);
        let fleet = &baseline[&spec.lane].records;
        assert_eq!(
            fleet, &solo,
            "lane {} ({}) diverged from its legacy batch run",
            spec.lane, spec.name
        );
    }

    // (b) Worker-count, resident-cap and admission-order invariance, via
    // per-session digests of the canonical records.
    let digests: BTreeMap<u64, u64> =
        baseline.iter().map(|(&lane, f)| (lane, records_digest(&f.records))).collect();
    let variants = [
        (JOB_COUNTS[1], 64, in_order.clone()),
        (JOB_COUNTS[2], 7, in_order.clone()),
        (JOB_COUNTS[3], 64, shuffled(specs.len())),
    ];
    for (jobs, resident, order) in variants {
        let run =
            run_fleet_sessions(&specs, &order, &models, &base, cfg.max_epochs, jobs, resident);
        for (&lane, f) in &run {
            assert_eq!(
                records_digest(&f.records),
                digests[&lane],
                "lane {lane} changed at jobs={jobs} resident={resident}"
            );
            assert_eq!(f.epochs, baseline[&lane].epochs);
        }
    }
}

/// The spec's records and observability capture through the legacy path,
/// run under an isolated session so the capture is comparable.
fn solo_with_capture(
    spec: &SessionSpec,
    models: &ErrorModelSet,
    base: &PipelineConfig,
    max_epochs: usize,
) -> (Vec<EpochRecord>, uniloc::obs::SessionCapture) {
    let obs = Arc::new(ObsSession::isolated());
    let guard = obs_session::install(Arc::clone(&obs));
    let records = solo_records(spec, models, base, max_epochs);
    drop(guard);
    (records, obs.capture())
}

/// Metrics JSONL lines minus the signals the two paths deliberately emit
/// differently: the solo path records harness-level `span.pipeline.*`
/// timings the fleet path skips, and the fleet path runs with the
/// allocation observatory on (`alloc.*`) while the solo path leaves it off.
/// Alloc determinism is covered by the artifact byte-identity test above.
fn metrics_without_pipeline_spans(m: &uniloc::obs::MetricsSnapshot) -> Vec<String> {
    m.jsonl_lines()
        .into_iter()
        .filter(|l| !l.contains("\"span.pipeline.") && !l.contains("\"name\":\"alloc."))
        .collect()
}

/// Flight postmortems embed counter deltas, which pick up `alloc.*`
/// counters only on the alloc-tracking (fleet) side; strip those entries
/// so the two captures compare on the signals both paths emit.
fn flight_lines_without_alloc(lines: &[String]) -> Vec<String> {
    use uniloc::stats::json::Json;
    lines
        .iter()
        .map(|line| {
            let mut doc = Json::parse(line).expect("flight line parses");
            if let Json::Obj(fields) = &mut doc {
                for (key, value) in fields.iter_mut() {
                    if key != "counters_delta" {
                        continue;
                    }
                    if let Json::Arr(entries) = value {
                        entries.retain(|entry| {
                            !matches!(entry, Json::Arr(pair)
                                if matches!(pair.first(), Some(Json::Str(n)) if n.starts_with("alloc.")))
                        });
                    }
                }
            }
            doc.to_string()
        })
        .collect()
}

/// Tentpole (c): chaos plans stay confined to the walker they were
/// injected into. Clean sessions in a mixed fleet are byte-identical —
/// records, metrics, calibration cells, flight lines — to their solo runs;
/// faulted sessions match *their* solo faulted runs and are the only ones
/// carrying quarantine or postmortem state.
#[test]
fn fault_and_quarantine_state_never_leaks_between_sessions() {
    let models = models(5);
    let base = PipelineConfig::default();
    let cfg = FleetConfig {
        seed: 23,
        sessions: 24,
        scenario_names: vec!["office".to_owned()],
        jobs: 0,
        resident: 0,
        max_epochs: 40,
        chaos_every: 4,
        obs_stub: false,
        shards: 0,
        top_k: 0,
        panic_lane: None,
        panic_epoch: 0,
    };
    let specs = fleet_specs(&cfg).unwrap();
    assert_eq!(specs.iter().filter(|s| s.plan != "none").count(), 6);

    let fleet = run_fleet_sessions(&specs, &shuffled(specs.len()), &models, &base,
        cfg.max_epochs, 4, 5);

    let mut faulted_with_effects = 0;
    for spec in &specs {
        let f = &fleet[&spec.lane];
        let (solo, solo_cap) = solo_with_capture(spec, &models, &base, cfg.max_epochs);
        assert_eq!(f.records, solo, "lane {} diverged under fleet chaos", spec.lane);
        // The walker's whole observability capture matches its solo run
        // (modulo the harness spans): nothing from a neighbor leaked in,
        // nothing of its own leaked out.
        assert_eq!(
            metrics_without_pipeline_spans(&f.capture.metrics),
            metrics_without_pipeline_spans(&solo_cap.metrics),
            "lane {} metrics diverged",
            spec.lane
        );
        assert_eq!(
            f.capture.calibration.jsonl_lines(),
            solo_cap.calibration.jsonl_lines(),
            "lane {} calibration diverged",
            spec.lane
        );
        assert_eq!(
            flight_lines_without_alloc(&f.capture.flight_lines),
            flight_lines_without_alloc(&solo_cap.flight_lines),
            "lane {} flight postmortems diverged",
            spec.lane
        );
        let quarantined = f.records.iter().any(|r| !r.quarantined.is_empty());
        if spec.plan == "none" {
            assert!(!quarantined, "clean lane {} caught a neighbor's fault", spec.lane);
        } else if quarantined || !f.capture.flight_lines.is_empty() {
            faulted_with_effects += 1;
        }
    }
    assert!(
        faulted_with_effects > 0,
        "chaos plans must visibly perturb at least one faulted walker"
    );
}

/// Satellite: checkpoint → restore resumes byte-identically. A session
/// rebuilt from its [`SessionCheckpoint`] and replayed to the cursor
/// records exactly the post-checkpoint suffix of the uninterrupted run.
#[test]
fn checkpoint_restore_resumes_byte_identically() {
    let models = models(5);
    let base = PipelineConfig::default();
    let cfg = FleetConfig {
        seed: 31,
        sessions: 3,
        scenario_names: vec!["office".to_owned()],
        jobs: 0,
        resident: 0,
        max_epochs: 20,
        chaos_every: 2,
        obs_stub: false,
        shards: 0,
        top_k: 0,
        panic_lane: None,
        panic_epoch: 0,
    };
    let specs = fleet_specs(&cfg).unwrap();
    for spec in &specs {
        let full = solo_records(spec, &models, &base, cfg.max_epochs);
        let cut = full.len() / 2;
        let ckpt = spec.checkpoint(cut);
        let restored =
            restore_session(&ckpt, Arc::clone(&models), base.clone(), cfg.max_epochs);
        assert_eq!(restored.cursor(), cut);

        let mut scheduler = FleetScheduler::new(2, base.epoch_interval, 2);
        scheduler.admit(spec.lane, move || restored);
        let mut resumed = Vec::new();
        scheduler.run(|f| resumed.push(f));
        assert_eq!(resumed.len(), 1);
        assert_eq!(
            resumed[0].records,
            full[cut..],
            "restored lane {} did not resume at its checkpoint",
            spec.lane
        );
    }
}

/// The fleet session's frame stream really is the legacy stream: same
/// walk, same truncation, same chaos-seed discipline — so the
/// differential above compares like with like.
#[test]
fn spec_frames_match_legacy_walk_frames() {
    let cfg = FleetConfig {
        seed: 47,
        sessions: 4,
        scenario_names: vec!["office".to_owned()],
        jobs: 0,
        resident: 0,
        max_epochs: 15,
        chaos_every: 0,
        obs_stub: false,
        shards: 0,
        top_k: 0,
        panic_lane: None,
        panic_epoch: 0,
    };
    let base = PipelineConfig::default();
    for spec in fleet_specs(&cfg).unwrap() {
        let scenario = spec_scenario(&spec);
        let pcfg = spec_pipeline_config(&base, &spec);
        let frames = spec_frames(&scenario, &pcfg, &spec, cfg.max_epochs);
        let mut legacy = pipeline::walk_frames(&scenario, &pcfg, spec.seed);
        legacy.truncate(cfg.max_epochs);
        assert_eq!(frames, legacy);
        assert!(frames.len() <= cfg.max_epochs);
    }
}

/// `FleetSession::build` really constructs under the walker's own obs
/// session: a session built while some *other* session is installed must
/// not leak effects into it.
#[test]
fn session_construction_is_obs_isolated() {
    let models = models(5);
    let base = PipelineConfig::default();
    let spec = SessionSpec {
        lane: 0,
        name: "iso".to_owned(),
        scenario: "office".to_owned(),
        persona: "m-30s".to_owned(),
        device: "nexus5x".to_owned(),
        plan: "none".to_owned(),
        seed: 99,
    };
    let outer = Arc::new(ObsSession::isolated());
    let guard = obs_session::install(Arc::clone(&outer));
    let built = build_session(spec, Arc::clone(&models), base, 5);
    drop(guard);
    drop(built);
    let cap = outer.capture();
    assert!(cap.metrics.jsonl_lines().is_empty(), "construction leaked metrics outward");
    assert!(cap.flight_lines.is_empty());
}

/// Tentpole (fleet observatory): `FLEET_HEALTH.json`, `PROF_fleet.folded`
/// and `PROF_fleet.json` are byte-identical at any worker count and shard
/// count, and the obs-stub configuration never perturbs the pipeline (the
/// fleet digest of the canonical records is unchanged).
#[test]
fn observatory_artifacts_are_jobs_and_shard_invariant() {
    use uniloc::obs::fleet::{
        alloc_folded_lines, alloc_report, alloc_tree, folded_lines, health_report,
        profile_report, profile_tree, SloTargets,
    };
    use uniloc_bench::fleet::run_fleet;

    let models = models(5);
    let base = PipelineConfig::default();
    let mk = |jobs, shards, obs_stub| FleetConfig {
        seed: 61,
        sessions: 48,
        scenario_names: vec!["office".to_owned(), "open-space".to_owned()],
        jobs,
        resident: 16,
        max_epochs: 10,
        chaos_every: 6,
        obs_stub,
        shards,
        top_k: 0,
        panic_lane: None,
        panic_epoch: 0,
    };
    let digest_of = |report: &uniloc::stats::json::Json| {
        report.get("fleet_digest").unwrap().as_str().unwrap().to_owned()
    };
    let artifacts = |cfg: &FleetConfig| {
        let result = run_fleet(&models, &base, cfg).unwrap();
        let snap = result.snapshot.expect("obs-on fleets aggregate");
        let tree = profile_tree(&snap);
        let heap = alloc_tree(&snap);
        (
            health_report(&snap, &SloTargets::default()).to_string(),
            folded_lines(&tree),
            profile_report(&tree).to_string(),
            alloc_folded_lines(&heap),
            alloc_report(&snap, &heap).to_string(),
            digest_of(&result.report),
        )
    };

    let baseline = artifacts(&mk(1, 1, false));
    assert!(baseline.0.contains("\"health\":\"uniloc-fleet\""));
    assert!(baseline.1.starts_with("fleet "));
    assert!(baseline.1.contains("fleet;engine.update;"));
    // The heap profile saw real traffic and attributes it to real stages.
    assert!(baseline.3.contains("fleet;engine.update;"));
    assert!(baseline.4.contains("\"prof\":\"alloc\""));
    assert!(
        !baseline.4.contains("\"allocs_per_epoch\":0,"),
        "steady-state alloc meter must be live on an obs-on fleet"
    );
    for (jobs, shards) in [(2, 0), (4, 3), (8, 16)] {
        assert_eq!(
            artifacts(&mk(jobs, shards, false)),
            baseline,
            "observatory artifacts changed at jobs={jobs} shards={shards}"
        );
    }

    let stub = run_fleet(&models, &base, &mk(4, 0, true)).unwrap();
    assert!(stub.snapshot.is_none(), "stubbed fleets aggregate nothing");
    assert_eq!(
        digest_of(&stub.report),
        baseline.5,
        "observability leaked into the pipeline"
    );
}

/// Seeding sanity for the load generator itself: the same [`FleetConfig`]
/// always generates the same specs, and distinct fleet seeds generate
/// disjoint per-lane session seeds.
#[test]
fn load_generator_is_seed_deterministic() {
    let mk = |seed| FleetConfig {
        seed,
        sessions: 64,
        scenario_names: vec!["office".to_owned(), "open-space".to_owned()],
        jobs: 0,
        resident: 0,
        max_epochs: 10,
        chaos_every: 8,
        obs_stub: false,
        shards: 0,
        top_k: 0,
        panic_lane: None,
        panic_epoch: 0,
    };
    let a = fleet_specs(&mk(1)).unwrap();
    let b = fleet_specs(&mk(1)).unwrap();
    assert_eq!(a, b);
    let c = fleet_specs(&mk(2)).unwrap();
    let seeds_a: Vec<u64> = a.iter().map(|s| s.seed).collect();
    let seeds_c: Vec<u64> = c.iter().map(|s| s.seed).collect();
    assert!(seeds_a.iter().all(|s| !seeds_c.contains(s)));
}

/// One tiny stepped-vs-batch cross-check through the public facade, so a
/// regression in the `Session` extraction fails fast here too, not only
/// in the heavyweight differential above.
#[test]
fn facade_session_steps_match_batch() {
    let models = models(5);
    let cfg = PipelineConfig { indoor_spacing: 3.0, ..PipelineConfig::default() };
    let scenario = venues::office("facade-eq", 7, 30.0, 12.0);
    let frames = pipeline::walk_frames(&scenario, &cfg, 8);
    let batch = pipeline::run_walk_on_frames(&scenario, &models, &cfg, 8, &frames);
    let mut session = Session::new(Arc::new(scenario), &models, &cfg, 8);
    let stepped: Vec<EpochRecord> = frames.iter().map(|f| session.step(f)).collect();
    assert_eq!(stepped, batch);
}
