//! Differential tests for the parallel sweep engine: every artifact a
//! sweep produces — chaos reports, per-epoch records, the merged
//! observability sidecar — must be byte-identical at any worker count.
//!
//! `--jobs 1` runs the historical inline code path; higher counts fan out
//! on `std::thread`. The engine's contract (see `DESIGN.md` §8) is that
//! the fan-out is invisible in every output, so each test runs the same
//! work at jobs ∈ {1, 2, 4, 8} and diffs the results against the
//! sequential baseline.

use uniloc::core::error_model::{train, ErrorModelSet};
use uniloc::core::parallel::{run_observed, run_ordered};
use uniloc::core::pipeline::{self, PipelineConfig};
use uniloc::env::venues;
use uniloc::faults::FaultPlan;
use uniloc_bench::chaos::{run_sweep, ChaosConfig};

const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn models(seed: u64) -> ErrorModelSet {
    let cfg = PipelineConfig::default();
    let mut samples =
        pipeline::collect_training(&venues::training_office(seed), &cfg, seed + 10);
    samples.extend(pipeline::collect_training(
        &venues::training_open_space(seed + 1),
        &cfg,
        seed + 11,
    ));
    train(&samples).expect("training venues produce enough samples")
}

/// The full chaos sweep — reports, violation list, merged metrics,
/// merged calibration, flight lines — is identical at every job count.
#[test]
fn chaos_sweep_is_jobs_invariant() {
    let models = models(5);
    let cfg = PipelineConfig::default();
    let sweep_at = |jobs: usize| {
        run_sweep(
            &models,
            &cfg,
            &ChaosConfig {
                seed: 5,
                scenario_names: vec!["office".to_owned(), "path1".to_owned()],
                plans: FaultPlan::smoke_library(),
                jobs,
            },
        )
        .expect("sweep runs")
    };
    let baseline = sweep_at(1);
    let baseline_reports: Vec<(String, String)> = baseline
        .reports
        .iter()
        .map(|r| (r.file_name(), r.report.to_string_pretty()))
        .collect();
    for jobs in &JOB_COUNTS[1..] {
        let sweep = sweep_at(*jobs);
        let reports: Vec<(String, String)> = sweep
            .reports
            .iter()
            .map(|r| (r.file_name(), r.report.to_string_pretty()))
            .collect();
        assert_eq!(reports, baseline_reports, "report bytes differ at jobs={jobs}");
        assert_eq!(sweep.violations, baseline.violations, "violations differ at jobs={jobs}");
        assert_eq!(
            sweep.obs.metrics, baseline.obs.metrics,
            "merged metrics differ at jobs={jobs}"
        );
        assert_eq!(
            sweep.obs.calibration, baseline.obs.calibration,
            "merged calibration differs at jobs={jobs}"
        );
        assert_eq!(
            sweep.obs.flight_lines, baseline.obs.flight_lines,
            "flight lines differ at jobs={jobs}"
        );
    }
}

/// Per-epoch records from parallel walk fan-out equal the plain
/// sequential `run_walk` loop, scenario by scenario, at every job count.
#[test]
fn walk_records_match_sequential_at_all_job_counts() {
    let models = models(3);
    let cfg = PipelineConfig::default();
    let scenarios = vec![
        venues::office("diff-office", 3, 50.0, 18.0),
        venues::training_open_space(4),
    ];
    let sequential: Vec<Vec<pipeline::EpochRecord>> = scenarios
        .iter()
        .map(|s| pipeline::run_walk(s, &models, &cfg, 103))
        .collect();
    for jobs in JOB_COUNTS {
        let (parallel, _) = run_observed(&scenarios, jobs, |_, s| {
            pipeline::run_walk(s, &models, &cfg, 103)
        });
        assert_eq!(parallel, sequential, "records differ at jobs={jobs}");
    }
}

/// The merged observability sidecar is itself invariant in the worker
/// count: same counters, same histograms, same calibration cells.
#[test]
fn merged_obs_is_jobs_invariant_for_walks() {
    let models = models(3);
    let cfg = PipelineConfig::default();
    let scenarios = vec![
        venues::office("diff-obs-a", 3, 40.0, 15.0),
        venues::office("diff-obs-b", 4, 40.0, 15.0),
        venues::training_open_space(5),
    ];
    let (_, baseline) = run_observed(&scenarios, 1, |i, s| {
        pipeline::run_walk(s, &models, &cfg, 200 + i as u64)
    });
    for jobs in &JOB_COUNTS[1..] {
        let (_, obs) = run_observed(&scenarios, *jobs, |i, s| {
            pipeline::run_walk(s, &models, &cfg, 200 + i as u64)
        });
        assert_eq!(obs.metrics, baseline.metrics, "metrics differ at jobs={jobs}");
        assert_eq!(
            obs.calibration, baseline.calibration,
            "calibration differs at jobs={jobs}"
        );
        assert_eq!(obs.flight_lines, baseline.flight_lines, "flight differs at jobs={jobs}");
    }
}

/// With ≥ 4 real cores, the path1 sweep at `--jobs 4` beats the
/// sequential run by > 1.5×. Skipped (with a note) on smaller machines —
/// the CI container pins a single core, where the speedup is definitionally
/// unreachable and the differential assertions above carry the contract.
#[test]
fn parallel_speedup_on_multicore() {
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping speedup measurement: only {cores} core(s) available");
        return;
    }
    let models = models(3);
    let cfg = PipelineConfig::default();
    let scenarios: Vec<_> = (0..8u64)
        .map(|i| venues::office(&format!("speedup-{i}"), 10 + i, 50.0, 18.0))
        .collect();
    let timed = |jobs: usize| {
        let start = std::time::Instant::now();
        let _ = run_ordered(&scenarios, jobs, |i, s| {
            pipeline::run_walk(s, &models, &cfg, 300 + i as u64)
        });
        start.elapsed()
    };
    timed(1); // warm-up: touch every code path once
    let sequential = timed(1);
    let parallel = timed(4);
    let speedup = sequential.as_secs_f64() / parallel.as_secs_f64();
    assert!(
        speedup > 1.5,
        "expected > 1.5x speedup at jobs=4 on {cores} cores, got {speedup:.2}x \
         (sequential {sequential:?}, parallel {parallel:?})"
    );
}
