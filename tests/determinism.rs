//! End-to-end determinism: the entire pipeline — training-data collection,
//! error-model fitting, and a full localization walk — must be a pure
//! function of its seeds. This is the property every golden-trace and
//! regression test in the workspace leans on, and what the in-repo
//! `uniloc-rng` substrate guarantees (see DESIGN.md, "Deterministic
//! randomness").

use uniloc::core::error_model::train;
use uniloc::core::pipeline::{self, PipelineConfig};
use uniloc::env::{campus, venues};

/// Runs the full train-then-localize pipeline and returns the walk trace
/// serialized to JSON — the same bytes `uniloc run --json` would emit.
fn pipeline_trace(seed: u64) -> String {
    let cfg = PipelineConfig::default();
    let mut samples =
        pipeline::collect_training(&venues::training_office(seed), &cfg, seed + 10);
    samples.extend(pipeline::collect_training(
        &venues::training_open_space(seed + 1),
        &cfg,
        seed + 11,
    ));
    let models = train(&samples).expect("training venues produce enough samples");
    let records = pipeline::run_walk(&campus::daily_path(seed), &models, &cfg, seed + 100);
    assert!(!records.is_empty(), "walk produced no epochs");
    uniloc::stats::json::to_string(&records)
}

#[test]
fn same_seed_reproduces_byte_identical_traces() {
    let a = pipeline_trace(17);
    let b = pipeline_trace(17);
    assert!(a == b, "same-seed pipeline runs diverged");
}

#[test]
fn different_seeds_diverge() {
    let a = pipeline_trace(17);
    let b = pipeline_trace(18);
    assert!(a != b, "different seeds produced identical traces");
}
