//! End-to-end calibration observatory: a full walk populates per-scheme
//! calibration cells in the metrics sidecar; a deliberately stale model set
//! trips the CUSUM drift detector and produces a `calibration_drift` flight
//! postmortem; and the whole sidecar is byte-stable across same-seed runs
//! under the virtual clock.
//!
//! Everything here goes through process-global observability state (the
//! dispatcher, metrics registry, calibration monitor and flight recorder),
//! so the scenarios run sequentially inside ONE `#[test]` — splitting them
//! into parallel test functions would interleave their globals.

use std::io::Write;
use std::sync::{Arc, Mutex};

use uniloc::core::error_model::{train, ErrorModelSet};
use uniloc::core::pipeline::{self, PipelineConfig};
use uniloc::env::venues;
use uniloc::iodetect::IoState;
use uniloc::obs::{
    CalibrationSnapshot, JsonlExporter, MultiSubscriber, Subscriber, TraceLevel, VirtualClock,
};
use uniloc::stats::json::Json;

/// An in-memory sink shared between the test and the exporter it hands out.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        let buf = self.0.lock().expect("buffer mutex");
        String::from_utf8(buf.clone()).expect("sidecar is utf-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer mutex").extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn trained_models(seed: u64) -> ErrorModelSet {
    let cfg = PipelineConfig::default();
    let mut samples =
        pipeline::collect_training(&venues::training_office(seed), &cfg, seed + 10);
    samples.extend(pipeline::collect_training(
        &venues::training_open_space(seed + 1),
        &cfg,
        seed + 11,
    ));
    train(&samples).expect("training venues produce enough samples")
}

/// Makes every model wildly optimistic — predictions and spread shrunk to
/// 5% — the "stale `LinearErrorModel`" the drift detector exists to catch.
fn staled(models: &ErrorModelSet) -> ErrorModelSet {
    let mut out = ErrorModelSet::default();
    let schemes: Vec<_> = models.schemes().collect();
    for scheme in schemes {
        for io in [IoState::Indoor, IoState::Outdoor] {
            if let Some(m) = models.model(scheme, io) {
                let mut m = m.clone();
                m.intercept *= 0.05;
                for c in &mut m.coefficients {
                    *c *= 0.05;
                }
                m.sigma *= 0.05;
                out.insert(scheme, io, m);
            }
        }
    }
    out
}

/// Replays the CLI's `run --metrics … --virtual-clock` wiring in-process
/// and returns the sidecar bytes: fresh virtual clock, reset globals, an
/// exporter + flight recorder subscriber chain, one walk, then the metrics
/// and calibration snapshots appended.
fn observed_run(models: &ErrorModelSet, seed: u64) -> String {
    let d = uniloc::obs::global();
    // A fresh clock per run: the virtual clock only saturates forward, so
    // reusing the previous run's instance would shift every timestamp.
    d.set_clock(Arc::new(VirtualClock::new()));
    d.set_level(Some(TraceLevel::Span));
    uniloc::obs::global_metrics().reset();
    uniloc::obs::global_calibration().reset();
    let flight = uniloc::obs::global_flight();
    flight.reset();

    let buf = SharedBuf::default();
    let exporter = Arc::new(JsonlExporter::new(Box::new(buf.clone())));
    flight.set_sink(Some(Arc::clone(&exporter)));
    d.set_subscriber(Some(Arc::new(MultiSubscriber::new(vec![
        Arc::clone(&exporter) as Arc<dyn Subscriber>,
        Arc::clone(&flight) as Arc<dyn Subscriber>,
    ]))));

    let scenario = venues::office("observatory-office", seed, 50.0, 18.0);
    let cfg = PipelineConfig::default();
    let records = pipeline::run_walk(&scenario, models, &cfg, seed + 100);
    assert!(!records.is_empty(), "walk produced no epochs");

    for line in uniloc::obs::global_metrics().snapshot().jsonl_lines() {
        exporter.write_line(&line);
    }
    for line in uniloc::obs::global_calibration().snapshot().jsonl_lines() {
        exporter.write_line(&line);
    }
    exporter.flush();

    d.set_subscriber(None);
    flight.set_sink(None);
    buf.contents()
}

/// Parses every sidecar line and returns (calibration snapshot, total drift
/// alarms across cells, flight-dump reasons in emission order).
fn digest(sidecar: &str) -> (CalibrationSnapshot, u64, Vec<String>) {
    let mut snap = CalibrationSnapshot::default();
    let mut reasons = Vec::new();
    for line in sidecar.lines() {
        let doc = Json::parse(line).expect("every sidecar line is valid JSON");
        snap.absorb_jsonl(&doc).expect("well-formed calibration lines");
        if doc.get("kind").and_then(Json::as_str) == Some("flight") {
            reasons.push(
                doc.get("reason")
                    .and_then(Json::as_str)
                    .expect("flight dumps carry a reason")
                    .to_owned(),
            );
        }
    }
    let alarms = snap.cells.iter().map(|c| c.drift_alarms).sum();
    (snap, alarms, reasons)
}

#[test]
fn observatory_tracks_calibration_and_flags_stale_models() {
    let models = trained_models(5);

    // --- Healthy run: calibration cells populated with sane summaries. ---
    let healthy = observed_run(&models, 9);
    let (snap, healthy_alarms, _) = digest(&healthy);
    assert!(!snap.cells.is_empty(), "walk produced no calibration cells");
    for cell in &snap.cells {
        assert!(cell.n > 0, "{}/{}: empty cell", cell.scheme, cell.io);
        let binned: u64 = cell.pit_counts.iter().sum();
        assert_eq!(binned, cell.n, "{}/{}: PIT bins lose observations", cell.scheme, cell.io);
        for &c in &cell.coverage {
            assert!((0.0..=1.0).contains(&c), "{}/{}: coverage {c} outside [0,1]", cell.scheme, cell.io);
        }
    }

    // --- Stale run: shrunken models must trip the drift detector and leave
    // a calibration_drift postmortem; honestly-trained models must not alarm
    // more than the stale ones. ---
    let stale_models = staled(&models);
    let stale = observed_run(&stale_models, 9);
    let (stale_snap, stale_alarms, reasons) = digest(&stale);
    assert!(
        stale_alarms > healthy_alarms,
        "stale models raised {stale_alarms} alarms vs {healthy_alarms} healthy — detector missed the staleness"
    );
    assert!(
        reasons.iter().any(|r| r == "calibration_drift"),
        "no calibration_drift flight dump in stale run (reasons: {reasons:?})"
    );
    assert!(
        stale_snap.cells.iter().any(|c| c.drift_alarms > 0),
        "no cell recorded its drift alarms"
    );

    // --- Byte stability: the stale run repeated under the same seed must
    // reproduce the sidecar exactly, flight postmortems included. ---
    let stale_again = observed_run(&stale_models, 9);
    assert!(stale == stale_again, "same-seed stale runs produced different sidecar bytes");
}
