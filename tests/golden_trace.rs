//! Golden-trace regression tests: one committed end-to-end localization
//! trace per UniLoc variant. The pipeline must reproduce each trace
//! byte-for-byte; any diff means the simulation substrate, the RNG stream
//! layout, or the estimation code changed observable behavior and the
//! goldens need a deliberate re-bless.
//!
//! To re-bless after an intentional change:
//!
//! ```text
//! UNILOC_BLESS=1 cargo test --test golden_trace
//! ```

use std::sync::OnceLock;
use uniloc::core::error_model::train;
use uniloc::core::pipeline::{self, EpochRecord, PipelineConfig};
use uniloc::env::venues;
use uniloc::stats::json::ToJson;
use uniloc::stats::Json;

/// Fixed seeds: goldens are only meaningful for one exact pipeline input.
const TRAIN_SEED: u64 = 41;
const WALK_SEED: u64 = 141;

fn walk_records() -> &'static [EpochRecord] {
    static RECORDS: OnceLock<Vec<EpochRecord>> = OnceLock::new();
    RECORDS.get_or_init(|| {
        let cfg = PipelineConfig::default();
        let mut samples = pipeline::collect_training(
            &venues::training_office(TRAIN_SEED),
            &cfg,
            TRAIN_SEED + 10,
        );
        samples.extend(pipeline::collect_training(
            &venues::training_open_space(TRAIN_SEED + 1),
            &cfg,
            TRAIN_SEED + 11,
        ));
        let models = train(&samples).expect("training venues produce enough samples");
        // A small office keeps the committed trace compact while still
        // exercising survey, IO detection, per-scheme estimation and both
        // UniLoc variants end to end.
        let venue = venues::office("golden-office", TRAIN_SEED + 2, 36.0, 14.0);
        pipeline::run_walk(&venue, &models, &cfg, WALK_SEED)
    })
}

/// Projects the walk onto the fields a variant's golden pins, one compact
/// object per epoch.
fn variant_trace(project: impl Fn(&EpochRecord) -> Json) -> String {
    let epochs: Vec<Json> = walk_records().iter().map(project).collect();
    let mut text = Json::Arr(epochs).to_string_pretty();
    text.push('\n');
    text
}

fn check_golden(name: &str, produced: &str) {
    let path = format!("{}/tests/golden/{name}.json", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UNILOC_BLESS").is_some() {
        std::fs::write(&path, produced).expect("write golden");
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path}: {e} (run with UNILOC_BLESS=1)"));
    assert!(
        produced == committed,
        "pipeline no longer reproduces tests/golden/{name}.json \
         ({} generated vs {} committed bytes); if the change is intentional, \
         re-bless with UNILOC_BLESS=1",
        produced.len(),
        committed.len(),
    );
}

#[test]
fn uniloc1_trace_is_reproduced_exactly() {
    let trace = variant_trace(|r| {
        Json::Obj(vec![
            ("t".to_owned(), r.t.to_json()),
            ("station".to_owned(), r.station.to_json()),
            ("io".to_owned(), r.io_detected.to_json()),
            ("choice".to_owned(), r.uniloc1_choice.to_json()),
            ("error".to_owned(), r.uniloc1_error.to_json()),
        ])
    });
    check_golden("uniloc1", &trace);
}

#[test]
fn uniloc2_trace_is_reproduced_exactly() {
    let trace = variant_trace(|r| {
        Json::Obj(vec![
            ("t".to_owned(), r.t.to_json()),
            ("station".to_owned(), r.station.to_json()),
            ("tau".to_owned(), r.tau.to_json()),
            ("weights".to_owned(), r.weights.to_json()),
            ("error".to_owned(), r.uniloc2_error.to_json()),
            ("mixture_error".to_owned(), r.uniloc2_mixture_error.to_json()),
        ])
    });
    check_golden("uniloc2", &trace);
}
