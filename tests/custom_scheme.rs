//! The "General" feature: "any localization scheme can be easily integrated
//! into UniLoc". This test integrates a sixth, user-defined scheme — a
//! Kalman-smoothed cellular tracker — gives it an error model, and checks
//! the engine folds it into the ensemble.

use uniloc_rng::Rng;
use uniloc::core::engine::UniLocEngine;
use uniloc::core::error_model::{train, LinearErrorModel};
use uniloc::core::pipeline::{self, PipelineConfig};
use uniloc::env::{venues, GaitProfile, Walker};
use uniloc::filters::Kalman2D;
use uniloc::geom::Point;
use uniloc::iodetect::IoState;
use uniloc::schemes::{
    CellFingerprintDb, CellFingerprintScheme, LocalizationScheme, LocationEstimate, SchemeId,
};
use uniloc::sensors::{DeviceProfile, SensorFrame, SensorHub};

/// A user-integrated scheme: cellular fingerprinting smoothed by a
/// constant-velocity Kalman filter.
struct SmoothedCellular {
    inner: CellFingerprintScheme,
    kalman: Option<Kalman2D>,
    last_t: f64,
}

impl SmoothedCellular {
    fn new(db: CellFingerprintDb) -> Self {
        SmoothedCellular { inner: CellFingerprintScheme::new(db), kalman: None, last_t: 0.0 }
    }
}

impl LocalizationScheme for SmoothedCellular {
    fn id(&self) -> SchemeId {
        SchemeId::Custom(1)
    }

    fn name(&self) -> String {
        "kalman-cellular".to_owned()
    }

    fn update(&mut self, frame: &SensorFrame) -> Option<LocationEstimate> {
        let raw = self.inner.update(frame)?;
        let dt = (frame.t - self.last_t).max(0.1);
        self.last_t = frame.t;
        let kf = self
            .kalman
            .get_or_insert_with(|| Kalman2D::new(raw.position, 0.5, 64.0));
        kf.predict(dt);
        kf.update(raw.position);
        Some(LocationEstimate::with_spread(
            kf.position(),
            kf.position_variance().sqrt(),
        ))
    }

    fn reset(&mut self) {
        self.kalman = None;
        self.last_t = 0.0;
        self.inner.reset();
    }
}

#[test]
fn smoothing_beats_raw_cellular() {
    let venue = venues::training_office(81);
    let cfg = PipelineConfig::default();
    let ctx = pipeline::build_context(&venue, &cfg, 82);
    let mut raw = CellFingerprintScheme::new(ctx.cell_db.clone());
    let mut smoothed = SmoothedCellular::new(ctx.cell_db.clone());

    let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(83));
    let walk = walker.walk(&venue.route);
    let mut hub = SensorHub::new(&venue.world, DeviceProfile::nexus_5x(), 84);
    let frames = hub.sample_walk(&walk, 0.5);

    let mean_err = |scheme: &mut dyn LocalizationScheme| {
        let errs: Vec<f64> = frames
            .iter()
            .filter_map(|f| scheme.update(f).map(|e| e.position.distance(f.true_position)))
            .collect();
        errs.iter().sum::<f64>() / errs.len() as f64
    };
    let raw_err = mean_err(&mut raw);
    let smooth_err = mean_err(&mut smoothed);
    assert!(
        smooth_err < raw_err,
        "Kalman smoothing ({smooth_err:.2}) should beat raw cellular ({raw_err:.2})"
    );
}

#[test]
fn custom_scheme_joins_the_ensemble() {
    let venue = venues::training_office(85);
    let cfg = PipelineConfig::default();
    let ctx = pipeline::build_context(&venue, &cfg, 86);

    // Train the built-in models, then hand-integrate the custom scheme
    // with a constant error model (as a user without features would).
    let mut samples = pipeline::collect_training(&venue, &cfg, 87);
    samples.extend(pipeline::collect_training(&venues::training_open_space(88), &cfg, 89));
    let mut models = train(&samples).expect("training venues produce enough samples");
    models.insert(
        SchemeId::Custom(1),
        IoState::Indoor,
        LinearErrorModel {
            intercept: 4.0,
            coefficients: vec![],
            sigma: 3.0,
            residual_mean: 0.0,
            r_squared: 0.0,
            p_values: vec![],
            n_obs: 100,
        },
    );

    let mut schemes = pipeline::build_schemes(&venue, &ctx, &cfg, 90);
    schemes.push(Box::new(SmoothedCellular::new(ctx.cell_db.clone())));
    let mut engine = UniLocEngine::new(schemes, models, ctx);
    assert_eq!(engine.scheme_ids().len(), 6);
    // Register the custom scheme's (empty, constant-model) feature vector:
    // available whenever a cellular scan exists indoors.
    engine.register_custom_features(
        SchemeId::Custom(1),
        std::sync::Arc::new(|_ctx, io, frame, _loc| {
            (io == IoState::Indoor
                && frame.cell.as_ref().is_some_and(|c| !c.readings.is_empty()))
            .then(Vec::new)
        }),
    );

    let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(91));
    let walk = walker.walk(&venue.route);
    let mut hub = SensorHub::new(&venue.world, DeviceProfile::nexus_5x(), 92);
    let frames = hub.sample_walk(&walk, 0.5);

    // With features + a model registered, the sixth scheme participates in
    // the ensemble: it gets nonzero BMA weight.
    let mut custom_listed = 0usize;
    let mut custom_weighted = 0usize;
    let mut delivered = 0usize;
    for f in &frames {
        let out = engine.update(f);
        delivered += usize::from(out.bayesian_average.is_some());
        if let Some(r) = out.reports.iter().find(|r| r.id == SchemeId::Custom(1)) {
            custom_listed += 1;
            custom_weighted += usize::from(r.weight > 0.0);
            assert!(r.estimate.is_some(), "the custom scheme itself still runs");
        }
    }
    assert_eq!(custom_listed, frames.len());
    assert_eq!(delivered, frames.len());
    assert!(
        custom_weighted as f64 > 0.5 * frames.len() as f64,
        "custom scheme participated at only {custom_weighted}/{} epochs",
        frames.len()
    );

    // Positions stay accurate with the sixth scheme integrated.
    let mut engine2 = {
        let ctx = pipeline::build_context(&venue, &cfg, 86);
        let schemes = pipeline::build_schemes(&venue, &ctx, &cfg, 90);
        UniLocEngine::new(schemes, engine.models().clone(), ctx)
    };
    let errs: Vec<f64> = frames
        .iter()
        .filter_map(|f| {
            engine2
                .update(f)
                .bayesian_average
                .map(|p| p.distance(f.true_position))
        })
        .collect();
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(mean < 8.0, "accuracy with the integrated scheme: {mean:.2}");
}

#[test]
fn engine_reset_restores_walk_state() {
    let venue = venues::training_office(93);
    let cfg = PipelineConfig::default();
    let ctx = pipeline::build_context(&venue, &cfg, 94);
    let mut samples = pipeline::collect_training(&venue, &cfg, 95);
    samples.extend(pipeline::collect_training(&venues::training_open_space(96), &cfg, 97));
    let models = train(&samples).expect("enough samples");
    let schemes = pipeline::build_schemes(&venue, &ctx, &cfg, 98);
    let mut engine = UniLocEngine::new(schemes, models, ctx);

    let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(99));
    let walk = walker.walk(&venue.route);
    let mut hub = SensorHub::new(&venue.world, DeviceProfile::nexus_5x(), 100);
    let frames = hub.sample_walk(&walk, 0.5);

    // Walk halfway, reset, and verify the first post-reset estimate is
    // anchored near the start again (PDR re-seeded) rather than mid-floor.
    for f in frames.iter().take(frames.len() / 2) {
        engine.update(f);
    }
    engine.reset();
    let out = engine.update(&frames[0]);
    let p = out.bayesian_average.expect("delivers after reset");
    assert!(
        p.distance(Point::new(3.0, 3.0)) < 25.0,
        "post-reset estimate strayed to {p}"
    );
}
