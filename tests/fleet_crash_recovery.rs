//! Crash-recovery differential suite (`DESIGN.md` §12): a fleet killed at
//! any swept cut point and resumed from its last durable
//! [`FleetCheckpoint`] must produce every artifact — the `FLEET.json`
//! report, the `FLEET_HEALTH.json` health plane and both profiler trees —
//! byte-identical to an uninterrupted run, including across chained
//! crash → resume → crash → resume sequences; and a panicking session
//! must poison only itself, leaving every other lane's row untouched.
//!
//! The kill switch is `uniloc_faults::CrashPoint` driving
//! [`FleetRunOptions::crash_after_rounds`]; resume reloads the checkpoint
//! exactly as `uniloc fleet --resume` does.

use std::sync::Arc;

use uniloc::core::error_model::{train, ErrorModelSet};
use uniloc::core::pipeline::{self, PipelineConfig};
use uniloc::env::venues;
use uniloc::faults::CrashPoint;
use uniloc::obs::fleet as obsfleet;
use uniloc_bench::fleet::{
    load_fleet_checkpoint, run_fleet, run_fleet_durable, FleetConfig, FleetOutcome,
    FleetRunOptions, FleetResult,
};

fn models(seed: u64) -> Arc<ErrorModelSet> {
    let cfg = PipelineConfig::default();
    let mut samples =
        pipeline::collect_training(&venues::training_office(seed), &cfg, seed + 10);
    samples.extend(pipeline::collect_training(
        &venues::training_open_space(seed + 1),
        &cfg,
        seed + 11,
    ));
    Arc::new(train(&samples).expect("training venues produce enough samples"))
}

fn fleet_config(seed: u64, jobs: usize, panic_lane: Option<u64>) -> FleetConfig {
    FleetConfig {
        seed,
        sessions: 18,
        scenario_names: vec!["office".to_owned(), "open-space".to_owned()],
        jobs,
        resident: 5,
        max_epochs: 10,
        chaos_every: 4,
        obs_stub: false,
        shards: 0,
        top_k: 0,
        panic_lane,
        panic_epoch: 3,
    }
}

/// Every artifact the CLI derives from a [`FleetResult`], rendered to the
/// exact bytes `uniloc fleet` writes. Byte-comparing these is the whole
/// resume-determinism contract: if each artifact matches, an operator
/// cannot tell a resumed fleet from one that never crashed.
fn artifacts(result: &FleetResult) -> Vec<(&'static str, String)> {
    let mut out = vec![("FLEET.json", result.report.to_string_pretty())];
    if let Some(snap) = &result.snapshot {
        let health = obsfleet::health_report(snap, &obsfleet::SloTargets::default());
        out.push(("FLEET_HEALTH.json", health.to_string_pretty()));
        let tree = obsfleet::profile_tree(snap);
        out.push(("PROF_fleet.folded", obsfleet::folded_lines(&tree)));
        out.push(("PROF_fleet.json", obsfleet::profile_report(&tree).to_string_pretty()));
        let heap = obsfleet::alloc_tree(snap);
        out.push(("PROF_alloc.folded", obsfleet::alloc_folded_lines(&heap)));
        out.push(("PROF_alloc.json", obsfleet::alloc_report(snap, &heap).to_string_pretty()));
    }
    out
}

fn assert_same_artifacts(straight: &FleetResult, resumed: &FleetResult, label: &str) {
    let (a, b) = (artifacts(straight), artifacts(resumed));
    assert_eq!(a.len(), b.len(), "{label}: artifact sets differ");
    for ((name, want), (_, got)) in a.iter().zip(&b) {
        assert!(want == got, "{label}: {name} diverged after resume");
    }
}

fn ckpt_path(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("uniloc-crash-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp checkpoint dir");
    dir.join("FLEET.ckpt.json").to_string_lossy().into_owned()
}

/// Resumes from the checkpoint at `path`, with `jobs` workers (resume may
/// change execution-only knobs; artifact-shaping ones come from the
/// checkpoint), optionally crashing again after `crash_after` rounds.
fn resume(
    models: &Arc<ErrorModelSet>,
    base: &PipelineConfig,
    seed: u64,
    jobs: usize,
    panic_lane: Option<u64>,
    path: &str,
    crash_after: Option<u64>,
) -> FleetOutcome {
    let ckpt = load_fleet_checkpoint(path).expect("checkpoint loads");
    let cfg = fleet_config(seed, jobs, panic_lane);
    run_fleet_durable(
        models,
        base,
        &cfg,
        FleetRunOptions {
            checkpoint_every: 2,
            checkpoint_path: Some(path.to_owned()),
            resume_from: Some(ckpt),
            crash_after_rounds: crash_after,
            ..FleetRunOptions::default()
        },
    )
    .expect("resumed fleet runs")
}

/// Tentpole (c): kill the fleet at evenly swept cut points — both on and
/// between checkpoint rounds — and resume each from its last durable
/// checkpoint, under a *different* worker count. Every artifact must come
/// back byte-identical to the uninterrupted run, and the resumed fleet
/// must hold the same resilience contract (zero violations).
#[test]
fn swept_kill_points_resume_byte_identically() {
    let models = models(29);
    let base = PipelineConfig::default();
    let straight = run_fleet(&models, &base, &fleet_config(29, 2, None)).expect("straight run");
    assert!(straight.violations.is_empty(), "straight run violated: {:?}", straight.violations);
    let total_rounds = straight.stats.rounds;
    assert!(total_rounds >= 4, "fleet too short to sweep: {total_rounds} rounds");

    for point in CrashPoint::sweep(total_rounds - 1, 3) {
        let path = ckpt_path(&point.name);
        let outcome = run_fleet_durable(
            &models,
            &base,
            &fleet_config(29, 2, None),
            FleetRunOptions {
                checkpoint_every: 2,
                checkpoint_path: Some(path.clone()),
                crash_after_rounds: Some(point.after_rounds),
                ..FleetRunOptions::default()
            },
        )
        .expect("crashing fleet starts");
        match outcome {
            FleetOutcome::Crashed { rounds } => assert_eq!(rounds, point.after_rounds),
            FleetOutcome::Completed(_) => {
                panic!("{}: fleet finished before the scheduled crash", point.name)
            }
        }
        // Resume under a different worker count: jobs is execution-only
        // and must not shape artifacts.
        let resumed = match resume(&models, &base, 29, 3, None, &path, None) {
            FleetOutcome::Completed(result) => *result,
            FleetOutcome::Crashed { .. } => unreachable!("no second crash scheduled"),
        };
        assert!(
            resumed.violations.is_empty(),
            "{}: resumed run violated: {:?}",
            point.name,
            resumed.violations
        );
        assert_same_artifacts(&straight, &resumed, &point.name);
    }
}

/// Repeated failure: crash, resume, crash *again*, resume again. The
/// second incarnation checkpoints over the same path; the final artifacts
/// must still match an uninterrupted run byte for byte.
#[test]
fn chained_double_crash_still_resumes_byte_identically() {
    let models = models(31);
    let base = PipelineConfig::default();
    let straight = run_fleet(&models, &base, &fleet_config(31, 2, None)).expect("straight run");
    let path = ckpt_path("chained");

    let first = run_fleet_durable(
        &models,
        &base,
        &fleet_config(31, 2, None),
        FleetRunOptions {
            checkpoint_every: 2,
            checkpoint_path: Some(path.clone()),
            crash_after_rounds: Some(3),
            ..FleetRunOptions::default()
        },
    )
    .expect("first incarnation starts");
    assert!(matches!(first, FleetOutcome::Crashed { rounds: 3 }));

    // Second incarnation resumes, survives two more rounds (cutting a
    // fresh checkpoint at its own round 2), then dies too.
    match resume(&models, &base, 31, 1, None, &path, Some(2)) {
        FleetOutcome::Crashed { rounds } => assert_eq!(rounds, 2),
        FleetOutcome::Completed(_) => panic!("second incarnation outlived its crash"),
    }

    let finished = match resume(&models, &base, 31, 4, None, &path, None) {
        FleetOutcome::Completed(result) => *result,
        FleetOutcome::Crashed { .. } => unreachable!("no third crash scheduled"),
    };
    assert!(finished.violations.is_empty(), "violations: {:?}", finished.violations);
    assert_same_artifacts(&straight, &finished, "chained");
}

/// Tentpole (a) acceptance: a single panicking session is retried, then
/// poisoned — and poisons *only itself*. Every other lane's report row is
/// byte-identical to a fleet that never had the panicking lane armed, the
/// fleet completes, and the supervisor's counters land in the snapshot.
#[test]
fn panicking_session_poisons_only_itself() {
    let models = models(37);
    let base = PipelineConfig::default();
    let clean = run_fleet(&models, &base, &fleet_config(37, 2, None)).expect("clean run");
    let poisoned_lane = 7u64;
    let poisoned =
        run_fleet(&models, &base, &fleet_config(37, 2, Some(poisoned_lane))).expect("poison run");

    assert_eq!(poisoned.summaries.len(), clean.summaries.len(), "fleet must complete");
    let victims: Vec<_> =
        poisoned.summaries.iter().filter(|s| s.poisoned.is_some()).collect();
    assert_eq!(victims.len(), 1, "exactly one session must be poisoned");
    assert_eq!(victims[0].spec.lane, poisoned_lane);
    // The victim stops at the panic epoch: only pre-panic epochs retire.
    assert_eq!(victims[0].epochs as u64, fleet_config(37, 2, None).panic_epoch);

    for (p, c) in poisoned.summaries.iter().zip(&clean.summaries) {
        assert_eq!(p.spec.lane, c.spec.lane);
        if p.spec.lane != poisoned_lane {
            assert_eq!(p, c, "lane {} caught the neighbor's poison", p.spec.lane);
        }
    }

    let snap = poisoned.snapshot.as_ref().expect("full-obs fleet aggregates");
    assert_eq!(snap.counter("fleet.poisoned"), 1, "one poisoning must be counted");
    assert_eq!(
        snap.counter("parallel.retries"),
        2,
        "three strikes = two retries before poisoning"
    );
    let clean_snap = clean.snapshot.as_ref().expect("clean snapshot");
    assert_eq!(clean_snap.counter("fleet.poisoned"), 0);
    assert_eq!(clean_snap.counter("parallel.retries"), 0);
}
