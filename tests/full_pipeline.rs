//! End-to-end integration: train error models in the training venues, then
//! localize in places the models never saw — the paper's headline workflow.

use uniloc::core::error_model::{train, ErrorModelSet};
use uniloc::core::pipeline::{self, PipelineConfig};
use uniloc::env::{campus, venues};
use uniloc::iodetect::IoState;
use uniloc::schemes::SchemeId;

fn models() -> ErrorModelSet {
    let cfg = PipelineConfig::default();
    let mut samples = pipeline::collect_training(&venues::training_office(1), &cfg, 10);
    samples.extend(pipeline::collect_training(&venues::training_open_space(2), &cfg, 11));
    train(&samples).expect("training venues produce enough samples")
}

#[test]
fn training_produces_models_for_all_five_schemes() {
    let set = models();
    // Indoor models for everything that works indoors.
    for id in [SchemeId::Wifi, SchemeId::Cellular, SchemeId::Motion, SchemeId::Fusion] {
        assert!(set.model(id, IoState::Indoor).is_some(), "{id} indoor model missing");
        assert!(set.model(id, IoState::Outdoor).is_some(), "{id} outdoor model missing");
    }
    // GPS trains outdoors only, as a constant model.
    assert!(set.model(SchemeId::Gps, IoState::Outdoor).is_some());
    assert!(set.model(SchemeId::Gps, IoState::Indoor).is_none());
    let gps = set.model(SchemeId::Gps, IoState::Outdoor).unwrap();
    assert!(gps.coefficients.is_empty());
    // The paper measures GPS error as N(13.5, 9.4); our trained constant
    // should land in that neighborhood.
    assert!((10.0..20.0).contains(&gps.intercept), "GPS intercept {}", gps.intercept);
}

#[test]
fn uniloc_beats_most_schemes_on_the_daily_path() {
    let set = models();
    let cfg = PipelineConfig::default();
    let scenario = campus::daily_path(3);
    let records = pipeline::run_walk(&scenario, &set, &cfg, 12);
    assert!(records.len() > 300, "expected a few hundred epochs");

    let uniloc2 = pipeline::mean_defined(records.iter().map(|r| r.uniloc2_error))
        .expect("UniLoc2 always delivers");
    let uniloc1 = pipeline::mean_defined(records.iter().map(|r| r.uniloc1_error))
        .expect("UniLoc1 always delivers");
    // UniLoc beats GPS, WiFi, cellular and motion outright (the paper's
    // scheme-diversity gain); the fusion baseline may stay close.
    for id in [SchemeId::Gps, SchemeId::Wifi, SchemeId::Cellular, SchemeId::Motion] {
        let scheme = pipeline::scheme_mean_error(&records, id).unwrap_or(f64::INFINITY);
        assert!(
            uniloc2 < scheme,
            "UniLoc2 ({uniloc2:.2}) must beat {id} ({scheme:.2})"
        );
    }
    let fusion = pipeline::scheme_mean_error(&records, SchemeId::Fusion).unwrap();
    assert!(uniloc2 < fusion * 1.6, "UniLoc2 ({uniloc2:.2}) vs fusion ({fusion:.2})");
    assert!(uniloc1 < fusion * 1.8, "UniLoc1 ({uniloc1:.2}) vs fusion ({fusion:.2})");
    // Sanity: absolute accuracy in the paper's ballpark (2.6 m +/- margin).
    assert!(uniloc2 < 6.0, "UniLoc2 absolute error {uniloc2:.2}");
}

#[test]
fn oracle_lower_bounds_every_selection() {
    let set = models();
    let cfg = PipelineConfig::default();
    let records = pipeline::run_walk(&campus::daily_path(4), &set, &cfg, 13);
    for r in &records {
        if let (Some(o), Some(u1)) = (r.oracle_error, r.uniloc1_error) {
            assert!(o <= u1 + 1e-9);
        }
        // Oracle also lower-bounds every individual scheme.
        for (_, e) in &r.scheme_errors {
            if let (Some(o), Some(e)) = (r.oracle_error, e) {
                assert!(o <= e + 1e-9);
            }
        }
    }
}

#[test]
fn models_transfer_to_unseen_venues() {
    // The paper's scalability claim: models trained once work in new
    // places. Run the mall and check UniLoc still beats the weak schemes.
    let set = models();
    let cfg = PipelineConfig::default();
    let mall = venues::shopping_mall(40, 1).remove(0);
    let records = pipeline::run_walk(&mall, &set, &cfg, 500);
    let uniloc2 = pipeline::mean_defined(records.iter().map(|r| r.uniloc2_error)).unwrap();
    let cellular = pipeline::scheme_mean_error(&records, SchemeId::Cellular).unwrap();
    assert!(uniloc2 < cellular, "UniLoc2 {uniloc2:.2} vs cellular {cellular:.2} in the mall");
    assert!(uniloc2 < 8.0, "mall UniLoc2 error {uniloc2:.2}");
}

#[test]
fn weights_are_simplex_and_availability_consistent() {
    let set = models();
    let cfg = PipelineConfig::default();
    let records = pipeline::run_walk(&campus::daily_path(5), &set, &cfg, 14);
    for r in &records {
        let total: f64 = r.weights.iter().map(|(_, w)| w).sum();
        assert!(total <= 1.0 + 1e-9, "weights must not exceed 1, got {total}");
        for (id, w) in &r.weights {
            assert!(*w >= 0.0);
            // A scheme with weight must have produced an estimate.
            if *w > 0.0 {
                let has_estimate = r
                    .estimates
                    .iter()
                    .any(|(s, e)| s == id && e.is_some());
                assert!(has_estimate, "{id} weighted without an estimate");
            }
        }
    }
}

#[test]
fn gps_scheme_available_outdoors_but_duty_cycled() {
    let set = models();
    let cfg = PipelineConfig::default();
    let records = pipeline::run_walk(&campus::daily_path(6), &set, &cfg, 15);
    // The standalone GPS scheme delivers outdoors...
    let outdoor_gps = records
        .iter()
        .filter(|r| !r.indoor)
        .filter(|r| {
            r.scheme_errors
                .iter()
                .any(|(s, e)| *s == SchemeId::Gps && e.is_some())
        })
        .count();
    let outdoor_total = records.iter().filter(|r| !r.indoor).count();
    assert!(
        outdoor_gps as f64 > 0.5 * outdoor_total as f64,
        "GPS scheme outdoors: {outdoor_gps}/{outdoor_total}"
    );
    // ...while the energy policy keeps the receiver mostly off (our PDR
    // substrate never predicts worse than the GPS constant on this path).
    let duty = records.iter().filter(|r| r.gps_enabled).count();
    assert!(
        (duty as f64) < 0.5 * records.len() as f64,
        "GPS duty unexpectedly high: {duty}/{}",
        records.len()
    );
}
