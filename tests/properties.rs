//! Cross-crate property-based tests (proptest) on UniLoc's core invariants.

use proptest::prelude::*;
use uniloc::core::confidence::{adaptive_tau, confidence};
use uniloc::core::error_model::{train, ErrorPrediction, TrainingSample};
use uniloc::geom::{Point, Polygon, Polyline};
use uniloc::iodetect::IoState;
use uniloc::schemes::SchemeId;
use uniloc::stats::{Ecdf, Normal, OlsBuilder};

proptest! {
    /// Eq. 2 confidence is a probability and monotone in tau.
    #[test]
    fn confidence_is_probability_and_monotone(
        mean in 0.1f64..50.0,
        sigma in 0.1f64..20.0,
        tau_lo in 0.0f64..30.0,
        delta in 0.0f64..30.0,
    ) {
        let p = ErrorPrediction { mean, sigma };
        let c_lo = confidence(p, tau_lo);
        let c_hi = confidence(p, tau_lo + delta);
        prop_assert!((0.0..=1.0).contains(&c_lo));
        prop_assert!((0.0..=1.0).contains(&c_hi));
        prop_assert!(c_hi >= c_lo - 1e-12, "confidence must grow with tau");
    }

    /// The adaptive threshold is always inside the predictions' range.
    #[test]
    fn tau_lies_within_prediction_range(
        means in proptest::collection::vec(0.1f64..50.0, 1..10),
    ) {
        let preds: Vec<ErrorPrediction> =
            means.iter().map(|&m| ErrorPrediction { mean: m, sigma: 1.0 }).collect();
        let tau = adaptive_tau(&preds).unwrap();
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(tau >= lo - 1e-9 && tau <= hi + 1e-9);
    }

    /// BMA weights from any confidence vector form a simplex, and the fused
    /// point stays inside the bounding box of the scheme estimates.
    #[test]
    fn bma_stays_in_the_hull(
        confs in proptest::collection::vec(0.0f64..1.0, 2..8),
        xs in proptest::collection::vec(-100.0f64..100.0, 8),
        ys in proptest::collection::vec(-100.0f64..100.0, 8),
    ) {
        let n = confs.len();
        let total: f64 = confs.iter().sum();
        prop_assume!(total > 1e-9);
        let weights: Vec<f64> = confs.iter().map(|c| c / total).collect();
        prop_assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let fused_x: f64 = weights.iter().zip(&xs).map(|(w, x)| w * x).sum();
        let fused_y: f64 = weights.iter().zip(&ys).map(|(w, y)| w * y).sum();
        let (min_x, max_x) = xs[..n].iter().fold((f64::INFINITY, f64::NEG_INFINITY),
            |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let (min_y, max_y) = ys[..n].iter().fold((f64::INFINITY, f64::NEG_INFINITY),
            |(lo, hi), &v| (lo.min(v), hi.max(v)));
        prop_assert!(fused_x >= min_x - 1e-9 && fused_x <= max_x + 1e-9);
        prop_assert!(fused_y >= min_y - 1e-9 && fused_y <= max_y + 1e-9);
    }

    /// OLS recovers planted coefficients from noiseless data, whatever they
    /// are.
    #[test]
    fn ols_recovers_planted_model(
        b1 in -5.0f64..5.0,
        b2 in -5.0f64..5.0,
    ) {
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 7) as f64 + 0.5, ((i * 3) % 11) as f64 * 0.7 + 0.1])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| b1 * r[0] + b2 * r[1]).collect();
        let fit = OlsBuilder::new().fit(&xs, &ys).unwrap();
        prop_assert!((fit.coefficients()[0] - b1).abs() < 1e-6);
        prop_assert!((fit.coefficients()[1] - b2).abs() < 1e-6);
    }

    /// Trained error models never predict a non-positive error.
    #[test]
    fn error_predictions_stay_positive(
        noise in proptest::collection::vec(-0.5f64..0.5, 30),
        query in proptest::collection::vec(0.0f64..40.0, 2),
    ) {
        let samples: Vec<TrainingSample> = noise
            .iter()
            .enumerate()
            .map(|(i, n)| TrainingSample {
                scheme: SchemeId::Motion,
                indoor: true,
                features: vec![(i % 9) as f64 + 0.5, (i % 4) as f64 + 1.0],
                error: ((i % 9) as f64 * 0.3 + n).max(0.0),
            })
            .collect();
        if let Ok(set) = train(&samples) {
            if let Some(p) = set.predict(SchemeId::Motion, IoState::Indoor, &query) {
                prop_assert!(p.mean > 0.0);
                prop_assert!(p.sigma > 0.0);
            }
        }
    }

    /// Normal CDF is monotone and symmetric (backs Eq. 2).
    #[test]
    fn normal_cdf_properties(mu in -10.0f64..10.0, sigma in 0.1f64..10.0, x in -30.0f64..30.0) {
        let n = Normal::new(mu, sigma).unwrap();
        let c = n.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(n.cdf(x + 1.0) >= c - 1e-12);
        // Symmetry around the mean.
        let d = x - mu;
        prop_assert!((n.cdf(mu + d) + n.cdf(mu - d) - 1.0).abs() < 1e-6);
    }

    /// Polyline stations round-trip: point_at(project(p)) is the nearest
    /// on-path point.
    #[test]
    fn polyline_projection_consistency(
        x in -50.0f64..150.0,
        y in -50.0f64..50.0,
    ) {
        let path = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(50.0, 30.0),
            Point::new(100.0, 30.0),
        ]).unwrap();
        let p = Point::new(x, y);
        let (on_path, station) = path.project(p);
        prop_assert!((0.0..=path.length() + 1e-9).contains(&station));
        let reconstructed = path.point_at(station);
        prop_assert!(reconstructed.distance(on_path) < 1e-6);
        // No station is closer than the projection (sampled check).
        for s in [0.0, 10.0, 40.0, 80.0, path.length()] {
            prop_assert!(path.point_at(s).distance(p) + 1e-9 >= on_path.distance(p));
        }
    }

    /// Polygon containment is translation-invariant.
    #[test]
    fn polygon_containment_translates(
        px in -5.0f64..15.0,
        py in -5.0f64..15.0,
        dx in -100.0f64..100.0,
        dy in -100.0f64..100.0,
    ) {
        let poly = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ]).unwrap();
        let p = Point::new(px, py);
        let moved = poly.translated(uniloc::geom::Vector2::new(dx, dy));
        prop_assert_eq!(poly.contains(p), moved.contains(Point::new(px + dx, py + dy)));
    }

    /// ECDF is a valid CDF: monotone, 0-at-left, 1-at-right.
    #[test]
    fn ecdf_is_a_cdf(sample in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let lo = sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let cdf = Ecdf::new(sample).unwrap();
        prop_assert_eq!(cdf.eval(lo - 1.0), 0.0);
        prop_assert_eq!(cdf.eval(hi), 1.0);
        let mut last = 0.0;
        for i in -10..=10 {
            let x = lo + (hi - lo) * (i as f64 + 10.0) / 20.0;
            let c = cdf.eval(x);
            prop_assert!(c >= last - 1e-12);
            last = c;
        }
    }
}
