//! Cross-crate property-based tests on UniLoc's core invariants, on the
//! in-repo [`uniloc::rng::check`] harness.

use uniloc::core::confidence::{adaptive_tau, confidence};
use uniloc::core::error_model::{train, ErrorPrediction, TrainingSample};
use uniloc::geom::{Point, Polygon, Polyline};
use uniloc::iodetect::IoState;
use uniloc::rng::check::Checker;
use uniloc::rng::{require, require_eq};
use uniloc::schemes::SchemeId;
use uniloc::stats::{Ecdf, Normal, OlsBuilder};

const REGRESSIONS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/properties.regressions");

fn checker(name: &str) -> Checker {
    Checker::new(name).cases(128).regressions(REGRESSIONS)
}

/// Eq. 2 confidence is a probability and monotone in tau.
#[test]
fn confidence_is_probability_and_monotone() {
    checker("confidence_is_probability_and_monotone").run(
        |rng, scale| {
            (
                rng.gen_range(0.1..0.1 + 49.9 * scale), // mean
                rng.gen_range(0.1..0.1 + 19.9 * scale), // sigma
                rng.gen_range(0.0..30.0 * scale.max(0.01)), // tau_lo
                rng.gen_range(0.0..30.0 * scale.max(0.01)), // delta
            )
        },
        |&(mean, sigma, tau_lo, delta)| {
            let p = ErrorPrediction { mean, sigma };
            let c_lo = confidence(p, tau_lo);
            let c_hi = confidence(p, tau_lo + delta);
            require!((0.0..=1.0).contains(&c_lo));
            require!((0.0..=1.0).contains(&c_hi));
            require!(c_hi >= c_lo - 1e-12, "confidence must grow with tau");
            Ok(())
        },
    );
}

/// The adaptive threshold is always inside the predictions' range.
#[test]
fn tau_lies_within_prediction_range() {
    checker("tau_lies_within_prediction_range").run(
        |rng, scale| {
            let n = rng.gen_range(1..10usize);
            (0..n)
                .map(|_| rng.gen_range(0.1..0.1 + 49.9 * scale))
                .collect::<Vec<f64>>()
        },
        |means| {
            let preds: Vec<ErrorPrediction> = means
                .iter()
                .map(|&m| ErrorPrediction { mean: m, sigma: 1.0 })
                .collect();
            let tau = adaptive_tau(&preds).unwrap();
            let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            require!(tau >= lo - 1e-9 && tau <= hi + 1e-9);
            Ok(())
        },
    );
}

/// BMA weights from any confidence vector form a simplex, and the fused
/// point stays inside the bounding box of the scheme estimates.
#[test]
fn bma_stays_in_the_hull() {
    checker("bma_stays_in_the_hull").run(
        |rng, scale| {
            let n = rng.gen_range(2..8usize);
            (
                (0..n).map(|_| rng.gen_range(0.0..1.0)).collect::<Vec<f64>>(),
                (0..8)
                    .map(|_| rng.gen_range(-100.0 * scale..100.0 * scale.max(0.01)))
                    .collect::<Vec<f64>>(),
                (0..8)
                    .map(|_| rng.gen_range(-100.0 * scale..100.0 * scale.max(0.01)))
                    .collect::<Vec<f64>>(),
            )
        },
        |(confs, xs, ys)| {
            let n = confs.len();
            let total: f64 = confs.iter().sum();
            if total <= 1e-9 {
                return Ok(()); // degenerate confidences: nothing to fuse
            }
            let weights: Vec<f64> = confs.iter().map(|c| c / total).collect();
            require!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let fused_x: f64 = weights.iter().zip(xs).map(|(w, x)| w * x).sum();
            let fused_y: f64 = weights.iter().zip(ys).map(|(w, y)| w * y).sum();
            let (min_x, max_x) = xs[..n]
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            let (min_y, max_y) = ys[..n]
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            require!(fused_x >= min_x - 1e-9 && fused_x <= max_x + 1e-9);
            require!(fused_y >= min_y - 1e-9 && fused_y <= max_y + 1e-9);
            Ok(())
        },
    );
}

/// OLS recovers planted coefficients from noiseless data, whatever they
/// are.
#[test]
fn ols_recovers_planted_model() {
    checker("ols_recovers_planted_model").run(
        |rng, scale| {
            (
                rng.gen_range(-5.0 * scale..5.0 * scale.max(0.01)),
                rng.gen_range(-5.0 * scale..5.0 * scale.max(0.01)),
            )
        },
        |&(b1, b2)| {
            let xs: Vec<Vec<f64>> = (0..40)
                .map(|i| vec![(i % 7) as f64 + 0.5, ((i * 3) % 11) as f64 * 0.7 + 0.1])
                .collect();
            let ys: Vec<f64> = xs.iter().map(|r| b1 * r[0] + b2 * r[1]).collect();
            let fit = OlsBuilder::new().fit(&xs, &ys).unwrap();
            require!((fit.coefficients()[0] - b1).abs() < 1e-6);
            require!((fit.coefficients()[1] - b2).abs() < 1e-6);
            Ok(())
        },
    );
}

/// Trained error models never predict a non-positive error.
#[test]
fn error_predictions_stay_positive() {
    checker("error_predictions_stay_positive").run(
        |rng, scale| {
            (
                (0..30)
                    .map(|_| rng.gen_range(-0.5 * scale..0.5 * scale.max(0.01)))
                    .collect::<Vec<f64>>(),
                (0..2).map(|_| rng.gen_range(0.0..40.0 * scale.max(0.01))).collect::<Vec<f64>>(),
            )
        },
        |(noise, query)| {
            let samples: Vec<TrainingSample> = noise
                .iter()
                .enumerate()
                .map(|(i, n)| TrainingSample {
                    scheme: SchemeId::Motion,
                    indoor: true,
                    features: vec![(i % 9) as f64 + 0.5, (i % 4) as f64 + 1.0],
                    error: ((i % 9) as f64 * 0.3 + n).max(0.0),
                })
                .collect();
            if let Ok(set) = train(&samples) {
                if let Some(p) = set.predict(SchemeId::Motion, IoState::Indoor, query) {
                    require!(p.mean > 0.0);
                    require!(p.sigma > 0.0);
                }
            }
            Ok(())
        },
    );
}

/// Normal CDF is monotone and symmetric (backs Eq. 2).
#[test]
fn normal_cdf_properties() {
    checker("normal_cdf_properties").run(
        |rng, scale| {
            (
                rng.gen_range(-10.0 * scale..10.0 * scale.max(0.01)),
                rng.gen_range(0.1..0.1 + 9.9 * scale),
                rng.gen_range(-30.0 * scale..30.0 * scale.max(0.01)),
            )
        },
        |&(mu, sigma, x)| {
            let n = Normal::new(mu, sigma).unwrap();
            let c = n.cdf(x);
            require!((0.0..=1.0).contains(&c));
            require!(n.cdf(x + 1.0) >= c - 1e-12);
            // Symmetry around the mean.
            let d = x - mu;
            require!((n.cdf(mu + d) + n.cdf(mu - d) - 1.0).abs() < 1e-6);
            Ok(())
        },
    );
}

/// Polyline stations round-trip: point_at(project(p)) is the nearest
/// on-path point.
#[test]
fn polyline_projection_consistency() {
    checker("polyline_projection_consistency").run(
        |rng, scale| {
            (
                50.0 + (rng.gen_range(-50.0..150.0) - 50.0) * scale,
                rng.gen_range(-50.0 * scale..50.0 * scale.max(0.01)),
            )
        },
        |&(x, y)| {
            let path = Polyline::new(vec![
                Point::new(0.0, 0.0),
                Point::new(50.0, 0.0),
                Point::new(50.0, 30.0),
                Point::new(100.0, 30.0),
            ])
            .unwrap();
            let p = Point::new(x, y);
            let (on_path, station) = path.project(p);
            require!((0.0..=path.length() + 1e-9).contains(&station));
            let reconstructed = path.point_at(station);
            require!(reconstructed.distance(on_path) < 1e-6);
            // No station is closer than the projection (sampled check).
            for s in [0.0, 10.0, 40.0, 80.0, path.length()] {
                require!(path.point_at(s).distance(p) + 1e-9 >= on_path.distance(p));
            }
            Ok(())
        },
    );
}

/// Polygon containment is translation-invariant.
#[test]
fn polygon_containment_translates() {
    checker("polygon_containment_translates").run(
        |rng, scale| {
            (
                5.0 + (rng.gen_range(-5.0..15.0) - 5.0) * scale,
                5.0 + (rng.gen_range(-5.0..15.0) - 5.0) * scale,
                rng.gen_range(-100.0 * scale..100.0 * scale.max(0.01)),
                rng.gen_range(-100.0 * scale..100.0 * scale.max(0.01)),
            )
        },
        |&(px, py, dx, dy)| {
            let poly = Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.0, 10.0),
                Point::new(0.0, 10.0),
            ])
            .unwrap();
            let p = Point::new(px, py);
            let moved = poly.translated(uniloc::geom::Vector2::new(dx, dy));
            require_eq!(poly.contains(p), moved.contains(Point::new(px + dx, py + dy)));
            Ok(())
        },
    );
}

/// ECDF is a valid CDF: monotone, 0-at-left, 1-at-right.
#[test]
fn ecdf_is_a_cdf() {
    checker("ecdf_is_a_cdf").run(
        |rng, scale| {
            let n = rng.gen_range(1..50usize);
            (0..n)
                .map(|_| rng.gen_range(-100.0 * scale..100.0 * scale.max(0.01)))
                .collect::<Vec<f64>>()
        },
        |sample| {
            let lo = sample.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let cdf = Ecdf::new(sample.clone()).unwrap();
            require_eq!(cdf.eval(lo - 1.0), 0.0);
            require_eq!(cdf.eval(hi), 1.0);
            let mut last = 0.0;
            for i in -10..=10 {
                let x = lo + (hi - lo) * (i as f64 + 10.0) / 20.0;
                let c = cdf.eval(x);
                require!(c >= last - 1e-12);
                last = c;
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------------
// Fault-injection subsystem invariants (uniloc-faults + the engine guards).
// ---------------------------------------------------------------------------

/// A synthetic but plausible sensor frame for fault-machinery tests —
/// cheap enough to build hundreds of walks per property case.
fn synthetic_frames(rng: &mut uniloc::rng::Rng, n: usize) -> Vec<uniloc::sensors::SensorFrame> {
    use uniloc::env::ApId;
    use uniloc::sensors::{CellScan, GpsFix, SensorFrame, StepMeasurement, WifiScan};
    (0..n)
        .map(|i| {
            let t = i as f64 * 0.5;
            SensorFrame {
                t,
                true_position: Point::new(i as f64, rng.gen_range(-5.0..5.0)),
                wifi: Some(WifiScan {
                    readings: (0..4u32)
                        .map(|a| (ApId(a), rng.gen_range(-90.0..-40.0)))
                        .collect(),
                }),
                cell: Some(CellScan {
                    readings: (0..2u32)
                        .map(|c| (uniloc::env::TowerId(c), rng.gen_range(-110.0..-60.0)))
                        .collect(),
                }),
                gps: Some(GpsFix {
                    coordinate: uniloc::geom::GeoCoord {
                        lat: 1.3 + i as f64 * 1e-6,
                        lon: 103.7,
                    },
                    hdop: rng.gen_range(0.8..3.0),
                    satellites: 9,
                }),
                steps: vec![StepMeasurement {
                    t: t - 0.1,
                    duration: 0.45,
                    length_est: rng.gen_range(0.5..0.9),
                    heading_est: rng.gen_range(-3.1..3.1),
                }],
                landmark: None,
                light_lux: rng.gen_range(0.0..500.0),
                magnetic_variance: rng.gen_range(0.0..2.0),
            }
        })
        .collect()
}

/// Same `(seed, plan)` ⇒ byte-identical fault schedule and frame stream;
/// the `none` plan is an exact pass-through.
#[test]
fn fault_injection_is_deterministic() {
    use uniloc::faults::{FaultClause, FaultInjector, FaultKind, FaultPlan};
    checker("fault_injection_is_deterministic").cases(48).run(
        |rng, scale| {
            let kinds = [
                FaultKind::RadioBlackout { wifi: true, cell: true, gps: true },
                FaultKind::ApChurn { fraction: 0.5 + 0.4 * scale },
                FaultKind::CellNlosBias { bias_db: 5.0 + 30.0 * scale },
                FaultKind::GpsMultipathJump { magnitude_m: 50.0 + 900.0 * scale, prob: 0.7 },
                FaultKind::NanCorruption { prob: 0.5 },
                FaultKind::DuplicateFrame { prob: 0.4 },
                FaultKind::TimeRegression { offset_s: 2.0, prob: 0.3 },
                FaultKind::ClockJitter { sigma_s: 0.02 },
            ];
            let n_clauses = rng.gen_range(1..4usize);
            let clauses: Vec<FaultClause> = (0..n_clauses)
                .map(|_| {
                    let a = rng.gen_range(0.0..0.6);
                    let b = a + rng.gen_range(0.05..0.39);
                    let kind = kinds[rng.gen_range(0..kinds.len())];
                    FaultClause::over(a, b, kind)
                })
                .collect();
            (rng.gen_range(0..u64::MAX), clauses, rng.gen_range(10..60usize))
        },
        |(seed, clauses, n)| {
            let plan = FaultPlan::new("prop", clauses.clone());
            let mut frame_rng = uniloc::rng::Rng::seed_from_u64(*seed ^ 0xf00d);
            let frames = synthetic_frames(&mut frame_rng, *n);

            let mut a = FaultInjector::new(plan.clone(), *seed);
            let mut b = FaultInjector::new(plan, *seed);
            let fa = a.inject_walk(&frames);
            let fb = b.inject_walk(&frames);
            require_eq!(a.schedule_json(), b.schedule_json());
            // NaN != NaN, so poisoned frames are compared via Debug.
            require_eq!(format!("{fa:?}"), format!("{fb:?}"));

            let mut none = uniloc::faults::FaultInjector::new(FaultPlan::none(), *seed);
            let passthrough = none.inject_walk(&frames);
            require_eq!(passthrough.len(), frames.len());
            require!(passthrough == frames, "none plan must be an exact pass-through");
            Ok(())
        },
    );
}

/// Quarantine hysteresis never oscillates faster than the backoff floor:
/// between a trip and the matching re-admission at least
/// `backoff + READMIT_SANE_EPOCHS - 1` epochs elapse, and consecutive
/// sentences never shrink.
#[test]
fn quarantine_backoff_is_a_floor() {
    use uniloc::core::quarantine::{
        QuarantineMachine, QuarantineTransition, SchemeVerdict, BACKOFF_BASE_EPOCHS,
        BACKOFF_CAP_EPOCHS, READMIT_SANE_EPOCHS,
    };
    checker("quarantine_backoff_is_a_floor").run(
        |rng, _scale| {
            // A random verdict stream: mostly sane with strike bursts.
            let n = rng.gen_range(50..400usize);
            (0..n)
                .map(|_| rng.gen_bool(0.25))
                .collect::<Vec<bool>>()
        },
        |strikes| {
            let id = SchemeId::Wifi;
            let mut q = QuarantineMachine::new(&[id]);
            let mut tripped_at: Option<(usize, u32)> = None;
            let mut last_sentence = 0u32;
            for (epoch, &strike) in strikes.iter().enumerate() {
                q.begin_epoch();
                let verdict = if strike { SchemeVerdict::Strike } else { SchemeVerdict::Sane };
                match q.observe(id, verdict) {
                    Some(QuarantineTransition::Tripped(_, strike_count)) => {
                        let sentence = (BACKOFF_BASE_EPOCHS
                            .saturating_mul(2u32.saturating_pow(strike_count - 1)))
                        .min(BACKOFF_CAP_EPOCHS);
                        require!(
                            sentence >= last_sentence.min(BACKOFF_CAP_EPOCHS),
                            "sentences must not shrink"
                        );
                        last_sentence = sentence;
                        tripped_at = Some((epoch, sentence));
                    }
                    Some(QuarantineTransition::Readmitted(_)) => {
                        let (at, sentence) = tripped_at.take().expect("readmit without trip");
                        let elapsed = (epoch - at) as u32;
                        require!(
                            elapsed >= sentence + READMIT_SANE_EPOCHS - 1,
                            "re-admitted after {elapsed} epochs, floor is {}",
                            sentence + READMIT_SANE_EPOCHS - 1
                        );
                        last_sentence = 0;
                    }
                    None => {}
                }
            }
            Ok(())
        },
    );
}

/// The validation gate is idempotent: scrubbing a scrubbed frame removes
/// nothing, and a clean frame passes through untouched.
#[test]
fn scrub_frame_is_idempotent() {
    use uniloc::core::scrub_frame;
    use uniloc::faults::{FaultClause, FaultInjector, FaultKind, FaultPlan};
    checker("scrub_frame_is_idempotent").cases(64).run(
        |rng, _scale| (rng.gen_range(0..u64::MAX), rng.gen_range(5..40usize)),
        |(seed, n)| {
            let mut frame_rng = uniloc::rng::Rng::seed_from_u64(*seed);
            let frames = synthetic_frames(&mut frame_rng, *n);
            // Clean frames pass untouched.
            for f in &frames {
                require!(scrub_frame(f).is_none(), "clean frame must not scrub");
            }
            // NaN-poisoned frames scrub to clean in one pass.
            let plan = FaultPlan::new(
                "poison",
                vec![FaultClause::over(0.0, 1.0, FaultKind::NanCorruption { prob: 0.9 })],
            );
            let mut inj = FaultInjector::new(plan, *seed ^ 0xbeef);
            for f in inj.inject_walk(&frames) {
                if let Some((clean, report)) = scrub_frame(&f) {
                    require!(report.any(), "a scrub must report what it removed");
                    require!(
                        scrub_frame(&clean).is_none(),
                        "scrubbing a scrubbed frame must be a no-op"
                    );
                }
            }
            Ok(())
        },
    );
}

/// The parallel work queue is a lossless, duplication-free,
/// order-preserving map: for any item list and any worker count,
/// `run_ordered` returns exactly `f(i, item_i)` at position `i` and calls
/// `f` exactly once per item.
#[test]
fn run_ordered_is_a_lossless_ordered_map() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use uniloc::core::parallel::run_ordered;
    checker("run_ordered_is_a_lossless_ordered_map").cases(48).run(
        |rng, scale| {
            let n = rng.gen_range(0..1 + (200.0 * scale) as usize);
            let jobs = rng.gen_range(1..17usize);
            let items: Vec<u64> = (0..n).map(|_| rng.gen_range(0..u64::MAX / 4)).collect();
            (items, jobs)
        },
        |(items, jobs)| {
            let calls = AtomicU64::new(0);
            let got = run_ordered(items, *jobs, |i, x| {
                calls.fetch_add(1, Ordering::Relaxed);
                (i, x.wrapping_mul(3).wrapping_add(1))
            });
            require_eq!(calls.load(Ordering::Relaxed), items.len() as u64);
            require_eq!(got.len(), items.len());
            for (slot, (i, v)) in got.iter().enumerate() {
                require!(slot == *i, "result out of order");
                require_eq!(*v, items[slot].wrapping_mul(3).wrapping_add(1));
            }
            Ok(())
        },
    );
}

/// RNG stream-splitting never collides across sibling walk seeds: for any
/// root seed, the lane seeds are pairwise distinct, distinct from the
/// root, and distinct from neighboring roots' lanes.
#[test]
fn split_seed_lanes_never_collide() {
    use std::collections::HashSet;
    use uniloc::rng::split_seed;
    checker("split_seed_lanes_never_collide").cases(64).run(
        |rng, scale| {
            let root = rng.gen_range(0..u64::MAX);
            let lanes = rng.gen_range(2..2 + (510.0 * scale) as u64 + 1);
            (root, lanes)
        },
        |&(root, lanes)| {
            let mut seen = HashSet::new();
            seen.insert(root);
            for r in [root, root.wrapping_add(1), root.wrapping_add(100)] {
                for lane in 0..lanes {
                    require!(
                        seen.insert(split_seed(r, lane)),
                        "lane seed collided (root {r}, lane {lane})"
                    );
                }
            }
            // Sibling lanes must also decorrelate as streams, not just as
            // labels: first draws of adjacent lanes differ.
            let a = uniloc::rng::Rng::seed_from_u64(split_seed(root, 0)).next_u64();
            let b = uniloc::rng::Rng::seed_from_u64(split_seed(root, 1)).next_u64();
            require!(a != b, "adjacent lanes drew identical first values");
            Ok(())
        },
    );
}
