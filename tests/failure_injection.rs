//! Failure injection: UniLoc must keep delivering positions when its
//! inputs misbehave — "UniLoc can temporarily exclude one localization
//! scheme by simply setting its confidence as zero, if it is not available
//! in some regions, e.g., no signal."
//!
//! The matrix here drives the deterministic fault injector
//! (`uniloc-faults`) over whole walks and asserts the engine-side defense
//! contract on the per-epoch records:
//!
//! * no panic, one output per input frame;
//! * every fused error that exists is finite;
//! * the degradation ladder reflects the fault while it is active and is
//!   never `Lost` at the end of the walk;
//! * a scheme quarantined by the trip-wires is re-admitted once its
//!   channel heals — the quarantine set is empty again by the final epoch.

use std::sync::OnceLock;

use uniloc::core::error_model::{train, ErrorModelSet};
use uniloc::core::pipeline::{self, EpochRecord, PipelineConfig};
use uniloc::core::DegradationLadder;
use uniloc::env::{campus, venues, Scenario};
use uniloc::faults::{FaultClause, FaultInjector, FaultKind, FaultPlan};
use uniloc::schemes::SchemeId;

fn models() -> &'static ErrorModelSet {
    static MODELS: OnceLock<ErrorModelSet> = OnceLock::new();
    MODELS.get_or_init(|| {
        let cfg = PipelineConfig::default();
        let mut samples = pipeline::collect_training(&venues::training_office(41), &cfg, 42);
        samples.extend(pipeline::collect_training(&venues::training_open_space(43), &cfg, 44));
        train(&samples).expect("training venues produce enough samples")
    })
}

/// Runs one scenario twice over the *same* frame stream: clean, and with
/// `plan` injected. Returns `(clean, faulted)` per-epoch records.
fn run_pair(scenario: &Scenario, plan: FaultPlan, seed: u64) -> (Vec<EpochRecord>, Vec<EpochRecord>) {
    let cfg = PipelineConfig::default();
    let frames = pipeline::walk_frames(scenario, &cfg, seed);
    let clean = pipeline::run_walk_on_frames(scenario, models(), &cfg, seed, &frames);
    let mut injector =
        FaultInjector::new(plan, seed ^ 0xc4a05).with_geo_frame(*scenario.world.geo_frame());
    let faulted_frames = injector.inject_walk(&frames);
    let faulted = pipeline::run_walk_on_frames(scenario, models(), &cfg, seed, &faulted_frames);
    assert_eq!(
        faulted.len(),
        faulted_frames.len(),
        "one record per injected frame ({})",
        injector.plan().name
    );
    (clean, faulted)
}

/// The defense contract every faulted run must satisfy.
fn assert_survival(records: &[EpochRecord], label: &str) {
    for (i, r) in records.iter().enumerate() {
        for e in [r.uniloc1_error, r.uniloc2_error, r.uniloc2_mixture_error].into_iter().flatten() {
            assert!(e.is_finite(), "{label}: non-finite fused error at epoch {i}");
        }
    }
    let last = records.last().expect("non-empty walk");
    assert_ne!(last.ladder, DegradationLadder::Lost, "{label}: walk ends lost");
    assert!(
        last.quarantined.is_empty(),
        "{label}: quarantine never lifted: {:?}",
        last.quarantined
    );
}

#[test]
fn injected_fault_matrix_is_survivable() {
    // One library plan per fault family that the indoor office walk can
    // express (GPS plans need the campus path's outdoor tail — see below).
    let office = venues::training_office(41);
    for plan_name in ["radio_blackout", "wifi_ap_churn", "nan_storm", "frame_chaos"] {
        let plan = FaultPlan::by_name(plan_name).expect("library plan");
        let (clean, faulted) = run_pair(&office, plan, 45);
        assert_survival(&faulted, plan_name);
        // The clean twin must be indistinguishable from a plain run_walk.
        let direct = pipeline::run_walk(&office, models(), &PipelineConfig::default(), 45);
        assert_eq!(
            uniloc::stats::json::to_string(&clean),
            uniloc::stats::json::to_string(&direct),
            "{plan_name}: clean twin diverged from run_walk"
        );
    }
}

#[test]
fn radio_blackout_walks_down_the_ladder_and_back() {
    let office = venues::training_office(41);
    let plan = FaultPlan::by_name("radio_blackout").expect("library plan");
    let window_end = plan.last_window_end();
    let (_, faulted) = run_pair(&office, plan, 45);
    let n = faulted.len();
    let worst = faulted.iter().map(|r| r.ladder).max().expect("non-empty");
    assert!(
        worst >= DegradationLadder::Degraded(3),
        "killing three radios must show on the ladder, got {worst}"
    );
    // After the blackout lifts the ladder must come back off the floor.
    let tail_start = ((window_end * n as f64).ceil() as usize + 5).min(n - 1);
    let tail_best = faulted[tail_start..].iter().map(|r| r.ladder).min().expect("tail");
    assert!(
        tail_best < DegradationLadder::DeadReckoningOnly,
        "radios healed but the ladder stayed at {tail_best}"
    );
}

#[test]
fn imu_stuck_axis_keeps_fused_output_alive() {
    let office = venues::training_office(41);
    let plan = FaultPlan::by_name("imu_stuck_axis").expect("library plan");
    let (_, faulted) = run_pair(&office, plan, 45);
    assert_survival(&faulted, "imu_stuck_axis");
    let delivered = faulted.iter().filter(|r| r.uniloc2_error.is_some()).count();
    assert!(
        delivered * 10 >= faulted.len() * 9,
        "stuck IMU should not starve fusion: {delivered}/{} epochs delivered",
        faulted.len()
    );
}

#[test]
fn gps_multipath_trips_quarantine_and_readmits() {
    // The campus daily path reaches open sky on its last quarter — the
    // only stretch with GPS fixes, which is where the multipath plan
    // strikes. 900 m jumps must convict the GPS scheme, and the conviction
    // must lapse once the channel heals.
    let path = campus::daily_path(3);
    let plan = FaultPlan::by_name("gps_multipath").expect("library plan");
    let (clean, faulted) = run_pair(&path, plan, 45);
    assert_survival(&faulted, "gps_multipath");
    assert!(
        clean.iter().all(|r| r.quarantined.is_empty()),
        "clean walk must never trip quarantine"
    );
    let quarantined_epochs = faulted
        .iter()
        .filter(|r| r.quarantined.contains(&SchemeId::Gps))
        .count();
    assert!(quarantined_epochs > 0, "900 m GPS jumps must trip the teleport wire");
    // assert_survival already checked the final epoch is quarantine-free,
    // so the sentence + probation completed inside the recovery tail.
}

#[test]
fn time_regression_and_duplicates_do_not_double_integrate() {
    // A dedicated frame-replay plan: heavy duplication plus clock
    // regression. The PDR integrator must not consume replayed steps, so
    // the faulted walk's motion estimates must stay in the same error
    // regime as the clean twin rather than teleporting off the map.
    let office = venues::training_office(41);
    let plan = FaultPlan::new(
        "replay_storm",
        vec![
            FaultClause::over(0.2, 0.6, FaultKind::DuplicateFrame { prob: 0.5 }),
            FaultClause::over(0.2, 0.6, FaultKind::TimeRegression { offset_s: 5.0, prob: 0.3 }),
        ],
    );
    let (clean, faulted) = run_pair(&office, plan, 45);
    assert_survival(&faulted, "replay_storm");
    assert!(
        faulted.len() > clean.len(),
        "replayed frames must appear in the record stream"
    );
    let mean = |rs: &[EpochRecord]| {
        let v: Vec<f64> = rs.iter().filter_map(|r| r.uniloc2_error).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let (c, f) = (mean(&clean), mean(&faulted));
    assert!(
        f < c * 6.0 + 5.0,
        "replay storm wrecked accuracy: clean {c:.2} m -> faulted {f:.2} m"
    );
}

#[test]
fn empty_fingerprint_database_is_survivable() {
    // A venue with no audible APs at survey time: the WiFi scheme is
    // permanently unavailable, UniLoc runs on the remaining schemes.
    use uniloc::env::{GaitProfile, Walker};
    use uniloc::geom::Point;
    use uniloc::schemes::{LocalizationScheme, WifiFingerprintDb, WifiFingerprintScheme};
    use uniloc::sensors::{DeviceProfile, SensorHub, WifiScan};
    use uniloc_rng::Rng;

    let empty = WifiFingerprintDb::from_entries(Vec::<(Point, WifiScan)>::new());
    assert!(empty.is_empty());
    let mut scheme = WifiFingerprintScheme::new(empty);
    let venue = venues::training_office(71);
    let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(72));
    let walk = walker.walk(&venue.route);
    let mut hub = SensorHub::new(&venue.world, DeviceProfile::nexus_5x(), 73);
    for frame in hub.sample_walk(&walk, 0.5).iter().take(50) {
        assert!(scheme.update(frame).is_none(), "no DB means no estimates");
    }
}
