//! Failure injection: UniLoc must keep delivering positions when schemes
//! drop out — "UniLoc can temporarily exclude one localization scheme by
//! simply setting its confidence as zero, if it is not available in some
//! regions, e.g., no signal."

use uniloc_rng::Rng;
use uniloc::core::engine::UniLocEngine;
use uniloc::core::error_model::{train, ErrorModelSet};
use uniloc::core::pipeline::{self, PipelineConfig};
use uniloc::env::{venues, GaitProfile, Walker};
use uniloc::schemes::SchemeId;
use uniloc::sensors::{DeviceProfile, SensorHub};

fn models() -> ErrorModelSet {
    let cfg = PipelineConfig::default();
    let mut samples = pipeline::collect_training(&venues::training_office(41), &cfg, 42);
    samples.extend(pipeline::collect_training(&venues::training_open_space(43), &cfg, 44));
    train(&samples).expect("training venues produce enough samples")
}

#[test]
fn engine_survives_all_radios_dying_mid_walk() {
    let set = models();
    let cfg = PipelineConfig::default();
    let venue = venues::training_office(41);
    let ctx = pipeline::build_context(&venue, &cfg, 45);
    let schemes = pipeline::build_schemes(&venue, &ctx, &cfg, 46);
    let mut engine = UniLocEngine::new(schemes, set, ctx);

    let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(47));
    let walk = walker.walk(&venue.route);
    let mut hub = SensorHub::new(&venue.world, DeviceProfile::nexus_5x(), 48);
    let frames = hub.sample_walk(&walk, 0.5);
    let half = frames.len() / 2;

    for (i, frame) in frames.iter().enumerate() {
        let mut frame = frame.clone();
        if i >= half {
            // Radios die: only the IMU keeps running.
            frame.wifi = None;
            frame.cell = None;
            frame.gps = None;
        }
        let out = engine.update(&frame);
        assert!(
            out.bayesian_average.is_some(),
            "UniLoc must keep delivering at epoch {i} (radios {} )",
            if i >= half { "dead" } else { "alive" }
        );
        if i >= half {
            // Radio-dependent schemes must be excluded with zero weight.
            for r in &out.reports {
                if matches!(r.id, SchemeId::Wifi | SchemeId::Cellular | SchemeId::Gps) {
                    assert_eq!(r.weight, 0.0, "{} weighted while its radio is dead", r.id);
                }
            }
        }
    }
}

#[test]
fn dead_radio_degrades_but_does_not_break_accuracy() {
    let set = models();
    let venue = venues::training_office(51);

    let run = |disable_wifi: bool, seed: u64| -> f64 {
        let cfg = PipelineConfig::default();
        let ctx = pipeline::build_context(&venue, &cfg, seed);
        let schemes = pipeline::build_schemes(&venue, &ctx, &cfg, seed + 1);
        let mut engine = UniLocEngine::new(schemes, set.clone(), ctx);
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(seed + 2));
        let walk = walker.walk(&venue.route);
        let mut hub = SensorHub::new(&venue.world, DeviceProfile::nexus_5x(), seed + 3);
        if disable_wifi {
            hub.set_wifi_enabled(false);
        }
        let frames = hub.sample_walk(&walk, 0.5);
        let errors: Vec<f64> = frames
            .iter()
            .filter_map(|f| {
                engine
                    .update(f)
                    .bayesian_average
                    .map(|p| p.distance(f.true_position))
            })
            .collect();
        errors.iter().sum::<f64>() / errors.len() as f64
    };

    let with_wifi = run(false, 60);
    let without_wifi = run(true, 60);
    assert!(without_wifi < 15.0, "no-WiFi accuracy collapsed: {without_wifi:.2}");
    // Degradation is expected but bounded (motion/cellular carry on).
    assert!(
        without_wifi < with_wifi * 8.0 + 3.0,
        "degradation out of bounds: {with_wifi:.2} -> {without_wifi:.2}"
    );
}

#[test]
fn empty_fingerprint_database_is_survivable() {
    // A venue with no audible APs at survey time: the WiFi scheme is
    // permanently unavailable, UniLoc runs on the remaining schemes.
    use uniloc::schemes::{LocalizationScheme, WifiFingerprintDb, WifiFingerprintScheme};
    use uniloc::sensors::WifiScan;
    use uniloc::geom::Point;

    let empty = WifiFingerprintDb::from_entries(Vec::<(Point, WifiScan)>::new());
    assert!(empty.is_empty());
    let mut scheme = WifiFingerprintScheme::new(empty);
    let venue = venues::training_office(71);
    let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(72));
    let walk = walker.walk(&venue.route);
    let mut hub = SensorHub::new(&venue.world, DeviceProfile::nexus_5x(), 73);
    for frame in hub.sample_walk(&walk, 0.5).iter().take(50) {
        assert!(scheme.update(frame).is_none(), "no DB means no estimates");
    }
}
