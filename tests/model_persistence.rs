//! The paper's deployment story: "the offline error modeling only needs to
//! be performed once [...] The learned error models can be used in new
//! places without retraining." That implies trained models must serialize,
//! ship, and produce identical predictions after a round trip.

use uniloc::core::error_model::{train, ErrorModelSet};
use uniloc::core::pipeline::{self, PipelineConfig};
use uniloc::env::venues;
use uniloc::iodetect::IoState;
use uniloc::schemes::SchemeId;

fn models() -> ErrorModelSet {
    let cfg = PipelineConfig::default();
    let mut samples = pipeline::collect_training(&venues::training_office(21), &cfg, 22);
    samples.extend(pipeline::collect_training(&venues::training_open_space(23), &cfg, 24));
    train(&samples).expect("training venues produce enough samples")
}

#[test]
fn model_set_round_trips_through_json() {
    let set = models();
    let json = uniloc::stats::json::to_string_pretty(&set);
    assert!(json.len() > 200, "serialized models look too small");
    let back: ErrorModelSet = uniloc::stats::json::from_str(&json).expect("model sets deserialize");

    for id in SchemeId::BUILTIN {
        for io in [IoState::Indoor, IoState::Outdoor] {
            match (set.model(id, io), back.model(id, io)) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.coefficients.len(), b.coefficients.len());
                    for (x, y) in a.coefficients.iter().zip(&b.coefficients) {
                        assert!((x - y).abs() < 1e-12);
                    }
                    assert!((a.sigma - b.sigma).abs() < 1e-12);
                    assert!((a.intercept - b.intercept).abs() < 1e-12);
                }
                (None, None) => {}
                _ => panic!("model presence changed through serialization for {id} {io}"),
            }
        }
    }
}

#[test]
fn deserialized_models_predict_identically() {
    let set = models();
    let json = uniloc::stats::json::to_string(&set);
    let back: ErrorModelSet = uniloc::stats::json::from_str(&json).expect("model sets deserialize");
    let queries: [(SchemeId, IoState, Vec<f64>); 4] = [
        (SchemeId::Wifi, IoState::Indoor, vec![2.0, 4.0]),
        (SchemeId::Motion, IoState::Indoor, vec![25.0, 2.0]),
        (SchemeId::Fusion, IoState::Outdoor, vec![80.0, 15.0]),
        (SchemeId::Gps, IoState::Outdoor, vec![]),
    ];
    for (id, io, f) in queries {
        let a = set.predict(id, io, &f);
        let b = back.predict(id, io, &f);
        match (a, b) {
            (Some(a), Some(b)) => {
                assert!((a.mean - b.mean).abs() < 1e-9, "{id} {io} mean differs");
                assert!((a.sigma - b.sigma).abs() < 1e-9, "{id} {io} sigma differs");
            }
            (None, None) => {}
            _ => panic!("prediction availability changed for {id} {io}"),
        }
    }
}

#[test]
fn shipped_models_work_in_a_new_venue() {
    // Serialize in the "training lab", deserialize in the "field", run.
    let json = uniloc::stats::json::to_string(&models());
    let field_models: ErrorModelSet =
        uniloc::stats::json::from_str(&json).expect("model sets deserialize");
    let cfg = PipelineConfig::default();
    let venue = venues::office("field-office", 31, 40.0, 16.0);
    let records = pipeline::run_walk(&venue, &field_models, &cfg, 32);
    let uniloc2 = pipeline::mean_defined(records.iter().map(|r| r.uniloc2_error))
        .expect("UniLoc2 delivers in the field");
    assert!(uniloc2 < 8.0, "field accuracy {uniloc2:.2}");
}
