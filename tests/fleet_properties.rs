//! Property tests for the fleet engine's determinism primitives, on the
//! in-repo [`uniloc::rng::check`] harness: the scheduler's epoch-due
//! ordering is a total order, seed-stream splitting gives disjoint
//! per-session streams, and a session checkpoint round-trips
//! byte-identically through canonical JSON.

use std::cell::Cell;
use std::sync::Arc;

use uniloc::core::error_model::{train, ErrorModelSet};
use uniloc::core::fleet::{DueKey, SessionCheckpoint};
use uniloc::core::pipeline::{self, PipelineConfig};
use uniloc::core::quarantine::QuarantineStanding;
use uniloc::core::session::Session;
use uniloc::env::venues;
use uniloc::rng::check::Checker;
use uniloc::rng::{require, require_eq, split_seed, Rng};
use uniloc::stats::json::{from_str, ToJson};
use uniloc_bench::fleet::{
    restore_session, spec_frames, spec_pipeline_config, spec_scenario, SessionSpec,
};

const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fleet_properties.regressions");

fn checker(name: &str) -> Checker {
    Checker::new(name).cases(128).regressions(REGRESSIONS)
}

fn key(rng: &mut Rng, scale: f64) -> DueKey {
    // Ramp the ranges so early cases probe dense collisions (many equal
    // due times / nearby lanes) and later ones the full u64 span.
    let span = 2 + (scale * 1e12) as u64;
    DueKey { due_ns: rng.gen_range(0..span), lane: rng.gen_range(0..span) }
}

/// The scheduler's due ordering is a *total* order: antisymmetric,
/// transitive, total, and equal exactly when both fields are equal.
#[test]
fn due_key_ordering_is_total() {
    checker("due_key_ordering_is_total").run(
        |rng, scale| (key(rng, scale), key(rng, scale), key(rng, scale)),
        |&(a, b, c)| {
            require_eq!(a.cmp(&b), b.cmp(&a).reverse());
            require_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
            if a <= b && b <= c {
                require!(a <= c, "transitivity");
            }
            require!(a <= b || b <= a, "totality");
            require!(
                (a == b) == (a.due_ns == b.due_ns && a.lane == b.lane),
                "equality must be exactly field equality"
            );
            // Earlier due time always wins, regardless of lane; ties
            // break by lane — the scheduling invariant itself.
            if a.due_ns < b.due_ns {
                require!(a < b, "earlier due time must schedule first");
            }
            if a.due_ns == b.due_ns && a.lane < b.lane {
                require!(a < b, "equal due times must break ties by lane");
            }
            Ok(())
        },
    );
}

/// Sorting due keys is deterministic however the batch was collected:
/// any permutation sorts to the same sequence.
#[test]
fn due_key_sort_is_permutation_invariant() {
    checker("due_key_sort_is_permutation_invariant").run(
        |rng, scale| {
            let n = rng.gen_range(0..20usize);
            let keys: Vec<DueKey> = (0..n).map(|_| key(rng, scale)).collect();
            let mut perm: Vec<usize> = (0..n).collect();
            // Fisher-Yates on the harness stream.
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..i + 1));
            }
            (keys, perm)
        },
        |(keys, perm)| {
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            let mut permuted: Vec<DueKey> = perm.iter().map(|&i| keys[i]).collect();
            permuted.sort_unstable();
            require_eq!(sorted, permuted);
            require!(sorted.windows(2).all(|w| w[0] <= w[1]));
            Ok(())
        },
    );
}

/// [`split_seed`] gives every lane its own decorrelated stream: two
/// distinct lanes of the same fleet (or the same lane of two fleets)
/// never share a draw in their first 64 outputs, and the split is a pure
/// function of `(root, lane)`.
#[test]
fn split_seed_streams_are_disjoint() {
    let stream = |seed: u64| -> Vec<u64> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..64).map(|_| rng.next_u64()).collect()
    };
    checker("split_seed_streams_are_disjoint").run(
        |rng, _| (rng.next_u64(), rng.next_u64(), rng.next_u64()),
        |&(root, lane_a, lane_b)| {
            require_eq!(split_seed(root, lane_a), split_seed(root, lane_a));
            if lane_a == lane_b {
                return Ok(());
            }
            let a = stream(split_seed(root, lane_a));
            let b = stream(split_seed(root, lane_b));
            require!(a != b, "distinct lanes must get distinct streams");
            require!(
                a.iter().all(|v| !b.contains(v)),
                "sibling lane streams must not share draws"
            );
            let other = stream(split_seed(root.wrapping_add(1), lane_a));
            require!(
                a.iter().all(|v| !other.contains(v)),
                "the same lane of a different fleet must not share draws"
            );
            Ok(())
        },
    );
}

fn arbitrary_name(rng: &mut Rng, scale: f64) -> String {
    // Exercise JSON-hostile content: quotes, backslashes, slashes,
    // whitespace and non-ASCII, scaled up in length.
    const ALPHABET: [char; 16] = [
        'a', 'z', '0', '9', '-', '_', '"', '\\', '/', ' ', '.', ',', '{', '}', 'é', '中',
    ];
    let len = rng.gen_range(0..1 + (scale * 24.0) as usize);
    (0..len).map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())]).collect()
}

/// A [`SessionCheckpoint`] survives serialize → canonicalize → parse →
/// re-serialize byte-identically, for arbitrary (including JSON-hostile)
/// field content.
#[test]
fn checkpoint_canonical_json_round_trips() {
    checker("checkpoint_canonical_json_round_trips").run(
        |rng, scale| SessionCheckpoint {
            // Version travels as a JSON integer, so it spans 0..=i64::MAX.
            version: rng.next_u64() >> 1,
            // Full-range u64s on purpose: real seeds come from
            // `split_seed` and routinely exceed i64::MAX.
            lane: rng.next_u64(),
            name: arbitrary_name(rng, scale),
            scenario: arbitrary_name(rng, scale),
            persona: arbitrary_name(rng, scale),
            device: arbitrary_name(rng, scale),
            plan: arbitrary_name(rng, scale),
            seed: rng.next_u64(),
            cursor: rng.next_u64(),
        },
        |ckpt| {
            let canonical = ckpt.to_json().canonical().to_string();
            let parsed: SessionCheckpoint =
                from_str(&canonical).map_err(|e| format!("parse failed: {e}"))?;
            require_eq!(&parsed, ckpt);
            let again = parsed.to_json().canonical().to_string();
            require_eq!(again, canonical);
            Ok(())
        },
    );
}

fn trained_models(seed: u64) -> Arc<ErrorModelSet> {
    let cfg = PipelineConfig::default();
    let mut samples =
        pipeline::collect_training(&venues::training_office(seed), &cfg, seed + 10);
    samples.extend(pipeline::collect_training(
        &venues::training_open_space(seed + 1),
        &cfg,
        seed + 11,
    ));
    Arc::new(train(&samples).expect("training venues produce enough samples"))
}

/// A session checkpointed *mid-quarantine-sentence* resumes with the same
/// backoff state and probation countdown. The checkpoint stores only
/// `(spec, cursor)` — restore rebuilds the session and replays — so the
/// restored engine's full quarantine standings (sentence remainder,
/// probation countdown, strike counts) must equal the live session's at
/// the cut, for arbitrary cuts, not just clean scheme boundaries.
///
/// The specs walk the campus daily path under `gps_multipath` — the one
/// library plan whose 900 m jumps convict a scheme outright (the smoke
/// plans are caught upstream by the frame gate and never strike), with the
/// conviction landing in the walk's open-sky tail quarter. Cuts are
/// tail-weighted so the sweep crosses sentences and probations, and the
/// test fails if no case actually cut mid-sentence.
#[test]
fn quarantined_session_resumes_mid_sentence() {
    let models = trained_models(47);
    let base = PipelineConfig::default();
    let personas = ["m-30s", "f-20s", "m-50s"];
    let specs: Vec<SessionSpec> = (0..personas.len() as u64)
        .map(|lane| SessionSpec {
            lane,
            name: format!("q-resume-{lane}"),
            scenario: "path1".to_owned(),
            persona: personas[lane as usize].to_owned(),
            device: if lane % 2 == 0 { "nexus5x" } else { "lgg3" }.to_owned(),
            plan: "gps_multipath".to_owned(),
            seed: split_seed(47, lane),
        })
        .collect();
    let mid_sentence = Cell::new(0u32);
    checker("quarantined_session_resumes_mid_sentence").cases(10).run(
        |rng, _| (rng.gen_range(0..specs.len()), rng.gen_range(0..140usize)),
        |&(which, back)| {
            let spec = &specs[which];
            let scenario = spec_scenario(spec);
            let scfg = spec_pipeline_config(&base, spec);
            let frames = spec_frames(&scenario, &scfg, spec, 0);
            // Tail-weighted cut: the multipath window (and its sentence)
            // sits in the last quarter of the walk.
            let cut = frames.len().saturating_sub(back).max(1);
            // Live path: serve straight through to the cut.
            let mut live = Session::new(Arc::new(scenario), &models, &scfg, spec.seed);
            for frame in &frames[..cut] {
                live.step(frame);
            }
            let lived = live.engine().quarantine_standings();
            if lived.iter().any(|(_, s)| *s != QuarantineStanding::Active) {
                mid_sentence.set(mid_sentence.get() + 1);
            }
            // Resume path: rebuild from the checkpoint and replay.
            let restored =
                restore_session(&spec.checkpoint(cut), Arc::clone(&models), base.clone(), 0);
            require_eq!(restored.cursor(), cut);
            require_eq!(restored.session().epochs(), cut);
            require_eq!(restored.session().engine().quarantine_standings(), lived);
            Ok(())
        },
    );
    assert!(
        mid_sentence.get() > 0,
        "no case cut a session mid-sentence; widen the cut window"
    );
}
