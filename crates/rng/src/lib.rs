//! Deterministic, dependency-free random streams for the UniLoc workspace.
//!
//! UniLoc's whole evaluation rests on reproducible simulation: the same
//! seed must produce bit-identical walks, scans and noise streams on every
//! machine, forever. Pulling a generator from crates.io couples that
//! guarantee to an external project's release history (and breaks the
//! hermetic, offline build entirely), so the workspace owns its generator.
//!
//! The design is the textbook pairing used by reference implementations:
//!
//! * **SplitMix64** expands a 64-bit seed into generator state (and hashes
//!   salts when forking sub-streams). Its output is equidistributed and
//!   avalanche-complete, so correlated user seeds (1, 2, 3, ...) still
//!   produce decorrelated streams.
//! * **xoshiro256++** generates the stream: 256 bits of state, period
//!   `2^256 - 1`, passes BigCrush, and needs only shifts/rotates/xors.
//!
//! Streams are *forkable by salt* ([`Rng::fork`]): a parent stream derives
//! an independent child without disturbing its own sequence, which is how
//! per-subsystem noise (WiFi vs. GPS vs. gait) stays decoupled — consuming
//! one more GPS sample must never shift every subsequent WiFi scan.
//!
//! # Examples
//!
//! ```
//! use uniloc_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(7);
//! let x = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//!
//! // Same seed, same stream — bit-identical.
//! let mut a = Rng::seed_from_u64(42);
//! let mut b = Rng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//!
//! // Forked children are independent of the parent's future draws.
//! let mut parent = Rng::seed_from_u64(1);
//! let mut child = parent.fork(0x57494649); // "WIFI"
//! let first = child.next_u64();
//! let mut parent2 = Rng::seed_from_u64(1);
//! let mut child2 = parent2.fork(0x57494649);
//! assert_eq!(first, child2.next_u64());
//! ```

pub mod check;

use std::ops::{Range, RangeInclusive};

/// One step of the SplitMix64 sequence: advances `state` and returns the
/// next output. Also serves as a high-quality 64-bit mixing function.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes two words into one with SplitMix64 mixing — used to derive
/// salted child seeds and per-case seeds deterministically.
#[inline]
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.rotate_left(32) ^ 0xA076_1D64_78BD_642F;
    let first = splitmix64(&mut s);
    first ^ splitmix64(&mut s)
}

/// Domain-separation constant for [`split_seed`], so lane seeds never
/// collide with salts used by [`Rng::fork`] on the same root.
const STREAM_SPLIT_SALT: u64 = 0x5354_5245_414D_5F53; // "STREAM_S"

/// Derives the seed for lane `lane` of a family of sibling work streams
/// rooted at `root`.
///
/// This is the stream-splitting rule the parallel sweep engine uses: one
/// root seed fans out into one decorrelated seed per job, and the mapping
/// is a pure function of `(root, lane)` — independent of worker count,
/// scheduling order, or how many lanes exist. Two distinct `(root, lane)`
/// pairs collide only if the underlying 128→64-bit hash collides, which
/// the avalanche-complete SplitMix64 mixing makes a ~2⁻⁶⁴ event; the
/// property suite checks collision-freedom across sibling lanes and
/// adjacent roots.
#[inline]
pub fn split_seed(root: u64, lane: u64) -> u64 {
    mix64(mix64(root, STREAM_SPLIT_SALT), lane)
}

/// A seedable, forkable deterministic generator (xoshiro256++ stream,
/// SplitMix64 seeding).
///
/// This is the only random source in the workspace. The API mirrors the
/// subset of `rand` the codebase used (`seed_from_u64`, `gen_range`,
/// `gen_bool`), so call sites read the same as before the migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion —
    /// the seeding procedure the xoshiro authors recommend.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Alias of [`Rng::from_seed`] (the name the former `rand` call sites
    /// used).
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::from_seed(seed)
    }

    /// The raw 256-bit generator state (for diagnostics/persistence).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Restores a generator from raw state.
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state, which is the one fixed point of the
    /// xoshiro transition.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Rng { s }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range; supports `Range`/`RangeInclusive` of
    /// `f64` and `Range` of the integer types the workspace uses.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// Standard normal sample (Box–Muller; uses two uniforms per call, no
    /// cached spare, so the draw count per call is fixed — important for
    /// stream stability when call sites are added or removed).
    #[inline]
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.gen_range(f64::EPSILON..1.0);
        let u2 = self.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Derives an independent child stream keyed by `salt`, advancing this
    /// stream by exactly one draw. Equal salts at equal parent positions
    /// yield equal children; different salts yield decorrelated children.
    pub fn fork(&mut self, salt: u64) -> Rng {
        Rng::from_seed(mix64(self.next_u64(), salt))
    }
}

/// A range a [`Rng`] can sample uniformly. Implemented for the range shapes
/// the workspace actually uses.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let v = self.start + (self.end - self.start) * rng.next_f64();
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        // Scale by the next-after-1.0 reciprocal so hi is attainable.
        lo + (hi - lo) * (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded draw (Lemire) without the rare
                // rejection pass — the bias is < 2^-64 * span, far below
                // anything observable at simulation scale.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }
    )+};
}

impl_int_range!(u32, u64, usize);

impl SampleRange for Range<i64> {
    type Output = i64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> i64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let span = (self.end as u64).wrapping_sub(self.start as u64);
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        (self.start as u64).wrapping_add(hi) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // SplitMix64 reference implementation.
        let mut s = 1234567u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
        // Deterministic across runs.
        let mut s2 = 1234567u64;
        assert_eq!(splitmix64(&mut s2), a);
        assert_eq!(splitmix64(&mut s2), b);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::from_seed(99);
        let mut b = Rng::from_seed(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::from_seed(1);
        let mut b = Rng::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent seeds must decorrelate");
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = Rng::from_seed(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_f64_respects_bounds() {
        let mut rng = Rng::from_seed(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&v));
            let w = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn gen_range_integers_cover_span() {
        let mut rng = Rng::from_seed(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets must be hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = Rng::from_seed(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02, "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng::from_seed(7);
        let n = 20_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let v = rng.standard_normal();
            sum += v;
            sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut p1 = Rng::from_seed(11);
        let mut p2 = Rng::from_seed(11);
        let mut c1 = p1.fork(0xAA);
        let mut c2 = p2.fork(0xAA);
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // A different salt gives a different child.
        let mut p3 = Rng::from_seed(11);
        let mut c3 = p3.fork(0xBB);
        assert_ne!(c1.next_u64(), c3.next_u64());
        // Forking advanced the parent identically in both cases.
        assert_eq!(p1.next_u64(), p3.next_u64());
    }

    #[test]
    fn state_round_trip() {
        let mut a = Rng::from_seed(13);
        a.next_u64();
        let mut b = Rng::from_state(a.state());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        Rng::from_state([0; 4]);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::from_seed(1).gen_range(1.0..1.0);
    }

    #[test]
    fn mix64_sensitivity() {
        assert_ne!(mix64(0, 0), mix64(0, 1));
        assert_ne!(mix64(0, 1), mix64(1, 0));
        assert_eq!(mix64(5, 9), mix64(5, 9));
    }

    #[test]
    fn split_seed_is_pure_and_lane_sensitive() {
        assert_eq!(split_seed(7, 3), split_seed(7, 3));
        assert_ne!(split_seed(7, 3), split_seed(7, 4));
        assert_ne!(split_seed(7, 3), split_seed(8, 3));
    }

    #[test]
    fn split_seed_decorrelates_from_root_and_fork() {
        // The lane-0 seed must not echo the root (a sweep rooted at seed S
        // must not replay the sequential walk at seed S), and it must not
        // coincide with fork() salts of the same root.
        for root in [0u64, 1, 7, u64::MAX] {
            assert_ne!(split_seed(root, 0), root);
            assert_ne!(split_seed(root, 0), mix64(root, 0));
        }
    }

    #[test]
    fn split_seed_no_collisions_small_exhaustive() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for root in 0..64u64 {
            for lane in 0..64u64 {
                assert!(
                    seen.insert(split_seed(root, lane)),
                    "collision at root={root} lane={lane}"
                );
            }
        }
    }
}
