//! A small seeded property-test harness (the workspace's `proptest`
//! replacement).
//!
//! Each property runs against a deterministic sequence of generated cases:
//! case `i` of a checker named `n` with base seed `s` draws from
//! `Rng::from_seed(mix64(s, i))`, so a failure is pinned by `(name, seed,
//! scale)` alone and reproduces on any machine. Three mechanisms mirror
//! what the workspace used from proptest:
//!
//! * **Seeded case generation** — the generator closure receives a fresh
//!   [`Rng`] plus a `scale` in `(0, 1]` that ramps up across cases, so
//!   early cases are small (cheap, easy to debug) and later cases stress
//!   the full input domain.
//! * **Shrink-by-halving** — on failure the harness re-generates the case
//!   from the *same* seed with `scale` halved until the property passes,
//!   then reports the smallest still-failing case.
//! * **Failure-seed persistence** — shrunk failures append a
//!   `name seed scale` line to a regressions file (committed to source
//!   control, like `.proptest-regressions`); recorded cases replay before
//!   any fresh generation on every run.
//!
//! # Examples
//!
//! ```
//! use uniloc_rng::check::Checker;
//!
//! Checker::new("abs_is_non_negative").cases(50).run(
//!     |rng, scale| rng.gen_range(-100.0 * scale..100.0 * scale.max(0.01)),
//!     |&x| {
//!         if x.abs() >= 0.0 { Ok(()) } else { Err(format!("|{x}| < 0")) }
//!     },
//! );
//! ```

use crate::{mix64, Rng};
use std::fmt::Debug;
use std::io::Write as _;
use std::path::PathBuf;

/// Smallest scale the shrinker will try before giving up.
const MIN_SCALE: f64 = 1.0 / 1024.0;

/// Runs one property over a deterministic sequence of generated cases.
pub struct Checker {
    name: String,
    cases: u32,
    seed: u64,
    regressions: Option<PathBuf>,
}

/// One recorded failure: enough to regenerate the exact case.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Recorded {
    seed: u64,
    scale: f64,
}

impl Checker {
    /// Creates a checker. The base seed derives from the property name, so
    /// distinct properties explore distinct case sequences by default.
    pub fn new(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Checker { name: name.to_owned(), cases: 64, seed: h, regressions: None }
    }

    /// Overrides the number of fresh cases (default 64).
    pub fn cases(mut self, cases: u32) -> Self {
        assert!(cases > 0, "need at least one case");
        self.cases = cases;
        self
    }

    /// Overrides the base seed (default: a hash of the name).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the regressions file. Recorded failures for this property
    /// replay before fresh cases, and new shrunk failures are appended.
    pub fn regressions(mut self, path: impl Into<PathBuf>) -> Self {
        self.regressions = Some(path.into());
        self
    }

    /// Runs the property: `gen` builds a case from `(rng, scale)`, `prop`
    /// checks it.
    ///
    /// # Panics
    ///
    /// Panics with the shrunk counterexample on the first failing case.
    pub fn run<T, G, P>(self, gen: G, prop: P)
    where
        T: Debug,
        G: Fn(&mut Rng, f64) -> T,
        P: Fn(&T) -> Result<(), String>,
    {
        // 1. Replay recorded failures first.
        for rec in self.load_recorded() {
            let value = gen(&mut Rng::from_seed(rec.seed), rec.scale);
            if let Err(e) = prop(&value) {
                panic!(
                    "property `{}` still fails its recorded regression \
                     (seed 0x{:016x}, scale {}):\n  case: {:?}\n  error: {}",
                    self.name, rec.seed, rec.scale, value, e
                );
            }
        }
        // 2. Fresh cases with a ramping scale.
        for i in 0..self.cases {
            let case_seed = mix64(self.seed, u64::from(i));
            let scale = ramp(i, self.cases);
            let value = gen(&mut Rng::from_seed(case_seed), scale);
            if let Err(first_err) = prop(&value) {
                // Shrink by halving the scale from the same seed.
                let (scale, value, err) =
                    shrink(case_seed, scale, value, first_err, &gen, &prop);
                self.record(Recorded { seed: case_seed, scale });
                panic!(
                    "property `{}` failed (case {} of {}; seed 0x{:016x}, \
                     shrunk scale {}):\n  case: {:?}\n  error: {}\n  \
                     {}",
                    self.name,
                    i + 1,
                    self.cases,
                    case_seed,
                    scale,
                    value,
                    err,
                    match &self.regressions {
                        Some(p) => format!("recorded in {}", p.display()),
                        None => "no regressions file configured".to_owned(),
                    },
                );
            }
        }
    }

    /// Reads this property's recorded cases from the regressions file.
    fn load_recorded(&self) -> Vec<Recorded> {
        let Some(path) = &self.regressions else { return Vec::new() };
        let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
        let mut out = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(name), Some(seed), Some(scale)) =
                (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            if name != self.name {
                continue;
            }
            let seed = seed
                .strip_prefix("0x")
                .and_then(|h| u64::from_str_radix(h, 16).ok());
            let scale = scale.parse::<f64>().ok();
            if let (Some(seed), Some(scale)) = (seed, scale) {
                out.push(Recorded { seed, scale });
            }
        }
        out
    }

    /// Appends a freshly shrunk failure to the regressions file (if one is
    /// configured and the entry is not already present).
    fn record(&self, rec: Recorded) {
        let Some(path) = &self.regressions else { return };
        let line = format!("{} 0x{:016x} {}", self.name, rec.seed, rec.scale);
        if let Ok(existing) = std::fs::read_to_string(path) {
            if existing.lines().any(|l| l.trim() == line) {
                return;
            }
        }
        let header_needed = !path.exists();
        let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path)
        else {
            return; // read-only checkout: still fail the test, just unrecorded
        };
        if header_needed {
            let _ = writeln!(
                f,
                "# UniLoc property-test regressions: `name 0xseed scale` per line.\n\
                 # Recorded automatically on failure; replayed before fresh cases.\n\
                 # Check this file in so every checkout re-runs past failures.",
            );
        }
        let _ = writeln!(f, "{line}");
    }
}

/// Scale ramp: case 0 runs at a small scale, the last case at 1.0.
fn ramp(i: u32, cases: u32) -> f64 {
    if cases <= 1 {
        return 1.0;
    }
    let t = f64::from(i) / f64::from(cases - 1);
    (0.05 + 0.95 * t).min(1.0)
}

/// Halves `scale` while the property keeps failing; returns the smallest
/// failing `(scale, value, error)`.
fn shrink<T, G, P>(
    seed: u64,
    mut scale: f64,
    mut value: T,
    mut err: String,
    gen: &G,
    prop: &P,
) -> (f64, T, String)
where
    G: Fn(&mut Rng, f64) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    loop {
        let half = scale / 2.0;
        if half < MIN_SCALE {
            return (scale, value, err);
        }
        let candidate = gen(&mut Rng::from_seed(seed), half);
        match prop(&candidate) {
            Err(e) => {
                scale = half;
                value = candidate;
                err = e;
            }
            Ok(()) => return (scale, value, err),
        }
    }
}

/// Returns `Err` with a formatted message when a property requirement does
/// not hold — the harness's `prop_assert!` analogue.
#[macro_export]
macro_rules! require {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("requirement failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality form of [`require!`], printing both sides on failure.
#[macro_export]
macro_rules! require_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err(format!(
                "requirement failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let n = std::cell::Cell::new(0u32);
        Checker::new("count_cases").cases(40).run(
            |rng, _| rng.next_u64(),
            |_| {
                n.set(n.get() + 1);
                Ok(())
            },
        );
        assert_eq!(n.get(), 40);
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_panics_with_context() {
        Checker::new("always_fails").run(
            |rng, scale| rng.gen_range(0.0..scale.max(0.01)),
            |_| Err("nope".to_owned()),
        );
    }

    #[test]
    fn shrinking_reduces_scale() {
        // A property that fails only for values > 0.5: shrinking should
        // land near the smallest scale that still produces such a value.
        let result = std::panic::catch_unwind(|| {
            Checker::new("shrinks").cases(8).run(
                |rng, scale| rng.gen_range(0.0..1.0) * scale * 100.0,
                |&v| if v <= 0.5 { Ok(()) } else { Err(format!("{v} > 0.5")) },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("shrunk scale"), "{msg}");
    }

    #[test]
    fn regressions_file_round_trip() {
        let dir = std::env::temp_dir().join("uniloc-rng-check-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("regressions-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);

        // First run fails and records the case.
        let result = std::panic::catch_unwind(|| {
            Checker::new("roundtrip").regressions(&path).run(
                |rng, _| rng.next_u64() % 100,
                |&v| if v < 1_000 { Err(format!("{v}")) } else { Ok(()) },
            );
        });
        assert!(result.is_err());
        let recorded = std::fs::read_to_string(&path).unwrap();
        assert!(recorded.lines().any(|l| l.starts_with("roundtrip 0x")), "{recorded}");

        // Second run replays the recorded case first and fails on it.
        let result = std::panic::catch_unwind(|| {
            Checker::new("roundtrip").regressions(&path).run(
                |rng, _| rng.next_u64() % 100,
                |&v| if v < 1_000 { Err(format!("{v}")) } else { Ok(()) },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("recorded regression"), "{msg}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn require_macros_format() {
        fn f(x: i32) -> Result<(), String> {
            require!(x > 0, "x was {x}");
            require_eq!(x % 2, 0);
            Ok(())
        }
        assert!(f(2).is_ok());
        assert_eq!(f(-1).unwrap_err(), "x was -1");
        assert!(f(3).unwrap_err().contains("x % 2"));
    }

    #[test]
    fn ramp_is_monotone() {
        let cases = 64;
        let mut last = 0.0;
        for i in 0..cases {
            let s = ramp(i, cases);
            assert!(s >= last && s <= 1.0);
            last = s;
        }
        assert_eq!(ramp(cases - 1, cases), 1.0);
    }
}
