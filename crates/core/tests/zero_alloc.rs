//! Tier-1 regression: the steady-state epoch loop performs no heap
//! allocation.
//!
//! The alloc observatory attributes every allocation made inside an
//! `engine.update` span tree to its pipeline stage, and splits the count
//! into warmup (the first [`uniloc_obs::alloc::STEADY_WARMUP_EPOCHS`]
//! epochs, where scratch buffers legitimately grow to their high-water
//! marks) and steady state. After the indexed-matching + scratch-reuse
//! work, a clean walk's steady state must allocate *nothing*: every
//! per-epoch buffer — feature vectors, fingerprint matches, particle
//! snapshots, scheme reports, the exclusion set — is recycled.
//!
//! This is a regression tripwire, not a benchmark: any new `Vec`,
//! `format!` or `clone()` on the per-epoch path shows up here as a
//! nonzero steady count with its stage name attached.

use std::sync::Arc;

use uniloc_core::error_model::train;
use uniloc_core::pipeline::{self, PipelineConfig};
use uniloc_core::Session;
use uniloc_env::venues;
use uniloc_obs::session::{install, ObsSession};

/// Steady-state allocations tolerated per walk. Zero: the epoch loop is
/// allocation-free once warm.
const STEADY_ALLOC_BUDGET: u64 = 0;

fn counter(capture: &uniloc_obs::session::SessionCapture, name: &str) -> u64 {
    capture.metrics.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
}

#[test]
fn steady_state_epoch_loop_is_allocation_free() {
    let cfg = PipelineConfig::default();
    let mut samples = pipeline::collect_training(&venues::training_office(7), &cfg, 17);
    samples.extend(pipeline::collect_training(&venues::training_open_space(8), &cfg, 18));
    let models = train(&samples).expect("training venues produce enough samples");

    let scenario = venues::office("zero-alloc", 21, 40.0, 15.0);
    let frames = pipeline::walk_frames(&scenario, &cfg, 22);
    assert!(frames.len() > 20, "walk too short to exercise steady state");

    let mut obs = ObsSession::isolated();
    obs.alloc_tracking = true;
    let session = Arc::new(obs);
    let _guard = install(Arc::clone(&session));

    let mut walk = Session::new(Arc::new(scenario), &models, &cfg, 23);
    for f in &frames {
        walk.step(f);
    }

    let capture = session.capture();
    let steady_epochs = counter(&capture, "alloc.steady_epochs");
    let steady_allocs = counter(&capture, "alloc.steady.allocs");
    assert!(
        steady_epochs as usize >= frames.len() - 3,
        "steady meter missed epochs: {steady_epochs} of {}",
        frames.len()
    );
    if steady_allocs > STEADY_ALLOC_BUDGET {
        // Attribute the regression before failing: list every stage that
        // allocated at all (warmup included) so the offending code path
        // is named in the assertion message.
        let mut stages: Vec<(String, u64)> = capture
            .metrics
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("alloc.allocs."))
            .map(|(n, v)| (n.clone(), *v))
            .collect();
        stages.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
        panic!(
            "steady-state epoch loop allocated {steady_allocs} time(s) over \
             {steady_epochs} steady epochs (budget {STEADY_ALLOC_BUDGET}); \
             allocating stages (warmup included): {stages:?}"
        );
    }
}
