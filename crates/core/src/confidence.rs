//! Eq. 2: probabilistic confidence in a scheme's output.
//!
//! "When a scheme provides a location estimation at time `t`, its
//! localization error can be predicted as a variable with Gaussian
//! distribution `Y_t ~ N(mu_t, sigma_eps)`. [...] We estimate the
//! confidence of one localization scheme as the probability that its
//! localization error is less than a threshold `tau`. [...] `tau` is set
//! adaptively at different locations, as the average predicted error of all
//! available schemes."

use crate::error_model::ErrorPrediction;

/// The adaptive threshold `tau`: the mean of the available schemes'
/// predicted errors. Returns `None` when nothing is available.
pub fn adaptive_tau(predictions: &[ErrorPrediction]) -> Option<f64> {
    if predictions.is_empty() {
        return None;
    }
    Some(predictions.iter().map(|p| p.mean).sum::<f64>() / predictions.len() as f64)
}

/// Eq. 2: `c_t = P(Y_t <= tau)` with `Y_t ~ N(mean, sigma)`.
///
/// # Examples
///
/// ```
/// use uniloc_core::confidence::confidence;
/// use uniloc_core::error_model::ErrorPrediction;
///
/// let good = ErrorPrediction { mean: 2.0, sigma: 1.0 };
/// let bad = ErrorPrediction { mean: 10.0, sigma: 1.0 };
/// let tau = 6.0;
/// assert!(confidence(good, tau) > 0.99);
/// assert!(confidence(bad, tau) < 0.01);
/// ```
pub fn confidence(prediction: ErrorPrediction, tau: f64) -> f64 {
    // Eq. 2 is the prediction's probability integral transform evaluated
    // at the threshold — the same function the calibration monitor bins
    // against realized error, so confidence and calibration judge one
    // distribution.
    prediction.pit(tau)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_is_mean_of_predictions() {
        let preds = [
            ErrorPrediction { mean: 2.0, sigma: 1.0 },
            ErrorPrediction { mean: 4.0, sigma: 1.0 },
            ErrorPrediction { mean: 9.0, sigma: 2.0 },
        ];
        assert!((adaptive_tau(&preds).unwrap() - 5.0).abs() < 1e-12);
        assert!(adaptive_tau(&[]).is_none());
    }

    #[test]
    fn confidence_at_tau_is_half() {
        let p = ErrorPrediction { mean: 5.0, sigma: 2.0 };
        assert!((confidence(p, 5.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn confidence_monotone_in_predicted_error() {
        let tau = 5.0;
        let mut last = 1.0;
        for mean in [1.0, 3.0, 5.0, 7.0, 9.0] {
            let c = confidence(ErrorPrediction { mean, sigma: 2.0 }, tau);
            assert!(c < last, "confidence must fall as predicted error grows");
            last = c;
        }
    }

    #[test]
    fn uncertainty_tempers_confidence() {
        // With the same predicted mean below tau, a *more certain* model is
        // more confident.
        let tau = 6.0;
        let certain = confidence(ErrorPrediction { mean: 3.0, sigma: 0.5 }, tau);
        let vague = confidence(ErrorPrediction { mean: 3.0, sigma: 5.0 }, tau);
        assert!(certain > vague);
    }

    #[test]
    fn degenerate_sigma_handled() {
        let c = confidence(ErrorPrediction { mean: 1.0, sigma: 0.0 }, 2.0);
        assert!(c > 0.999);
    }
}
