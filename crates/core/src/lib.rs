//! UniLoc: a unified mobile localization framework exploiting scheme
//! diversity.
//!
//! This crate implements the paper's primary contribution (Du, Tong, Li —
//! ICDCS 2018): run any number of localization schemes in parallel, predict
//! each scheme's error **online** from real-time sensor-data features, turn
//! the prediction into a probabilistic confidence, and combine scheme
//! outputs with a locally-weighted Bayesian Model Averaging ensemble that
//! beats every individual scheme — and, usually, the oracle that always
//! picks the single best one.
//!
//! The pieces map to the paper like this:
//!
//! * [`features`] — Table I: the sensor-data features that drive each
//!   scheme's error (fingerprint spatial density, RSSI distance deviation,
//!   distance from the last landmark, corridor width, ...).
//! * [`error_model`] — Section III: the two-step error-modeling workflow
//!   (collect `(features, error)` samples with ground truth, fit a
//!   per-scheme multiple linear regression with `beta_0 = 0`, indoor and
//!   outdoor separately) producing Table II.
//! * [`confidence`] — Eq. 2: confidence as `P(Y_t <= tau)` under
//!   `Y_t ~ N(mu_t, sigma_eps)` with an adaptive threshold `tau`.
//! * [`engine`] — Section IV: **UniLoc1** (pick the most-confident scheme)
//!   and **UniLoc2** (locally-weighted BMA, Eqs. 3-5), scheme exclusion by
//!   zero confidence, and the GPS duty-cycling policy.
//! * [`pipeline`] — the experiment harness: surveys fingerprints, builds
//!   the five schemes, walks a scenario and records per-epoch results
//!   (training-data collection and evaluation share this machinery).
//! * [`energy`] — Section IV-C / Table IV: the power/energy accounting
//!   model.
//! * [`response`] — Table V: the response-time decomposition model.
//!
//! # Quickstart
//!
//! ```no_run
//! use uniloc_core::pipeline::{self, PipelineConfig};
//! use uniloc_env::{campus, venues};
//!
//! // 1. Train error models once, in two small training venues.
//! let cfg = PipelineConfig::default();
//! let mut samples = Vec::new();
//! samples.extend(pipeline::collect_training(&venues::training_office(1), &cfg, 10));
//! samples.extend(pipeline::collect_training(&venues::training_open_space(2), &cfg, 11));
//! let models = uniloc_core::error_model::train(&samples).unwrap();
//!
//! // 2. Use them in a new place, without retraining.
//! let scenario = campus::daily_path(3);
//! let records = pipeline::run_walk(&scenario, &models, &cfg, 12);
//! let mean_err: f64 = records.iter().filter_map(|r| r.uniloc2_error).sum::<f64>()
//!     / records.len() as f64;
//! println!("UniLoc2 mean error: {mean_err:.1} m");
//! ```

pub mod aloc;
pub mod confidence;
pub mod energy;
pub mod engine;
pub mod error_model;
pub mod features;
pub mod fleet;
pub mod guard;
pub mod parallel;
pub mod pipeline;
pub mod quarantine;
pub mod response;
pub mod session;

pub use aloc::ALocSelector;
pub use confidence::{adaptive_tau, confidence};
pub use energy::{EnergyReport, PowerProfile};
pub use engine::{FusionMode, SchemeReport, UniLocEngine, UniLocOutput};
pub use guard::{scrub_frame, FrameGate, GateVerdict, ScrubReport};
pub use quarantine::{DegradationLadder, QuarantineMachine, SchemeVerdict};
pub use error_model::{ErrorModelSet, ErrorPrediction, LinearErrorModel, TrainingSample};
pub use features::{CustomFeatureFn, FeatureExtractor, PredictorKind, SharedContext};
pub use fleet::{DueKey, FinishedSession, FleetRunStats, FleetScheduler, FleetSession, SessionCheckpoint};
pub use pipeline::{EpochRecord, PipelineConfig};
pub use response::{ResponseTimeModel, ResponseTimeReport};
pub use session::Session;
