//! Fleet-scale session scheduling: thousands of concurrent walkers in one
//! deterministic process.
//!
//! A [`FleetScheduler`] owns a set of admitted [`FleetSession`]s (one
//! walker each — see [`crate::session::Session`]) and advances fleet time
//! in fixed `tick` rounds. Each round it collects every session with a due
//! epoch, orders the batch by [`DueKey`] (due time, then lane — a total
//! order, property-tested in `tests/fleet_properties.rs`), and steps the
//! batch on the deterministic worker pool
//! ([`crate::parallel::run_ordered_mut`]). Retired sessions are handed to
//! the caller strictly in lane order, whatever order they actually
//! finished or were admitted in.
//!
//! # Determinism contract
//!
//! Fleet output — every session's records, capture, and the retirement
//! order — is a pure function of the admitted `(lane, builder)` set:
//!
//! * **Worker-count invariance.** Sessions are pure state machines over
//!   their own frame streams and each steps under its own isolated
//!   [`ObsSession`], so no output depends on which thread ran what.
//! * **Admission-order invariance.** [`FleetScheduler::run`] sorts the
//!   pending set by lane before admitting anything, so shuffling
//!   [`FleetScheduler::admit`] calls cannot change the schedule.
//! * **Isolation.** A session's quarantine ladder, calibration bins and
//!   flight ring live in its own engine/obs state; a chaos plan injected
//!   into one walker cannot perturb another (held by
//!   `tests/fleet_differential.rs`).
//!
//! Wall-clock measurements ([`FleetRunStats`]) are the one intentionally
//! nondeterministic output; they feed the throughput bench only and never
//! the artifacts.
//!
//! Unlike the batch path, fleet sessions emit no harness-level
//! `pipeline.run_walk` / `pipeline.build_context` spans (a span guard
//! cannot be held across scheduler rounds that migrate between threads);
//! everything else in a session's capture matches a solo batch walk. See
//! `DESIGN.md` §9.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use crate::parallel::{run_supervised_mut, JobFailure};
use crate::pipeline::EpochRecord;
use crate::session::Session;
use uniloc_obs::session::{self as obs_session, ObsSession, SessionCapture};
use uniloc_sensors::SensorFrame;

/// Current checkpoint format version, embedded in every
/// [`SessionCheckpoint`] (and the fleet-level checkpoint built on it).
/// Restore APIs reject any other version with
/// [`CheckpointError::VersionMismatch`] — a stale snapshot fails loudly
/// instead of replaying garbage.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Why a checkpoint could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The snapshot was written under a different format version.
    VersionMismatch {
        /// Version recorded in the document.
        found: u64,
        /// Version this build restores.
        expected: u64,
    },
    /// The document is not a well-formed checkpoint.
    Malformed(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint version mismatch: found {found}, this build restores {expected}"
            ),
            CheckpointError::Malformed(e) => write!(f, "malformed checkpoint: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Reads and validates the `version` field of a checkpoint document.
///
/// # Errors
///
/// [`CheckpointError::Malformed`] when the field is missing or not an
/// integer, [`CheckpointError::VersionMismatch`] when it is not
/// [`CHECKPOINT_VERSION`].
pub fn check_checkpoint_version(
    json: &uniloc_stats::json::Json,
) -> Result<(), CheckpointError> {
    let found = json
        .get("version")
        .and_then(uniloc_stats::json::Json::as_i64)
        .ok_or_else(|| {
            CheckpointError::Malformed("checkpoint needs an integer `version`".to_owned())
        })?;
    let found = u64::try_from(found)
        .map_err(|_| CheckpointError::Malformed(format!("negative version {found}")))?;
    if found != CHECKPOINT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found,
            expected: CHECKPOINT_VERSION,
        });
    }
    Ok(())
}

/// Simulation-time slack when deciding whether an epoch is due, in
/// nanoseconds: absorbs float rounding in frame timestamps without ever
/// pulling a genuinely later epoch forward a round.
const DUE_SLACK_NS: u64 = 1_000;

fn sim_ns(t: f64) -> u64 {
    (t.max(0.0) * 1e9).round() as u64
}

/// The scheduler's epoch ordering key: fleet-global due time in integer
/// simulation nanoseconds, tie-broken by the session's unique lane.
///
/// The derived lexicographic `Ord` is a *total* order — `due_ns` is an
/// integer (no NaN holes) and lanes are unique across a fleet — so a due
/// batch has exactly one canonical ordering however it was collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DueKey {
    /// Due time on the fleet clock, in simulation nanoseconds.
    pub due_ns: u64,
    /// The session's unique lane.
    pub lane: u64,
}

/// Everything needed to rebuild a session and resume it mid-walk, in
/// serializable form. The fleet is deterministic, so a checkpoint is the
/// session's *recipe* plus a cursor, not a state dump: restoring replays
/// frames `0..cursor` through a freshly built session, which lands on
/// byte-identical state (held by `tests/fleet_differential.rs`).
///
/// Round-trips byte-identically through [`Json::canonical`]
/// (property-tested): `uniloc_stats::json::Json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionCheckpoint {
    /// Checkpoint format version ([`CHECKPOINT_VERSION`]); restore
    /// rejects any other value.
    pub version: u64,
    /// Unique session lane within its fleet.
    pub lane: u64,
    /// Display name (load-generator naming, e.g. `s00042-office-m-30s`).
    pub name: String,
    /// Scenario vocabulary name (`office`, `open-space`, `path1`, ...).
    pub scenario: String,
    /// Walker persona name (`GaitProfile::personas`).
    pub persona: String,
    /// Device vocabulary name (`nexus5x` / `lgg3`).
    pub device: String,
    /// Fault plan name (`none` for a clean walker).
    pub plan: String,
    /// The session's root seed (survey = seed, schemes = seed + 2, walker
    /// = seed + 3, hub = seed + 4 — the stream discipline everywhere).
    pub seed: u64,
    /// Frames already served; restore replays exactly this many.
    pub cursor: u64,
}

// Hand-written (not `impl_json_struct!`): `seed` comes from
// `split_seed` and uses the full u64 range, which `Json::Int` (i64)
// cannot hold — the u64 fields travel as fixed-width hex strings.
impl uniloc_stats::json::ToJson for SessionCheckpoint {
    fn to_json(&self) -> uniloc_stats::json::Json {
        use uniloc_stats::json::Json;
        Json::Obj(vec![
            ("version".to_owned(), Json::Int(self.version as i64)),
            ("lane".to_owned(), Json::Str(format!("{:016x}", self.lane))),
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("scenario".to_owned(), Json::Str(self.scenario.clone())),
            ("persona".to_owned(), Json::Str(self.persona.clone())),
            ("device".to_owned(), Json::Str(self.device.clone())),
            ("plan".to_owned(), Json::Str(self.plan.clone())),
            ("seed".to_owned(), Json::Str(format!("{:016x}", self.seed))),
            ("cursor".to_owned(), Json::Str(format!("{:016x}", self.cursor))),
        ])
    }
}

impl uniloc_stats::json::FromJson for SessionCheckpoint {
    fn from_json(
        json: &uniloc_stats::json::Json,
    ) -> Result<Self, uniloc_stats::json::JsonError> {
        use uniloc_stats::json::{field, JsonError};
        let hex = |name: &str| -> Result<u64, JsonError> {
            let s: String = field(json, name)?;
            u64::from_str_radix(&s, 16)
                .map_err(|e| JsonError::new(format!("checkpoint {name} `{s}`: {e}")))
        };
        let version: i64 = field(json, "version")?;
        Ok(SessionCheckpoint {
            version: u64::try_from(version)
                .map_err(|_| JsonError::new(format!("negative checkpoint version {version}")))?,
            lane: hex("lane")?,
            name: field(json, "name")?,
            scenario: field(json, "scenario")?,
            persona: field(json, "persona")?,
            device: field(json, "device")?,
            plan: field(json, "plan")?,
            seed: hex("seed")?,
            cursor: hex("cursor")?,
        })
    }
}

impl SessionCheckpoint {
    /// Parses and *validates* a checkpoint document: the typed restore
    /// entry point. Unlike the raw [`FromJson`] parse (which preserves
    /// whatever version the document carries, for round-trip fidelity),
    /// this rejects foreign versions.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::VersionMismatch`] on a foreign format version,
    /// [`CheckpointError::Malformed`] on any other parse failure.
    pub fn restore(json: &uniloc_stats::json::Json) -> Result<Self, CheckpointError> {
        check_checkpoint_version(json)?;
        uniloc_stats::json::FromJson::from_json(json)
            .map_err(|e| CheckpointError::Malformed(e.to_string()))
    }
}

/// One walker under fleet scheduling: the serving session, its private
/// frame stream and cursor, the records served so far, and the isolated
/// observability session all its effects land in.
pub struct FleetSession {
    /// Unique lane within the fleet; the scheduler's canonical identity.
    pub lane: u64,
    /// Display name for reports.
    pub name: String,
    session: Session,
    frames: Vec<SensorFrame>,
    cursor: usize,
    records: Vec<EpochRecord>,
    obs: Arc<ObsSession>,
    /// Injected process-level fault: stepping this frame index panics
    /// (the crash-injection harness's panic-at-epoch fault).
    panic_at_epoch: Option<u64>,
}

impl FleetSession {
    /// Builds a fleet session. `make` produces the serving session and its
    /// (possibly fault-injected) frame stream; it runs with the walker's
    /// fresh isolated [`ObsSession`] installed, so anything the
    /// construction emits lands in the walker's own capture.
    pub fn build(
        lane: u64,
        name: impl Into<String>,
        make: impl FnOnce() -> (Session, Vec<SensorFrame>),
    ) -> FleetSession {
        FleetSession::build_with_obs(lane, name, Arc::new(ObsSession::isolated()), make)
    }

    /// [`build`](Self::build) with a caller-supplied observability session
    /// — how the obs-overhead bench swaps in
    /// [`ObsSession::stubbed`] walkers while everything else about the
    /// fleet stays identical.
    pub fn build_with_obs(
        lane: u64,
        name: impl Into<String>,
        obs: Arc<ObsSession>,
        make: impl FnOnce() -> (Session, Vec<SensorFrame>),
    ) -> FleetSession {
        let guard = obs_session::install(Arc::clone(&obs));
        let (session, frames) = make();
        drop(guard);
        FleetSession {
            lane,
            name: name.into(),
            session,
            frames,
            cursor: 0,
            records: Vec::new(),
            obs,
            panic_at_epoch: None,
        }
    }

    /// Arms the injected panic-at-epoch process fault: the session panics
    /// when it is about to *step* (not replay) frame `epoch`. The panic is
    /// caught at the pool boundary and handled by the supervision policy.
    pub fn set_panic_at_epoch(&mut self, epoch: Option<u64>) {
        self.panic_at_epoch = epoch;
    }

    /// Serves frames `0..cursor` *without recording them* — the restore
    /// half of [`SessionCheckpoint`]: a restored session replays up to the
    /// checkpoint cursor, then records only post-checkpoint epochs.
    pub fn replay_to(&mut self, cursor: usize) {
        let guard = obs_session::install(Arc::clone(&self.obs));
        let end = cursor.min(self.frames.len());
        while self.cursor < end {
            let _ = self.session.step(&self.frames[self.cursor]);
            self.cursor += 1;
        }
        drop(guard);
    }

    /// Serves frames `0..cursor` *with recording* — the fleet-resume
    /// restore: the replayed epochs re-enter `records` (and the walker's
    /// isolated capture) exactly as an uninterrupted run would have
    /// recorded them, so a resumed fleet's artifacts are byte-identical
    /// to never having stopped. The injected panic-at-epoch fault is
    /// deliberately *not* honored during replay: a checkpoint cursor can
    /// never lie past the panic frame (the session never advances past
    /// it), so replay stays strictly before the fault.
    pub fn replay_recorded(&mut self, cursor: usize) {
        let guard = obs_session::install(Arc::clone(&self.obs));
        let end = cursor.min(self.frames.len());
        while self.cursor < end {
            let record = self.session.step(&self.frames[self.cursor]);
            self.records.push(record);
            self.cursor += 1;
        }
        drop(guard);
    }

    /// Frames served so far.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// The underlying serving session, for introspection in tests.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Total frames in the walk.
    pub fn total_frames(&self) -> usize {
        self.frames.len()
    }

    /// Steps every frame due by `now_ns` on the fleet clock (the session
    /// started at `start_ns`), with the session's obs installed. Returns
    /// the wall-clock nanoseconds each epoch took, for the throughput
    /// bench only.
    fn step_due(&mut self, start_ns: u64, now_ns: u64) -> Vec<u64> {
        let guard = obs_session::install(Arc::clone(&self.obs));
        let mut epoch_ns = Vec::new();
        while self.cursor < self.frames.len()
            && start_ns + sim_ns(self.frames[self.cursor].t) <= now_ns + DUE_SLACK_NS
        {
            if self.panic_at_epoch == Some(self.cursor as u64) {
                panic!(
                    "uniloc-faults: injected panic at epoch {} (lane {})",
                    self.cursor, self.lane
                );
            }
            let t0 = Instant::now();
            let record = self.session.step(&self.frames[self.cursor]);
            epoch_ns.push(t0.elapsed().as_nanos() as u64);
            self.records.push(record);
            self.cursor += 1;
        }
        drop(guard);
        epoch_ns
    }

    fn finished(&self) -> bool {
        self.cursor >= self.frames.len()
    }

    fn retire(self) -> FinishedSession {
        FinishedSession {
            lane: self.lane,
            name: self.name,
            epochs: self.records.len(),
            frames_served: self.cursor,
            records: self.records,
            capture: self.obs.capture(),
            poisoned: None,
        }
    }

    /// Retires the session early as *poisoned*: it exhausted the
    /// supervision policy's strikes. The records and capture cover the
    /// epochs served before the fault. The supervision counters
    /// (`fleet.poisoned`, `parallel.retries`) are emitted into the
    /// walker's own capture here — once, at retirement, rather than
    /// per-retry — so a resumed run reproduces them exactly from the
    /// restored strike count.
    fn poison(self, failure: JobFailure, retries: u64) -> FinishedSession {
        {
            let _guard = obs_session::install(Arc::clone(&self.obs));
            let m = uniloc_obs::global_metrics();
            m.counter("fleet.poisoned").inc();
            m.counter("parallel.retries").add(retries);
        }
        FinishedSession {
            lane: self.lane,
            name: self.name,
            epochs: self.records.len(),
            frames_served: self.cursor,
            records: self.records,
            capture: self.obs.capture(),
            poisoned: Some(failure),
        }
    }
}

/// A retired session, handed to [`FleetScheduler::run`]'s callback in lane
/// order.
pub struct FinishedSession {
    pub lane: u64,
    pub name: String,
    /// Epochs *recorded* (equals the walk length unless the session was
    /// restored from a checkpoint, which replays silently).
    pub epochs: usize,
    /// Frames served in total (the checkpoint cursor at retirement —
    /// differs from `epochs` only after a silent [`FleetSession::replay_to`]).
    pub frames_served: usize,
    pub records: Vec<EpochRecord>,
    /// The walker's private observability capture (metrics, calibration
    /// cells, flight lines).
    pub capture: SessionCapture,
    /// `Some` when the session was retired early by the supervision
    /// policy after exhausting its strikes.
    pub poisoned: Option<JobFailure>,
}

/// Deterministic-plus-wall-clock accounting of one fleet run. `rounds`,
/// `epochs` and `sessions` are pure functions of the admitted set; the
/// `*_ns` fields are wall-clock and feed the throughput bench only.
#[derive(Debug, Clone, Default)]
pub struct FleetRunStats {
    /// Scheduler rounds executed (fleet time advanced per round).
    pub rounds: u64,
    /// Epochs served across all sessions.
    pub epochs: u64,
    /// Sessions admitted and retired.
    pub sessions: u64,
    /// Wall-clock duration of every served epoch, in scheduling order.
    pub epoch_ns: Vec<u64>,
    /// Wall-clock duration of every non-empty round.
    pub round_ns: Vec<u64>,
    /// Wall-clock duration of the whole run.
    pub run_ns: u64,
    /// Whether the run was cut short by [`RunControl::stop_after_rounds`]
    /// (the simulated-crash fault); unretired sessions were abandoned.
    pub aborted: bool,
}

/// How the scheduler treats a session whose step panicked (the panic is
/// caught at the pool boundary — [`run_supervised_mut`]).
///
/// Backoff is measured in scheduler *rounds*, not wall time, so retry
/// scheduling is deterministic. A session that exhausts `max_strikes` is
/// *poisoned*: retired early (lane-ordered like any retirement, so
/// artifacts stay deterministic) with [`FinishedSession::poisoned`] set
/// and the `fleet.poisoned` / `parallel.retries` counters emitted into
/// its own capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionPolicy {
    /// Panics tolerated before the session is poisoned.
    pub max_strikes: u32,
    /// Rounds to wait before the first retry.
    pub backoff_base_rounds: u64,
    /// Retry backoff cap, in rounds.
    pub backoff_cap_rounds: u64,
}

impl Default for SupervisionPolicy {
    fn default() -> Self {
        SupervisionPolicy { max_strikes: 3, backoff_base_rounds: 2, backoff_cap_rounds: 32 }
    }
}

impl SupervisionPolicy {
    /// Rounds to wait before the retry after the `strikes`-th failure:
    /// bounded exponential (`base * 2^(strikes-1)`, capped), at least 1.
    pub fn backoff_rounds(&self, strikes: u32) -> u64 {
        let mut rounds = self.backoff_base_rounds.max(1);
        for _ in 1..strikes {
            rounds = rounds.saturating_mul(2).min(self.backoff_cap_rounds.max(1));
            if rounds >= self.backoff_cap_rounds.max(1) {
                break;
            }
        }
        rounds.min(self.backoff_cap_rounds.max(1))
    }
}

/// Checkpoint/crash knobs for [`FleetScheduler::run_supervised`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RunControl {
    /// Emit [`FleetEvent::Checkpoint`] every N rounds (`0` = never).
    pub checkpoint_every: u64,
    /// Abort the run (simulated process crash, for the crash-injection
    /// harness) after this many rounds; skips the lost-session check.
    pub stop_after_rounds: Option<u64>,
}

/// One resident walker's progress + supervision state at a checkpoint
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidentState {
    pub lane: u64,
    /// Frames served so far (the [`SessionCheckpoint`] cursor; `0` for a
    /// still-pending builder).
    pub cursor: u64,
    /// Supervision strikes accrued so far.
    pub strikes: u32,
    /// Rounds left on the current retry backoff.
    pub backoff_rounds: u64,
}

/// What [`FleetScheduler::run_supervised`] reports to its callback.
pub enum FleetEvent<'a> {
    /// A retired session, strictly in lane order (boxed: a finished
    /// session carries its full record/capture payload and would dwarf
    /// the checkpoint variant inline).
    Finished(Box<FinishedSession>),
    /// A checkpoint boundary (every [`RunControl::checkpoint_every`]
    /// rounds): the resident walkers' states (lane order) plus the
    /// sessions that finished but have not yet flushed in lane order —
    /// a durable checkpoint must persist both.
    Checkpoint {
        /// Rounds completed when the checkpoint was taken.
        round: u64,
        /// Resident walkers, in lane order.
        resident: &'a [ResidentState],
        /// Finished-but-unflushed sessions, in lane order.
        unflushed: Vec<&'a FinishedSession>,
    },
}

/// A session recipe awaiting admission: the builder runs on a worker
/// thread the first round its lane is scheduled.
type SessionBuilder = Box<dyn FnOnce() -> FleetSession + Send>;

struct Pending {
    lane: u64,
    /// Supervision state carried over a checkpoint restore.
    strikes: u32,
    backoff_rounds: u64,
    build: SessionBuilder,
}

enum ActiveState {
    Pending(SessionBuilder),
    Live(Box<FleetSession>),
    /// Placeholder while the slot's state is being replaced.
    Vacated,
}

struct Active {
    lane: u64,
    /// Fleet-clock time this session was admitted (its local `t = 0`).
    start_ns: u64,
    state: ActiveState,
    /// Supervision strikes accrued (panics caught at the pool boundary).
    strikes: u32,
    /// Round before which the session must not be rescheduled (retry
    /// backoff); `0` means schedulable now.
    retry_at: u64,
}

impl Active {
    /// The session's next due key on the fleet clock, `None` when done.
    fn due_key(&self) -> Option<DueKey> {
        match &self.state {
            // A pending session's first epoch (local t = 0) is due the
            // round it is admitted.
            ActiveState::Pending(_) => Some(DueKey { due_ns: self.start_ns, lane: self.lane }),
            ActiveState::Live(fs) => {
                // A finished session (possible when a checkpoint restore
                // re-admits a walker that had completed but not flushed)
                // is immediately due, so it retires next round instead of
                // hanging the scheduler forever.
                let Some(frame) = fs.frames.get(fs.cursor) else {
                    return Some(DueKey { due_ns: self.start_ns, lane: self.lane });
                };
                Some(DueKey { due_ns: self.start_ns + sim_ns(frame.t), lane: self.lane })
            }
            ActiveState::Vacated => unreachable!("vacated slot left in active set"),
        }
    }

    /// Materializes (if pending) and serves everything due by `now_ns`.
    fn step_due(&mut self, now_ns: u64) -> Vec<u64> {
        if matches!(self.state, ActiveState::Pending(_)) {
            let ActiveState::Pending(build) =
                std::mem::replace(&mut self.state, ActiveState::Vacated)
            else {
                unreachable!()
            };
            let built = build();
            assert_eq!(built.lane, self.lane, "session builder changed its lane");
            self.state = ActiveState::Live(Box::new(built));
        }
        let ActiveState::Live(fs) = &mut self.state else {
            unreachable!("stepping a vacated slot")
        };
        fs.step_due(self.start_ns, now_ns)
    }

    /// Retires the slot early as poisoned; see [`FleetSession::poison`].
    /// A builder that panicked before producing a session (its `FnOnce`
    /// recipe is consumed — nothing is left to retry) retires as an empty
    /// poisoned shell.
    fn poison(self, failure: JobFailure) -> FinishedSession {
        let retries = u64::from(self.strikes.saturating_sub(1));
        match self.state {
            ActiveState::Live(fs) => fs.poison(failure, retries),
            _ => FinishedSession {
                lane: self.lane,
                name: format!("lane{:05}", self.lane),
                epochs: 0,
                frames_served: 0,
                records: Vec::new(),
                capture: ObsSession::isolated().capture(),
                poisoned: Some(failure),
            },
        }
    }
}

/// Batches due epochs across many sessions onto the deterministic worker
/// pool. See the module docs for the determinism contract.
pub struct FleetScheduler {
    jobs: usize,
    tick_ns: u64,
    resident: usize,
    pending: Vec<Pending>,
}

impl FleetScheduler {
    /// `jobs` worker threads (`<= 1` runs inline), a fleet tick of
    /// `tick_s` seconds (normally the epoch interval), and at most
    /// `resident` sessions live at once — admission streams in lane order
    /// as sessions retire, bounding memory at fleet scale.
    ///
    /// # Panics
    ///
    /// Panics unless `tick_s` is positive and finite.
    pub fn new(jobs: usize, tick_s: f64, resident: usize) -> FleetScheduler {
        assert!(
            tick_s.is_finite() && tick_s > 0.0,
            "fleet tick must be positive and finite, got {tick_s}"
        );
        FleetScheduler {
            jobs: jobs.max(1),
            tick_ns: sim_ns(tick_s).max(1),
            resident: resident.max(1),
            pending: Vec::new(),
        }
    }

    /// Queues a session for admission. `lane` must be unique across the
    /// fleet; the builder runs on a worker thread when the lane is first
    /// scheduled. Call order is irrelevant — [`FleetScheduler::run`]
    /// canonicalizes by lane.
    pub fn admit(&mut self, lane: u64, build: impl FnOnce() -> FleetSession + Send + 'static) {
        self.admit_restored(lane, 0, 0, build);
    }

    /// [`admit`](Self::admit) with supervision state carried over from a
    /// checkpoint: the session resumes with `strikes` already accrued and
    /// `backoff_rounds` still to serve before its next step.
    pub fn admit_restored(
        &mut self,
        lane: u64,
        strikes: u32,
        backoff_rounds: u64,
        build: impl FnOnce() -> FleetSession + Send + 'static,
    ) {
        self.pending.push(Pending { lane, strikes, backoff_rounds, build: Box::new(build) });
    }

    /// Sessions queued and not yet run.
    pub fn queued(&self) -> usize {
        self.pending.len()
    }

    /// Drives every admitted session to completion. `on_finish` receives
    /// each retired session strictly in lane order. Runs under the default
    /// [`SupervisionPolicy`] with checkpoints and crash injection off.
    ///
    /// # Panics
    ///
    /// Panics when two admitted sessions share a lane.
    pub fn run(&mut self, mut on_finish: impl FnMut(FinishedSession)) -> FleetRunStats {
        self.run_supervised(&SupervisionPolicy::default(), &RunControl::default(), |ev| {
            if let FleetEvent::Finished(f) = ev {
                on_finish(*f);
            }
        })
    }

    /// [`run`](Self::run) with the crash-safety machinery exposed: a
    /// caller-chosen [`SupervisionPolicy`], periodic
    /// [`FleetEvent::Checkpoint`] boundaries and the simulated-crash stop
    /// ([`RunControl`]). Panicking jobs are caught at the pool boundary
    /// ([`run_supervised_mut`]), retried with bounded exponential backoff
    /// in scheduler rounds, and poisoned (retired early, still strictly
    /// in lane order) after `max_strikes` failures — one bad session
    /// never aborts the fleet.
    ///
    /// # Panics
    ///
    /// Panics when two admitted sessions share a lane, or when sessions
    /// are lost on a non-aborted run (a scheduler bug, not a job panic).
    pub fn run_supervised(
        &mut self,
        policy: &SupervisionPolicy,
        control: &RunControl,
        mut on_event: impl FnMut(FleetEvent),
    ) -> FleetRunStats {
        let run_start = Instant::now();
        // Canonicalize admission: lane order, whatever order admit() ran.
        self.pending.sort_by_key(|p| p.lane);
        for pair in self.pending.windows(2) {
            assert!(pair[0].lane != pair[1].lane, "duplicate fleet lane {}", pair[0].lane);
        }
        let lane_seq: Vec<u64> = self.pending.iter().map(|p| p.lane).collect();
        let mut queue = std::mem::take(&mut self.pending).into_iter();

        let mut stats = FleetRunStats { sessions: lane_seq.len() as u64, ..Default::default() };
        let mut active: Vec<Option<Active>> = Vec::new();
        let mut live = 0usize;
        let mut round: u64 = 0;
        // Retired sessions buffer here until their lane is next in
        // sequence, so on_finish order is lane order by construction.
        let mut finish_buf: BTreeMap<u64, FinishedSession> = BTreeMap::new();
        let mut flushed = 0usize;

        loop {
            while live < self.resident {
                let Some(p) = queue.next() else { break };
                active.push(Some(Active {
                    lane: p.lane,
                    start_ns: round * self.tick_ns,
                    state: ActiveState::Pending(p.build),
                    strikes: p.strikes,
                    retry_at: round + p.backoff_rounds,
                }));
                live += 1;
            }
            if live == 0 {
                break;
            }
            let now_ns = round * self.tick_ns;
            let mut due: Vec<(DueKey, usize)> = active
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| {
                    let slot = slot.as_ref()?;
                    // Sessions serving a retry backoff sit the round out.
                    if slot.retry_at > round {
                        return None;
                    }
                    let key = slot.due_key()?;
                    (key.due_ns <= now_ns + DUE_SLACK_NS).then_some((key, i))
                })
                .collect();
            due.sort_unstable();
            if !due.is_empty() {
                let round_start = Instant::now();
                let batch: Vec<Active> =
                    due.iter().map(|&(_, i)| active[i].take().expect("due slot vanished")).collect();
                let (batch, outcomes) = run_supervised_mut(
                    batch,
                    self.jobs,
                    "fleet.step",
                    |a: &Active| Some(a.lane),
                    |_, a| a.step_due(now_ns),
                );
                for ((&(_, i), mut slot), outcome) in due.iter().zip(batch).zip(outcomes) {
                    match outcome {
                        Ok(epoch_ns) => {
                            stats.epochs += epoch_ns.len() as u64;
                            stats.epoch_ns.extend(epoch_ns);
                            let done =
                                matches!(&slot.state, ActiveState::Live(fs) if fs.finished());
                            if done {
                                let ActiveState::Live(fs) =
                                    std::mem::replace(&mut slot.state, ActiveState::Vacated)
                                else {
                                    unreachable!()
                                };
                                finish_buf.insert(slot.lane, fs.retire());
                                live -= 1;
                            } else {
                                active[i] = Some(slot);
                            }
                        }
                        Err(failure) => {
                            slot.strikes += 1;
                            // A builder that panicked mid-materialization
                            // consumed its recipe — nothing left to retry.
                            let retryable = matches!(slot.state, ActiveState::Live(_));
                            if retryable && slot.strikes < policy.max_strikes {
                                slot.retry_at = round + policy.backoff_rounds(slot.strikes);
                                active[i] = Some(slot);
                            } else {
                                let fin = slot.poison(failure);
                                finish_buf.insert(fin.lane, fin);
                                live -= 1;
                            }
                        }
                    }
                }
                stats.round_ns.push(round_start.elapsed().as_nanos() as u64);
            }
            round += 1;
            stats.rounds += 1;
            while flushed < lane_seq.len() {
                let Some(f) = finish_buf.remove(&lane_seq[flushed]) else { break };
                on_event(FleetEvent::Finished(Box::new(f)));
                flushed += 1;
            }
            if control.checkpoint_every > 0 && round.is_multiple_of(control.checkpoint_every) {
                let mut resident: Vec<ResidentState> = active
                    .iter()
                    .flatten()
                    .map(|a| ResidentState {
                        lane: a.lane,
                        cursor: match &a.state {
                            ActiveState::Pending(_) => 0,
                            ActiveState::Live(fs) => fs.cursor as u64,
                            ActiveState::Vacated => {
                                unreachable!("vacated slot left in active set")
                            }
                        },
                        strikes: a.strikes,
                        backoff_rounds: a.retry_at.saturating_sub(round),
                    })
                    .collect();
                resident.sort_by_key(|r| r.lane);
                let unflushed: Vec<&FinishedSession> = finish_buf.values().collect();
                on_event(FleetEvent::Checkpoint { round, resident: &resident, unflushed });
            }
            if control.stop_after_rounds.is_some_and(|stop| round >= stop) {
                // Simulated process crash: abandon everything unretired.
                stats.aborted = true;
                stats.run_ns = run_start.elapsed().as_nanos() as u64;
                return stats;
            }
        }
        assert!(finish_buf.is_empty() && flushed == lane_seq.len(), "fleet lost sessions");
        stats.run_ns = run_start.elapsed().as_nanos() as u64;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_keys_order_by_time_then_lane() {
        let a = DueKey { due_ns: 0, lane: 7 };
        let b = DueKey { due_ns: 0, lane: 8 };
        let c = DueKey { due_ns: 1, lane: 0 };
        assert!(a < b && b < c && a < c);
        let mut keys = vec![c, a, b];
        keys.sort_unstable();
        assert_eq!(keys, vec![a, b, c]);
    }

    #[test]
    fn checkpoint_round_trips_through_canonical_json() {
        let ckpt = SessionCheckpoint {
            version: CHECKPOINT_VERSION,
            lane: 42,
            name: "s00042-office-m-30s".to_owned(),
            scenario: "office".to_owned(),
            persona: "m-30s".to_owned(),
            device: "lgg3".to_owned(),
            plan: "nan_storm".to_owned(),
            seed: 0xDEAD_BEEF,
            cursor: 118,
        };
        let canonical = uniloc_stats::json::ToJson::to_json(&ckpt).canonical().to_string();
        let parsed: SessionCheckpoint = uniloc_stats::json::from_str(&canonical).unwrap();
        assert_eq!(parsed, ckpt);
        let again = uniloc_stats::json::ToJson::to_json(&parsed).canonical().to_string();
        assert_eq!(again, canonical);
    }

    #[test]
    fn foreign_checkpoint_version_is_rejected_loudly() {
        let ckpt = SessionCheckpoint {
            version: CHECKPOINT_VERSION,
            lane: 9,
            name: "n".to_owned(),
            scenario: "office".to_owned(),
            persona: "m-30s".to_owned(),
            device: "lgg3".to_owned(),
            plan: "none".to_owned(),
            seed: 1,
            cursor: 0,
        };
        let json = uniloc_stats::json::ToJson::to_json(&ckpt);
        assert_eq!(SessionCheckpoint::restore(&json), Ok(ckpt.clone()));
        let stale = uniloc_stats::json::ToJson::to_json(&SessionCheckpoint {
            version: CHECKPOINT_VERSION + 7,
            ..ckpt
        });
        assert_eq!(
            SessionCheckpoint::restore(&stale),
            Err(CheckpointError::VersionMismatch {
                found: CHECKPOINT_VERSION + 7,
                expected: CHECKPOINT_VERSION
            })
        );
        let missing = uniloc_stats::json::Json::Obj(vec![]);
        assert!(matches!(
            SessionCheckpoint::restore(&missing),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn backoff_rounds_grow_exponentially_and_cap() {
        let p = SupervisionPolicy { max_strikes: 5, backoff_base_rounds: 2, backoff_cap_rounds: 12 };
        assert_eq!(p.backoff_rounds(1), 2);
        assert_eq!(p.backoff_rounds(2), 4);
        assert_eq!(p.backoff_rounds(3), 8);
        assert_eq!(p.backoff_rounds(4), 12);
        assert_eq!(p.backoff_rounds(9), 12);
        // Degenerate bases still wait at least one round.
        let z = SupervisionPolicy { max_strikes: 3, backoff_base_rounds: 0, backoff_cap_rounds: 0 };
        assert_eq!(z.backoff_rounds(1), 1);
        assert_eq!(z.backoff_rounds(3), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate fleet lane")]
    fn duplicate_lanes_are_rejected() {
        let mut sched = FleetScheduler::new(1, 0.5, 4);
        for _ in 0..2 {
            sched.admit(3, || {
                FleetSession::build(3, "dup", || unreachable!("never materialized"))
            });
        }
        sched.run(|_| {});
    }
}
