//! The experiment harness: surveys a venue, builds the five schemes, walks
//! the route and records per-epoch results.
//!
//! Both phases of the paper's workflow share this machinery:
//!
//! * **Training** ([`collect_training`]) — Step 1 of Section III: walk a
//!   venue *with ground truth*, recording `(features, error)` tuples per
//!   scheme, split indoor/outdoor.
//! * **Evaluation** ([`run_walk`]) — Section V: walk any venue with trained
//!   models and record every scheme's error, UniLoc1/UniLoc2's errors, the
//!   oracle, scheme usage and the GPS duty cycle.

use crate::error_model::{ErrorModelSet, ErrorPrediction, TrainingSample};
use crate::features::{FeatureExtractor, PredictorKind, SharedContext};
use crate::quarantine::DegradationLadder;
use uniloc_env::{GaitProfile, Scenario, Walker};
use uniloc_geom::Point;
use uniloc_iodetect::IoState;
use uniloc_schemes::{
    CellFingerprintDb, CellFingerprintScheme, FusionScheme, GpsScheme, LocalizationScheme,
    PdrConfig, PdrScheme, SchemeId, WifiFingerprintDb, WifiFingerprintScheme,
};
use uniloc_sensors::{DeviceProfile, RssiCalibration, SensorHub};
use uniloc_rng::Rng;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Localization epoch interval (s); the paper updates every 0.5 s.
    pub epoch_interval: f64,
    /// Fingerprint spacing indoors (m); the paper surveys at 1-3 m.
    pub indoor_spacing: f64,
    /// Fingerprint spacing outdoors (m); the paper's open spaces use 12 m.
    pub outdoor_spacing: f64,
    /// PDR particle filter configuration (300 particles by default).
    pub pdr: PdrConfig,
    /// The phone running online localization.
    pub device: DeviceProfile,
    /// Online device calibration toward the survey device, if any.
    pub calibration: Option<RssiCalibration>,
    /// Walker gait.
    pub gait: GaitProfile,
    /// Online location predictor for the feature extractor.
    pub predictor: PredictorKind,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            epoch_interval: 0.5,
            indoor_spacing: 1.5,
            outdoor_spacing: 12.0,
            pdr: PdrConfig::default(),
            device: DeviceProfile::nexus_5x(),
            calibration: None,
            gait: GaitProfile::average(),
            predictor: PredictorKind::default(),
        }
    }
}

/// Why a [`PipelineConfig`] cannot be used. Raised by
/// [`PipelineConfig::validate`] at the harness entry points, so a zero
/// particle count or a negative epoch interval fails *here*, with the
/// field named, instead of deep inside the particle filter or the survey
/// grid.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A rate/size/spacing field that must be strictly positive and
    /// finite was not; `(field, value)`.
    NonPositive(&'static str, f64),
    /// A noise/sigma field that must be finite and non-negative was not;
    /// `(field, value)`.
    BadSigma(&'static str, f64),
    /// A fraction field that must lie in `(0, 1]` did not; `(field,
    /// value)`.
    BadFraction(&'static str, f64),
    /// The particle count is zero.
    NoParticles,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPositive(field, v) => {
                write!(f, "`{field}` must be positive and finite, got {v}")
            }
            ConfigError::BadSigma(field, v) => {
                write!(f, "`{field}` must be finite and >= 0, got {v}")
            }
            ConfigError::BadFraction(field, v) => {
                write!(f, "`{field}` must lie in (0, 1], got {v}")
            }
            ConfigError::NoParticles => f.write_str("`pdr.num_particles` must be > 0"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl PipelineConfig {
    /// Checks every numeric field for physical sense. Harness entry
    /// points ([`build_context`], [`collect_training`], [`run_walk`])
    /// call this and panic with the typed error, so a bad config fails
    /// fast and near its cause.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let positive = |field, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(ConfigError::NonPositive(field, v))
            }
        };
        let sigma = |field, v: f64| {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(ConfigError::BadSigma(field, v))
            }
        };
        positive("epoch_interval", self.epoch_interval)?;
        positive("indoor_spacing", self.indoor_spacing)?;
        positive("outdoor_spacing", self.outdoor_spacing)?;
        if self.pdr.num_particles == 0 {
            return Err(ConfigError::NoParticles);
        }
        sigma("pdr.step_length_noise", self.pdr.step_length_noise)?;
        sigma("pdr.heading_noise", self.pdr.heading_noise)?;
        sigma("pdr.init_spread", self.pdr.init_spread)?;
        positive("pdr.landmark_sigma", self.pdr.landmark_sigma)?;
        if !(self.pdr.resample_frac.is_finite()
            && self.pdr.resample_frac > 0.0
            && self.pdr.resample_frac <= 1.0)
        {
            return Err(ConfigError::BadFraction(
                "pdr.resample_frac",
                self.pdr.resample_frac,
            ));
        }
        Ok(())
    }
}

/// Panics with the named field when `cfg` is unusable — the shared
/// guard behind every harness entry point.
fn assert_valid(cfg: &PipelineConfig) {
    if let Err(e) = cfg.validate() {
        panic!("invalid PipelineConfig: {e}");
    }
}

/// Everything recorded for one localization epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Epoch time (s since walk start).
    pub t: f64,
    /// Ground-truth station along the route (m from start).
    pub station: f64,
    /// Ground-truth position.
    pub truth: Point,
    /// Ground-truth indoor flag.
    pub indoor: bool,
    /// IODetector's verdict.
    pub io_detected: IoState,
    /// Per-scheme localization error (None = unavailable).
    pub scheme_errors: Vec<(SchemeId, Option<f64>)>,
    /// Per-scheme position estimates (None = unavailable).
    pub estimates: Vec<(SchemeId, Option<Point>)>,
    /// Per-scheme predicted error distribution (None = not predictable).
    pub predictions: Vec<(SchemeId, Option<ErrorPrediction>)>,
    /// UniLoc1 (best-selection) error.
    pub uniloc1_error: Option<f64>,
    /// The scheme UniLoc1 selected.
    pub uniloc1_choice: Option<SchemeId>,
    /// UniLoc2 (locally-weighted BMA) error.
    pub uniloc2_error: Option<f64>,
    /// UniLoc2 error under the full-posterior mixture variant (Eqs. 3-4
    /// computed over scheme posteriors instead of point estimates).
    pub uniloc2_mixture_error: Option<f64>,
    /// Oracle (ground-truth best single scheme) error.
    pub oracle_error: Option<f64>,
    /// The scheme the oracle picked.
    pub oracle_choice: Option<SchemeId>,
    /// Per-scheme BMA weights this epoch (Eq. 5).
    pub weights: Vec<(SchemeId, f64)>,
    /// Whether UniLoc's duty-cycling kept the GPS receiver on.
    pub gps_enabled: bool,
    /// The adaptive confidence threshold used this epoch.
    pub tau: Option<f64>,
    /// The engine's degradation-ladder state this epoch.
    pub ladder: DegradationLadder,
    /// Schemes excluded from this epoch's fusion by the quarantine
    /// machine.
    pub quarantined: Vec<SchemeId>,
}

uniloc_stats::impl_json_struct!(EpochRecord {
    t,
    station,
    truth,
    indoor,
    io_detected,
    scheme_errors,
    estimates,
    predictions,
    uniloc1_error,
    uniloc1_choice,
    uniloc2_error,
    uniloc2_mixture_error,
    oracle_error,
    oracle_choice,
    weights,
    gps_enabled,
    tau,
    ladder,
    quarantined,
});

/// Surveys the venue's fingerprint databases (always with the reference
/// device, as in the paper) and snapshots the floor plan.
pub fn build_context(scenario: &Scenario, cfg: &PipelineConfig, seed: u64) -> SharedContext {
    assert_valid(cfg);
    let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), seed);
    let points = scenario.survey_points(cfg.indoor_spacing, cfg.outdoor_spacing);
    SharedContext {
        wifi_db: WifiFingerprintDb::survey_wifi(&mut hub, &points),
        cell_db: CellFingerprintDb::survey_cell(&mut hub, &points),
        plan: scenario.world.floorplan().clone(),
    }
}

/// Builds the paper's five schemes for a scenario.
pub fn build_schemes(
    scenario: &Scenario,
    ctx: &SharedContext,
    cfg: &PipelineConfig,
    seed: u64,
) -> Vec<Box<dyn LocalizationScheme>> {
    let start = scenario.route.start();
    let mut wifi = WifiFingerprintScheme::new(ctx.wifi_db.clone()).with_min_aps(3);
    if let Some(cal) = cfg.calibration {
        wifi = wifi.with_calibration(cal);
    }
    vec![
        Box::new(GpsScheme::new(*scenario.world.geo_frame())),
        Box::new(wifi),
        Box::new(CellFingerprintScheme::new(ctx.cell_db.clone())),
        Box::new(PdrScheme::new(ctx.plan.clone(), start, cfg.pdr, seed)),
        Box::new(FusionScheme::new(
            ctx.plan.clone(),
            start,
            cfg.pdr,
            ctx.wifi_db.clone(),
            seed + 1,
        )),
    ]
}

/// Step 1 of the error-modeling workflow: walks the scenario, running every
/// scheme, and records `(features, error)` training tuples. Ground truth is
/// used for the indoor/outdoor split and for the location-dependent
/// features, exactly as the paper's training phase does.
///
/// Following Section III-B, the walk is repeated against downsampled
/// fingerprint databases ("for larger fingerprint distances (e.g., 5 m,
/// 10 m, and 15 m), we downsample the fine-grained fingerprint data") so
/// the density feature `beta_1` actually varies in the training set —
/// without the sweep it would be a constant column and the regression could
/// not identify its coefficient.
pub fn collect_training(
    scenario: &Scenario,
    cfg: &PipelineConfig,
    seed: u64,
) -> Vec<TrainingSample> {
    let _span = uniloc_obs::global()
        .span("pipeline.collect_training")
        .field("scenario", scenario.name.as_str());
    assert_valid(cfg);
    let base_ctx = build_context(scenario, cfg, seed);
    let mut samples = Vec::new();
    for (pass, spacing) in [None, Some(5.0), Some(10.0), Some(15.0)].into_iter().enumerate() {
        let ctx = match spacing {
            None => base_ctx.clone(),
            Some(s) => SharedContext {
                wifi_db: base_ctx.wifi_db.downsampled(s),
                cell_db: base_ctx.cell_db.downsampled(s),
                plan: base_ctx.plan.clone(),
            },
        };
        collect_training_pass(
            scenario,
            cfg,
            &ctx,
            seed + 100 * pass as u64,
            &mut samples,
        );
    }
    samples
}

fn collect_training_pass(
    scenario: &Scenario,
    cfg: &PipelineConfig,
    ctx: &SharedContext,
    seed: u64,
    samples: &mut Vec<TrainingSample>,
) {
    let mut schemes = build_schemes(scenario, ctx, cfg, seed + 2);
    let mut extractor = FeatureExtractor::new(ctx);

    let mut walker = Walker::new(cfg.gait.clone(), Rng::seed_from_u64(seed + 3));
    let walk = walker.walk(&scenario.route);
    let mut hub = SensorHub::new(&scenario.world, cfg.device, seed + 4);
    let frames = hub.sample_walk(&walk, cfg.epoch_interval);

    for frame in &frames {
        extractor.begin_epoch(frame);
        let indoor = scenario.world.is_indoor(frame.true_position);
        let io = if indoor { IoState::Indoor } else { IoState::Outdoor };
        for scheme in &mut schemes {
            let id = scheme.id();
            let Some(est) = scheme.update(frame) else { continue };
            let Some(features) =
                extractor.features(ctx, id, io, frame, Some(frame.true_position))
            else {
                continue;
            };
            samples.push(TrainingSample {
                scheme: id,
                indoor,
                features,
                error: est.position.distance(frame.true_position),
            });
        }
        extractor.note_estimate(frame.true_position);
    }
}

/// Samples the sensor-frame stream of one walk through a scenario — the
/// exact frames [`run_walk`] evaluates on. Exposed separately so a fault
/// injector (`uniloc-faults`) can corrupt the stream between sampling and
/// evaluation; uses the same RNG streams (`seed + 3` for the walker,
/// `seed + 4` for the sensor hub) as the fused path, so
/// `run_walk_on_frames(.., &walk_frames(..))` is byte-identical to
/// [`run_walk`].
pub fn walk_frames(
    scenario: &Scenario,
    cfg: &PipelineConfig,
    seed: u64,
) -> Vec<uniloc_sensors::SensorFrame> {
    assert_valid(cfg);
    let mut walker = Walker::new(cfg.gait.clone(), Rng::seed_from_u64(seed + 3));
    let walk = walker.walk(&scenario.route);
    let mut hub = SensorHub::new(&scenario.world, cfg.device, seed + 4);
    hub.sample_walk(&walk, cfg.epoch_interval)
}

/// Walks a scenario with trained models and records everything Section V
/// reports.
pub fn run_walk(
    scenario: &Scenario,
    models: &ErrorModelSet,
    cfg: &PipelineConfig,
    seed: u64,
) -> Vec<EpochRecord> {
    let frames = walk_frames(scenario, cfg, seed);
    run_walk_on_frames(scenario, models, cfg, seed, &frames)
}

/// Evaluates a pre-sampled (possibly fault-injected) frame stream with
/// trained models. `seed` must match the one used elsewhere in the run:
/// the survey uses `seed`, scheme construction `seed + 2` — the same
/// stream discipline as [`run_walk`].
///
/// Since the session refactor this is a thin driver over
/// [`crate::session::Session`]: one session is built from the scenario and
/// stepped over every frame in order. The per-epoch work — and therefore
/// every record byte and every observability effect — is the session's;
/// the only harness-level additions are the `pipeline.run_walk` /
/// `pipeline.build_context` spans wrapping the walk, which the fleet
/// scheduler deliberately does not emit (see `DESIGN.md` §9).
pub fn run_walk_on_frames(
    scenario: &Scenario,
    models: &ErrorModelSet,
    cfg: &PipelineConfig,
    seed: u64,
    frames: &[uniloc_sensors::SensorFrame],
) -> Vec<EpochRecord> {
    assert_valid(cfg);
    let obs = uniloc_obs::global();
    let _walk_span = obs
        .span("pipeline.run_walk")
        .field("scenario", scenario.name.as_str())
        .field("seed", seed);
    let ctx = {
        let _s = obs.span("pipeline.build_context");
        build_context(scenario, cfg, seed)
    };
    let mut session = crate::session::Session::from_context(
        std::sync::Arc::new(scenario.clone()),
        ctx,
        models,
        cfg,
        seed,
    );
    frames.iter().map(|frame| session.step(frame)).collect()
}

/// Mean of the defined, finite values of an optional-valued series.
///
/// Non-finite values (a scheme reporting a NaN/infinite error is a
/// defined-but-useless observation) are excluded rather than poisoning
/// the mean; a series with no finite values yields `None`.
pub fn mean_defined(values: impl Iterator<Item = Option<f64>>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in values.flatten().filter(|v| v.is_finite()) {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Per-scheme mean error across records.
pub fn scheme_mean_error(records: &[EpochRecord], id: SchemeId) -> Option<f64> {
    mean_defined(records.iter().map(|r| {
        r.scheme_errors
            .iter()
            .find(|(s, _)| *s == id)
            .and_then(|(_, e)| *e)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_model::train;
    use uniloc_env::venues;

    fn small_cfg() -> PipelineConfig {
        PipelineConfig { indoor_spacing: 2.0, ..PipelineConfig::default() }
    }

    #[test]
    fn training_collection_produces_all_schemes() {
        let scenario = venues::training_office(201);
        let cfg = small_cfg();
        let samples = collect_training(&scenario, &cfg, 202);
        assert!(samples.len() > 500, "got {} samples", samples.len());
        for id in [SchemeId::Wifi, SchemeId::Cellular, SchemeId::Motion, SchemeId::Fusion] {
            let n = samples.iter().filter(|s| s.scheme == id).count();
            assert!(n > 50, "{id} has only {n} samples");
        }
        // All office samples are indoor.
        assert!(samples.iter().all(|s| s.indoor));
        // Errors are physical.
        assert!(samples.iter().all(|s| s.error.is_finite() && s.error >= 0.0));
    }

    #[test]
    fn outdoor_training_includes_gps() {
        let scenario = venues::training_open_space(203);
        let cfg = small_cfg();
        let samples = collect_training(&scenario, &cfg, 204);
        let gps = samples.iter().filter(|s| s.scheme == SchemeId::Gps).count();
        assert!(gps > 20, "GPS outdoor samples: {gps}");
        assert!(samples.iter().all(|s| !s.indoor));
    }

    #[test]
    fn end_to_end_walk_beats_individual_schemes() {
        // Train on the office + open space, evaluate in the office (same
        // place, quick smoke test; the benches do the full campus).
        let cfg = small_cfg();
        let mut samples = collect_training(&venues::training_office(205), &cfg, 206);
        samples.extend(collect_training(&venues::training_open_space(207), &cfg, 208));
        let models = train(&samples).unwrap();
        let eval = venues::office("eval-office", 209, 48.0, 18.0);
        let records = run_walk(&eval, &models, &cfg, 210);
        assert!(!records.is_empty());

        let uniloc2 = mean_defined(records.iter().map(|r| r.uniloc2_error)).unwrap();
        let best_scheme = SchemeId::BUILTIN
            .iter()
            .filter_map(|&id| scheme_mean_error(&records, id))
            .fold(f64::INFINITY, f64::min);
        // In a single benign venue the best individual scheme can edge out
        // the ensemble; UniLoc's gains come from diverse paths (see the
        // fig6/fig7 benches). Competitive here means within 2x.
        assert!(
            uniloc2 <= best_scheme * 2.0,
            "UniLoc2 ({uniloc2:.2}) should be competitive with the best scheme ({best_scheme:.2})"
        );
        // UniLoc should be well under 10 m indoors.
        assert!(uniloc2 < 10.0, "UniLoc2 error {uniloc2}");
    }

    /// `validate` at the exact edges of every constraint: the open and
    /// closed interval ends, signed zero, and subnormals.
    #[test]
    fn validate_accepts_boundary_values() {
        // Strictly-positive fields: the smallest subnormal is positive
        // and finite, so it passes; f64::MAX is the closed top end.
        let mut cfg = PipelineConfig {
            epoch_interval: 5e-324,
            indoor_spacing: f64::MIN_POSITIVE,
            outdoor_spacing: f64::MAX,
            ..PipelineConfig::default()
        };
        cfg.pdr.landmark_sigma = 5e-324;
        // Sigma fields are non-negative: exact zero and negative zero
        // both mean "no noise", not "negative noise".
        cfg.pdr.step_length_noise = 0.0;
        cfg.pdr.heading_noise = -0.0;
        cfg.pdr.init_spread = 0.0;
        // The fraction's closed upper bound.
        cfg.pdr.resample_frac = 1.0;
        assert_eq!(cfg.validate(), Ok(()));
        // The fraction's open lower bound: any positive value passes.
        cfg.pdr.resample_frac = 5e-324;
        assert_eq!(cfg.validate(), Ok(()));
        cfg.pdr.num_particles = 1;
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_each_boundary_violation_with_the_field_named() {
        let base = PipelineConfig::default();
        // Positive-and-finite fields: zero, negative zero, infinity and
        // NaN all fail with the field named.
        for bad in [0.0, -0.0, f64::INFINITY, f64::NAN] {
            let cfg = PipelineConfig { epoch_interval: bad, ..base.clone() };
            assert!(
                matches!(cfg.validate(), Err(ConfigError::NonPositive("epoch_interval", _))),
                "epoch_interval = {bad}"
            );
        }
        let cfg = PipelineConfig { indoor_spacing: -1.5, ..base.clone() };
        assert!(matches!(cfg.validate(), Err(ConfigError::NonPositive("indoor_spacing", _))));
        let cfg = PipelineConfig { outdoor_spacing: f64::NEG_INFINITY, ..base.clone() };
        assert!(matches!(cfg.validate(), Err(ConfigError::NonPositive("outdoor_spacing", _))));

        let mut cfg = base.clone();
        cfg.pdr.num_particles = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoParticles));

        // Sigmas reject anything below zero — even the tiniest subnormal
        // step below — and non-finite values.
        let mut cfg = base.clone();
        cfg.pdr.step_length_noise = -5e-324;
        assert!(
            matches!(cfg.validate(), Err(ConfigError::BadSigma("pdr.step_length_noise", _))),
            "a negative subnormal is still negative"
        );
        let mut cfg = base.clone();
        cfg.pdr.heading_noise = f64::NAN;
        assert!(matches!(cfg.validate(), Err(ConfigError::BadSigma("pdr.heading_noise", _))));

        // landmark_sigma is strictly positive (a zero-width landmark
        // likelihood would degenerate), unlike the other sigmas.
        let mut cfg = base.clone();
        cfg.pdr.landmark_sigma = 0.0;
        assert!(matches!(cfg.validate(), Err(ConfigError::NonPositive("pdr.landmark_sigma", _))));

        // The fraction's edges: 0.0 and -0.0 sit outside the open lower
        // bound, the next float above 1.0 outside the closed upper one.
        for bad in [0.0, -0.0, 1.0 + f64::EPSILON, -1.0, f64::NAN, f64::INFINITY] {
            let mut cfg = base.clone();
            cfg.pdr.resample_frac = bad;
            assert!(
                matches!(cfg.validate(), Err(ConfigError::BadFraction("pdr.resample_frac", _))),
                "resample_frac = {bad}"
            );
        }

        // The first failing field wins, in declaration order.
        let mut cfg = PipelineConfig { epoch_interval: f64::NAN, ..base.clone() };
        cfg.pdr.num_particles = 0;
        assert!(matches!(cfg.validate(), Err(ConfigError::NonPositive("epoch_interval", _))));
    }

    #[test]
    fn mean_defined_filters_non_finite() {
        // All-NaN input must be None, not Some(NaN).
        let all_nan = [Some(f64::NAN), Some(f64::NAN), None];
        assert_eq!(mean_defined(all_nan.into_iter()), None);
        // Non-finite values are excluded from an otherwise defined series.
        let mixed = [Some(1.0), Some(f64::NAN), Some(3.0), Some(f64::INFINITY), None];
        assert_eq!(mean_defined(mixed.into_iter()), Some(2.0));
        // Plain cases are unchanged.
        assert_eq!(mean_defined([Some(2.0), Some(4.0)].into_iter()), Some(3.0));
        assert_eq!(mean_defined(std::iter::empty()), None);
        assert_eq!(mean_defined([None, None].into_iter()), None);
    }

    #[test]
    fn records_are_internally_consistent() {
        let cfg = small_cfg();
        let samples = collect_training(&venues::training_office(211), &cfg, 212);
        let models = train(&samples).unwrap();
        let eval = venues::training_office(211);
        let records = run_walk(&eval, &models, &cfg, 213);
        for r in &records {
            // Oracle error is a lower bound on any selection.
            if let (Some(o), Some(u1)) = (r.oracle_error, r.uniloc1_error) {
                assert!(o <= u1 + 1e-9, "oracle {o} > uniloc1 {u1}");
            }
            // Every record has the five schemes listed.
            assert_eq!(r.scheme_errors.len(), 5);
            assert_eq!(r.estimates.len(), 5);
            assert_eq!(r.predictions.len(), 5);
            // Station within route bounds.
            assert!(r.station >= 0.0 && r.station <= eval.route.length() + 1e-9);
        }
    }
}
