//! One walker's serving session.
//!
//! The batch harness ([`pipeline::run_walk_on_frames`]) historically owned
//! the whole per-epoch loop. A [`Session`] extracts exactly that loop body
//! so the same code serves two callers:
//!
//! * the legacy batch path — [`pipeline::run_walk_on_frames`] now builds a
//!   `Session` and drives it over the frame stream, so its output (records
//!   *and* observability effects, in order) is unchanged, and
//! * the fleet scheduler ([`crate::fleet`]) — thousands of concurrent
//!   sessions, each stepped one due epoch at a time, interleaved across
//!   worker threads.
//!
//! A `Session` owns everything that is per-walker: the five scheme states,
//! the online error models, the quarantine machine and degradation ladder
//! (all inside its [`UniLocEngine`]), and — when the caller installs one —
//! the isolated observability session its calibration bins and flight
//! postmortems land in. Nothing in a `Session` references another session,
//! which is the isolation property `tests/fleet_differential.rs` holds
//! under chaos plans.
//!
//! # Equivalence contract
//!
//! `Session::step` is a verbatim extraction of the historical loop body:
//! for the same engine state and frame it performs the same engine update,
//! the same metric/calibration/flight calls in the same order, and returns
//! the same [`EpochRecord`]. The observability handles are resolved
//! per-step through the `uniloc_obs::global_*` accessors, so the effects
//! land wherever the *calling thread* points — the process singletons on
//! the legacy path, the session's private [`ObsSession`]
//! (`uniloc_obs::session`) under the fleet scheduler.

use std::sync::Arc;

use crate::engine::UniLocEngine;
use crate::error_model::{ErrorModelSet, ErrorPrediction};
use crate::features::SharedContext;
use crate::pipeline::{self, EpochRecord, PipelineConfig};
use uniloc_env::Scenario;
use uniloc_geom::Point;
use uniloc_schemes::{Oracle, SchemeId};

/// One walker's online localization state: the scheme set, error models,
/// quarantine/degradation ladder (via the engine) and the scenario frame
/// of reference. See the module docs for the equivalence contract.
pub struct Session {
    scenario: Arc<Scenario>,
    engine: UniLocEngine,
    epochs: usize,
}

impl Session {
    /// Builds the session end to end: surveys the venue with `seed`
    /// (exactly like the batch path), builds the five schemes on
    /// `seed + 2` and wires the engine.
    ///
    /// # Panics
    ///
    /// Panics when `cfg` fails [`PipelineConfig::validate`].
    pub fn new(
        scenario: Arc<Scenario>,
        models: &ErrorModelSet,
        cfg: &PipelineConfig,
        seed: u64,
    ) -> Session {
        let ctx = pipeline::build_context(&scenario, cfg, seed);
        Session::from_context(scenario, ctx, models, cfg, seed)
    }

    /// Builds the session from an already-surveyed context — the shared
    /// entry point of the batch harness (which wraps the survey in its own
    /// span) and of callers that checkpoint/replay.
    ///
    /// `seed` must be the same root used for the survey: schemes draw from
    /// `seed + 2` (fusion from `seed + 3` via `build_schemes`' `+ 1`),
    /// the stream discipline every other entry point follows.
    pub fn from_context(
        scenario: Arc<Scenario>,
        ctx: SharedContext,
        models: &ErrorModelSet,
        cfg: &PipelineConfig,
        seed: u64,
    ) -> Session {
        let schemes = pipeline::build_schemes(&scenario, &ctx, cfg, seed + 2);
        let engine = UniLocEngine::with_predictor(schemes, models.clone(), ctx, cfg.predictor);
        Session { scenario, engine, epochs: 0 }
    }

    /// The scenario this session walks.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Epochs served so far.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// The fusion engine serving this session, for introspection
    /// (quarantine standings, scheme weights) in tests and harnesses.
    pub fn engine(&self) -> &UniLocEngine {
        &self.engine
    }

    /// Serves one localization epoch: runs the engine on `frame`, feeds
    /// the calibration monitor and flight recorder, and returns the epoch
    /// record. This is the historical `run_walk_on_frames` loop body,
    /// verbatim — see the module docs.
    pub fn step(&mut self, frame: &uniloc_sensors::SensorFrame) -> EpochRecord {
        let obs = uniloc_obs::global();
        let metrics = uniloc_obs::global_metrics();
        let calib = uniloc_obs::global_calibration();
        let flight = uniloc_obs::global_flight();
        // Under a VirtualClock the sidecar's timestamps follow simulation
        // time; under the default MonotonicClock this is a no-op.
        obs.sync_virtual_clock(frame.t);
        // Tell the allocation observatory which epoch this is *before* any
        // span opens: epochs past the warmup window count toward the
        // steady-state allocs-per-epoch meter. A no-op unless the calling
        // thread's obs session opted into allocation tracking.
        uniloc_obs::alloc::epoch_phase(self.epochs as u64);
        metrics.counter("pipeline.epochs").inc();
        let out = self.engine.update(frame);
        let truth = frame.true_position;
        let (_, station) = self.scenario.route.project(truth);
        let scheme_errors: Vec<(SchemeId, Option<f64>)> = out
            .reports
            .iter()
            .map(|r| (r.id, r.estimate.map(|e| e.position.distance(truth))))
            .collect();
        // Predicted-minus-actual residuals: only the evaluation harness
        // knows ground truth, so the calibration histograms — and the
        // calibration monitor judging them — live here, not in the engine.
        for r in &out.reports {
            if flight.note_availability(&r.id.to_string(), r.estimate.is_some()) {
                flight.trigger(
                    "scheme_unavailable",
                    vec![
                        ("scheme".to_owned(), r.id.to_string().into()),
                        ("t".to_owned(), frame.t.into()),
                    ],
                );
            }
            if let (Some(p), Some(e)) = (r.prediction, r.estimate) {
                let realized = e.position.distance(truth);
                metrics
                    .histogram(
                        &format!("error_model.residual.{}", r.id),
                        uniloc_obs::RESIDUAL_BUCKETS_M,
                    )
                    .record(p.mean - realized);
                if let Some(alarm) = calib.observe(
                    &r.id.to_string(),
                    &out.io.to_string(),
                    p.mean,
                    p.sigma,
                    realized,
                ) {
                    flight.trigger(
                        "calibration_drift",
                        vec![
                            ("scheme".to_owned(), alarm.scheme.into()),
                            ("io".to_owned(), alarm.io.into()),
                            ("direction".to_owned(), alarm.direction.into()),
                            ("statistic".to_owned(), alarm.statistic.into()),
                            ("t".to_owned(), frame.t.into()),
                        ],
                    );
                }
            }
        }
        // Numerical corruption in any fused output freezes a postmortem
        // (the engine already counted it and raised the warn event).
        if [out.best_selection, out.bayesian_average, out.mixture_average]
            .iter()
            .flatten()
            .any(|p| !p.x.is_finite() || !p.y.is_finite())
        {
            flight.trigger("non_finite_estimate", vec![("t".to_owned(), frame.t.into())]);
        }
        let estimates: Vec<(SchemeId, Option<Point>)> = out
            .reports
            .iter()
            .map(|r| (r.id, r.estimate.map(|e| e.position)))
            .collect();
        let predictions: Vec<(SchemeId, Option<ErrorPrediction>)> =
            out.reports.iter().map(|r| (r.id, r.prediction)).collect();
        let oracle_input: Vec<_> = out.reports.iter().map(|r| (r.id, r.estimate)).collect();
        let oracle = Oracle::select(&oracle_input, truth);
        self.epochs += 1;
        let record = EpochRecord {
            t: frame.t,
            station,
            truth,
            indoor: self.scenario.world.is_indoor(truth),
            io_detected: out.io,
            scheme_errors,
            estimates,
            predictions,
            uniloc1_error: out.best_selection.map(|p| p.distance(truth)),
            uniloc1_choice: out.selected,
            uniloc2_error: out.bayesian_average.map(|p| p.distance(truth)),
            uniloc2_mixture_error: out.mixture_average.map(|p| p.distance(truth)),
            oracle_error: oracle.map(|(_, _, e)| e),
            oracle_choice: oracle.map(|(id, _, _)| id),
            weights: out.reports.iter().map(|r| (r.id, r.weight)).collect(),
            gps_enabled: out.gps_enabled,
            tau: out.tau,
            ladder: out.ladder,
            quarantined: out.quarantined.clone(),
        };
        // Hand the report / exclusion vectors back to the engine so the
        // next epoch reuses their capacity instead of reallocating.
        self.engine.recycle(out);
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_model::train;
    use uniloc_env::venues;

    fn models(seed: u64) -> ErrorModelSet {
        let cfg = PipelineConfig::default();
        let mut samples =
            pipeline::collect_training(&venues::training_office(seed), &cfg, seed + 10);
        samples.extend(pipeline::collect_training(
            &venues::training_open_space(seed + 1),
            &cfg,
            seed + 11,
        ));
        train(&samples).expect("training venues produce enough samples")
    }

    /// Driving a `Session` frame by frame reproduces the batch harness
    /// byte for byte — the extraction is an equivalence-preserving
    /// refactor, not a reimplementation.
    #[test]
    fn session_steps_match_batch_walk() {
        let models = models(41);
        let cfg = PipelineConfig { indoor_spacing: 2.0, ..PipelineConfig::default() };
        let scenario = venues::office("session-eq", 42, 40.0, 15.0);
        let frames = pipeline::walk_frames(&scenario, &cfg, 43);
        let batch = pipeline::run_walk_on_frames(&scenario, &models, &cfg, 43, &frames);

        let mut session = Session::new(Arc::new(scenario), &models, &cfg, 43);
        let stepped: Vec<EpochRecord> = frames.iter().map(|f| session.step(f)).collect();
        assert_eq!(stepped, batch);
        assert_eq!(session.epochs(), frames.len());
    }
}
