//! The input-validation gate: scrubs malformed sensor frames before they
//! reach features, schemes and the particle filter.
//!
//! Two layers:
//!
//! * [`scrub_frame`] — stateless and idempotent. Drops per-channel values
//!   that are non-finite or physically impossible (an RSSI of `NaN`, a
//!   step 40 m long, an HDOP of infinity). A clean frame passes through
//!   untouched — the function returns `None` so the caller keeps borrowing
//!   the original, which is what keeps golden traces byte-identical.
//! * [`FrameGate`] — stateful. Tracks the epoch clock and flags duplicate
//!   and time-regressing frames; replayed frames keep their radio scans
//!   (fingerprinting is stateless) but lose their step events, because
//!   feeding the same steps to the PDR integrator twice teleports it.
//!
//! A malformed frame must never abort a walk: the gate's worst verdict is
//! [`GateVerdict::Rejected`] (non-finite timestamp), and even then the
//! engine emits a degraded output instead of panicking.

use uniloc_sensors::SensorFrame;

/// Physical sanity bounds, deliberately generous: the gate must reject
/// only the impossible, never a merely noisy reading.
mod bounds {
    /// RSSI window (dBm) — anything outside is a decode error.
    pub const RSSI_MIN_DBM: f64 = -130.0;
    pub const RSSI_MAX_DBM: f64 = 0.0;
    /// HDOP is a positive dilution ratio; receivers cap it around 50.
    pub const HDOP_MAX: f64 = 100.0;
    /// A human step: no longer than 5 m, no slower than 30 s.
    pub const STEP_LENGTH_MAX_M: f64 = 5.0;
    pub const STEP_DURATION_MAX_S: f64 = 30.0;
}

/// What [`scrub_frame`] removed, per channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// WiFi readings dropped (non-finite / out-of-window RSSI).
    pub wifi_readings: u32,
    /// Cellular readings dropped.
    pub cell_readings: u32,
    /// 1 when the GPS fix was dropped entirely.
    pub gps_fixes: u32,
    /// Step events dropped.
    pub steps: u32,
    /// Environment channels (light, magnetic variance) neutralized.
    pub env_channels: u32,
}

impl ScrubReport {
    /// Whether anything was removed.
    pub fn any(&self) -> bool {
        *self != ScrubReport::default()
    }

    /// Total values dropped or neutralized.
    pub fn total(&self) -> u32 {
        self.wifi_readings + self.cell_readings + self.gps_fixes + self.steps + self.env_channels
    }
}

fn rssi_ok(r: f64) -> bool {
    r.is_finite() && (bounds::RSSI_MIN_DBM..=bounds::RSSI_MAX_DBM).contains(&r)
}

/// Validates every channel of `frame`. Returns `None` when the frame is
/// already clean (the common case — keep using the original), or the
/// scrubbed copy plus a per-channel tally. Idempotent: scrubbing a
/// scrubbed frame removes nothing.
pub fn scrub_frame(frame: &SensorFrame) -> Option<(SensorFrame, ScrubReport)> {
    let mut report = ScrubReport::default();

    let wifi_bad = frame
        .wifi
        .as_ref()
        .map_or(0, |s| s.readings.iter().filter(|(_, r)| !rssi_ok(*r)).count());
    let cell_bad = frame
        .cell
        .as_ref()
        .map_or(0, |s| s.readings.iter().filter(|(_, r)| !rssi_ok(*r)).count());
    let gps_bad = frame.gps.is_some_and(|fix| {
        !fix.hdop.is_finite()
            || !(0.0..=bounds::HDOP_MAX).contains(&fix.hdop)
            || !fix.coordinate.lat.is_finite()
            || !fix.coordinate.lon.is_finite()
            || fix.coordinate.lat.abs() > 90.0
            || fix.coordinate.lon.abs() > 180.0
    });
    let step_ok = |s: &uniloc_sensors::StepMeasurement| {
        s.t.is_finite()
            && s.heading_est.is_finite()
            && s.duration.is_finite()
            && (0.0..=bounds::STEP_DURATION_MAX_S).contains(&s.duration)
            && s.length_est.is_finite()
            && (0.0..=bounds::STEP_LENGTH_MAX_M).contains(&s.length_est)
    };
    let steps_bad = frame.steps.iter().filter(|s| !step_ok(s)).count();
    let light_bad = !frame.light_lux.is_finite() || frame.light_lux < 0.0;
    let mag_bad = !frame.magnetic_variance.is_finite() || frame.magnetic_variance < 0.0;

    if wifi_bad == 0 && cell_bad == 0 && !gps_bad && steps_bad == 0 && !light_bad && !mag_bad {
        return None;
    }

    let mut clean = frame.clone();
    if wifi_bad > 0 {
        if let Some(scan) = clean.wifi.as_mut() {
            scan.readings.retain(|(_, r)| rssi_ok(*r));
        }
        report.wifi_readings = wifi_bad as u32;
    }
    if cell_bad > 0 {
        if let Some(scan) = clean.cell.as_mut() {
            scan.readings.retain(|(_, r)| rssi_ok(*r));
        }
        report.cell_readings = cell_bad as u32;
    }
    if gps_bad {
        clean.gps = None;
        report.gps_fixes = 1;
    }
    if steps_bad > 0 {
        clean.steps.retain(|s| step_ok(s));
        report.steps = steps_bad as u32;
    }
    if light_bad {
        clean.light_lux = 0.0;
        report.env_channels += 1;
    }
    if mag_bad {
        clean.magnetic_variance = 0.0;
        report.env_channels += 1;
    }
    Some((clean, report))
}

/// The gate's verdict on a frame's place in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateVerdict {
    /// Timestamp advances normally.
    Fresh,
    /// Same timestamp as the previous frame — a replay; steps must not be
    /// integrated twice.
    Duplicate,
    /// Timestamp moved backwards — a replay or clock fault; steps must
    /// not be integrated again.
    TimeRegression,
    /// Non-finite timestamp: nothing about this frame can be trusted.
    Rejected,
}

/// Stateful frame-stream gate: duplicate / time-regression / bad-clock
/// detection. One instance per walk; [`FrameGate::reset`] between walks.
#[derive(Debug, Clone, Default)]
pub struct FrameGate {
    last_t: Option<f64>,
}

impl FrameGate {
    /// A fresh gate.
    pub fn new() -> Self {
        FrameGate::default()
    }

    /// Classifies the frame's timestamp against the stream so far. The
    /// clock high-water mark only advances on [`GateVerdict::Fresh`]
    /// frames, so a burst of regressed frames stays flagged until the
    /// stream catches back up past the high-water mark.
    pub fn admit(&mut self, t: f64) -> GateVerdict {
        if !t.is_finite() {
            return GateVerdict::Rejected;
        }
        match self.last_t {
            Some(last) if t == last => GateVerdict::Duplicate,
            Some(last) if t < last => GateVerdict::TimeRegression,
            _ => {
                self.last_t = Some(t);
                GateVerdict::Fresh
            }
        }
    }

    /// Forgets the stream (new walk).
    pub fn reset(&mut self) {
        self.last_t = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_env::ApId;
    use uniloc_geom::{GeoCoord, Point};
    use uniloc_sensors::{GpsFix, StepMeasurement, WifiScan};

    fn clean_frame() -> SensorFrame {
        SensorFrame {
            t: 1.0,
            true_position: Point::origin(),
            wifi: Some(WifiScan {
                readings: vec![(ApId(1), -50.0), (ApId(2), -70.0)],
            }),
            cell: None,
            gps: Some(GpsFix {
                coordinate: GeoCoord { lat: 1.0, lon: 103.0 },
                hdop: 1.5,
                satellites: 9,
            }),
            steps: vec![StepMeasurement {
                t: 0.9,
                duration: 0.5,
                length_est: 0.7,
                heading_est: 0.3,
            }],
            landmark: None,
            light_lux: 200.0,
            magnetic_variance: 0.4,
        }
    }

    #[test]
    fn clean_frame_passes_untouched() {
        assert!(scrub_frame(&clean_frame()).is_none());
    }

    #[test]
    fn scrub_drops_bad_values_and_is_idempotent() {
        let mut frame = clean_frame();
        frame.wifi.as_mut().unwrap().readings.push((ApId(3), f64::NAN));
        frame.gps.as_mut().unwrap().hdop = f64::INFINITY;
        frame.steps.push(StepMeasurement {
            t: 0.95,
            duration: 0.5,
            length_est: 40.0,
            heading_est: 0.0,
        });
        frame.light_lux = f64::NAN;
        let (scrubbed, report) = scrub_frame(&frame).expect("dirty frame must scrub");
        assert_eq!(report.wifi_readings, 1);
        assert_eq!(report.gps_fixes, 1);
        assert_eq!(report.steps, 1);
        assert_eq!(report.env_channels, 1);
        assert_eq!(report.total(), 4);
        assert!(report.any());
        assert_eq!(scrubbed.wifi.as_ref().unwrap().readings.len(), 2);
        assert!(scrubbed.gps.is_none());
        assert_eq!(scrubbed.steps.len(), 1);
        assert_eq!(scrubbed.light_lux, 0.0);
        // Idempotent: the scrubbed frame is clean.
        assert!(scrub_frame(&scrubbed).is_none());
    }

    #[test]
    fn out_of_window_rssi_is_rejected() {
        let mut frame = clean_frame();
        frame.wifi.as_mut().unwrap().readings[0].1 = 12.0; // positive dBm
        let (scrubbed, report) = scrub_frame(&frame).unwrap();
        assert_eq!(report.wifi_readings, 1);
        assert_eq!(scrubbed.wifi.unwrap().readings.len(), 1);
    }

    #[test]
    fn exactly_at_range_boundaries_pass_the_scrub() {
        // The bounds are inclusive: a value exactly on either edge is a
        // legal (if extreme) reading, not a decode error.
        let mut frame = clean_frame();
        frame.wifi.as_mut().unwrap().readings =
            vec![(ApId(1), bounds::RSSI_MIN_DBM), (ApId(2), bounds::RSSI_MAX_DBM)];
        frame.gps.as_mut().unwrap().hdop = bounds::HDOP_MAX;
        frame.steps = vec![StepMeasurement {
            t: 0.9,
            duration: bounds::STEP_DURATION_MAX_S,
            length_est: bounds::STEP_LENGTH_MAX_M,
            heading_est: 0.0,
        }];
        assert!(scrub_frame(&frame).is_none(), "boundary values must pass");

        let mut frame = clean_frame();
        frame.gps.as_mut().unwrap().hdop = 0.0;
        frame.steps = vec![StepMeasurement { t: 0.9, duration: 0.0, length_est: 0.0, heading_est: 0.0 }];
        assert!(scrub_frame(&frame).is_none(), "zero duration/length/hdop must pass");
    }

    #[test]
    fn just_outside_boundaries_are_dropped() {
        let mut frame = clean_frame();
        frame.wifi.as_mut().unwrap().readings.push((ApId(3), -130.0000001));
        frame.gps.as_mut().unwrap().hdop = 100.0000001;
        frame.steps.push(StepMeasurement {
            t: 0.95,
            duration: 30.0000001,
            length_est: 0.7,
            heading_est: 0.0,
        });
        frame.steps.push(StepMeasurement {
            t: 0.96,
            duration: 0.5,
            length_est: -0.0000001,
            heading_est: 0.0,
        });
        let (_, report) = scrub_frame(&frame).expect("out-of-range values must scrub");
        assert_eq!(report.wifi_readings, 1);
        assert_eq!(report.gps_fixes, 1);
        assert_eq!(report.steps, 2);
    }

    #[test]
    fn negative_zero_and_subnormals_are_legal_env_readings() {
        // -0.0 compares equal to 0.0, and subnormals are tiny positive
        // values: neither is "negative" in the physical sense, so the env
        // channels must pass untouched (and the scrub stays idempotent on
        // frames that contain them).
        let mut frame = clean_frame();
        frame.light_lux = -0.0;
        frame.magnetic_variance = f64::MIN_POSITIVE / 2.0; // subnormal
        assert!(scrub_frame(&frame).is_none());

        let mut frame = clean_frame();
        frame.steps[0].length_est = -0.0;
        frame.steps[0].duration = f64::MIN_POSITIVE / 2.0;
        assert!(scrub_frame(&frame).is_none());

        // But an actually negative reading is neutralized.
        let mut frame = clean_frame();
        frame.light_lux = -1e-300;
        frame.magnetic_variance = -0.5;
        let (scrubbed, report) = scrub_frame(&frame).unwrap();
        assert_eq!(report.env_channels, 2);
        assert_eq!(scrubbed.light_lux, 0.0);
        assert_eq!(scrubbed.magnetic_variance, 0.0);
    }

    #[test]
    fn gate_classifies_the_stream() {
        let mut gate = FrameGate::new();
        assert_eq!(gate.admit(1.0), GateVerdict::Fresh);
        assert_eq!(gate.admit(1.5), GateVerdict::Fresh);
        assert_eq!(gate.admit(1.5), GateVerdict::Duplicate);
        assert_eq!(gate.admit(0.5), GateVerdict::TimeRegression);
        // The high-water mark survived the regression burst.
        assert_eq!(gate.admit(1.4), GateVerdict::TimeRegression);
        assert_eq!(gate.admit(2.0), GateVerdict::Fresh);
        assert_eq!(gate.admit(f64::NAN), GateVerdict::Rejected);
        gate.reset();
        assert_eq!(gate.admit(0.1), GateVerdict::Fresh);
    }
}
