//! Deterministic parallel sweep engine.
//!
//! Chaos sweeps and benchmark regenerators run many independent
//! `(scenario, seed, fault_plan)` walks. Each walk is a pure function of
//! its inputs (the observability sidecar never feeds back into the
//! pipeline — see `DESIGN.md` §8), so the walks can execute on any number
//! of worker threads as long as results are *merged in canonical job
//! order*, never arrival order. This module provides that engine:
//!
//! * [`run_ordered`] — execute a slice of jobs on `jobs` worker threads,
//!   returning results indexed exactly like the input. `jobs <= 1` runs
//!   inline on the caller's thread with no pool at all, preserving the
//!   historical single-threaded code path bit for bit.
//! * [`run_observed`] — same, but each job runs under an isolated
//!   [`ObsSession`] whose metrics/calibration/flight captures are folded
//!   into one [`MergedObs`] in ascending job order. Sessions are
//!   installed at *every* job count (including 1) so the merged sidecar
//!   is invariant in the worker count by construction.
//! * [`WalkJob`] — the canonical sweep work unit, with a
//!   [`split_seed`](uniloc_rng::split_seed)-based per-lane seed helper so
//!   sibling walks never share RNG streams.
//!
//! # Determinism contract
//!
//! For any `items` and pure `f`, `run_ordered(items, n, f)` returns the
//! same `Vec` for every `n >= 1`. Workers claim indices from a shared
//! atomic counter — the *assignment* of jobs to threads varies run to
//! run, but no output depends on it. `tests/parallel_differential.rs`
//! checks the end-to-end corollary: chaos artifacts are byte-identical
//! across `--jobs 1/2/4/8`.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use uniloc_obs::calib::CalibrationSnapshot;
use uniloc_obs::metrics::MetricsSnapshot;
use uniloc_obs::session::{self, ObsSession, SessionCapture};

/// Which pool-boundary invariant broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolErrorKind {
    /// A claimed job never wrote its result slot.
    NoResult,
    /// An ownership-passing job never returned its item.
    LostItem,
}

/// A broken invariant at the worker-pool boundary. Unlike a panic string,
/// the error names the job index, the lane the caller attached to it (when
/// the pool ran supervised) and the phase label, so a failure deep in a
/// 10k-session fleet is diagnosable from the message alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Index of the job in the batch (canonical input order).
    pub job: usize,
    /// The caller-attached lane, when the pool ran supervised.
    pub lane: Option<u64>,
    /// The caller's phase label (e.g. `fleet.step`).
    pub phase: &'static str,
    pub kind: PoolErrorKind,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            PoolErrorKind::NoResult => "produced no result",
            PoolErrorKind::LostItem => "lost its item",
        };
        write!(f, "parallel job {} (phase {}", self.job, self.phase)?;
        if let Some(lane) = self.lane {
            write!(f, ", lane {lane}")?;
        }
        write!(f, ") {what}")
    }
}

impl std::error::Error for PoolError {}

/// A supervised job that panicked: the panic was caught at the pool
/// boundary ([`run_supervised_mut`]) and converted into this typed
/// failure instead of unwinding through the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Index of the job in the batch (canonical input order).
    pub job: usize,
    /// The caller-attached lane (the fleet scheduler passes the session's
    /// lane so the failure names the walker, not just the batch slot).
    pub lane: Option<u64>,
    /// The caller's phase label (e.g. `fleet.step`).
    pub phase: &'static str,
    /// The panic payload, when it was a string (the common case).
    pub panic: String,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parallel job {} (phase {}", self.job, self.phase)?;
        if let Some(lane) = self.lane {
            write!(f, ", lane {lane}")?;
        }
        write!(f, ") panicked: {}", self.panic)
    }
}

impl std::error::Error for JobFailure {}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn pool_invariant(job: usize, phase: &'static str, kind: PoolErrorKind) -> ! {
    panic!("{}", PoolError { job, lane: None, phase, kind })
}

/// A canonical sweep work unit: one walk of `scenario` under `fault_plan`
/// with a dedicated RNG lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkJob {
    pub scenario: String,
    pub seed: u64,
    pub fault_plan: String,
}

impl WalkJob {
    /// Derive the per-job seed for lane `lane` of a sweep rooted at
    /// `root_seed`. Uses [`uniloc_rng::split_seed`] so sibling lanes are
    /// decorrelated from each other and from the root stream.
    pub fn lane_seed(root_seed: u64, lane: u64) -> u64 {
        uniloc_rng::split_seed(root_seed, lane)
    }

    pub fn new(scenario: impl Into<String>, root_seed: u64, lane: u64, fault_plan: impl Into<String>) -> Self {
        WalkJob {
            scenario: scenario.into(),
            seed: Self::lane_seed(root_seed, lane),
            fault_plan: fault_plan.into(),
        }
    }
}

/// Observability output of a parallel sweep, folded in job order.
///
/// Merge semantics (all deterministic in job order, never arrival order):
/// counters add; gauges take the *latest job's* value; histograms merge
/// bucket-wise; calibration cells merge count-weighted; flight-recorder
/// dump lines concatenate.
#[derive(Debug, Clone, Default)]
pub struct MergedObs {
    pub metrics: MetricsSnapshot,
    pub calibration: CalibrationSnapshot,
    pub flight_lines: Vec<String>,
}

impl MergedObs {
    /// Fold `cap` (the capture of the *next* job in canonical order) into
    /// this accumulator.
    pub fn fold(&mut self, cap: &SessionCapture) -> Result<(), String> {
        self.metrics = self.metrics.merge(&cap.metrics)?;
        self.calibration = self.calibration.merge(&cap.calibration)?;
        self.flight_lines.extend(cap.flight_lines.iter().cloned());
        Ok(())
    }

    /// Fold another already-merged accumulator (e.g. a later sweep
    /// phase's output) after this one.
    pub fn absorb(&mut self, later: &MergedObs) -> Result<(), String> {
        self.metrics = self.metrics.merge(&later.metrics)?;
        self.calibration = self.calibration.merge(&later.calibration)?;
        self.flight_lines.extend(later.flight_lines.iter().cloned());
        Ok(())
    }

    /// Fold a sequence of captures in the order given.
    pub fn from_captures<'a>(caps: impl IntoIterator<Item = &'a SessionCapture>) -> Result<MergedObs, String> {
        let mut merged = MergedObs::default();
        for cap in caps {
            merged.fold(cap)?;
        }
        Ok(merged)
    }
}

/// Execute `f(index, item)` for every item, on up to `jobs` worker
/// threads, returning results in input order.
///
/// `jobs` is clamped to `[1, items.len()]`. With one effective worker the
/// loop runs inline on the caller's thread — no threads are spawned, so
/// `--jobs 1` is exactly the historical sequential path.
pub fn run_ordered<I, T, F>(items: &[I], jobs: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n.max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let out = f(idx, &items[idx]);
                slots.lock().expect("parallel slot lock poisoned")[idx] = Some(out);
            });
        }
    });
    let results = slots.into_inner().expect("parallel slot lock poisoned");
    results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| pool_invariant(i, "run_ordered", PoolErrorKind::NoResult))
        })
        .collect()
}

/// Like [`run_ordered`], but the jobs *own and mutate* their items: the
/// batch is moved in, every item is handed to exactly one worker as
/// `&mut I`, and the (possibly mutated) items come back in input order
/// alongside the per-item results.
///
/// This is the fleet scheduler's stepping primitive: a
/// [`crate::fleet::FleetScheduler`] round moves the due sessions out of
/// their slots, steps each one on some worker, and puts the advanced
/// state back. The same determinism contract as [`run_ordered`] applies —
/// items and results depend only on the input order, never on which
/// thread ran what — and `jobs <= 1` runs inline on the caller's thread
/// with no pool at all.
pub fn run_ordered_mut<I, T, F>(items: Vec<I>, jobs: usize, f: F) -> (Vec<I>, Vec<T>)
where
    I: Send,
    T: Send,
    F: Fn(usize, &mut I) -> T + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n.max(1));
    if workers <= 1 {
        let mut items = items;
        let results =
            items.iter_mut().enumerate().map(|(i, item)| f(i, item)).collect();
        return (items, results);
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<I>>> =
        items.into_iter().map(|item| Mutex::new(Some(item))).collect();
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                // Each index is claimed exactly once, so the item is taken
                // and returned by the same worker with no contention.
                let mut item = slots[idx]
                    .lock()
                    .expect("parallel item lock poisoned")
                    .take()
                    .expect("parallel item claimed twice");
                let out = f(idx, &mut item);
                *slots[idx].lock().expect("parallel item lock poisoned") = Some(item);
                results.lock().expect("parallel result lock poisoned")[idx] = Some(out);
            });
        }
    });
    let items = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner().expect("parallel item lock poisoned").unwrap_or_else(|| {
                pool_invariant(i, "run_ordered_mut", PoolErrorKind::LostItem)
            })
        })
        .collect();
    let results = results
        .into_inner()
        .expect("parallel result lock poisoned")
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                pool_invariant(i, "run_ordered_mut", PoolErrorKind::NoResult)
            })
        })
        .collect();
    (items, results)
}

/// Like [`run_ordered_mut`], but *supervised*: each job runs under
/// [`catch_unwind`], so a panicking job surrenders its (possibly
/// half-mutated) item back to its slot and yields a typed [`JobFailure`]
/// naming the job, its lane (via `lane_of`) and the caller's `phase` —
/// instead of unwinding through the pool and killing every sibling job.
///
/// This is the fleet scheduler's crash-safety boundary: one poisoned
/// session's panic becomes a per-lane `Err` the scheduler can retry or
/// quarantine, while the rest of the batch completes normally. The same
/// determinism contract as [`run_ordered_mut`] applies — which jobs
/// panic, and everything about the survivors, is a pure function of the
/// input order.
pub fn run_supervised_mut<I, T, F, L>(
    items: Vec<I>,
    jobs: usize,
    phase: &'static str,
    lane_of: L,
    f: F,
) -> (Vec<I>, Vec<Result<T, JobFailure>>)
where
    I: Send,
    T: Send,
    L: Fn(&I) -> Option<u64> + Sync,
    F: Fn(usize, &mut I) -> T + Sync,
{
    let supervised = |idx: usize, item: &mut I| -> Result<T, JobFailure> {
        // The item is only observably half-mutated on the Err path, where
        // the caller's contract is "retry or quarantine", never "use the
        // result" — hence AssertUnwindSafe.
        catch_unwind(AssertUnwindSafe(|| f(idx, item))).map_err(|payload| JobFailure {
            job: idx,
            lane: lane_of(item),
            phase,
            panic: panic_text(payload),
        })
    };
    run_ordered_mut(items, jobs, supervised)
}

/// Like [`run_ordered`], but each job runs under an isolated
/// [`ObsSession`]: its metrics, calibration feed and flight-recorder
/// output land in per-job private state instead of the process globals,
/// then merge into one [`MergedObs`] in ascending job order.
///
/// The session is installed for every job at every worker count, so the
/// merged sidecar is a pure function of the job list — independent of
/// `jobs` — by construction.
pub fn run_observed<I, T, F>(items: &[I], jobs: usize, f: F) -> (Vec<T>, MergedObs)
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let wrapped = run_ordered(items, jobs, |idx, item| {
        let sess = Arc::new(ObsSession::isolated());
        let guard = session::install(Arc::clone(&sess));
        let out = f(idx, item);
        drop(guard);
        let cap = sess.capture();
        (out, cap)
    });
    let mut results = Vec::with_capacity(wrapped.len());
    let mut merged = MergedObs::default();
    for (out, cap) in wrapped {
        merged
            .fold(&cap)
            .unwrap_or_else(|e| panic!("observability merge failed: {e}"));
        results.push(out);
    }
    (results, merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_ordered_matches_sequential_for_all_worker_counts() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for jobs in [0usize, 1, 2, 3, 4, 8, 64] {
            let got = run_ordered(&items, jobs, |_, x| x * x + 1);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn run_ordered_handles_empty_and_single_item() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_ordered(&empty, 4, |_, x| *x).is_empty());
        assert_eq!(run_ordered(&[9u32], 4, |_, x| x + 1), vec![10]);
    }

    #[test]
    fn run_ordered_executes_each_job_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..100).collect();
        let got = run_ordered(&items, 8, |i, item| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, *item);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(got, items);
    }

    #[test]
    fn run_ordered_mut_returns_mutated_items_in_order() {
        for jobs in [0usize, 1, 2, 4, 8] {
            let items: Vec<u64> = (0..23).collect();
            let (items, results) = run_ordered_mut(items, jobs, |i, x| {
                *x += 100;
                i as u64 + *x
            });
            let expect_items: Vec<u64> = (100..123).collect();
            let expect_results: Vec<u64> = (0..23).map(|i| 2 * i + 100).collect();
            assert_eq!(items, expect_items, "jobs={jobs}");
            assert_eq!(results, expect_results, "jobs={jobs}");
        }
    }

    #[test]
    fn run_ordered_mut_handles_empty_and_single_item() {
        let (items, results) = run_ordered_mut(Vec::<u32>::new(), 4, |_, x| *x);
        assert!(items.is_empty() && results.is_empty());
        let (items, results) = run_ordered_mut(vec![7u32], 4, |_, x| {
            *x += 1;
            *x
        });
        assert_eq!((items, results), (vec![8], vec![8]));
    }

    #[test]
    fn run_observed_merges_counters_in_job_order() {
        let items: Vec<u64> = (0..12).collect();
        let run = |jobs: usize| {
            run_observed(&items, jobs, |i, x| {
                let m = uniloc_obs::global_metrics();
                m.counter("par.test.jobs").inc();
                m.gauge("par.test.last").set(i as f64);
                x + 1
            })
        };
        let (seq, obs1) = run(1);
        let (par, obs4) = run(4);
        assert_eq!(seq, par);
        assert_eq!(obs1.metrics, obs4.metrics);
        let jobs_count = obs1
            .metrics
            .counters
            .iter()
            .find(|(n, _)| n == "par.test.jobs")
            .map(|(_, v)| *v);
        assert_eq!(jobs_count, Some(12));
        // Gauges take the latest job's value in canonical order.
        let last = obs1
            .metrics
            .gauges
            .iter()
            .find(|(n, _)| n == "par.test.last")
            .map(|(_, v)| *v);
        assert_eq!(last, Some(11.0));
    }

    #[test]
    fn run_observed_keeps_worker_metrics_out_of_process_registry() {
        let before = uniloc_obs::process_metrics()
            .snapshot()
            .counters
            .iter()
            .find(|(n, _)| n == "par.test.leak")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        let items: Vec<u64> = (0..6).collect();
        let (_, obs) = run_observed(&items, 3, |_, _| {
            uniloc_obs::global_metrics().counter("par.test.leak").inc();
        });
        let after = uniloc_obs::process_metrics()
            .snapshot()
            .counters
            .iter()
            .find(|(n, _)| n == "par.test.leak")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert_eq!(before, after, "worker counters must not leak into process registry");
        let merged = obs
            .metrics
            .counters
            .iter()
            .find(|(n, _)| n == "par.test.leak")
            .map(|(_, v)| *v);
        assert_eq!(merged, Some(6));
    }

    #[test]
    fn run_supervised_mut_converts_panics_into_typed_failures() {
        for jobs in [1usize, 2, 4] {
            let items: Vec<u64> = (0..12).collect();
            let (items, results) =
                run_supervised_mut(items, jobs, "test.phase", |x| Some(*x + 100), |_, x| {
                    if *x % 5 == 3 {
                        panic!("injected failure on {x}");
                    }
                    *x += 1;
                    *x
                });
            // Panicking jobs keep their (unmutated) items; survivors mutate.
            let expect_items: Vec<u64> =
                (0..12).map(|x| if x % 5 == 3 { x } else { x + 1 }).collect();
            assert_eq!(items, expect_items, "jobs={jobs}");
            for (i, r) in results.iter().enumerate() {
                if i as u64 % 5 == 3 {
                    let err = r.as_ref().unwrap_err();
                    assert_eq!(err.job, i);
                    assert_eq!(err.lane, Some(i as u64 + 100));
                    assert_eq!(err.phase, "test.phase");
                    assert!(err.panic.contains("injected failure"), "{}", err.panic);
                } else {
                    assert_eq!(*r, Ok(i as u64 + 1), "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn pool_errors_name_job_lane_and_phase() {
        let e = PoolError {
            job: 7,
            lane: Some(42),
            phase: "fleet.step",
            kind: PoolErrorKind::NoResult,
        };
        assert_eq!(e.to_string(), "parallel job 7 (phase fleet.step, lane 42) produced no result");
        let f = JobFailure {
            job: 3,
            lane: None,
            phase: "run_ordered_mut",
            panic: "boom".to_owned(),
        };
        assert_eq!(f.to_string(), "parallel job 3 (phase run_ordered_mut) panicked: boom");
    }

    #[test]
    fn walk_job_lane_seeds_are_distinct() {
        let mut seen = HashSet::new();
        for lane in 0..256u64 {
            assert!(seen.insert(WalkJob::lane_seed(7, lane)));
        }
        let job = WalkJob::new("office", 7, 3, "nan_storm");
        assert_eq!(job.seed, WalkJob::lane_seed(7, 3));
        assert_eq!(job.scenario, "office");
        assert_eq!(job.fault_plan, "nan_storm");
    }
}
