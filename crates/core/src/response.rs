//! Table V: the response-time decomposition for one location estimate.
//!
//! UniLoc offloads the per-scheme computation to a server; one fix costs
//! phone-side sensing/pre-processing, an upload, the slowest scheme's
//! server computation (schemes run in parallel), UniLoc's own additions
//! (error prediction + BMA — the only parts this paper adds, measured at
//! 6.0 ms and 0.1 ms), and the download. "The data transmissions of UniLoc
//! occupy 73% of the total response time."
//!
//! The scheme-compute, error-prediction and BMA entries can be replaced
//! with values measured on this machine (see the `bma` and
//! `error_prediction` Criterion benches) via
//! [`ResponseTimeModel::with_measured`].

use uniloc_schemes::SchemeId;

/// Per-stage response-time model (milliseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseTimeModel {
    /// Phone-side sensing + pre-processing (step model inference, scan
    /// collection).
    pub phone_ms: f64,
    /// Upload of pre-processed sensor data.
    pub upload_ms: f64,
    /// Server compute per scheme (they run in parallel; the slowest
    /// dominates).
    pub scheme_ms: Vec<(SchemeId, f64)>,
    /// Online error prediction for all schemes.
    pub error_prediction_ms: f64,
    /// The BMA combination itself.
    pub bma_ms: f64,
    /// Download of the fused result.
    pub download_ms: f64,
}

impl Default for ResponseTimeModel {
    fn default() -> Self {
        ResponseTimeModel {
            phone_ms: 7.5,
            upload_ms: 35.0,
            scheme_ms: vec![
                (SchemeId::Gps, 0.1),
                (SchemeId::Wifi, 1.2),
                (SchemeId::Cellular, 0.8),
                (SchemeId::Motion, 4.8),
                (SchemeId::Fusion, 5.6),
            ],
            error_prediction_ms: 6.0,
            bma_ms: 0.1,
            download_ms: 18.0,
        }
    }
}

/// The totals derived from a [`ResponseTimeModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseTimeReport {
    /// The slowest scheme's server compute (ms).
    pub slowest_scheme_ms: f64,
    /// Total server compute including UniLoc's additions (ms).
    pub server_ms: f64,
    /// Total transmission time (ms).
    pub transmission_ms: f64,
    /// End-to-end response time (ms).
    pub total_ms: f64,
    /// Fraction of the total spent in transmissions.
    pub transmission_fraction: f64,
}

impl ResponseTimeModel {
    /// Replaces the UniLoc-added stages with values measured on this
    /// machine.
    pub fn with_measured(mut self, error_prediction_ms: f64, bma_ms: f64) -> Self {
        self.error_prediction_ms = error_prediction_ms;
        self.bma_ms = bma_ms;
        self
    }

    /// The computation UniLoc adds on top of the underlying schemes (ms) —
    /// the paper reports 6.1 ms.
    pub fn uniloc_added_ms(&self) -> f64 {
        self.error_prediction_ms + self.bma_ms
    }

    /// Derives the Table V totals.
    pub fn report(&self) -> ResponseTimeReport {
        let slowest = self
            .scheme_ms
            .iter()
            .map(|(_, ms)| *ms)
            .fold(0.0f64, f64::max);
        let server = slowest + self.uniloc_added_ms();
        let transmission = self.upload_ms + self.download_ms;
        let total = self.phone_ms + transmission + server;
        ResponseTimeReport {
            slowest_scheme_ms: slowest,
            server_ms: server,
            transmission_ms: transmission,
            total_ms: total,
            transmission_fraction: transmission / total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_shape() {
        let r = ResponseTimeModel::default().report();
        // Fusion is the slowest scheme at 5.6 ms.
        assert!((r.slowest_scheme_ms - 5.6).abs() < 1e-12);
        // Real-time: well under 100 ms end to end.
        assert!(r.total_ms < 100.0);
        // Transmissions dominate at ~73%.
        assert!(
            (r.transmission_fraction - 0.73).abs() < 0.02,
            "transmission fraction {}",
            r.transmission_fraction
        );
    }

    #[test]
    fn uniloc_addition_is_small() {
        let m = ResponseTimeModel::default();
        assert!((m.uniloc_added_ms() - 6.1).abs() < 1e-12);
    }

    #[test]
    fn measured_overrides() {
        let m = ResponseTimeModel::default().with_measured(0.5, 0.01);
        assert!((m.uniloc_added_ms() - 0.51).abs() < 1e-12);
        let r = m.report();
        assert!(r.total_ms < ResponseTimeModel::default().report().total_ms);
    }

    #[test]
    fn parallel_schemes_use_max_not_sum() {
        let m = ResponseTimeModel::default();
        let sum: f64 = m.scheme_ms.iter().map(|(_, ms)| ms).sum();
        let r = m.report();
        assert!(r.server_ms < sum, "schemes run in parallel");
    }
}
