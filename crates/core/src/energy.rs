//! Section IV-C / Table IV: power and energy accounting.
//!
//! The paper measures whole-phone power with a Monsoon monitor on a Samsung
//! Galaxy S2 while each localization system runs over daily path 1. We
//! reproduce the accounting structure: a whole-phone baseline (screen +
//! system + always-on cellular modem, "to mimic the normal usage of a phone
//! as a user") plus per-sensor increments, with two UniLoc-specific
//! optimizations:
//!
//! * **GPS duty cycling** — "GPS is turned off when its error is predicted
//!   to be large"; the receiver runs only in the epochs where the engine's
//!   policy enabled it.
//! * **Offloading** — particle-filter computation runs on a server;
//!   pre-processed step summaries (4 bytes / 0.5 s) make the radio cost a
//!   small constant increment.

use crate::pipeline::EpochRecord;
use uniloc_schemes::SchemeId;

/// Whole-phone power-state model (milliwatts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerProfile {
    /// Screen + OS + always-on cellular modem.
    pub baseline_mw: f64,
    /// Inertial sensing at 50 Hz + on-phone step pre-processing.
    pub imu_mw: f64,
    /// Periodic WiFi scanning.
    pub wifi_scan_mw: f64,
    /// Active cellular RSSI logging (on top of the idle modem).
    pub cell_scan_mw: f64,
    /// GPS receiver while enabled.
    pub gps_mw: f64,
    /// Offload transmissions (averaged over the duty cycle).
    pub offload_tx_mw: f64,
}

impl Default for PowerProfile {
    /// Galaxy-S2-era constants chosen so the accounting reproduces Table
    /// IV's shape: PDR is the cheapest scheme and UniLoc sits ~14% above it.
    fn default() -> Self {
        PowerProfile {
            baseline_mw: 1150.0,
            imu_mw: 30.0,
            wifi_scan_mw: 90.0,
            cell_scan_mw: 45.0,
            gps_mw: 350.0,
            offload_tx_mw: 10.0,
        }
    }
}

/// One row of Table IV.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// System name (scheme or UniLoc variant).
    pub system: String,
    /// Average whole-phone power while localizing (mW).
    pub power_mw: f64,
    /// Walk duration (s).
    pub time_s: f64,
    /// Energy (J).
    pub energy_j: f64,
}

impl EnergyReport {
    fn new(system: impl Into<String>, power_mw: f64, time_s: f64) -> Self {
        EnergyReport {
            system: system.into(),
            power_mw,
            time_s,
            energy_j: power_mw * time_s / 1000.0,
        }
    }
}

impl PowerProfile {
    /// Average power of one standalone scheme (mW). The GPS scheme keeps
    /// its receiver on for the whole walk (stock behaviour: the phone keeps
    /// searching indoors).
    pub fn scheme_power_mw(&self, id: SchemeId) -> f64 {
        self.baseline_mw
            + match id {
                SchemeId::Gps => self.gps_mw,
                SchemeId::Wifi => self.wifi_scan_mw,
                SchemeId::Cellular => self.cell_scan_mw,
                SchemeId::Motion => self.imu_mw + self.offload_tx_mw,
                SchemeId::Fusion => self.imu_mw + self.wifi_scan_mw + self.offload_tx_mw,
                _ => 0.0,
            }
    }

    /// Average power of the full UniLoc system (mW). `gps_duty` is the
    /// fraction of walk time the duty-cycling policy kept the receiver on;
    /// pass 0 for the "without GPS" row.
    pub fn uniloc_power_mw(&self, gps_duty: f64) -> f64 {
        assert!((0.0..=1.0).contains(&gps_duty), "duty must be a fraction");
        self.baseline_mw
            + self.imu_mw
            + self.wifi_scan_mw
            + self.cell_scan_mw
            + self.offload_tx_mw
            + self.gps_mw * gps_duty
    }

    /// Builds the full Table IV from a walk's records.
    pub fn tabulate(&self, records: &[EpochRecord]) -> Vec<EnergyReport> {
        let time_s = records.last().map_or(0.0, |r| r.t);
        let gps_duty = if records.is_empty() {
            0.0
        } else {
            records.iter().filter(|r| r.gps_enabled).count() as f64 / records.len() as f64
        };
        let mut rows: Vec<EnergyReport> = SchemeId::BUILTIN
            .iter()
            .map(|&id| EnergyReport::new(id.to_string(), self.scheme_power_mw(id), time_s))
            .collect();
        rows.push(EnergyReport::new("uniloc w/o gps", self.uniloc_power_mw(0.0), time_s));
        rows.push(EnergyReport::new(
            "uniloc w/ gps",
            self.uniloc_power_mw(gps_duty),
            time_s,
        ));
        rows
    }

    /// The outdoor GPS saving factor: stock GPS keeps the receiver on for
    /// the entire outdoor stretch; UniLoc only in the epochs its policy
    /// enabled it. (The paper reports 2.1x.)
    pub fn outdoor_gps_saving(&self, records: &[EpochRecord]) -> Option<f64> {
        let outdoor: Vec<&EpochRecord> = records.iter().filter(|r| !r.indoor).collect();
        if outdoor.is_empty() {
            return None;
        }
        let enabled = outdoor.iter().filter(|r| r.gps_enabled).count();
        if enabled == 0 {
            return None;
        }
        Some(outdoor.len() as f64 / enabled as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_geom::Point;
    use uniloc_iodetect::IoState;

    fn record(t: f64, indoor: bool, gps_enabled: bool) -> EpochRecord {
        EpochRecord {
            t,
            station: t,
            truth: Point::origin(),
            indoor,
            io_detected: if indoor { IoState::Indoor } else { IoState::Outdoor },
            scheme_errors: vec![],
            estimates: vec![],
            predictions: vec![],
            uniloc1_error: None,
            uniloc1_choice: None,
            uniloc2_error: None,
            uniloc2_mixture_error: None,
            oracle_error: None,
            oracle_choice: None,
            weights: vec![],
            gps_enabled,
            tau: None,
            ladder: crate::quarantine::DegradationLadder::Nominal,
            quarantined: vec![],
        }
    }

    #[test]
    fn motion_is_cheapest_scheme() {
        let p = PowerProfile::default();
        let motion = p.scheme_power_mw(SchemeId::Motion);
        for id in SchemeId::BUILTIN {
            assert!(
                p.scheme_power_mw(id) >= motion,
                "{id} cheaper than motion"
            );
        }
        assert!(p.scheme_power_mw(SchemeId::Gps) > p.scheme_power_mw(SchemeId::Wifi));
    }

    #[test]
    fn uniloc_overhead_is_about_14_percent() {
        let p = PowerProfile::default();
        let motion = p.scheme_power_mw(SchemeId::Motion);
        // With the GPS duty cycle observed in the paper's regime (~10% of
        // walk time), the overhead lands near +14%.
        let uniloc = p.uniloc_power_mw(0.10);
        let overhead = uniloc / motion - 1.0;
        assert!(
            (0.10..0.20).contains(&overhead),
            "UniLoc overhead {overhead:.3} out of band"
        );
    }

    #[test]
    fn tabulate_produces_seven_rows() {
        let p = PowerProfile::default();
        let records: Vec<EpochRecord> = (0..100)
            .map(|i| record(i as f64 * 0.5, i < 70, i >= 70 && i % 2 == 0))
            .collect();
        let rows = p.tabulate(&records);
        assert_eq!(rows.len(), 7);
        // Energy = power x time.
        for row in &rows {
            assert!((row.energy_j - row.power_mw * row.time_s / 1000.0).abs() < 1e-9);
        }
        // UniLoc with GPS costs more than without.
        assert!(rows[6].power_mw > rows[5].power_mw);
    }

    #[test]
    fn outdoor_saving_factor() {
        let p = PowerProfile::default();
        // 30 outdoor epochs, GPS on in 15 of them -> saving 2x.
        let mut records: Vec<EpochRecord> =
            (0..70).map(|i| record(i as f64, true, false)).collect();
        records.extend((0..30).map(|i| record(70.0 + i as f64, false, i % 2 == 0)));
        let s = p.outdoor_gps_saving(&records).unwrap();
        assert!((s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_outdoor_epochs_no_saving() {
        let p = PowerProfile::default();
        let records: Vec<EpochRecord> = (0..10).map(|i| record(i as f64, true, false)).collect();
        assert!(p.outdoor_gps_saving(&records).is_none());
    }

    #[test]
    #[should_panic(expected = "duty must be a fraction")]
    fn duty_validated() {
        PowerProfile::default().uniloc_power_mw(1.5);
    }
}
