//! Per-scheme quarantine and the engine's degradation ladder.
//!
//! The paper's exclusion rule — "UniLoc can temporarily exclude one
//! localization scheme by simply setting its confidence as zero" (§III) —
//! covers *unavailable* schemes. This module extends it to *misbehaving*
//! ones: a scheme whose output teleports, turns non-finite, or diverges
//! persistently from the fused estimate is confidence-zeroed and held in
//! an exponential-backoff quarantine, then re-admitted only after it
//! proves sanity for [`READMIT_SANE_EPOCHS`] consecutive epochs. The
//! hysteresis floor guarantees a flapping scheme cannot oscillate in and
//! out of the ensemble faster than [`BACKOFF_BASE_EPOCHS`].
//!
//! The [`DegradationLadder`] summarizes how much of the ensemble is still
//! standing each epoch; it is a pure function of the epoch's outputs and
//! the quarantine set — it never feeds back into fusion, so clean walks
//! are byte-identical with or without it.

use uniloc_schemes::SchemeId;
use uniloc_stats::json::{FromJson, Json, JsonError, ToJson};

/// First quarantine sentence, in epochs. Also the hysteresis floor: two
/// consecutive admissions of the same scheme are always at least this far
/// apart.
pub const BACKOFF_BASE_EPOCHS: u32 = 8;
/// Sentence multiplier per repeated offense.
pub const BACKOFF_FACTOR: u32 = 2;
/// Sentence ceiling, in epochs.
pub const BACKOFF_CAP_EPOCHS: u32 = 128;
/// Consecutive sane probation epochs required for re-admission.
pub const READMIT_SANE_EPOCHS: u32 = 4;

/// Trip thresholds: the signals that convict a scheme (or the fused
/// output). All limits are deliberately far above anything a clean
/// simulated walk produces — verified against clean-run maxima in
/// `tests/failure_injection.rs` — because a false trip would change a
/// golden trace.
pub mod trip {
    use uniloc_schemes::SchemeId;

    /// Per-scheme apparent-speed limit (m/s) between consecutive
    /// estimates; sustained violations convict. Clean-run maxima are
    /// roughly: GPS ~120 (two opposite-sign 30 m fixes in half a second),
    /// fingerprint matches bounded by venue size, PDR bounded by gait.
    pub fn teleport_speed_limit_m_s(id: SchemeId) -> f64 {
        match id {
            SchemeId::Gps => 600.0,
            SchemeId::Wifi => 250.0,
            SchemeId::Cellular => 500.0,
            SchemeId::Motion => 150.0,
            SchemeId::Fusion => 200.0,
            SchemeId::Custom(_) => 400.0,
            // `SchemeId` is non-exhaustive; unknown future schemes get the
            // same generous limit as `Custom`.
            _ => 400.0,
        }
    }

    /// Consecutive speed-limit violations required to convict (a single
    /// legitimate snap-back — e.g. recovering from a multipath episode —
    /// is one jump, not two).
    pub const TELEPORT_CONSECUTIVE: u32 = 2;
    /// Divergence limit: `max(FLOOR, MULT * predicted_mean_error)` meters
    /// from the fused estimate.
    pub const DIVERGE_MULT: f64 = 8.0;
    pub const DIVERGE_FLOOR_M: f64 = 120.0;
    /// Consecutive divergence epochs required to convict.
    pub const DIVERGE_CONSECUTIVE: u32 = 3;
    /// Fused estimate frozen this many epochs (while steps arrive) => the
    /// watchdog declares the output dead.
    pub const FROZEN_EPOCHS: u32 = 20;
    /// Movement below this is "frozen" (simulated noise floors are far
    /// above it every epoch).
    pub const FROZEN_EPS_M: f64 = 1e-6;
    /// Fused-estimate teleport alarm (m/s); sidecar alarm only.
    pub const FUSED_TELEPORT_SPEED_M_S: f64 = 400.0;
}

/// How degraded the ensemble is this epoch. Ordered from healthiest to
/// worst; the chaos sweep reports the worst state reached per scenario.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum DegradationLadder {
    #[default]
    /// Every scheme contributed to the fused estimate.
    Nominal,
    /// This many schemes were excluded (unavailable, duty-cycled off, or
    /// quarantined); the remainder still fused normally.
    Degraded(u32),
    /// Only dead reckoning (the Motion scheme) carried the estimate.
    DeadReckoningOnly,
    /// No usable fused estimate (nothing reported, the output was
    /// non-finite, or the watchdog declared the estimate frozen).
    Lost,
}

impl DegradationLadder {
    /// Severity rank: higher is worse; ties within `Degraded` break on the
    /// exclusion count.
    pub fn rank(&self) -> (u8, u32) {
        match *self {
            DegradationLadder::Nominal => (0, 0),
            DegradationLadder::Degraded(n) => (1, n),
            DegradationLadder::DeadReckoningOnly => (2, 0),
            DegradationLadder::Lost => (3, 0),
        }
    }

    /// Stable machine name (metric/report key).
    pub fn name(&self) -> &'static str {
        match self {
            DegradationLadder::Nominal => "nominal",
            DegradationLadder::Degraded(_) => "degraded",
            DegradationLadder::DeadReckoningOnly => "dead_reckoning_only",
            DegradationLadder::Lost => "lost",
        }
    }
}

impl PartialOrd for DegradationLadder {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DegradationLadder {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

impl std::fmt::Display for DegradationLadder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradationLadder::Degraded(n) => write!(f, "degraded({n})"),
            other => f.write_str(other.name()),
        }
    }
}

impl ToJson for DegradationLadder {
    fn to_json(&self) -> Json {
        match *self {
            DegradationLadder::Degraded(n) => {
                Json::Obj(vec![("degraded".to_owned(), n.to_json())])
            }
            other => Json::Str(other.name().to_owned()),
        }
    }
}

impl FromJson for DegradationLadder {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        if let Some(s) = json.as_str() {
            return match s {
                "nominal" => Ok(DegradationLadder::Nominal),
                "dead_reckoning_only" => Ok(DegradationLadder::DeadReckoningOnly),
                "lost" => Ok(DegradationLadder::Lost),
                other => Err(JsonError::new(format!("unknown ladder state `{other}`"))),
            };
        }
        json.get("degraded")
            .ok_or_else(|| JsonError::new("expected ladder string or {\"degraded\": n}"))
            .and_then(FromJson::from_json)
            .map(DegradationLadder::Degraded)
    }
}

/// What the engine observed about one scheme this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeVerdict {
    /// Output present and consistent with the trip checks.
    Sane,
    /// A trip signal fired (non-finite output, teleport, persistent
    /// divergence).
    Strike,
    /// No estimate this epoch — neither evidence of health nor of fault.
    Absent,
}

/// Where a scheme stands in the quarantine lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Standing {
    /// Participating normally.
    Active,
    /// Serving a sentence; excluded from fusion.
    Quarantined {
        /// Epochs left to serve.
        remaining: u32,
        /// Offenses so far (drives the backoff).
        strikes: u32,
    },
    /// Sentence served; still excluded, but earning re-admission.
    Probation {
        /// Consecutive sane epochs so far.
        sane: u32,
        /// Offenses so far.
        strikes: u32,
    },
}

/// The per-scheme quarantine state machine.
#[derive(Debug, Clone)]
pub struct QuarantineMachine {
    entries: Vec<(SchemeId, Standing)>,
}

/// A state transition worth reporting (metrics / tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineTransition {
    /// The scheme was just quarantined (`strikes` = total offenses now).
    Tripped(SchemeId, u32),
    /// The scheme finished probation and rejoined the ensemble.
    Readmitted(SchemeId),
}

fn backoff(strikes: u32) -> u32 {
    let mut sentence = BACKOFF_BASE_EPOCHS;
    for _ in 1..strikes {
        sentence = (sentence.saturating_mul(BACKOFF_FACTOR)).min(BACKOFF_CAP_EPOCHS);
        if sentence == BACKOFF_CAP_EPOCHS {
            break;
        }
    }
    sentence
}

impl QuarantineMachine {
    /// A machine tracking the given schemes, all initially active.
    pub fn new(schemes: &[SchemeId]) -> Self {
        QuarantineMachine {
            entries: schemes.iter().map(|&id| (id, Standing::Active)).collect(),
        }
    }

    /// Whether the scheme is currently excluded from fusion (serving a
    /// sentence or on probation).
    pub fn is_excluded(&self, id: SchemeId) -> bool {
        self.entries
            .iter()
            .find(|(e, _)| *e == id)
            .is_some_and(|(_, s)| !matches!(s, Standing::Active))
    }

    /// The schemes currently excluded, in engine order.
    pub fn excluded(&self) -> Vec<SchemeId> {
        let mut out = Vec::new();
        self.excluded_into(&mut out);
        out
    }

    /// [`excluded`](Self::excluded) into a caller-owned buffer — the
    /// hot-path form the per-epoch loop uses to stay allocation-free.
    pub fn excluded_into(&self, out: &mut Vec<SchemeId>) {
        out.clear();
        out.extend(
            self.entries
                .iter()
                .filter(|(_, s)| !matches!(s, Standing::Active))
                .map(|(id, _)| *id),
        );
    }

    /// Ticks sentences at the start of an epoch: a quarantined scheme
    /// whose sentence expires moves to probation.
    pub fn begin_epoch(&mut self) {
        for (_, standing) in &mut self.entries {
            if let Standing::Quarantined { remaining, strikes } = standing {
                *remaining = remaining.saturating_sub(1);
                if *remaining == 0 {
                    *standing = Standing::Probation { sane: 0, strikes: *strikes };
                }
            }
        }
    }

    /// Feeds one epoch's verdict for a scheme; returns a transition when
    /// the standing changed in a reportable way.
    pub fn observe(
        &mut self,
        id: SchemeId,
        verdict: SchemeVerdict,
    ) -> Option<QuarantineTransition> {
        let standing = self
            .entries
            .iter_mut()
            .find(|(e, _)| *e == id)
            .map(|(_, s)| s)?;
        match (*standing, verdict) {
            (Standing::Active, SchemeVerdict::Strike) => {
                *standing = Standing::Quarantined { remaining: backoff(1), strikes: 1 };
                Some(QuarantineTransition::Tripped(id, 1))
            }
            (Standing::Probation { strikes, .. }, SchemeVerdict::Strike) => {
                let strikes = strikes + 1;
                *standing = Standing::Quarantined { remaining: backoff(strikes), strikes };
                Some(QuarantineTransition::Tripped(id, strikes))
            }
            (Standing::Probation { sane, strikes }, SchemeVerdict::Sane) => {
                let sane = sane + 1;
                if sane >= READMIT_SANE_EPOCHS {
                    *standing = Standing::Active;
                    Some(QuarantineTransition::Readmitted(id))
                } else {
                    *standing = Standing::Probation { sane, strikes };
                    None
                }
            }
            // Absence proves nothing: probation progress holds steady.
            _ => None,
        }
    }

    /// Resets every scheme to active (new walk).
    pub fn reset(&mut self) {
        for (_, standing) in &mut self.entries {
            *standing = Standing::Active;
        }
    }

    /// Every scheme's standing, in engine order — the introspection the
    /// checkpoint/resume equivalence tests compare: a restored session
    /// must land on the same sentence remainders, probation countdowns
    /// and strike counts as the uninterrupted one.
    pub fn standings(&self) -> Vec<(SchemeId, QuarantineStanding)> {
        self.entries
            .iter()
            .map(|&(id, s)| {
                let standing = match s {
                    Standing::Active => QuarantineStanding::Active,
                    Standing::Quarantined { remaining, strikes } => {
                        QuarantineStanding::Quarantined { remaining, strikes }
                    }
                    Standing::Probation { sane, strikes } => {
                        QuarantineStanding::Probation { sane, strikes }
                    }
                };
                (id, standing)
            })
            .collect()
    }
}

/// A scheme's standing in the quarantine lifecycle, as
/// [`QuarantineMachine::standings`] reports it. A public mirror of the
/// machine's private state — the machine stays the only writer, but
/// checkpoint/resume equivalence tests need to *read* mid-sentence state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineStanding {
    /// Participating normally.
    Active,
    /// Serving a sentence: `remaining` epochs left, `strikes` offenses.
    Quarantined { remaining: u32, strikes: u32 },
    /// Earning re-admission: `sane` consecutive sane epochs so far.
    Probation { sane: u32, strikes: u32 },
}

#[cfg(test)]
mod tests {
    use super::*;

    const ID: SchemeId = SchemeId::Wifi;

    fn machine() -> QuarantineMachine {
        QuarantineMachine::new(&[SchemeId::Gps, SchemeId::Wifi, SchemeId::Motion])
    }

    /// Drives the machine to the next probation window, returning the
    /// number of epochs served.
    fn serve_sentence(m: &mut QuarantineMachine) -> u32 {
        let mut epochs = 0;
        while m.is_excluded(ID) {
            m.begin_epoch();
            epochs += 1;
            if m.observe(ID, SchemeVerdict::Sane)
                == Some(QuarantineTransition::Readmitted(ID))
            {
                break;
            }
            assert!(epochs < 10_000, "sentence never ends");
        }
        epochs
    }

    #[test]
    fn trip_excludes_and_readmission_requires_consecutive_sanity() {
        let mut m = machine();
        assert!(!m.is_excluded(ID));
        assert_eq!(
            m.observe(ID, SchemeVerdict::Strike),
            Some(QuarantineTransition::Tripped(ID, 1))
        );
        assert!(m.is_excluded(ID));
        assert_eq!(m.excluded(), vec![ID]);
        let served = serve_sentence(&mut m);
        assert!(!m.is_excluded(ID));
        // Sentence (8) + probation (4); the sentence's final epoch doubles
        // as the first probation observation.
        assert_eq!(served, BACKOFF_BASE_EPOCHS + READMIT_SANE_EPOCHS - 1);
    }

    #[test]
    fn backoff_escalates_and_caps() {
        assert_eq!(backoff(1), 8);
        assert_eq!(backoff(2), 16);
        assert_eq!(backoff(3), 32);
        assert_eq!(backoff(5), 128);
        assert_eq!(backoff(30), BACKOFF_CAP_EPOCHS);
    }

    #[test]
    fn probation_strike_escalates_sentence() {
        let mut m = machine();
        m.observe(ID, SchemeVerdict::Strike);
        // Serve the 8-epoch sentence to reach probation.
        for _ in 0..BACKOFF_BASE_EPOCHS {
            m.begin_epoch();
        }
        assert!(m.is_excluded(ID));
        // Misbehave again during probation: 16-epoch sentence.
        assert_eq!(
            m.observe(ID, SchemeVerdict::Strike),
            Some(QuarantineTransition::Tripped(ID, 2))
        );
        let mut epochs = 0;
        loop {
            m.begin_epoch();
            epochs += 1;
            if m.observe(ID, SchemeVerdict::Sane)
                == Some(QuarantineTransition::Readmitted(ID))
            {
                break;
            }
        }
        assert_eq!(
            epochs,
            BACKOFF_BASE_EPOCHS * BACKOFF_FACTOR + READMIT_SANE_EPOCHS - 1
        );
    }

    #[test]
    fn absence_holds_probation_progress() {
        let mut m = machine();
        m.observe(ID, SchemeVerdict::Strike);
        for _ in 0..BACKOFF_BASE_EPOCHS {
            m.begin_epoch();
        }
        // 3 sane epochs, then a gap, then the 4th: still re-admitted (the
        // gap neither helps nor resets).
        for _ in 0..READMIT_SANE_EPOCHS - 1 {
            assert_eq!(m.observe(ID, SchemeVerdict::Sane), None);
        }
        assert_eq!(m.observe(ID, SchemeVerdict::Absent), None);
        assert!(m.is_excluded(ID));
        assert_eq!(
            m.observe(ID, SchemeVerdict::Sane),
            Some(QuarantineTransition::Readmitted(ID))
        );
        assert!(!m.is_excluded(ID));
    }

    #[test]
    fn readmission_fires_at_exactly_the_sane_threshold() {
        let mut m = machine();
        m.observe(ID, SchemeVerdict::Strike);
        for _ in 0..BACKOFF_BASE_EPOCHS {
            m.begin_epoch();
        }
        // READMIT_SANE_EPOCHS - 1 sane epochs keep the scheme excluded;
        // the next one — exactly at the threshold — readmits.
        for i in 0..READMIT_SANE_EPOCHS - 1 {
            assert_eq!(m.observe(ID, SchemeVerdict::Sane), None, "epoch {i}");
            assert!(m.is_excluded(ID), "still on probation after {} sane", i + 1);
        }
        assert_eq!(
            m.observe(ID, SchemeVerdict::Sane),
            Some(QuarantineTransition::Readmitted(ID))
        );
    }

    #[test]
    fn strikes_reset_after_readmission() {
        let mut m = machine();
        m.observe(ID, SchemeVerdict::Strike);
        serve_sentence(&mut m);
        assert!(!m.is_excluded(ID));
        // A fresh offense after full readmission starts over at strike 1
        // with the base sentence, not the escalated one.
        assert_eq!(
            m.observe(ID, SchemeVerdict::Strike),
            Some(QuarantineTransition::Tripped(ID, 1))
        );
        let served = serve_sentence(&mut m);
        assert_eq!(served, BACKOFF_BASE_EPOCHS + READMIT_SANE_EPOCHS - 1);
    }

    #[test]
    fn sane_and_absent_while_active_are_noops() {
        let mut m = machine();
        assert_eq!(m.observe(ID, SchemeVerdict::Sane), None);
        assert_eq!(m.observe(ID, SchemeVerdict::Absent), None);
        assert!(!m.is_excluded(ID));
    }

    #[test]
    fn strikes_on_active_unknown_scheme_are_ignored() {
        let mut m = machine();
        assert_eq!(m.observe(SchemeId::Custom(9), SchemeVerdict::Strike), None);
        assert!(m.excluded().is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = machine();
        m.observe(ID, SchemeVerdict::Strike);
        m.observe(SchemeId::Gps, SchemeVerdict::Strike);
        m.reset();
        assert!(m.excluded().is_empty());
    }

    #[test]
    fn ladder_orders_by_severity() {
        use DegradationLadder::*;
        assert!(Nominal < Degraded(1));
        assert!(Degraded(1) < Degraded(3));
        assert!(Degraded(4) < DeadReckoningOnly);
        assert!(DeadReckoningOnly < Lost);
        assert_eq!(format!("{}", Degraded(2)), "degraded(2)");
    }

    #[test]
    fn ladder_round_trips_through_json() {
        use DegradationLadder::*;
        for state in [Nominal, Degraded(0), Degraded(3), DeadReckoningOnly, Lost] {
            let json = uniloc_stats::json::to_string(&state);
            let back: DegradationLadder =
                uniloc_stats::json::from_str(&json).expect("parse ladder");
            assert_eq!(back, state);
        }
    }
}
