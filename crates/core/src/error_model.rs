//! Section III: the general two-step error-modeling workflow.
//!
//! Step 1 (data collection) happens in [`crate::pipeline::collect_training`]
//! — walk a training venue with ground truth, record per-scheme
//! `(features, localization error)` tuples, split by indoor/outdoor.
//! Step 2 (regression modeling) happens here: a multiple linear regression
//! per scheme and environment with the intercept forced to zero ("the
//! localization error is zero if all coefficients are zero") — except GPS,
//! whose error the paper models as a constant Gaussian
//! (`beta_0 = 13.5 m`, `sigma_eps = 9.4 m`).
//!
//! "The offline error modeling only needs to be performed once when one
//! localization scheme is first integrated into UniLoc. The learned error
//! models can be used in new places without retraining" — hence the set is
//! serializable.

use std::collections::BTreeMap;
use uniloc_iodetect::IoState;
use uniloc_schemes::SchemeId;
use uniloc_stats::{Normal, OlsBuilder, StatsError};

/// Minimum predicted error (m) — regressions with negative coefficients can
/// extrapolate below zero; a localization error is never smaller than this.
pub const MIN_PREDICTED_ERROR_M: f64 = 0.1;

/// Minimum samples needed to fit one (scheme, environment) model.
pub const MIN_TRAINING_SAMPLES: usize = 10;

/// One training tuple from the data-collection phase.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSample {
    /// Which scheme produced the estimate.
    pub scheme: SchemeId,
    /// Indoor or outdoor (ground truth during training).
    pub indoor: bool,
    /// Feature vector (Table I ordering for the scheme).
    pub features: Vec<f64>,
    /// Measured localization error (m).
    pub error: f64,
}

/// A fitted linear error model for one (scheme, environment).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearErrorModel {
    /// Intercept `beta_0` (zero for all schemes except GPS).
    pub intercept: f64,
    /// Feature coefficients `beta_1 .. beta_p`.
    pub coefficients: Vec<f64>,
    /// Residual standard deviation `sigma_eps` (drives Eq. 2).
    pub sigma: f64,
    /// Residual mean `mu_eps` (diagnostic; near zero for a good fit).
    pub residual_mean: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Two-sided p-value per coefficient (Table II's significance column).
    pub p_values: Vec<f64>,
    /// Number of training observations.
    pub n_obs: usize,
}

impl LinearErrorModel {
    /// Predicts the expected localization error for a feature vector
    /// (Eq. 6), clamped to [`MIN_PREDICTED_ERROR_M`].
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the fitted coefficient count.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.coefficients.len(),
            "feature arity mismatch in error prediction"
        );
        let mut y = self.intercept;
        for (c, x) in self.coefficients.iter().zip(features) {
            y += c * x;
        }
        y.max(MIN_PREDICTED_ERROR_M)
    }
}

/// The predicted error distribution of one scheme at one location:
/// `Y_t ~ N(mean, sigma)` (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorPrediction {
    /// Expected localization error (m).
    pub mean: f64,
    /// Residual standard deviation of the model (m).
    pub sigma: f64,
}

impl ErrorPrediction {
    /// The probability integral transform of a realized value `x`:
    /// `P(Y_t <= x)` under this prediction. Uniform on `[0, 1]` across
    /// observations exactly when the model is calibrated — the quantity
    /// the calibration monitor bins — and, evaluated at the adaptive
    /// threshold `tau`, exactly Eq. 2's confidence.
    pub fn pit(&self, x: f64) -> f64 {
        // A garbage prediction (non-finite mean) yields zero probability
        // mass below any threshold — the caller sees zero confidence and
        // excludes the scheme, instead of a panic mid-walk.
        if !self.mean.is_finite() || !x.is_finite() {
            return 0.0;
        }
        let sigma = if self.sigma.is_finite() { self.sigma.max(1e-6) } else { 1e-6 };
        Normal::new(self.mean, sigma)
            .expect("parameters validated above")
            .cdf(x)
    }

    /// The `q`-quantile of the predicted error distribution: the error
    /// bound this model claims holds with probability `q` (the value
    /// coverage diagnostics compare against realized error).
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `(0, 1)`.
    pub fn quantile(&self, q: f64) -> f64 {
        // A garbage prediction claims an unbounded error: every coverage
        // check against it fails open rather than panicking.
        if !self.mean.is_finite() {
            return f64::INFINITY;
        }
        let sigma = if self.sigma.is_finite() { self.sigma.max(1e-6) } else { 1e-6 };
        Normal::new(self.mean, sigma)
            .expect("parameters validated above")
            .quantile(q)
    }
}

/// The trained error models of all integrated schemes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ErrorModelSet {
    models: BTreeMap<SchemeId, EnvPair>,
}

#[derive(Debug, Clone, PartialEq, Default)]
struct EnvPair {
    indoor: Option<LinearErrorModel>,
    outdoor: Option<LinearErrorModel>,
}

uniloc_stats::impl_json_struct!(TrainingSample { scheme, indoor, features, error });
uniloc_stats::impl_json_struct!(LinearErrorModel {
    intercept,
    coefficients,
    sigma,
    residual_mean,
    r_squared,
    p_values,
    n_obs,
});
uniloc_stats::impl_json_struct!(ErrorPrediction { mean, sigma });
uniloc_stats::impl_json_struct!(ErrorModelSet { models });
uniloc_stats::impl_json_struct!(EnvPair { indoor, outdoor });

impl ErrorModelSet {
    /// The model for one scheme and environment, if trained.
    pub fn model(&self, scheme: SchemeId, io: IoState) -> Option<&LinearErrorModel> {
        let pair = self.models.get(&scheme)?;
        match io {
            IoState::Indoor => pair.indoor.as_ref(),
            IoState::Outdoor => pair.outdoor.as_ref(),
        }
    }

    /// Inserts/replaces a model (how a user integrates a new scheme).
    pub fn insert(&mut self, scheme: SchemeId, io: IoState, model: LinearErrorModel) {
        let pair = self.models.entry(scheme).or_default();
        match io {
            IoState::Indoor => pair.indoor = Some(model),
            IoState::Outdoor => pair.outdoor = Some(model),
        }
    }

    /// Schemes with at least one trained model.
    pub fn schemes(&self) -> impl Iterator<Item = SchemeId> + '_ {
        self.models.keys().copied()
    }

    /// Predicts the error distribution for a scheme given its current
    /// features. `None` when no model exists for this (scheme, environment)
    /// or the feature arity does not match the trained model.
    pub fn predict(
        &self,
        scheme: SchemeId,
        io: IoState,
        features: &[f64],
    ) -> Option<ErrorPrediction> {
        let m = self.model(scheme, io)?;
        if features.len() != m.coefficients.len() {
            return None;
        }
        // A non-finite feature (corrupt sensor value that slipped through
        // validation) would otherwise propagate NaN into confidences and
        // BMA weights; no prediction is strictly safer than a poisoned one.
        if features.iter().any(|f| !f.is_finite()) {
            return None;
        }
        let mean = m.predict(features);
        if !mean.is_finite() {
            return None;
        }
        Some(ErrorPrediction { mean, sigma: m.sigma })
    }
}

/// Fits error models for every `(scheme, environment)` group in the
/// training samples (Step 2 of the workflow).
///
/// Groups with fewer than [`MIN_TRAINING_SAMPLES`] observations, or with
/// degenerate (collinear) features, are skipped — the paper's framework
/// simply has no model there and excludes the scheme in that environment.
///
/// # Errors
///
/// Returns an error only when *no* model could be fitted at all.
pub fn train(samples: &[TrainingSample]) -> Result<ErrorModelSet, StatsError> {
    let mut groups: BTreeMap<(SchemeId, bool), Vec<&TrainingSample>> = BTreeMap::new();
    for s in samples {
        groups.entry((s.scheme, s.indoor)).or_default().push(s);
    }
    let mut set = ErrorModelSet::default();
    for ((scheme, indoor), group) in groups {
        if group.len() < MIN_TRAINING_SAMPLES {
            continue;
        }
        let io = if indoor { IoState::Indoor } else { IoState::Outdoor };
        let arity = group[0].features.len();
        if group.iter().any(|s| s.features.len() != arity) {
            continue; // inconsistent extraction; skip the group
        }
        let model = if arity == 0 {
            // GPS-style constant model: mean + std of the observed errors.
            let errors: Vec<f64> = group.iter().map(|s| s.error).collect();
            let mean = uniloc_stats::mean(&errors)?;
            let sigma = uniloc_stats::std_dev(&errors).unwrap_or(1.0).max(0.5);
            LinearErrorModel {
                intercept: mean,
                coefficients: vec![],
                sigma,
                residual_mean: 0.0,
                r_squared: 0.0,
                p_values: vec![],
                n_obs: errors.len(),
            }
        } else {
            let xs: Vec<&[f64]> = group.iter().map(|s| s.features.as_slice()).collect();
            let ys: Vec<f64> = group.iter().map(|s| s.error).collect();
            match OlsBuilder::new().intercept(false).fit(&xs, &ys) {
                Ok(fit) => LinearErrorModel {
                    intercept: 0.0,
                    coefficients: fit.coefficients().to_vec(),
                    sigma: fit.residual_std().max(0.25),
                    residual_mean: fit.residual_mean(),
                    r_squared: fit.r_squared(),
                    p_values: fit.p_values().to_vec(),
                    n_obs: fit.n_obs(),
                },
                Err(_) => continue, // collinear features etc.
            }
        };
        set.insert(scheme, io, model);
    }
    if set.models.is_empty() {
        return Err(StatsError::InsufficientData { got: samples.len(), needed: MIN_TRAINING_SAMPLES });
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(scheme: SchemeId, indoor: bool, features: Vec<f64>, error: f64) -> TrainingSample {
        TrainingSample { scheme, indoor, features, error }
    }

    fn planted_samples(beta: &[f64], n: usize, scheme: SchemeId) -> Vec<TrainingSample> {
        (0..n)
            .map(|i| {
                let f: Vec<f64> = (0..beta.len())
                    .map(|j| ((i * 7 + j * 13) % 19) as f64 * 0.5 + 0.5)
                    .collect();
                let y: f64 =
                    f.iter().zip(beta).map(|(x, b)| x * b).sum::<f64>() + ((i % 5) as f64 - 2.0) * 0.1;
                sample(scheme, true, f, y)
            })
            .collect()
    }

    #[test]
    fn recovers_planted_coefficients() {
        let samples = planted_samples(&[1.2, -0.3], 100, SchemeId::Wifi);
        let set = train(&samples).unwrap();
        let m = set.model(SchemeId::Wifi, IoState::Indoor).unwrap();
        assert!((m.coefficients[0] - 1.2).abs() < 0.1, "{:?}", m.coefficients);
        assert!((m.coefficients[1] + 0.3).abs() < 0.1);
        assert!(m.r_squared > 0.9);
        assert!(set.model(SchemeId::Wifi, IoState::Outdoor).is_none());
    }

    #[test]
    fn gps_constant_model() {
        let samples: Vec<TrainingSample> = (0..50)
            .map(|i| sample(SchemeId::Gps, false, vec![], 13.5 + (i % 10) as f64 - 4.5))
            .collect();
        let set = train(&samples).unwrap();
        let m = set.model(SchemeId::Gps, IoState::Outdoor).unwrap();
        assert!((m.intercept - 13.5).abs() < 0.5);
        assert!(m.coefficients.is_empty());
        assert!(m.sigma > 1.0);
        // Prediction needs no features and never sees the GPS sensor.
        let p = set.predict(SchemeId::Gps, IoState::Outdoor, &[]).unwrap();
        assert!((p.mean - m.intercept).abs() < 1e-12);
    }

    #[test]
    fn too_few_samples_skipped() {
        let mut samples = planted_samples(&[1.0], 100, SchemeId::Wifi);
        samples.extend(planted_samples(&[2.0], 5, SchemeId::Cellular));
        let set = train(&samples).unwrap();
        assert!(set.model(SchemeId::Cellular, IoState::Indoor).is_none());
    }

    #[test]
    fn empty_training_errors() {
        assert!(train(&[]).is_err());
    }

    #[test]
    fn prediction_clamps_to_minimum() {
        let m = LinearErrorModel {
            intercept: 0.0,
            coefficients: vec![-1.0],
            sigma: 1.0,
            residual_mean: 0.0,
            r_squared: 0.5,
            p_values: vec![0.01],
            n_obs: 50,
        };
        assert_eq!(m.predict(&[100.0]), MIN_PREDICTED_ERROR_M);
    }

    #[test]
    fn predict_rejects_wrong_arity() {
        let samples = planted_samples(&[1.0, 2.0], 60, SchemeId::Motion);
        let set = train(&samples).unwrap();
        assert!(set.predict(SchemeId::Motion, IoState::Indoor, &[1.0]).is_none());
        assert!(set.predict(SchemeId::Motion, IoState::Indoor, &[1.0, 2.0]).is_some());
    }

    #[test]
    fn json_roundtrip() {
        let samples = planted_samples(&[0.8, 0.4], 80, SchemeId::Fusion);
        let set = train(&samples).unwrap();
        let json = uniloc_stats::json::to_string(&set);
        let back: ErrorModelSet = uniloc_stats::json::from_str(&json).unwrap();
        let a = set.model(SchemeId::Fusion, IoState::Indoor).unwrap();
        let b = back.model(SchemeId::Fusion, IoState::Indoor).unwrap();
        assert!((a.coefficients[0] - b.coefficients[0]).abs() < 1e-12);
        assert_eq!(a.n_obs, b.n_obs);
    }

    #[test]
    fn insert_integrates_new_scheme() {
        let mut set = ErrorModelSet::default();
        let m = LinearErrorModel {
            intercept: 0.0,
            coefficients: vec![2.0],
            sigma: 1.5,
            residual_mean: 0.0,
            r_squared: 0.8,
            p_values: vec![0.001],
            n_obs: 30,
        };
        set.insert(SchemeId::Custom(1), IoState::Indoor, m);
        let p = set.predict(SchemeId::Custom(1), IoState::Indoor, &[3.0]).unwrap();
        assert!((p.mean - 6.0).abs() < 1e-12);
        assert_eq!(set.schemes().count(), 1);
    }
}
