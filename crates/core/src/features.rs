//! Table I: the sensor-data features that drive each scheme's error.
//!
//! "All factors (e.g., sensor specifications and environmental conditions)
//! that implicitly impact the localization accuracy take effect by changing
//! the sensor readings. We find some potential data features for each
//! sensor type." The features are computed **from sensor data and shared
//! infrastructure** (the fingerprint databases and the public map), never
//! from scheme internals — which is what lets UniLoc treat schemes as black
//! boxes.
//!
//! | Scheme | Features (indoor) | Features (outdoor) |
//! |---|---|---|
//! | WiFi | fingerprint spatial density, RSSI distance deviation | same |
//! | Cellular | density, deviation, audible towers | same |
//! | Motion | distance from last landmark, corridor width | same |
//! | Fusion | distance, width, WiFi fingerprint density | distance, width (same model as motion — coarse outdoor fingerprints cannot refine PDR) |
//! | GPS | none (constant model, `beta_0 = 13.5 m`) | none |
//!
//! The fingerprint-density feature needs the user's location before any
//! scheme has produced one; online, UniLoc predicts it with a second-order
//! HMM over the fingerprint grid ([`uniloc_filters::Hmm2Predictor`]).
//! During training, ground truth is used (Section III-B: "during the
//! training phase, we know the user's true location").

use std::collections::BTreeMap;
use std::sync::Arc;
use uniloc_filters::{Hmm2Predictor, Kalman2D};
use uniloc_geom::{FloorPlan, Point};
use uniloc_iodetect::IoState;
use uniloc_schemes::{CellFingerprintDb, SchemeId, WifiFingerprintDb};
use uniloc_sensors::SensorFrame;

/// A user-supplied feature extractor for a custom scheme: given the shared
/// context, the indoor/outdoor state, the frame and the predicted location,
/// produce the scheme's Table-I-style feature vector (or `None` when the
/// scheme cannot be evaluated this epoch).
pub type CustomFeatureFn = Arc<
    dyn Fn(&SharedContext, IoState, &SensorFrame, Option<Point>) -> Option<Vec<f64>>
        + Send
        + Sync,
>;

/// Radius (m) around the user within which fingerprint density is measured.
pub const DENSITY_RADIUS_M: f64 = 20.0;

/// Density value assumed when fewer than two fingerprints are in range
/// (very sparse coverage).
pub const DENSITY_FALLBACK_M: f64 = 16.0;

/// Path width (m) assumed outdoors when no corridor is mapped.
pub const OUTDOOR_WIDTH_FALLBACK_M: f64 = 15.0;

/// Path width (m) assumed indoors when no corridor is mapped.
pub const INDOOR_WIDTH_FALLBACK_M: f64 = 3.0;

/// Candidates considered for the RSSI distance deviation (paper: k = 3).
pub const TOP_K: usize = 3;

/// Immutable per-venue inputs to feature extraction: the offline fingerprint
/// databases and the public map.
#[derive(Debug, Clone)]
pub struct SharedContext {
    /// WiFi fingerprint database (also used by the WiFi and fusion schemes).
    pub wifi_db: WifiFingerprintDb,
    /// Cellular fingerprint database.
    pub cell_db: CellFingerprintDb,
    /// The venue floor plan.
    pub plan: FloorPlan,
}

/// Which online location predictor feeds the density/width features.
///
/// The paper: "we estimate the user's location based on the existing
/// location prediction methods [24], like Hidden Markov Model (HMM) or
/// Kalman filter. In our current implementation, we use a second order
/// HMM." Both are available here; [`PredictorKind::Hmm2`] is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictorKind {
    /// Second-order HMM over the fingerprint grid (the paper's choice).
    #[default]
    Hmm2,
    /// 2-D constant-velocity Kalman filter.
    Kalman,
    /// No smoothing: reuse the previous fused estimate directly.
    LastEstimate,
}

/// The predictor state behind [`FeatureExtractor`].
#[derive(Debug, Clone)]
enum Predictor {
    Hmm2(Option<Hmm2Predictor>),
    Kalman { filter: Option<Kalman2D>, last_t: f64 },
    LastEstimate,
}

/// Per-walk streaming state: distance since the last landmark and the
/// online location predictor.
#[derive(Clone)]
pub struct FeatureExtractor {
    dist_since_landmark: f64,
    predictor: Predictor,
    last_estimate: Option<Point>,
    custom: BTreeMap<SchemeId, CustomFeatureFn>,
}

impl std::fmt::Debug for FeatureExtractor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeatureExtractor")
            .field("dist_since_landmark", &self.dist_since_landmark)
            .field("predictor", &self.predictor)
            .field("last_estimate", &self.last_estimate)
            .field("custom_schemes", &self.custom.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl FeatureExtractor {
    /// Creates an extractor for a venue. The HMM predictor runs over the
    /// WiFi fingerprint grid (falling back to the cellular grid when the
    /// venue has no WiFi survey).
    pub fn new(ctx: &SharedContext) -> Self {
        FeatureExtractor::with_predictor(ctx, PredictorKind::default())
    }

    /// Creates an extractor with an explicit location-predictor choice (see
    /// [`PredictorKind`]; the `predictor_comparison` ablation measures the
    /// difference).
    pub fn with_predictor(ctx: &SharedContext, kind: PredictorKind) -> Self {
        let predictor = match kind {
            PredictorKind::Hmm2 => {
                // The grid is the union of the WiFi and cellular
                // fingerprint positions: the union covers WiFi-dark areas
                // like the basement (cellular fingerprints exist wherever
                // any tower is audible), so the predicted location can
                // actually *be* there and the WiFi-density feature
                // correctly reports sparsity.
                let mut states: Vec<Point> = ctx.wifi_db.positions().collect();
                for p in ctx.cell_db.positions() {
                    if states.iter().all(|q| q.distance(p) > 0.5) {
                        states.push(p);
                    }
                }
                Predictor::Hmm2(Hmm2Predictor::new(states, 2.5, 5.0).ok())
            }
            PredictorKind::Kalman => Predictor::Kalman { filter: None, last_t: 0.0 },
            PredictorKind::LastEstimate => Predictor::LastEstimate,
        };
        FeatureExtractor {
            dist_since_landmark: 0.0,
            predictor,
            last_estimate: None,
            custom: BTreeMap::new(),
        }
    }

    /// Registers a feature function for a custom scheme, letting it
    /// participate fully in the ensemble (train a model for the same id and
    /// features with [`crate::error_model::ErrorModelSet::insert`]).
    pub fn register_custom(&mut self, id: SchemeId, f: CustomFeatureFn) {
        self.custom.insert(id, f);
    }

    /// Starts a new epoch: accumulates walked distance and resets the
    /// landmark odometer when the frame carries a landmark recognition.
    pub fn begin_epoch(&mut self, frame: &SensorFrame) {
        for s in &frame.steps {
            self.dist_since_landmark += s.length_est;
        }
        if frame.landmark.is_some() {
            self.dist_since_landmark = 0.0;
        }
    }

    /// Distance walked since the last recognized landmark (m) — the motion
    /// and fusion schemes' `beta_1`.
    pub fn dist_since_landmark(&self) -> f64 {
        self.dist_since_landmark
    }

    /// The extractor's best guess of the user's current location, used for
    /// the density and corridor-width features: the HMM's second-order
    /// prediction, else the last fused estimate.
    pub fn predicted_location(&self) -> Option<Point> {
        match &self.predictor {
            Predictor::Hmm2(hmm) => hmm
                .as_ref()
                .and_then(Hmm2Predictor::predict_next)
                .or(self.last_estimate),
            Predictor::Kalman { filter, .. } => {
                filter.as_ref().map(Kalman2D::position).or(self.last_estimate)
            }
            Predictor::LastEstimate => self.last_estimate,
        }
    }

    /// Feeds the final (fused) estimate of this epoch back into the
    /// predictor, so the next epoch has a location prediction.
    pub fn note_estimate(&mut self, p: Point) {
        match &mut self.predictor {
            Predictor::Hmm2(hmm) => {
                if let Some(h) = hmm.as_mut() {
                    h.observe(p);
                }
            }
            Predictor::Kalman { filter, last_t } => {
                let kf = filter.get_or_insert_with(|| Kalman2D::new(p, 0.5, 9.0));
                *last_t += 0.5;
                kf.predict(0.5);
                kf.update(p);
            }
            Predictor::LastEstimate => {}
        }
        self.last_estimate = Some(p);
    }

    /// Resets per-walk state (custom registrations are preserved).
    pub fn reset(&mut self, ctx: &SharedContext) {
        let custom = std::mem::take(&mut self.custom);
        *self = FeatureExtractor::new(ctx);
        self.custom = custom;
    }

    /// Computes the feature vector for one scheme this epoch.
    ///
    /// `location_hint` overrides the predicted location (training passes
    /// ground truth here). Returns `None` when the scheme cannot be
    /// meaningfully evaluated from this frame (e.g. no WiFi scan) — the
    /// caller then excludes the scheme (confidence zero).
    pub fn features(
        &self,
        ctx: &SharedContext,
        scheme: SchemeId,
        io: IoState,
        frame: &SensorFrame,
        location_hint: Option<Point>,
    ) -> Option<Vec<f64>> {
        let mut matches = Vec::new();
        let mut out = Vec::new();
        self.features_into(ctx, scheme, io, frame, location_hint, &mut matches, &mut out)
            .then_some(out)
    }

    /// [`features`](Self::features) into caller-owned buffers — the hot-path
    /// form the per-epoch loop uses to stay allocation-free. Returns whether
    /// the scheme can be evaluated; on `true`, `out` holds the feature
    /// vector (possibly empty, e.g. GPS). `matches` is fingerprint-lookup
    /// scratch; its contents are meaningless to the caller.
    #[allow(clippy::too_many_arguments)]
    pub fn features_into(
        &self,
        ctx: &SharedContext,
        scheme: SchemeId,
        io: IoState,
        frame: &SensorFrame,
        location_hint: Option<Point>,
        matches: &mut Vec<uniloc_schemes::FingerprintMatch>,
        out: &mut Vec<f64>,
    ) -> bool {
        out.clear();
        let loc = location_hint.or_else(|| self.predicted_location());
        match scheme {
            SchemeId::Gps => {
                // Constant model, outdoors only; no input features — which
                // is what lets UniLoc predict GPS error without powering
                // the receiver.
                io == IoState::Outdoor
            }
            SchemeId::Wifi => {
                let Some(scan) = frame.wifi.as_ref() else { return false };
                // "When the number of audible APs is less than 3, it is
                // unlikely for the RSSI fingerprinting scheme to provide a
                // meaningful result" — below that, WiFi counts as
                // unavailable (and the scheme itself is gated identically).
                if scan.len() < 3 {
                    return false;
                }
                ctx.wifi_db.match_scan_into(scan, TOP_K, matches);
                if matches.is_empty() {
                    return false;
                }
                out.push(self.density(&ctx.wifi_db, loc));
                out.push(match_deviation(matches.iter().map(|m| m.distance)));
                true
            }
            SchemeId::Cellular => {
                let Some(scan) = frame.cell.as_ref() else { return false };
                if scan.is_empty() {
                    return false;
                }
                ctx.cell_db.match_scan_into(scan, TOP_K, matches);
                if matches.is_empty() {
                    return false;
                }
                out.push(self.density(&ctx.cell_db, loc));
                out.push(match_deviation(matches.iter().map(|m| m.distance)));
                out.push(scan.len() as f64);
                true
            }
            SchemeId::Motion => {
                out.push(self.dist_since_landmark);
                out.push(self.width(ctx, io, loc));
                true
            }
            SchemeId::Fusion => {
                out.push(self.dist_since_landmark);
                out.push(self.width(ctx, io, loc));
                if io == IoState::Indoor {
                    // Indoors, fingerprint density constrains the fusion
                    // particles (beta_3); outdoors the model reduces to the
                    // motion model.
                    out.push(self.density(&ctx.wifi_db, loc));
                }
                true
            }
            other => match self.custom.get(&other).and_then(|f| f(ctx, io, frame, loc)) {
                Some(v) => {
                    out.extend_from_slice(&v);
                    true
                }
                None => false,
            },
        }
    }

    fn density<S: uniloc_schemes::fingerprint::RssiLike>(
        &self,
        db: &uniloc_schemes::fingerprint::FingerprintDb<S>,
        loc: Option<Point>,
    ) -> f64 {
        loc.and_then(|p| db.local_density(p, DENSITY_RADIUS_M))
            .unwrap_or(DENSITY_FALLBACK_M)
    }

    fn width(&self, ctx: &SharedContext, io: IoState, loc: Option<Point>) -> f64 {
        loc.and_then(|p| ctx.plan.corridor_width_at(p)).unwrap_or(match io {
            IoState::Outdoor => OUTDOOR_WIDTH_FALLBACK_M,
            IoState::Indoor => INDOOR_WIDTH_FALLBACK_M,
        })
    }
}

/// Standard deviation of the top-k candidate RSSI distances — the paper's
/// `beta_2`: "if the deviation is small, the fingerprints at these
/// locations are more similar, and in turn the estimated location is more
/// likely to be wrong".
fn match_deviation(distances: impl Iterator<Item = f64> + Clone) -> f64 {
    // Two passes over the (cloneable) iterator instead of collecting: this
    // runs every epoch and must not allocate.
    let mut n = 0usize;
    let mut sum = 0.0;
    for d in distances.clone() {
        n += 1;
        sum += d;
    }
    if n < 2 {
        return 0.0;
    }
    let mean = sum / n as f64;
    let mut ss = 0.0;
    for x in distances {
        ss += (x - mean) * (x - mean);
    }
    (ss / (n - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_rng::Rng;
    use uniloc_env::{campus, GaitProfile, Walker};
    use uniloc_sensors::{DeviceProfile, SensorHub};

    fn context(scenario: &campus::Scenario, seed: u64) -> SharedContext {
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), seed);
        let pts = scenario.survey_points(3.0, 12.0);
        SharedContext {
            wifi_db: WifiFingerprintDb::survey_wifi(&mut hub, &pts),
            cell_db: CellFingerprintDb::survey_cell(&mut hub, &pts),
            plan: scenario.world.floorplan().clone(),
        }
    }

    fn frames(scenario: &campus::Scenario, seed: u64) -> Vec<SensorFrame> {
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(seed));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), seed + 1);
        hub.sample_walk(&walk, 0.5)
    }

    #[test]
    fn landmark_resets_distance() {
        let scenario = campus::daily_path(101);
        let ctx = context(&scenario, 102);
        let mut fx = FeatureExtractor::new(&ctx);
        let all = frames(&scenario, 103);
        let mut saw_reset = false;
        let mut prev = 0.0;
        for f in &all {
            fx.begin_epoch(f);
            if f.landmark.is_some() {
                assert_eq!(fx.dist_since_landmark(), 0.0);
                if prev > 1.0 {
                    saw_reset = true;
                }
            }
            prev = fx.dist_since_landmark();
        }
        assert!(saw_reset, "the daily path must trigger landmark resets");
    }

    #[test]
    fn wifi_features_present_in_office_absent_in_basement() {
        let scenario = campus::daily_path(104);
        let ctx = context(&scenario, 105);
        let fx = FeatureExtractor::new(&ctx);
        let all = frames(&scenario, 106);
        let mut office_some = 0usize;
        let mut office_total = 0usize;
        let mut basement_none = 0usize;
        let mut basement_total = 0usize;
        for f in &all {
            let kind = scenario.world.kind_at(f.true_position);
            let feats = fx.features(
                &ctx,
                SchemeId::Wifi,
                IoState::Indoor,
                f,
                Some(f.true_position),
            );
            match kind {
                uniloc_env::EnvKind::Office => {
                    office_total += 1;
                    office_some += usize::from(feats.is_some());
                }
                uniloc_env::EnvKind::Basement => {
                    basement_total += 1;
                    basement_none += usize::from(feats.is_none());
                }
                _ => {}
            }
        }
        assert!(office_some as f64 > 0.9 * office_total as f64);
        assert!(basement_none as f64 > 0.7 * basement_total as f64);
    }

    #[test]
    fn feature_arity_per_scheme() {
        let scenario = campus::daily_path(107);
        let ctx = context(&scenario, 108);
        let mut fx = FeatureExtractor::new(&ctx);
        let all = frames(&scenario, 109);
        let f = &all[20]; // office
        fx.begin_epoch(f);
        let hint = Some(f.true_position);
        assert_eq!(
            fx.features(&ctx, SchemeId::Wifi, IoState::Indoor, f, hint).unwrap().len(),
            2
        );
        assert_eq!(
            fx.features(&ctx, SchemeId::Cellular, IoState::Indoor, f, hint).unwrap().len(),
            3
        );
        assert_eq!(
            fx.features(&ctx, SchemeId::Motion, IoState::Indoor, f, hint).unwrap().len(),
            2
        );
        assert_eq!(
            fx.features(&ctx, SchemeId::Fusion, IoState::Indoor, f, hint).unwrap().len(),
            3
        );
        assert_eq!(
            fx.features(&ctx, SchemeId::Fusion, IoState::Outdoor, f, hint).unwrap().len(),
            2,
            "outdoor fusion uses the motion model"
        );
        assert_eq!(
            fx.features(&ctx, SchemeId::Gps, IoState::Outdoor, f, hint).unwrap().len(),
            0
        );
        assert!(fx.features(&ctx, SchemeId::Gps, IoState::Indoor, f, hint).is_none());
    }

    #[test]
    fn corridor_width_feature_varies_by_segment() {
        let scenario = campus::daily_path(110);
        let ctx = context(&scenario, 111);
        let fx = FeatureExtractor::new(&ctx);
        let all = frames(&scenario, 112);
        // Find one office frame and one open-space frame.
        let office = all
            .iter()
            .find(|f| scenario.world.kind_at(f.true_position) == uniloc_env::EnvKind::Office)
            .unwrap();
        let open = all
            .iter()
            .find(|f| {
                scenario.world.kind_at(f.true_position) == uniloc_env::EnvKind::OpenSpace
            })
            .unwrap();
        let w_office = fx
            .features(&ctx, SchemeId::Motion, IoState::Indoor, office, Some(office.true_position))
            .unwrap()[1];
        let w_open = fx
            .features(&ctx, SchemeId::Motion, IoState::Outdoor, open, Some(open.true_position))
            .unwrap()[1];
        assert!(
            w_open > w_office,
            "open space width {w_open} must exceed office corridor width {w_office}"
        );
    }

    #[test]
    fn hmm_prediction_becomes_available_after_estimates() {
        let scenario = campus::daily_path(113);
        let ctx = context(&scenario, 114);
        let mut fx = FeatureExtractor::new(&ctx);
        assert!(fx.predicted_location().is_none());
        fx.note_estimate(Point::new(5.0, 5.0));
        assert!(fx.predicted_location().is_some());
        fx.note_estimate(Point::new(6.0, 5.0));
        let p = fx.predicted_location().unwrap();
        // Second-order prediction extrapolates eastward.
        assert!(p.x >= 6.0);
    }

    #[test]
    fn match_deviation_basics() {
        assert_eq!(match_deviation([5.0].into_iter()), 0.0);
        assert_eq!(match_deviation([3.0, 3.0, 3.0].into_iter()), 0.0);
        let d = match_deviation([1.0, 2.0, 3.0].into_iter());
        assert!((d - 1.0).abs() < 1e-12);
    }
}
