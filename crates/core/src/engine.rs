//! Section IV: the UniLoc ensemble engine.
//!
//! Every epoch the engine (1) classifies indoor/outdoor with IODetector,
//! (2) runs every scheme on the frame, (3) extracts each scheme's features
//! and predicts its error from the trained models, (4) converts predictions
//! into confidences with the adaptive threshold of Eq. 2, and (5) produces
//!
//! * **UniLoc1** — the estimate of the most-confident scheme, and
//! * **UniLoc2** — the locally-weighted BMA combination of Eqs. 3-5:
//!   `w_n,t = c_n,t / sum_i c_i,t`, position = `sum_n w_n,t * pos_n` (the
//!   BMA posterior mean; with each scheme's posterior centered on its own
//!   estimate, the mixture mean reduces to exactly this weighted average,
//!   computed independently for X and Y as in the paper).
//!
//! An unavailable scheme "just sets its output to zero and UniLoc will
//! exclude it in calculation temporarily" — here, `None` estimates get zero
//! confidence. The engine also implements the GPS duty-cycling policy of
//! Section IV-C: the GPS error model needs no GPS features, so the engine
//! compares its predicted error against every other scheme *before*
//! consulting the receiver and ignores the fix when GPS would not win.

use crate::confidence::{adaptive_tau, confidence};
use crate::error_model::{ErrorModelSet, ErrorPrediction};
use crate::features::{FeatureExtractor, PredictorKind, SharedContext};
use crate::guard::{self, FrameGate, GateVerdict};
use crate::quarantine::{
    trip, DegradationLadder, QuarantineMachine, QuarantineTransition, SchemeVerdict,
};
use uniloc_geom::Point;
use uniloc_iodetect::{IoDetector, IoState};
use uniloc_schemes::{LocalizationScheme, LocationEstimate, SchemeId};
use uniloc_sensors::SensorFrame;

/// Which combination rule produces the headline position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionMode {
    /// UniLoc1: select the most-confident scheme.
    BestSelection,
    /// UniLoc2: locally-weighted Bayesian model averaging.
    BayesianAveraging,
}

/// Per-scheme diagnostics for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeReport {
    /// Which scheme.
    pub id: SchemeId,
    /// The scheme's estimate, if available this epoch.
    pub estimate: Option<LocationEstimate>,
    /// Predicted error distribution from the trained model, if computable.
    pub prediction: Option<ErrorPrediction>,
    /// Eq. 2 confidence (zero when excluded).
    pub confidence: f64,
    /// BMA weight (Eq. 5; zero when excluded).
    pub weight: f64,
}

/// The engine's output for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct UniLocOutput {
    /// Epoch time.
    pub t: f64,
    /// UniLoc1 position (most-confident scheme), if any scheme delivered.
    pub best_selection: Option<Point>,
    /// The scheme UniLoc1 selected.
    pub selected: Option<SchemeId>,
    /// UniLoc2 position (locally-weighted BMA over scheme point estimates),
    /// if any scheme delivered.
    pub bayesian_average: Option<Point>,
    /// UniLoc2 position computed over the schemes' full posteriors (the
    /// literal Eqs. 3-4: each scheme contributes `P(l | M_n, s_t)` as
    /// weighted candidates; point-only schemes contribute a point mass).
    pub mixture_average: Option<Point>,
    /// IODetector's verdict this epoch.
    pub io: IoState,
    /// The adaptive threshold used for confidences.
    pub tau: Option<f64>,
    /// Whether the GPS duty-cycling policy kept the receiver on.
    pub gps_enabled: bool,
    /// Per-scheme diagnostics.
    pub reports: Vec<SchemeReport>,
    /// How degraded the ensemble was this epoch (see
    /// [`DegradationLadder`]); never feeds back into fusion.
    pub ladder: DegradationLadder,
    /// Schemes excluded from this epoch's fusion by the quarantine
    /// machine (trips detected this epoch take effect next epoch).
    pub quarantined: Vec<SchemeId>,
}

impl UniLocOutput {
    /// The headline position under a chosen mode.
    pub fn position(&self, mode: FusionMode) -> Option<Point> {
        match mode {
            FusionMode::BestSelection => self.best_selection,
            FusionMode::BayesianAveraging => self.bayesian_average,
        }
    }
}

/// Pre-rendered per-scheme metric and span names: the per-epoch loop must
/// not `format!`, so every name a scheme can emit is built once at engine
/// construction (index-aligned with the scheme list).
struct SchemeNames {
    estimate_span: String,
    available: String,
    unavailable: String,
    nonfinite: String,
    selected: String,
    teleport: String,
    divergence: String,
    tripped: String,
    readmitted: String,
}

impl SchemeNames {
    fn new(id: SchemeId) -> Self {
        SchemeNames {
            estimate_span: format!("scheme.estimate.{id}"),
            available: format!("engine.scheme.available.{id}"),
            unavailable: format!("engine.scheme.unavailable.{id}"),
            nonfinite: format!("faults.validation.nonfinite_estimate.{id}"),
            selected: format!("engine.uniloc1.selected.{id}"),
            teleport: format!("quarantine.signal.teleport.{id}"),
            divergence: format!("quarantine.signal.divergence.{id}"),
            tripped: format!("quarantine.tripped.{id}"),
            readmitted: format!("quarantine.readmitted.{id}"),
        }
    }
}

/// The `engine.ladder.*` counter for a ladder state, as a static string.
fn ladder_counter_name(ladder: DegradationLadder) -> &'static str {
    match ladder {
        DegradationLadder::Nominal => "engine.ladder.nominal",
        DegradationLadder::Degraded(_) => "engine.ladder.degraded",
        DegradationLadder::DeadReckoningOnly => "engine.ladder.dead_reckoning_only",
        DegradationLadder::Lost => "engine.ladder.lost",
    }
}

/// Per-epoch working buffers, recycled across [`UniLocEngine::update`]
/// calls so the steady-state epoch loop performs no heap allocation (the
/// allocation observatory's `alloc.steady.allocs` meter pins this at
/// zero). Purely capacity caches: contents are dead between epochs.
#[derive(Default)]
struct EpochScratch {
    /// Per-scheme posterior means (Eq. 4 component means).
    posterior_means: Vec<Option<Point>>,
    /// Per-scheme non-finite-estimate strikes.
    nonfinite: Vec<bool>,
    /// Predictions of available, participating schemes (adaptive tau).
    usable: Vec<ErrorPrediction>,
    /// Non-GPS `(id, has_features)` pairs, index-aligned with `feats`.
    prelim: Vec<(SchemeId, bool)>,
    /// Non-GPS feature vectors, index-aligned with `prelim`.
    feats: Vec<Vec<f64>>,
    /// GPS feature vector.
    gps_feats: Vec<f64>,
    /// Fingerprint-lookup scratch for feature extraction.
    matches: Vec<uniloc_schemes::FingerprintMatch>,
}

/// The UniLoc ensemble engine.
///
/// Owns the scheme instances, the shared feature context (fingerprint
/// databases + map), the trained error models, the IODetector and the
/// per-walk feature state.
pub struct UniLocEngine {
    schemes: Vec<Box<dyn LocalizationScheme>>,
    models: ErrorModelSet,
    ctx: SharedContext,
    extractor: FeatureExtractor,
    iodetector: IoDetector,
    /// Frame-stream gate: duplicate / time-regression / bad-clock frames.
    gate: FrameGate,
    /// Per-scheme quarantine state machine.
    quarantine: QuarantineMachine,
    /// Last `(t, position)` each scheme reported (teleport detection).
    prev_scheme: Vec<Option<(f64, Point)>>,
    /// Consecutive epochs each scheme exceeded its speed limit.
    teleport_streak: Vec<u32>,
    /// Consecutive epochs each scheme diverged from the fused estimate.
    diverge_streak: Vec<u32>,
    /// Last `(t, position)` the ensemble fused (watchdog).
    prev_fused: Option<(f64, Point)>,
    /// Consecutive epochs the fused estimate did not move while steps
    /// kept arriving.
    frozen_streak: u32,
    /// IODetector verdict of the last admitted frame (reported when a
    /// frame is rejected outright).
    last_io: IoState,
    /// Pre-rendered metric/span names, index-aligned with `schemes`.
    names: Vec<SchemeNames>,
    /// Per-epoch working buffers (see [`EpochScratch`]).
    scratch: EpochScratch,
    /// Pool for the output's `reports` vector; refilled by
    /// [`recycle`](Self::recycle).
    reports_pool: Vec<SchemeReport>,
    /// Pool for the output's `quarantined` vector; refilled by
    /// [`recycle`](Self::recycle).
    excluded_pool: Vec<SchemeId>,
}

impl std::fmt::Debug for UniLocEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UniLocEngine")
            .field("schemes", &self.schemes.iter().map(|s| s.id()).collect::<Vec<_>>())
            .field("models", &self.models.schemes().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl UniLocEngine {
    /// Creates an engine over the given schemes.
    ///
    /// # Panics
    ///
    /// Panics when `schemes` is empty.
    pub fn new(
        schemes: Vec<Box<dyn LocalizationScheme>>,
        models: ErrorModelSet,
        ctx: SharedContext,
    ) -> Self {
        UniLocEngine::with_predictor(schemes, models, ctx, PredictorKind::default())
    }

    /// Creates an engine with an explicit online location predictor for the
    /// feature extractor (HMM by default; the paper also names the Kalman
    /// filter as an option).
    ///
    /// # Panics
    ///
    /// Panics when `schemes` is empty.
    pub fn with_predictor(
        schemes: Vec<Box<dyn LocalizationScheme>>,
        models: ErrorModelSet,
        ctx: SharedContext,
        predictor: PredictorKind,
    ) -> Self {
        assert!(!schemes.is_empty(), "UniLoc needs at least one scheme");
        let extractor = FeatureExtractor::with_predictor(&ctx, predictor);
        let ids: Vec<SchemeId> = schemes.iter().map(|s| s.id()).collect();
        let names: Vec<SchemeNames> = ids.iter().map(|&id| SchemeNames::new(id)).collect();
        let n = schemes.len();
        UniLocEngine {
            schemes,
            models,
            ctx,
            extractor,
            iodetector: IoDetector::new(),
            gate: FrameGate::new(),
            quarantine: QuarantineMachine::new(&ids),
            prev_scheme: vec![None; n],
            teleport_streak: vec![0; n],
            diverge_streak: vec![0; n],
            prev_fused: None,
            frozen_streak: 0,
            last_io: IoState::Outdoor,
            names,
            scratch: EpochScratch::default(),
            reports_pool: Vec::new(),
            excluded_pool: Vec::new(),
        }
    }

    /// Returns a spent output's buffers to the engine's pools so the next
    /// [`update`](Self::update) runs allocation-free in steady state.
    /// Optional: an output that is dropped instead is simply reallocated
    /// next epoch.
    pub fn recycle(&mut self, out: UniLocOutput) {
        let UniLocOutput { mut reports, mut quarantined, .. } = out;
        reports.clear();
        quarantined.clear();
        self.reports_pool = reports;
        self.excluded_pool = quarantined;
    }

    /// The integrated schemes.
    pub fn scheme_ids(&self) -> Vec<SchemeId> {
        self.schemes.iter().map(|s| s.id()).collect()
    }

    /// The trained error models.
    pub fn models(&self) -> &ErrorModelSet {
        &self.models
    }

    /// Registers a feature function for a custom scheme so it can
    /// participate in the ensemble (pair it with a model inserted into the
    /// [`ErrorModelSet`]).
    pub fn register_custom_features(
        &mut self,
        id: uniloc_schemes::SchemeId,
        f: crate::features::CustomFeatureFn,
    ) {
        self.extractor.register_custom(id, f);
    }

    /// Resets per-walk state (schemes, feature extractor, IODetector,
    /// frame gate, quarantine and watchdog).
    pub fn reset(&mut self) {
        for s in &mut self.schemes {
            s.reset();
        }
        self.extractor.reset(&self.ctx);
        self.iodetector = IoDetector::new();
        self.gate.reset();
        self.quarantine.reset();
        self.prev_scheme.fill(None);
        self.teleport_streak.fill(0);
        self.diverge_streak.fill(0);
        self.prev_fused = None;
        self.frozen_streak = 0;
        self.last_io = IoState::Outdoor;
    }

    /// The schemes currently excluded from fusion by the quarantine
    /// machine.
    pub fn quarantined(&self) -> Vec<SchemeId> {
        self.quarantine.excluded()
    }

    /// Every scheme's full quarantine standing (sentence remainder,
    /// probation countdown, strikes) — see
    /// [`QuarantineMachine::standings`](crate::quarantine::QuarantineMachine::standings).
    pub fn quarantine_standings(&self) -> Vec<(SchemeId, crate::quarantine::QuarantineStanding)> {
        self.quarantine.standings()
    }

    /// The degraded output emitted when a frame fails validation outright
    /// (non-finite timestamp): no scheme runs, no state advances.
    fn rejected_output(&self, frame: &SensorFrame) -> UniLocOutput {
        let reports = self
            .schemes
            .iter()
            .map(|s| SchemeReport {
                id: s.id(),
                estimate: None,
                prediction: None,
                confidence: 0.0,
                weight: 0.0,
            })
            .collect();
        UniLocOutput {
            t: frame.t,
            best_selection: None,
            selected: None,
            bayesian_average: None,
            mixture_average: None,
            io: self.last_io,
            tau: None,
            gps_enabled: false,
            reports,
            ladder: DegradationLadder::Lost,
            quarantined: self.quarantine.excluded(),
        }
    }

    /// Processes one epoch.
    ///
    /// Instrumentation (spans + counters through `uniloc-obs`) is
    /// sidecar-only: it reads pipeline state and the clock but never
    /// writes back, so output is byte-identical at any trace level.
    pub fn update(&mut self, frame: &SensorFrame) -> UniLocOutput {
        let obs = uniloc_obs::global();
        let metrics = uniloc_obs::global_metrics();
        let _update_span = obs.span("engine.update").field("t", frame.t);

        // Input-validation gate: a malformed frame must never abort the
        // walk. A non-finite clock rejects the whole frame; everything
        // else is scrubbed per channel and the epoch proceeds on what
        // survived. Clean frames pass through borrowed and untouched.
        let verdict = self.gate.admit(frame.t);
        if verdict == GateVerdict::Rejected {
            metrics.counter("faults.validation.rejected_frame").inc();
            obs.event(
                uniloc_obs::TraceLevel::Warn,
                "engine.frame_rejected",
                vec![("t".to_owned(), frame.t.into())],
            );
            return self.rejected_output(frame);
        }
        let scrubbed = guard::scrub_frame(frame);
        if let Some((_, rep)) = &scrubbed {
            for (name, n) in [
                ("faults.validation.dropped_reading.wifi", rep.wifi_readings),
                ("faults.validation.dropped_reading.cell", rep.cell_readings),
                ("faults.validation.dropped_gps", rep.gps_fixes),
                ("faults.validation.dropped_step", rep.steps),
                ("faults.validation.scrubbed_env", rep.env_channels),
            ] {
                if n > 0 {
                    metrics.counter(name).add(u64::from(n));
                }
            }
        }
        let frame: &SensorFrame = match &scrubbed {
            Some((clean, _)) => clean,
            None => frame,
        };
        // Replayed frames (duplicate timestamp or a clock that ran
        // backwards) keep their radio scans — fingerprinting is stateless
        // — but lose their steps: integrating the same steps twice
        // teleports the PDR cloud.
        let replay_frame;
        let frame = match verdict {
            GateVerdict::Duplicate | GateVerdict::TimeRegression => {
                metrics
                    .counter(match verdict {
                        GateVerdict::Duplicate => "faults.validation.duplicate_frame",
                        _ => "faults.validation.time_regression",
                    })
                    .inc();
                if frame.steps.is_empty() {
                    frame
                } else {
                    let mut f = frame.clone();
                    f.steps.clear();
                    replay_frame = f;
                    &replay_frame
                }
            }
            _ => frame,
        };

        // Tick quarantine sentences; snapshot the exclusion set that
        // governs this epoch's fusion.
        self.quarantine.begin_epoch();
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut excluded_now = std::mem::take(&mut self.excluded_pool);
        self.quarantine.excluded_into(&mut excluded_now);

        let io = self.iodetector.classify_frame(frame);
        self.last_io = io;
        self.extractor.begin_epoch(frame);

        // GPS duty cycling: predict GPS error without the receiver and
        // compare with every other scheme's prediction.
        let predict_span = obs.span("engine.predict");
        let has_gps_feats = self.extractor.features_into(
            &self.ctx,
            SchemeId::Gps,
            io,
            frame,
            None,
            &mut scratch.matches,
            &mut scratch.gps_feats,
        );
        let gps_prediction = if has_gps_feats {
            self.models.predict(SchemeId::Gps, io, &scratch.gps_feats)
        } else {
            None
        };
        let mut non_gps_best = f64::INFINITY;
        scratch.prelim.clear();
        let mut j = 0usize;
        for s in &self.schemes {
            let id = s.id();
            if id == SchemeId::Gps {
                continue;
            }
            if scratch.feats.len() <= j {
                scratch.feats.push(Vec::new());
            }
            let has = self.extractor.features_into(
                &self.ctx,
                id,
                io,
                frame,
                None,
                &mut scratch.matches,
                &mut scratch.feats[j],
            );
            if has {
                if let Some(p) = self.models.predict(id, io, &scratch.feats[j]) {
                    non_gps_best = non_gps_best.min(p.mean);
                }
            }
            scratch.prelim.push((id, has));
            j += 1;
        }
        let gps_enabled = match gps_prediction {
            Some(p) => p.mean <= non_gps_best || !non_gps_best.is_finite(),
            None => false,
        };
        drop(predict_span);

        // Run every scheme on the full frame (schemes execute
        // independently, as in the paper's Section II) and assemble
        // (estimate, prediction). The duty-cycling policy governs only
        // whether *UniLoc* powers the receiver and lets GPS participate in
        // the ensemble; the standalone scheme's output is still reported
        // for evaluation.
        let mut reports = std::mem::take(&mut self.reports_pool);
        reports.clear();
        reports.reserve(self.schemes.len());
        scratch.posterior_means.clear();
        scratch.nonfinite.clear();
        scratch.nonfinite.resize(self.schemes.len(), false);
        for (idx, s) in self.schemes.iter_mut().enumerate() {
            let id = s.id();
            let estimate = {
                let _s = obs.span(&self.names[idx].estimate_span);
                s.update(frame)
            };
            // Output-side validation: a non-finite estimate is treated as
            // unavailable *and* counts as a quarantine strike — it means
            // the scheme's internal state is corrupt, not merely blind.
            let estimate = match estimate {
                Some(e)
                    if !e.position.x.is_finite()
                        || !e.position.y.is_finite()
                        || e.spread.is_some_and(|s| !s.is_finite()) =>
                {
                    scratch.nonfinite[idx] = true;
                    metrics.counter(&self.names[idx].nonfinite).inc();
                    None
                }
                other => other,
            };
            metrics
                .counter(if estimate.is_some() {
                    &self.names[idx].available
                } else {
                    &self.names[idx].unavailable
                })
                .inc();
            // The posterior mean of P(l | M_n, s_t) — the component mean
            // the literal Eq. 4 integrates. `posterior_mean` is the
            // allocation-free form of the historical "materialize
            // `posterior()`, then average" computation (same arithmetic,
            // same order — see the trait contract).
            scratch
                .posterior_means
                .push(if estimate.is_some() { s.posterior_mean() } else { None });
            let prediction = if id == SchemeId::Gps {
                gps_prediction
            } else {
                scratch
                    .prelim
                    .iter()
                    .position(|&(pid, _)| pid == id)
                    .and_then(|k| {
                        if scratch.prelim[k].1 {
                            self.models.predict(id, io, &scratch.feats[k])
                        } else {
                            None
                        }
                    })
            };
            reports.push(SchemeReport { id, estimate, prediction, confidence: 0.0, weight: 0.0 });
        }
        let participates = |r: &SchemeReport| {
            (r.id != SchemeId::Gps || gps_enabled) && !excluded_now.contains(&r.id)
        };

        // Adaptive tau over schemes that are available, predictable and
        // participating.
        let confidence_span = obs.span("engine.confidence");
        scratch.usable.clear();
        scratch.usable.extend(
            reports
                .iter()
                .filter(|r| r.estimate.is_some() && participates(r))
                .filter_map(|r| r.prediction),
        );
        let tau = adaptive_tau(&scratch.usable);

        // Confidences and weights.
        if let Some(tau) = tau {
            let mut total = 0.0;
            for r in &mut reports {
                if r.estimate.is_some() && participates(r) {
                    if let Some(pred) = r.prediction {
                        r.confidence = confidence(pred, tau);
                        total += r.confidence;
                    }
                }
            }
            if total > 0.0 {
                for r in &mut reports {
                    r.weight = r.confidence / total;
                }
            }
            metrics.gauge("engine.tau").set(tau);
        }
        drop(confidence_span);
        let fuse_span = obs.span("engine.fuse");

        // UniLoc1: most-confident scheme. `total_cmp` keeps a stray NaN
        // confidence (already gated upstream) from panicking mid-walk.
        let best = reports
            .iter()
            .enumerate()
            .filter(|(_, r)| r.estimate.is_some() && r.confidence > 0.0)
            .max_by(|(_, a), (_, b)| a.confidence.total_cmp(&b.confidence));
        // `carrier` is the scheme that actually produced the headline
        // position (for the degradation ladder when nothing fused).
        let (best_selection, selected, selected_idx, carrier) = match best {
            Some((i, r)) => (r.estimate.map(|e| e.position), Some(r.id), Some(i), Some(r.id)),
            None => {
                // No model-backed scheme: fall back to any available
                // estimate so UniLoc still reports a position, preferring
                // schemes not under quarantine.
                let fallback = reports
                    .iter()
                    .find(|r| r.estimate.is_some() && !excluded_now.contains(&r.id))
                    .or_else(|| reports.iter().find(|r| r.estimate.is_some()));
                (
                    fallback.and_then(|r| r.estimate).map(|e| e.position),
                    None,
                    None,
                    fallback.map(|r| r.id),
                )
            }
        };

        // UniLoc2: locally-weighted BMA mean (X and Y independently).
        let mut wsum = 0.0;
        let mut x = 0.0;
        let mut y = 0.0;
        for r in &reports {
            if let Some(e) = r.estimate {
                if r.weight > 0.0 {
                    wsum += r.weight;
                    x += r.weight * e.position.x;
                    y += r.weight * e.position.y;
                }
            }
        }
        let bayesian_average = if wsum > 0.0 {
            metrics.counter("engine.fusion.mode.bma").inc();
            Some(Point::new(x / wsum, y / wsum))
        } else {
            metrics.counter("engine.fusion.mode.fallback").inc();
            best_selection
        };
        if let Some(i) = selected_idx {
            metrics.counter(&self.names[i].selected).inc();
        }

        // The mixture-mean variant: identical weights, but each component
        // contributes its posterior mean instead of its point estimate.
        let mut mw = 0.0;
        let mut mx = 0.0;
        let mut my = 0.0;
        for (r, pm) in reports.iter().zip(&scratch.posterior_means) {
            if r.weight > 0.0 {
                if let Some(p) = pm.or_else(|| r.estimate.map(|e| e.position)) {
                    mw += r.weight;
                    mx += r.weight * p.x;
                    my += r.weight * p.y;
                }
            }
        }
        let mixture_average = if mw > 0.0 {
            Some(Point::new(mx / mw, my / mw))
        } else {
            bayesian_average
        };
        drop(fuse_span);

        // Numerical-corruption tripwire (sidecar-only): a NaN/infinite
        // fused position means a scheme or the weight math broke; flag it
        // for the flight recorder rather than letting it propagate
        // silently into downstream consumers.
        for (kind, p) in [
            ("best_selection", best_selection),
            ("bayesian_average", bayesian_average),
            ("mixture_average", mixture_average),
        ] {
            if let Some(p) = p {
                if !p.x.is_finite() || !p.y.is_finite() {
                    metrics.counter("engine.non_finite_estimate").inc();
                    obs.event(
                        uniloc_obs::TraceLevel::Warn,
                        "engine.non_finite_estimate",
                        vec![
                            ("output".to_owned(), kind.into()),
                            ("t".to_owned(), frame.t.into()),
                            ("x".to_owned(), p.x.into()),
                            ("y".to_owned(), p.y.into()),
                        ],
                    );
                }
            }
        }

        // Feed the fused estimate back into the HMM location predictor.
        if let Some(p) = bayesian_average.or(best_selection) {
            self.extractor.note_estimate(p);
        }

        // Trip evaluation: teleports, persistent divergence from the
        // fused estimate, and the non-finite outputs flagged above. Each
        // verdict feeds the quarantine machine; a trip detected now takes
        // effect at the NEXT epoch's fusion, so this stage reads outputs
        // but never rewrites them.
        let fused = bayesian_average.or(best_selection);
        let fused_finite =
            fused.filter(|p| p.x.is_finite() && p.y.is_finite());
        for (i, r) in reports.iter().enumerate() {
            let mut strike = scratch.nonfinite[i];
            if let Some(e) = r.estimate {
                if let Some((pt, pp)) = self.prev_scheme[i] {
                    let dt = frame.t - pt;
                    if dt > 1e-3 {
                        let speed = e.position.distance(pp) / dt;
                        if speed > trip::teleport_speed_limit_m_s(r.id) {
                            self.teleport_streak[i] += 1;
                        } else {
                            self.teleport_streak[i] = 0;
                        }
                        if self.teleport_streak[i] >= trip::TELEPORT_CONSECUTIVE {
                            strike = true;
                            metrics.counter(&self.names[i].teleport).inc();
                        }
                    }
                }
                if let Some(f) = fused_finite {
                    let limit = trip::DIVERGE_FLOOR_M
                        .max(trip::DIVERGE_MULT * r.prediction.map_or(0.0, |p| p.mean));
                    if e.position.distance(f) > limit {
                        self.diverge_streak[i] += 1;
                    } else {
                        self.diverge_streak[i] = 0;
                    }
                    if self.diverge_streak[i] >= trip::DIVERGE_CONSECUTIVE {
                        strike = true;
                        metrics.counter(&self.names[i].divergence).inc();
                    }
                }
                self.prev_scheme[i] = Some((frame.t, e.position));
            }
            let scheme_verdict = if strike {
                SchemeVerdict::Strike
            } else if r.estimate.is_some() {
                SchemeVerdict::Sane
            } else {
                SchemeVerdict::Absent
            };
            match self.quarantine.observe(r.id, scheme_verdict) {
                Some(QuarantineTransition::Tripped(id, strikes)) => {
                    metrics.counter(&self.names[i].tripped).inc();
                    obs.event(
                        uniloc_obs::TraceLevel::Warn,
                        "quarantine.tripped",
                        vec![
                            ("scheme".to_owned(), id.to_string().into()),
                            ("strikes".to_owned(), i64::from(strikes).into()),
                            ("t".to_owned(), frame.t.into()),
                        ],
                    );
                }
                Some(QuarantineTransition::Readmitted(id)) => {
                    metrics.counter(&self.names[i].readmitted).inc();
                    obs.event(
                        uniloc_obs::TraceLevel::Info,
                        "quarantine.readmitted",
                        vec![
                            ("scheme".to_owned(), id.to_string().into()),
                            ("t".to_owned(), frame.t.into()),
                        ],
                    );
                }
                None => {}
            }
        }

        // Watchdog: a fused estimate that freezes while steps keep
        // arriving, or teleports across the map, means the ensemble
        // output can no longer be trusted even though every per-scheme
        // check passed.
        let flight = uniloc_obs::global_flight();
        let mut frozen = false;
        if let Some(f) = fused_finite {
            if let Some((pt, pf)) = self.prev_fused {
                let moved = f.distance(pf);
                if !frame.steps.is_empty() && moved < trip::FROZEN_EPS_M {
                    self.frozen_streak += 1;
                } else {
                    self.frozen_streak = 0;
                }
                if self.frozen_streak >= trip::FROZEN_EPOCHS {
                    frozen = true;
                    metrics.counter("engine.watchdog.frozen").inc();
                    if self.frozen_streak == trip::FROZEN_EPOCHS {
                        flight.trigger(
                            "watchdog_frozen",
                            vec![
                                ("t".to_owned(), frame.t.into()),
                                ("epochs".to_owned(), i64::from(self.frozen_streak).into()),
                            ],
                        );
                    }
                }
                let dt = frame.t - pt;
                if dt > 1e-3 && moved / dt > trip::FUSED_TELEPORT_SPEED_M_S {
                    metrics.counter("engine.watchdog.teleport").inc();
                    flight.trigger(
                        "watchdog_teleport",
                        vec![
                            ("t".to_owned(), frame.t.into()),
                            ("speed_m_s".to_owned(), (moved / dt).into()),
                        ],
                    );
                }
            }
            self.prev_fused = Some((frame.t, f));
        } else {
            self.frozen_streak = 0;
        }

        // Degradation ladder: a pure function of this epoch's outputs and
        // the exclusion set — reported, never fed back.
        let mut contributing = 0u32;
        let mut all_motion = true;
        for r in &reports {
            if r.weight > 0.0 && r.estimate.is_some() {
                contributing += 1;
                if r.id != SchemeId::Motion {
                    all_motion = false;
                }
            }
        }
        let total = reports.len() as u32;
        let ladder = if fused_finite.is_none() || frozen {
            DegradationLadder::Lost
        } else if contributing == 0 {
            match carrier {
                Some(SchemeId::Motion) => DegradationLadder::DeadReckoningOnly,
                Some(_) => DegradationLadder::Degraded(total.saturating_sub(1)),
                None => DegradationLadder::Lost,
            }
        } else if all_motion {
            DegradationLadder::DeadReckoningOnly
        } else if contributing == total {
            DegradationLadder::Nominal
        } else {
            DegradationLadder::Degraded(total - contributing)
        };
        metrics.counter(ladder_counter_name(ladder)).inc();

        self.scratch = scratch;
        UniLocOutput {
            t: frame.t,
            best_selection,
            selected,
            bayesian_average,
            mixture_average,
            io,
            tau,
            gps_enabled,
            reports,
            ladder,
            quarantined: excluded_now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_model::LinearErrorModel;
    use uniloc_schemes::fingerprint::FingerprintDb;

    /// A scripted scheme for engine unit tests.
    struct Scripted {
        id: SchemeId,
        output: Option<LocationEstimate>,
    }

    impl LocalizationScheme for Scripted {
        fn id(&self) -> SchemeId {
            self.id
        }
        fn update(&mut self, _frame: &SensorFrame) -> Option<LocationEstimate> {
            self.output
        }
    }

    fn empty_ctx() -> SharedContext {
        SharedContext {
            wifi_db: FingerprintDb::from_entries(Vec::<(Point, uniloc_sensors::WifiScan)>::new()),
            cell_db: FingerprintDb::from_entries(Vec::<(Point, uniloc_sensors::CellScan)>::new()),
            plan: uniloc_geom::FloorPlan::new(),
        }
    }

    fn frame_indoor() -> SensorFrame {
        SensorFrame {
            t: 1.0,
            true_position: Point::origin(),
            wifi: None,
            cell: None,
            gps: None,
            steps: vec![],
            landmark: None,
            light_lux: 300.0,
            magnetic_variance: 0.6,
        }
    }

    fn motion_model(set: &mut ErrorModelSet, coeff: f64, sigma: f64) {
        set.insert(
            SchemeId::Motion,
            IoState::Indoor,
            LinearErrorModel {
                intercept: 0.0,
                coefficients: vec![coeff, 0.0],
                sigma,
                residual_mean: 0.0,
                r_squared: 0.9,
                p_values: vec![0.001, 0.5],
                n_obs: 100,
            },
        );
    }

    fn custom_model(set: &mut ErrorModelSet, id: SchemeId, mean: f64, sigma: f64) {
        // A constant model via intercept (like GPS) for scripted schemes.
        set.insert(
            id,
            IoState::Indoor,
            LinearErrorModel {
                intercept: mean,
                coefficients: vec![],
                sigma,
                residual_mean: 0.0,
                r_squared: 0.0,
                p_values: vec![],
                n_obs: 50,
            },
        );
    }

    // Custom schemes have no feature extractor, so their features are None
    // and they get excluded. For engine-level unit tests we therefore use
    // Motion (whose features always exist) plus scripted outputs.

    #[test]
    #[should_panic(expected = "at least one scheme")]
    fn rejects_empty_scheme_list() {
        UniLocEngine::new(vec![], ErrorModelSet::default(), empty_ctx());
    }

    #[test]
    fn weights_form_a_simplex_and_bma_lies_between() {
        // Two "motion" schemes cannot coexist (same id is fine for this
        // test: the engine treats entries independently).
        let a = Scripted {
            id: SchemeId::Motion,
            output: Some(LocationEstimate::at(Point::new(0.0, 0.0))),
        };
        let b = Scripted {
            id: SchemeId::Motion,
            output: Some(LocationEstimate::at(Point::new(10.0, 0.0))),
        };
        let mut models = ErrorModelSet::default();
        motion_model(&mut models, 0.05, 1.0);
        let mut engine = UniLocEngine::new(vec![Box::new(a), Box::new(b)], models, empty_ctx());
        let out = engine.update(&frame_indoor());
        let total: f64 = out.reports.iter().map(|r| r.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights must sum to 1, got {total}");
        let p = out.bayesian_average.unwrap();
        assert!(p.x >= 0.0 && p.x <= 10.0, "BMA must stay in the hull, x={}", p.x);
        // Equal models and equal availability -> the midpoint.
        assert!((p.x - 5.0).abs() < 1e-9);
    }

    #[test]
    fn unavailable_scheme_is_excluded() {
        let a = Scripted {
            id: SchemeId::Motion,
            output: Some(LocationEstimate::at(Point::new(2.0, 2.0))),
        };
        let b = Scripted { id: SchemeId::Motion, output: None };
        let mut models = ErrorModelSet::default();
        motion_model(&mut models, 0.05, 1.0);
        let mut engine = UniLocEngine::new(vec![Box::new(a), Box::new(b)], models, empty_ctx());
        let out = engine.update(&frame_indoor());
        assert_eq!(out.reports[1].confidence, 0.0);
        assert_eq!(out.reports[1].weight, 0.0);
        let p = out.bayesian_average.unwrap();
        assert!((p.x - 2.0).abs() < 1e-9, "only the available scheme counts");
        assert_eq!(out.selected, Some(SchemeId::Motion));
    }

    #[test]
    fn no_models_falls_back_to_any_estimate() {
        let a = Scripted {
            id: SchemeId::Motion,
            output: Some(LocationEstimate::at(Point::new(3.0, 4.0))),
        };
        let mut engine =
            UniLocEngine::new(vec![Box::new(a)], ErrorModelSet::default(), empty_ctx());
        let out = engine.update(&frame_indoor());
        assert_eq!(out.selected, None);
        assert_eq!(out.best_selection, Some(Point::new(3.0, 4.0)));
        assert_eq!(out.bayesian_average, Some(Point::new(3.0, 4.0)));
        assert!(out.tau.is_none());
    }

    #[test]
    fn gps_excluded_when_policy_keeps_receiver_off() {
        // A GPS scheme reporting estimates, but a GPS model predicting a
        // *larger* error than the other scheme: the duty policy keeps the
        // receiver off and GPS must carry zero weight even though its
        // estimate exists.
        struct AlwaysGps;
        impl LocalizationScheme for AlwaysGps {
            fn id(&self) -> SchemeId {
                SchemeId::Gps
            }
            fn update(&mut self, _f: &SensorFrame) -> Option<LocationEstimate> {
                Some(LocationEstimate::at(Point::new(100.0, 100.0)))
            }
        }
        let motion = Scripted {
            id: SchemeId::Motion,
            output: Some(LocationEstimate::at(Point::new(1.0, 1.0))),
        };
        let mut models = ErrorModelSet::default();
        // Outdoor models (the frame below reads as outdoor).
        models.insert(
            SchemeId::Motion,
            IoState::Outdoor,
            LinearErrorModel {
                intercept: 0.0,
                coefficients: vec![0.01, 0.0],
                sigma: 1.0,
                residual_mean: 0.0,
                r_squared: 0.9,
                p_values: vec![0.001, 0.5],
                n_obs: 100,
            },
        );
        models.insert(
            SchemeId::Gps,
            IoState::Outdoor,
            LinearErrorModel {
                intercept: 13.5,
                coefficients: vec![],
                sigma: 9.4,
                residual_mean: 0.0,
                r_squared: 0.0,
                p_values: vec![],
                n_obs: 50,
            },
        );
        let mut engine =
            UniLocEngine::new(vec![Box::new(AlwaysGps), Box::new(motion)], models, empty_ctx());
        let outdoor_frame = SensorFrame {
            t: 1.0,
            true_position: Point::origin(),
            wifi: None,
            cell: None,
            gps: None,
            steps: vec![],
            landmark: None,
            light_lux: 20_000.0,
            magnetic_variance: 0.1,
        };
        // Two epochs so the IODetector hysteresis settles on outdoor.
        engine.update(&outdoor_frame);
        let out = engine.update(&outdoor_frame);
        assert_eq!(out.io, IoState::Outdoor);
        assert!(!out.gps_enabled, "motion predicts 0.01 m; GPS (13.5 m) must stay off");
        let gps = out.reports.iter().find(|r| r.id == SchemeId::Gps).unwrap();
        assert!(gps.estimate.is_some(), "the standalone scheme still reports");
        assert_eq!(gps.weight, 0.0, "but it must not participate");
        let p = out.bayesian_average.unwrap();
        assert!((p.x - 1.0).abs() < 1e-9, "fused position must ignore GPS");
    }

    #[test]
    fn mixture_average_uses_posterior_means() {
        /// A scheme whose posterior mean differs from its point estimate.
        struct Skewed;
        impl LocalizationScheme for Skewed {
            fn id(&self) -> SchemeId {
                SchemeId::Motion
            }
            fn update(&mut self, _f: &SensorFrame) -> Option<LocationEstimate> {
                Some(LocationEstimate::at(Point::new(0.0, 0.0)))
            }
            fn posterior(&self) -> Option<Vec<(Point, f64)>> {
                // Posterior mass sits at x = 4 even though the point
                // estimate says x = 0.
                Some(vec![(Point::new(4.0, 0.0), 1.0)])
            }
        }
        let mut models = ErrorModelSet::default();
        motion_model(&mut models, 0.05, 1.0);
        let mut engine = UniLocEngine::new(vec![Box::new(Skewed)], models, empty_ctx());
        let out = engine.update(&frame_indoor());
        assert_eq!(out.bayesian_average, Some(Point::new(0.0, 0.0)));
        assert_eq!(out.mixture_average, Some(Point::new(4.0, 0.0)));
    }

    #[test]
    fn mixture_falls_back_to_point_estimates() {
        let a = Scripted {
            id: SchemeId::Motion,
            output: Some(LocationEstimate::at(Point::new(2.0, 6.0))),
        };
        let mut models = ErrorModelSet::default();
        motion_model(&mut models, 0.05, 1.0);
        let mut engine = UniLocEngine::new(vec![Box::new(a)], models, empty_ctx());
        let out = engine.update(&frame_indoor());
        // Scripted has no posterior: mixture == point BMA.
        assert_eq!(out.mixture_average, out.bayesian_average);
    }

    #[test]
    fn instrumentation_populates_sidecar_metrics_only() {
        let a = Scripted {
            id: SchemeId::Motion,
            output: Some(LocationEstimate::at(Point::new(1.0, 2.0))),
        };
        let mut models = ErrorModelSet::default();
        motion_model(&mut models, 0.05, 1.0);
        let mut engine = UniLocEngine::new(vec![Box::new(a)], models, empty_ctx());
        let out = engine.update(&frame_indoor());
        // The pipeline output is what it always was...
        assert_eq!(out.bayesian_average, Some(Point::new(1.0, 2.0)));
        // ...and the sidecar has availability, fusion-mode and span-timing
        // records (counts are global across parallel tests, so only
        // presence and positivity are asserted).
        let snap = uniloc_obs::global_metrics().snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert!(counter("engine.scheme.available.motion") >= 1);
        assert!(counter("engine.fusion.mode.bma") >= 1);
        assert!(
            snap.histograms.iter().any(|(n, h)| n == "span.engine.update" && h.count() >= 1),
            "engine.update span timings recorded"
        );
    }

    #[test]
    fn custom_scheme_without_extractor_is_excluded_but_listed() {
        let a = Scripted {
            id: SchemeId::Custom(7),
            output: Some(LocationEstimate::at(Point::new(1.0, 1.0))),
        };
        let b = Scripted {
            id: SchemeId::Motion,
            output: Some(LocationEstimate::at(Point::new(5.0, 5.0))),
        };
        let mut models = ErrorModelSet::default();
        motion_model(&mut models, 0.05, 1.0);
        custom_model(&mut models, SchemeId::Custom(7), 3.0, 1.0);
        let mut engine = UniLocEngine::new(vec![Box::new(a), Box::new(b)], models, empty_ctx());
        let out = engine.update(&frame_indoor());
        // Custom(7) has a model but the built-in extractor returns None
        // features for custom schemes, so it is excluded from the ensemble.
        let custom = out.reports.iter().find(|r| r.id == SchemeId::Custom(7)).unwrap();
        assert_eq!(custom.weight, 0.0);
        assert_eq!(out.bayesian_average, Some(Point::new(5.0, 5.0)));
        assert_eq!(engine.scheme_ids(), vec![SchemeId::Custom(7), SchemeId::Motion]);
    }
}
