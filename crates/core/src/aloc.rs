//! An A-Loc-style energy-aware selection baseline ([28] in the paper).
//!
//! A-Loc "uses the error models of some localization schemes to select one
//! low-cost scheme that can meet the accuracy requirement". The paper
//! differentiates UniLoc from it on two axes: (1) a-Loc's error records are
//! per-place and cannot transfer to new places, and (2) it *selects one*
//! scheme rather than combining them. We give the baseline the benefit of
//! UniLoc's own transferable error models (axis 1) so the comparison
//! isolates axis 2 plus the energy-awareness: among the schemes whose
//! predicted error meets the accuracy requirement, pick the cheapest.
//!
//! The `ablations` bench compares A-Loc selection against UniLoc1/UniLoc2
//! on both accuracy and the energy of the scheme it keeps running.

use crate::energy::PowerProfile;
use crate::engine::SchemeReport;
use uniloc_schemes::SchemeId;

/// The A-Loc selection policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ALocSelector {
    /// The application's accuracy requirement (m).
    pub accuracy_requirement_m: f64,
    /// Power model used to rank scheme cost.
    pub power: PowerProfile,
}

impl ALocSelector {
    /// Creates a selector with an accuracy requirement.
    ///
    /// # Panics
    ///
    /// Panics when the requirement is not positive.
    pub fn new(accuracy_requirement_m: f64) -> Self {
        assert!(accuracy_requirement_m > 0.0, "accuracy requirement must be positive");
        ALocSelector { accuracy_requirement_m, power: PowerProfile::default() }
    }

    /// Selects from one epoch's scheme reports: the *cheapest* available
    /// scheme whose predicted error meets the requirement; if none
    /// qualifies, the available scheme with the smallest predicted error
    /// (graceful degradation). Returns `None` when nothing is available.
    pub fn select(&self, reports: &[SchemeReport]) -> Option<SchemeId> {
        let candidates: Vec<&SchemeReport> = reports
            .iter()
            .filter(|r| r.estimate.is_some() && r.prediction.is_some())
            .collect();
        // A missing or NaN prediction ranks as infinitely bad rather than
        // panicking: selection must survive a corrupt epoch.
        let predicted_mean = |r: &SchemeReport| {
            r.prediction
                .map(|p| p.mean)
                .filter(|m| m.is_finite())
                .unwrap_or(f64::INFINITY)
        };
        let qualifying = candidates
            .iter()
            .filter(|r| predicted_mean(r) <= self.accuracy_requirement_m)
            .min_by(|a, b| {
                self.power
                    .scheme_power_mw(a.id)
                    .total_cmp(&self.power.scheme_power_mw(b.id))
            });
        match qualifying {
            Some(r) => Some(r.id),
            None => candidates
                .iter()
                .min_by(|a, b| predicted_mean(a).total_cmp(&predicted_mean(b)))
                .map(|r| r.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_model::ErrorPrediction;
    use uniloc_geom::Point;
    use uniloc_schemes::LocationEstimate;

    fn report(id: SchemeId, predicted: Option<f64>, available: bool) -> SchemeReport {
        SchemeReport {
            id,
            estimate: available.then(|| LocationEstimate::at(Point::origin())),
            prediction: predicted.map(|mean| ErrorPrediction { mean, sigma: 1.0 }),
            confidence: 0.0,
            weight: 0.0,
        }
    }

    #[test]
    fn picks_cheapest_qualifying_scheme() {
        let sel = ALocSelector::new(8.0);
        // Motion (cheapest) predicts 5 m <= 8 m: chosen over the more
        // accurate but costlier fusion.
        let reports = vec![
            report(SchemeId::Fusion, Some(2.0), true),
            report(SchemeId::Motion, Some(5.0), true),
            report(SchemeId::Gps, Some(14.0), true),
        ];
        assert_eq!(sel.select(&reports), Some(SchemeId::Motion));
    }

    #[test]
    fn falls_back_to_most_accurate_when_none_qualify() {
        let sel = ALocSelector::new(1.0);
        let reports = vec![
            report(SchemeId::Wifi, Some(3.0), true),
            report(SchemeId::Cellular, Some(12.0), true),
        ];
        assert_eq!(sel.select(&reports), Some(SchemeId::Wifi));
    }

    #[test]
    fn ignores_unavailable_and_unpredictable_schemes() {
        let sel = ALocSelector::new(10.0);
        let reports = vec![
            report(SchemeId::Motion, Some(2.0), false), // no estimate
            report(SchemeId::Wifi, None, true),         // no prediction
            report(SchemeId::Fusion, Some(4.0), true),
        ];
        assert_eq!(sel.select(&reports), Some(SchemeId::Fusion));
        assert_eq!(sel.select(&[]), None);
    }

    #[test]
    fn requirement_changes_the_choice() {
        let reports = vec![
            report(SchemeId::Fusion, Some(2.0), true),
            report(SchemeId::Cellular, Some(9.0), true),
        ];
        // Loose requirement: cellular (cheaper than fusion) qualifies.
        assert_eq!(ALocSelector::new(10.0).select(&reports), Some(SchemeId::Cellular));
        // Tight requirement: only fusion qualifies.
        assert_eq!(ALocSelector::new(3.0).select(&reports), Some(SchemeId::Fusion));
    }

    #[test]
    #[should_panic(expected = "accuracy requirement must be positive")]
    fn rejects_bad_requirement() {
        ALocSelector::new(0.0);
    }
}
