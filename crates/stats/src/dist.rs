//! Probability distributions used by UniLoc.
//!
//! The paper models the online localization error of a scheme at time `t` as
//! a Gaussian `Y_t ~ N(mu_t, sigma_eps)` (Section IV-A) and derives each
//! scheme's confidence as `P(Y_t <= tau)` (Eq. 2) — i.e. a normal CDF
//! evaluation. Coefficient significance in Table II is reported as Student-t
//! p-values. Both distributions are implemented here with classical special
//! function approximations (no external numerics crates).

use crate::{Result, StatsError};

/// Error function `erf(x)`, accurate to ~1.2e-7 (Abramowitz & Stegun 7.1.26).
///
/// # Examples
///
/// ```
/// use uniloc_stats::dist::erf;
/// assert!((erf(0.0)).abs() < 1e-12);
/// assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
/// assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12); // odd function
/// ```
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    // A&S formula 7.1.26.
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Complementary error function `1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
///
/// Accurate to ~1e-13 for positive arguments, which is ample for the
/// incomplete-beta continued fraction behind Student-t p-values.
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via Lentz's continued
/// fraction (Numerical Recipes 6.4).
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation for faster convergence.
    if x <= (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - beta_inc(b, a, 1.0 - x)
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-30;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Normal (Gaussian) distribution `N(mu, sigma)`.
///
/// UniLoc uses this for (a) the predicted-error distribution of each scheme
/// (`mu_t` from the regression, `sigma_eps` from the residuals) and (b) the
/// GPS error model, which the paper measures as `N(13.5 m, 9.4 m)`.
///
/// # Examples
///
/// ```
/// use uniloc_stats::Normal;
///
/// let n = Normal::new(13.5, 9.4)?;
/// // Probability the GPS error is under 20 m:
/// let p = n.cdf(20.0);
/// assert!(p > 0.7 && p < 0.8);
/// # Ok::<(), uniloc_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `std_dev <= 0` or either
    /// parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self> {
        if !mean.is_finite() || !std_dev.is_finite() {
            return Err(StatsError::NonFinite("Normal::new"));
        }
        if std_dev <= 0.0 {
            return Err(StatsError::InvalidParameter("Normal std_dev must be positive"));
        }
        Ok(Normal { mean, std_dev })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal { mean: 0.0, std_dev: 1.0 }
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function `P(X <= x)`.
    ///
    /// This is exactly the integral in the paper's Eq. 2 once `Y_t` is
    /// standardized.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Inverse CDF (quantile function), Acklam's rational approximation
    /// (relative error < 1.15e-9).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        self.mean + self.std_dev * standard_normal_quantile(p)
    }
}

fn standard_normal_quantile(p: f64) -> f64 {
    // Peter Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Student's t distribution with `nu` degrees of freedom.
///
/// Used to turn OLS t statistics into the two-sided p-values reported in
/// Table II of the paper.
///
/// # Examples
///
/// ```
/// use uniloc_stats::StudentT;
///
/// let t = StudentT::new(10.0)?;
/// // Symmetric around zero:
/// assert!((t.cdf(0.0) - 0.5).abs() < 1e-12);
/// // A large |t| means a small two-sided p-value:
/// assert!(t.p_value_two_sided(6.0) < 0.001);
/// # Ok::<(), uniloc_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    nu: f64,
}

impl StudentT {
    /// Creates a t distribution with `nu > 0` degrees of freedom.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `nu <= 0` or non-finite.
    pub fn new(nu: f64) -> Result<Self> {
        if !nu.is_finite() || nu <= 0.0 {
            return Err(StatsError::InvalidParameter("StudentT nu must be positive and finite"));
        }
        Ok(StudentT { nu })
    }

    /// Degrees of freedom.
    pub fn degrees_of_freedom(&self) -> f64 {
        self.nu
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, t: f64) -> f64 {
        if t == 0.0 {
            return 0.5;
        }
        let x = self.nu / (self.nu + t * t);
        let p = 0.5 * beta_inc(0.5 * self.nu, 0.5, x);
        if t > 0.0 {
            1.0 - p
        } else {
            p
        }
    }

    /// Two-sided p-value `P(|T| >= |t|)` for a t statistic.
    pub fn p_value_two_sided(&self, t: f64) -> f64 {
        let x = self.nu / (self.nu + t * t);
        beta_inc(0.5 * self.nu, 0.5, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from tables.
        let cases = [(0.0, 0.0), (0.5, 0.5204999), (1.0, 0.8427008), (2.0, 0.9953223)];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-6, "erf({x})");
        }
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in 0..100 {
            let x = -5.0 + 0.1 * i as f64;
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
            assert!(erf(x) >= -1.0 && erf(x) <= 1.0);
        }
    }

    #[test]
    fn erfc_complements() {
        assert!((erfc(0.7) + erf(0.7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_reference() {
        // Gamma(5) = 24.
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        // Gamma(0.5) = sqrt(pi).
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
        // Gamma(1) = 1.
        assert!(ln_gamma(1.0).abs() < 1e-10);
    }

    #[test]
    fn beta_inc_bounds_and_symmetry() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = beta_inc(2.5, 1.5, 0.3);
        let w = 1.0 - beta_inc(1.5, 2.5, 0.7);
        assert!((v - w).abs() < 1e-10);
    }

    #[test]
    fn beta_inc_uniform_case() {
        // I_x(1,1) = x.
        for i in 1..10 {
            let x = i as f64 / 10.0;
            assert!((beta_inc(1.0, 1.0, x) - x).abs() < 1e-10);
        }
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn normal_cdf_reference() {
        let n = Normal::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((n.cdf(1.0) - 0.8413447).abs() < 1e-6);
        assert!((n.cdf(-1.96) - 0.0249979).abs() < 1e-5);
    }

    #[test]
    fn normal_pdf_peak() {
        let n = Normal::new(2.0, 0.5).unwrap();
        let peak = n.pdf(2.0);
        assert!(peak > n.pdf(1.5) && peak > n.pdf(2.5));
        assert!((peak - 1.0 / (0.5 * (2.0 * std::f64::consts::PI).sqrt())).abs() < 1e-12);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        let n = Normal::new(13.5, 9.4).unwrap();
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile requires p in (0,1)")]
    fn normal_quantile_panics_outside_unit() {
        Normal::standard().quantile(1.0);
    }

    #[test]
    fn student_t_matches_normal_for_large_nu() {
        let t = StudentT::new(1e6).unwrap();
        let n = Normal::standard();
        for x in [-2.0, -0.5, 0.0, 0.7, 1.5] {
            assert!((t.cdf(x) - n.cdf(x)).abs() < 1e-4, "x={x}");
        }
    }

    #[test]
    fn student_t_reference_values() {
        // t distribution with 5 dof: P(T <= 2.015) ~ 0.95.
        let t = StudentT::new(5.0).unwrap();
        assert!((t.cdf(2.015) - 0.95).abs() < 1e-3);
        // Two-sided p at the 97.5% quantile 2.571 is 0.05.
        assert!((t.p_value_two_sided(2.571) - 0.05).abs() < 1e-3);
    }

    #[test]
    fn student_t_rejects_bad_nu() {
        assert!(StudentT::new(0.0).is_err());
        assert!(StudentT::new(-3.0).is_err());
    }

    #[test]
    fn student_t_symmetry() {
        let t = StudentT::new(7.0).unwrap();
        for x in [0.3, 1.1, 2.5] {
            assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-9, "x={x}");
            assert!((t.p_value_two_sided(x) - t.p_value_two_sided(-x)).abs() < 1e-12);
        }
        assert_eq!(t.degrees_of_freedom(), 7.0);
    }

    #[test]
    fn p_value_decreases_with_t() {
        let t = StudentT::new(20.0).unwrap();
        let mut last = 1.1;
        for x in [0.0, 0.5, 1.0, 2.0, 4.0] {
            let p = t.p_value_two_sided(x);
            assert!(p < last);
            last = p;
        }
    }

    #[test]
    fn normal_quantile_tails() {
        // Acklam's approximation must stay accurate in the far tails, which
        // the confidence computation hits for very bad schemes.
        let n = Normal::standard();
        for p in [1e-6, 1e-3, 0.999, 0.999999] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() / p.min(1.0 - p).max(1e-9) < 0.05, "p={p}");
        }
    }

    #[test]
    fn normal_accessors() {
        let n = Normal::new(3.0, 2.0).unwrap();
        assert_eq!(n.mean(), 3.0);
        assert_eq!(n.std_dev(), 2.0);
    }
}
