//! A small dense, row-major matrix of `f64`.
//!
//! This is deliberately minimal: the only consumers are the OLS solver
//! ([`crate::ols`]) and the filters crate (Kalman covariance updates), which
//! need products, transposes, and solving small well-conditioned systems.
//! For the handful-of-features regressions UniLoc trains (2-4 regressors,
//! Table II of the paper), a textbook Cholesky / partially pivoted LU is both
//! faster and easier to audit than a general BLAS dependency.

use crate::{Result, StatsError};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use uniloc_stats::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// # Ok::<(), uniloc_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

crate::impl_json_struct!(Matrix { rows, cols, data });

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if rows have differing
    /// lengths, and [`StatsError::InsufficientData`] if `rows` is empty or
    /// rows are empty.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self> {
        if rows.is_empty() || rows[0].as_ref().is_empty() {
            return Err(StatsError::InsufficientData { got: 0, needed: 1 });
        }
        let cols = rows[0].as_ref().len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            let r = r.as_ref();
            if r.len() != cols {
                return Err(StatsError::DimensionMismatch {
                    context: "Matrix::from_rows",
                    got: (1, r.len()),
                    expected: (1, cols),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix { rows: rows.len(), cols, data })
    }

    /// Builds a single-column matrix from a slice.
    pub fn column(v: &[f64]) -> Result<Self> {
        if v.is_empty() {
            return Err(StatsError::InsufficientData { got: 0, needed: 1 });
        }
        Ok(Matrix { rows: v.len(), cols: 1, data: v.to_vec() })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrowed view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(StatsError::DimensionMismatch {
                context: "Matrix::matmul",
                got: (rhs.rows, rhs.cols),
                expected: (self.cols, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Computes `self^T * self`, the Gram matrix used by OLS.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self[(r, i)] * self[(r, j)];
                }
                out[(i, j)] = s;
                out[(j, i)] = s;
            }
        }
        out
    }

    /// Multiplies every entry by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|v| v * k).collect() }
    }

    /// Solves `self * x = b` for square `self` using LU decomposition with
    /// partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] — `self` is not square or `b` has
    ///   the wrong number of rows.
    /// * [`StatsError::Singular`] — a pivot is (numerically) zero.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        if self.rows != self.cols {
            return Err(StatsError::DimensionMismatch {
                context: "Matrix::solve (lhs must be square)",
                got: (self.rows, self.cols),
                expected: (self.rows, self.rows),
            });
        }
        if b.rows != self.rows {
            return Err(StatsError::DimensionMismatch {
                context: "Matrix::solve (rhs rows)",
                got: (b.rows, b.cols),
                expected: (self.rows, b.cols),
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.clone();
        // Forward elimination with partial pivoting.
        for col in 0..n {
            let mut pivot = col;
            let mut best = a[(col, col)].abs();
            for r in (col + 1)..n {
                let v = a[(r, col)].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return Err(StatsError::Singular(col));
            }
            if pivot != col {
                for c in 0..n {
                    a.data.swap(col * n + c, pivot * n + c);
                }
                for c in 0..x.cols {
                    x.data.swap(col * x.cols + c, pivot * x.cols + c);
                }
            }
            let d = a[(col, col)];
            for r in (col + 1)..n {
                let f = a[(r, col)] / d;
                if f == 0.0 {
                    continue;
                }
                a[(r, col)] = 0.0;
                for c in (col + 1)..n {
                    let v = a[(col, c)];
                    a[(r, c)] -= f * v;
                }
                for c in 0..x.cols {
                    let v = x[(col, c)];
                    x[(r, c)] -= f * v;
                }
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let d = a[(col, col)];
            for c in 0..x.cols {
                let mut s = x[(col, c)];
                for k in (col + 1)..n {
                    s -= a[(col, k)] * x[(k, c)];
                }
                x[(col, c)] = s / d;
            }
        }
        Ok(x)
    }

    /// Inverse of a square matrix.
    ///
    /// # Errors
    ///
    /// Same as [`Matrix::solve`].
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve(&Matrix::identity(self.rows))
    }

    /// Cholesky factor `L` (lower-triangular, `self = L * L^T`) of a
    /// symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Singular`] when the matrix is not positive
    /// definite (e.g. collinear regressors in OLS).
    pub fn cholesky(&self) -> Result<Matrix> {
        if self.rows != self.cols {
            return Err(StatsError::DimensionMismatch {
                context: "Matrix::cholesky",
                got: (self.rows, self.cols),
                expected: (self.rows, self.rows),
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 1e-12 {
                        return Err(StatsError::Singular(i));
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix subtraction shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    /// Panicking operator form of [`Matrix::matmul`] for internal use where
    /// shapes are statically known.
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("matrix multiplication shape mismatch")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, StatsError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        let rows: Vec<Vec<f64>> = vec![];
        assert!(matches!(
            Matrix::from_rows(&rows).unwrap_err(),
            StatsError::InsufficientData { .. }
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0][..], &[7.0, 8.0][..]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..], &[5.0, 6.0][..]]).unwrap();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert_eq!(g, explicit);
    }

    #[test]
    fn solve_identity_returns_rhs() {
        let i = Matrix::identity(3);
        let b = Matrix::column(&[1.0, -2.0, 0.5]).unwrap();
        let x = i.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3
        let a = Matrix::from_rows(&[&[2.0, 1.0][..], &[1.0, 3.0][..]]).unwrap();
        let b = Matrix::column(&[5.0, 10.0]).unwrap();
        let x = a.solve(&b).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero pivot forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0][..], &[1.0, 0.0][..]]).unwrap();
        let b = Matrix::column(&[2.0, 3.0]).unwrap();
        let x = a.solve(&b).unwrap();
        assert!((x[(0, 0)] - 3.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]).unwrap();
        let b = Matrix::column(&[1.0, 2.0]).unwrap();
        assert!(matches!(a.solve(&b).unwrap_err(), StatsError::Singular(_)));
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0][..], &[2.0, 6.0][..]]).unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let i = Matrix::identity(2);
        assert!((&prod - &i).norm() < 1e-12);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[&[4.0, 2.0][..], &[2.0, 3.0][..]]).unwrap();
        let l = a.cholesky().unwrap();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!((&rec - &a).norm() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 1.0][..]]).unwrap();
        assert!(matches!(a.cholesky().unwrap_err(), StatsError::Singular(_)));
    }

    #[test]
    fn operators_add_sub() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 5.0][..]]).unwrap();
        let s = &a + &b;
        assert_eq!(s.row(0), &[4.0, 7.0]);
        let d = &b - &a;
        assert_eq!(d.row(0), &[2.0, 3.0]);
    }

    #[test]
    fn json_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        let json = crate::json::to_string(&a);
        let back: Matrix = crate::json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn solve_multiple_rhs_columns() {
        let a = Matrix::from_rows(&[&[3.0, 1.0][..], &[1.0, 2.0][..]]).unwrap();
        let mut b = Matrix::zeros(2, 2);
        // Columns: [5, 5] and [4, 3].
        b[(0, 0)] = 5.0;
        b[(1, 0)] = 5.0;
        b[(0, 1)] = 4.0;
        b[(1, 1)] = 3.0;
        let x = a.solve(&b).unwrap();
        let rec = a.matmul(&x).unwrap();
        assert!((&rec - &b).norm() < 1e-10);
    }

    #[test]
    fn cholesky_solve_agrees_with_lu_on_spd_system() {
        // SPD matrix from a Gram construction.
        let x = Matrix::from_rows(&[
            &[1.0, 2.0, 0.5][..],
            &[0.0, 1.0, 1.0][..],
            &[2.0, 0.0, 1.0][..],
            &[1.0, 1.0, 1.0][..],
        ])
        .unwrap();
        let g = x.gram();
        let b = Matrix::column(&[1.0, 2.0, 3.0]).unwrap();
        let lu = g.solve(&b).unwrap();
        // Reconstruct via Cholesky: L L^T x = b.
        let l = g.cholesky().unwrap();
        let y = l.solve(&b).unwrap();
        let chol = l.transpose().solve(&y).unwrap();
        assert!((&lu - &chol).norm() < 1e-8);
    }

    #[test]
    fn scale_and_norm() {
        let a = Matrix::from_rows(&[&[3.0, 4.0][..]]).unwrap();
        assert!((a.norm() - 5.0).abs() < 1e-12);
        let b = a.scale(2.0);
        assert!((b.norm() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn row_access_and_shape() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.shape(), (2, 2));
        assert!(a.is_finite());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        Matrix::zeros(2, 2).row(5);
    }
}
