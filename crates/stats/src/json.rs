//! A minimal JSON document model, writer and reader.
//!
//! The workspace's hermetic-build policy (see `DESIGN.md`) forbids external
//! dependencies, so this module replaces `serde`/`serde_json` for the small
//! amount of (de)serialization UniLoc actually needs: persisting trained
//! error-model sets, emitting walk traces, and round-trip tests on the
//! statistical types.
//!
//! Design points:
//!
//! * [`Json`] keeps integers ([`Json::Int`]) and floats ([`Json::Num`])
//!   distinct so counters round-trip exactly; the writer prints floats with
//!   Rust's shortest-round-trip `Display` and appends `.0` to integral
//!   floats so the distinction survives a parse.
//! * Objects preserve insertion order (`Vec<(String, Json)>`), which makes
//!   the output deterministic — a requirement for the golden-trace tests.
//! * Maps with non-string keys (e.g. `BTreeMap<SchemeId, _>`) serialize as
//!   arrays of `[key, value]` pairs.
//! * Non-finite floats serialize as `null`, matching `serde_json`.
//!
//! # Examples
//!
//! ```
//! use uniloc_stats::json::{Json, ToJson, FromJson};
//!
//! let doc = Json::Obj(vec![
//!     ("name".to_owned(), "gps".to_json()),
//!     ("errors".to_owned(), vec![1.5, 2.25].to_json()),
//! ]);
//! let text = doc.to_string();
//! assert_eq!(text, r#"{"name":"gps","errors":[1.5,2.25]}"#);
//! let back = Json::parse(&text).unwrap();
//! let errors: Vec<f64> = FromJson::from_json(back.get("errors").unwrap()).unwrap();
//! assert_eq!(errors, [1.5, 2.25]);
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced when serializing NaN / infinity).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no decimal point or exponent).
    Int(i64),
    /// A floating-point literal.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse or conversion error, with a byte offset when parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    msg: String,
    offset: Option<usize>,
}

impl JsonError {
    /// Creates a conversion (non-parse) error.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into(), offset: None }
    }

    fn at(msg: impl Into<String>, offset: usize) -> Self {
        JsonError { msg: msg.into(), offset: Some(offset) }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} (at byte {o})", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl Error for JsonError {}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float; integers widen.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as an integer (floats do not narrow).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at("trailing characters after document", p.pos));
        }
        Ok(value)
    }

    /// Serializes compactly (no whitespace).
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        write_value(self, None, 0, &mut out);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, Some(2), 0, &mut out);
        out
    }

    /// Returns the document with every object's keys sorted (recursively,
    /// stable — duplicate keys keep their insertion order). Arrays keep
    /// their element order.
    ///
    /// This is the canonical form used for committed artifacts
    /// (`results/CHAOS_*.json`, `results/BENCH_*.json`): serializing a
    /// canonicalized document is byte-stable under refactors that merely
    /// reorder struct fields or map insertions, which is what lets CI diff
    /// artifacts produced by different code paths (e.g. `--jobs 1` vs
    /// `--jobs 4`).
    pub fn canonical(&self) -> Json {
        match self {
            Json::Arr(items) => Json::Arr(items.iter().map(Json::canonical).collect()),
            Json::Obj(pairs) => {
                let mut sorted: Vec<(String, Json)> =
                    pairs.iter().map(|(k, v)| (k.clone(), v.canonical())).collect();
                sorted.sort_by(|a, b| a.0.cmp(&b.0));
                Json::Obj(sorted)
            }
            other => other.clone(),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Json, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => {
            out.push_str(&i.to_string());
        }
        Json::Num(x) => write_f64(*x, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            write_seq(items.len(), indent, depth, out, '[', ']', |i, depth, out| {
                write_value(&items[i], indent, depth, out);
            });
        }
        Json::Obj(pairs) => {
            write_seq(pairs.len(), indent, depth, out, '{', '}', |i, depth, out| {
                write_string(&pairs[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(&pairs[i].1, indent, depth, out);
            });
        }
    }
}

fn write_seq(
    len: usize,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut item: impl FnMut(usize, usize, &mut String),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(i, depth + 1, out);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

/// Writes a float with Rust's shortest round-trip formatting, forcing a
/// `.0` suffix on integral values so the parser returns [`Json::Num`].
fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = x.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(JsonError::at(format!("unexpected byte `{}`", b as char), self.pos)),
            None => Err(JsonError::at("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(JsonError::at(
                                        "invalid \\u escape",
                                        self.pos,
                                    ))
                                }
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(JsonError::at("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::at("invalid UTF-8", self.pos))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(JsonError::at("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| JsonError::at("invalid \\u escape", self.pos))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| JsonError::at("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at("invalid number", start))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| JsonError::at(format!("invalid number `{text}`"), start))
        } else {
            // Integer literal; fall back to f64 on i64 overflow.
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| JsonError::at(format!("invalid number `{text}`"), start)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Conversion into a [`Json`] document.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] document.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, failing with a descriptive [`JsonError`] on
    /// shape mismatch.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

/// Serializes any [`ToJson`] value compactly (the `serde_json::to_string`
/// analogue).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string()
}

/// Serializes any [`ToJson`] value with indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Parses and converts in one step (the `serde_json::from_str` analogue).
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

/// Extracts and converts an object field — the building block used by
/// [`impl_json_struct!`].
pub fn field<T: FromJson>(json: &Json, name: &str) -> Result<T, JsonError> {
    let value = json
        .get(name)
        .ok_or_else(|| JsonError::new(format!("missing field `{name}`")))?;
    T::from_json(value).map_err(|e| JsonError::new(format!("field `{name}`: {e}")))
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(json.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_bool().ok_or_else(|| JsonError::new("expected bool"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            // Non-finite floats serialize as null; accept it back as NaN.
            Json::Null => Ok(f64::NAN),
            _ => json.as_f64().ok_or_else(|| JsonError::new("expected number")),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        f64::from_json(json).map(|x| x as f32)
    }
}

macro_rules! impl_json_int {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Int(i64::try_from(*self).expect("integer fits in i64"))
            }
        }
        impl FromJson for $ty {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                let i = json
                    .as_i64()
                    .ok_or_else(|| JsonError::new("expected integer"))?;
                <$ty>::try_from(i).map_err(|_| {
                    JsonError::new(format!(
                        "integer {i} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )+};
}

impl_json_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_arr()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::new("expected two-element array")),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.as_arr() {
            Some([a, b, c]) => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            _ => Err(JsonError::new("expected three-element array")),
        }
    }
}

/// Maps serialize as arrays of `[key, value]` pairs so non-string keys
/// (e.g. scheme identifiers) need no string encoding.
impl<K: ToJson, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|(k, v)| (k, v).to_json()).collect())
    }
}

impl<K: FromJson + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Vec::<(K, V)>::from_json(json).map(|pairs| pairs.into_iter().collect())
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a struct with named fields,
/// serializing as an object in field order.
///
/// ```
/// # use uniloc_stats::impl_json_struct;
/// # use uniloc_stats::json::{to_string, from_str};
/// #[derive(Debug, PartialEq)]
/// struct Sample { t: f64, label: String }
/// impl_json_struct!(Sample { t, label });
///
/// let s = Sample { t: 0.5, label: "indoor".into() };
/// let back: Sample = from_str(&to_string(&s)).unwrap();
/// assert_eq!(back, s);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((
                        stringify!($field).to_owned(),
                        $crate::json::ToJson::to_json(&self.$field),
                    )),+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                json: &$crate::json::Json,
            ) -> std::result::Result<Self, $crate::json::JsonError> {
                Ok(Self {
                    $($field: $crate::json::field(json, stringify!($field))?),+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a field-less enum, serializing
/// each variant as its name string.
///
/// ```
/// # use uniloc_stats::impl_json_enum;
/// # use uniloc_stats::json::{to_string, from_str};
/// #[derive(Debug, PartialEq)]
/// enum Env { Indoor, Outdoor }
/// impl_json_enum!(Env { Indoor, Outdoor });
///
/// assert_eq!(to_string(&Env::Indoor), "\"Indoor\"");
/// let back: Env = from_str("\"Outdoor\"").unwrap();
/// assert_eq!(back, Env::Outdoor);
/// ```
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ty { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                let name = match self {
                    $(<$ty>::$variant => stringify!($variant),)+
                    #[allow(unreachable_patterns)]
                    _ => unreachable!("non-unit variant in impl_json_enum"),
                };
                $crate::json::Json::Str(name.to_owned())
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                json: &$crate::json::Json,
            ) -> std::result::Result<Self, $crate::json::JsonError> {
                let name = json
                    .as_str()
                    .ok_or_else(|| $crate::json::JsonError::new("expected string"))?;
                match name {
                    $(stringify!($variant) => Ok(<$ty>::$variant),)+
                    other => Err($crate::json::JsonError::new(format!(
                        "unknown {} variant `{other}`",
                        stringify!($ty)
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sorts_keys_recursively_and_stably() {
        let doc = Json::parse(r#"{"b":{"z":1,"a":2},"a":[{"y":1,"x":2}],"b":0}"#).unwrap();
        let canon = doc.canonical();
        assert_eq!(
            canon.to_string(),
            r#"{"a":[{"x":2,"y":1}],"b":{"a":2,"z":1},"b":0}"#,
            "keys sort recursively; duplicate keys keep insertion order"
        );
        // Idempotent, and a no-op on already-sorted documents.
        assert_eq!(canon.canonical(), canon);
    }

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "1.5", "-2.25e3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn int_and_float_stay_distinct() {
        assert_eq!(Json::parse("3").unwrap(), Json::Int(3));
        assert_eq!(Json::parse("3.0").unwrap(), Json::Num(3.0));
        // An integral float keeps its `.0` through a write/parse cycle.
        assert_eq!(Json::Num(3.0).to_string(), "3.0");
        assert_eq!(Json::parse(&Json::Num(3.0).to_string()).unwrap(), Json::Num(3.0));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -123.456e-78, 0.0, -0.0] {
            let mut s = String::new();
            write_f64(x, &mut s);
            let back = Json::parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nbreak \"quoted\" back\\slash \t ünïcødé \u{1}";
        let json = Json::Str(s.to_owned());
        assert_eq!(Json::parse(&json.to_string()).unwrap(), json);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::Str("A".into()));
        // Surrogate pair for U+1F600.
        assert_eq!(
            Json::parse(r#""😀""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn nested_document_round_trips() {
        let text = r#"{"a":[1,2.5,null,{"b":true}],"c":{"d":"e"},"f":[]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Json::parse(r#"{"a":[1,2],"b":{"c":null},"d":[]}"#).unwrap();
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"a\": [\n    1,"), "{pretty}");
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated", "[] []"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.offset.is_some(), "{bad}: {err}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<f64>> = vec![Some(1.5), None, Some(-2.0)];
        let back: Vec<Option<f64>> = from_str(&to_string(&v)).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert(3u32, "three".to_owned());
        m.insert(1u32, "one".to_owned());
        assert_eq!(to_string(&m), r#"[[1,"one"],[3,"three"]]"#);
        let back: BTreeMap<u32, String> = from_str(&to_string(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn struct_macro_round_trips() {
        #[derive(Debug, PartialEq)]
        struct Reading {
            t: f64,
            count: u32,
            tag: Option<String>,
        }
        impl_json_struct!(Reading { t, count, tag });

        let r = Reading { t: 1.25, count: 7, tag: None };
        let text = to_string(&r);
        assert_eq!(text, r#"{"t":1.25,"count":7,"tag":null}"#);
        let back: Reading = from_str(&text).unwrap();
        assert_eq!(back, r);

        let err = from_str::<Reading>(r#"{"t":1.0}"#).unwrap_err();
        assert!(err.to_string().contains("missing field `count`"), "{err}");
    }

    #[test]
    fn enum_macro_round_trips() {
        #[derive(Debug, PartialEq)]
        enum Mode {
            Fast,
            Accurate,
        }
        impl_json_enum!(Mode { Fast, Accurate });

        let back: Mode = from_str(&to_string(&Mode::Accurate)).unwrap();
        assert_eq!(back, Mode::Accurate);
        assert!(from_str::<Mode>("\"Slow\"").is_err());
    }

    #[test]
    fn i64_overflow_falls_back_to_float() {
        let v = Json::parse("99999999999999999999999").unwrap();
        assert!(matches!(v, Json::Num(_)));
    }
}
