//! Ordinary least squares with inference output.
//!
//! The heart of UniLoc's error modeling (Section III of the paper) is the
//! multiple linear regression of Eq. 1:
//!
//! ```text
//! y_i = beta_0 + beta_1 x_1i + ... + beta_p x_pi + eps_i
//! ```
//!
//! where `y_i` is the measured localization error at the i-th survey location
//! and `x_ji` are the sensor-data features of Table I. The paper fixes
//! `beta_0 = 0` ("the localization error is zero if all coefficients are
//! zero"), so the builder supports fitting with or without an intercept.
//! Table II reports, per coefficient, the estimate and its p-value, plus the
//! residual mean `mu_eps`, residual deviation `sigma_eps`, and `R^2` — all of
//! which [`OlsFit`] exposes.

use crate::dist::StudentT;
use crate::matrix::Matrix;
use crate::{Result, StatsError};

/// Configures and runs an OLS fit.
///
/// # Examples
///
/// ```
/// use uniloc_stats::ols::OlsBuilder;
///
/// // Noisy y = 3 x1 + 1 x2.
/// let xs: Vec<Vec<f64>> = (0..30)
///     .map(|i| vec![i as f64 * 0.1, ((i * 7) % 13) as f64 * 0.2])
///     .collect();
/// let ys: Vec<f64> = xs
///     .iter()
///     .enumerate()
///     .map(|(i, r)| 3.0 * r[0] + r[1] + if i % 2 == 0 { 0.01 } else { -0.01 })
///     .collect();
/// let fit = OlsBuilder::new().intercept(false).fit(&xs, &ys)?;
/// assert!((fit.coefficients()[0] - 3.0).abs() < 0.05);
/// assert!(fit.r_squared() > 0.99);
/// # Ok::<(), uniloc_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OlsBuilder {
    intercept: bool,
}

impl OlsBuilder {
    /// Creates a builder; by default no intercept is fitted (UniLoc's
    /// convention of `beta_0 = 0`).
    pub fn new() -> Self {
        OlsBuilder { intercept: false }
    }

    /// Whether to include an intercept term (`beta_0`).
    pub fn intercept(mut self, yes: bool) -> Self {
        self.intercept = yes;
        self
    }

    /// Fits `y ~ X` by ordinary least squares.
    ///
    /// `xs` holds one row of regressors per observation; all rows must share
    /// one length `p >= 1`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InsufficientData`] — fewer observations than
    ///   parameters plus one, or empty input.
    /// * [`StatsError::DimensionMismatch`] — ragged rows or `xs.len() !=
    ///   ys.len()`.
    /// * [`StatsError::Singular`] — collinear regressors.
    /// * [`StatsError::NonFinite`] — NaN/inf in the inputs.
    pub fn fit<R: AsRef<[f64]>>(&self, xs: &[R], ys: &[f64]) -> Result<OlsFit> {
        if xs.len() != ys.len() {
            return Err(StatsError::DimensionMismatch {
                context: "OlsBuilder::fit (xs vs ys length)",
                got: (xs.len(), 1),
                expected: (ys.len(), 1),
            });
        }
        if xs.is_empty() {
            return Err(StatsError::InsufficientData { got: 0, needed: 2 });
        }
        let p_raw = xs[0].as_ref().len();
        if p_raw == 0 {
            return Err(StatsError::InsufficientData { got: 0, needed: 1 });
        }
        let p = p_raw + usize::from(self.intercept);
        let n = xs.len();
        if n <= p {
            return Err(StatsError::InsufficientData { got: n, needed: p + 1 });
        }
        // Build the design matrix.
        let mut design = Matrix::zeros(n, p);
        for (i, row) in xs.iter().enumerate() {
            let row = row.as_ref();
            if row.len() != p_raw {
                return Err(StatsError::DimensionMismatch {
                    context: "OlsBuilder::fit (ragged xs)",
                    got: (1, row.len()),
                    expected: (1, p_raw),
                });
            }
            let mut c = 0;
            if self.intercept {
                design[(i, 0)] = 1.0;
                c = 1;
            }
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(StatsError::NonFinite("regressor"));
                }
                design[(i, c + j)] = v;
            }
        }
        if ys.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFinite("response"));
        }

        // Normal equations: (X^T X) beta = X^T y, solved via Cholesky.
        let gram = design.gram();
        let xty = design.transpose().matmul(&Matrix::column(ys)?)?;
        let l = gram.cholesky()?;
        let beta = solve_cholesky(&l, &xty);

        // Residuals and diagnostics.
        let mut residuals = Vec::with_capacity(n);
        let mut ss_res = 0.0;
        for i in 0..n {
            let mut yhat = 0.0;
            for j in 0..p {
                yhat += design[(i, j)] * beta[j];
            }
            let r = ys[i] - yhat;
            residuals.push(r);
            ss_res += r * r;
        }
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        // Total sum of squares. Without an intercept, the conventional
        // (uncentered) definition uses sum(y^2); with one, sum((y - ybar)^2).
        let ss_tot: f64 = if self.intercept {
            ys.iter().map(|y| (y - y_mean) * (y - y_mean)).sum()
        } else {
            ys.iter().map(|y| y * y).sum()
        };
        let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 0.0 };
        let dof = (n - p) as f64;
        let sigma2 = ss_res / dof;

        // Covariance of beta: sigma^2 (X^T X)^-1 ; standard errors are the
        // diagonal square roots.
        let gram_inv = gram.inverse()?;
        let mut std_errors = Vec::with_capacity(p);
        let mut t_stats = Vec::with_capacity(p);
        let mut p_values = Vec::with_capacity(p);
        let t_dist = StudentT::new(dof)?;
        for j in 0..p {
            let se = (sigma2 * gram_inv[(j, j)]).max(0.0).sqrt();
            std_errors.push(se);
            let t = if se > 0.0 { beta[j] / se } else { f64::INFINITY };
            t_stats.push(t);
            p_values.push(if t.is_finite() { t_dist.p_value_two_sided(t) } else { 0.0 });
        }

        let residual_mean = residuals.iter().sum::<f64>() / n as f64;
        let residual_std = (residuals
            .iter()
            .map(|r| (r - residual_mean) * (r - residual_mean))
            .sum::<f64>()
            / dof)
            .sqrt();

        Ok(OlsFit {
            intercept: self.intercept,
            coefficients: beta,
            std_errors,
            t_stats,
            p_values,
            residuals,
            residual_mean,
            residual_std,
            r_squared,
            n_obs: n,
        })
    }
}

/// Solves `L L^T x = b` given the Cholesky factor `L` (single-column `b`).
fn solve_cholesky(l: &Matrix, b: &Matrix) -> Vec<f64> {
    let n = l.rows();
    // Forward: L z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut s = b[(i, 0)];
        for k in 0..i {
            s -= l[(i, k)] * z[k];
        }
        z[i] = s / l[(i, i)];
    }
    // Backward: L^T x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = z[i];
        for k in (i + 1)..n {
            s -= l[(k, i)] * x[k];
        }
        x[i] = s / l[(i, i)];
    }
    x
}

/// The result of an OLS fit: estimates plus the inference quantities UniLoc's
/// Table II reports.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    intercept: bool,
    coefficients: Vec<f64>,
    std_errors: Vec<f64>,
    t_stats: Vec<f64>,
    p_values: Vec<f64>,
    residuals: Vec<f64>,
    residual_mean: f64,
    residual_std: f64,
    r_squared: f64,
    n_obs: usize,
}

crate::impl_json_struct!(OlsFit {
    intercept,
    coefficients,
    std_errors,
    t_stats,
    p_values,
    residuals,
    residual_mean,
    residual_std,
    r_squared,
    n_obs,
});

impl OlsFit {
    /// Fitted coefficients. If the model includes an intercept it is element
    /// 0, followed by the regressor coefficients in input order.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Whether an intercept was fitted (and occupies `coefficients()[0]`).
    pub fn has_intercept(&self) -> bool {
        self.intercept
    }

    /// Standard error of each coefficient.
    pub fn std_errors(&self) -> &[f64] {
        &self.std_errors
    }

    /// t statistic of each coefficient.
    pub fn t_stats(&self) -> &[f64] {
        &self.t_stats
    }

    /// Two-sided p-value of each coefficient — the significance column of the
    /// paper's Table II ("a pvalue less than .05 indicates that the feature
    /// is significant given the other features in the model").
    pub fn p_values(&self) -> &[f64] {
        &self.p_values
    }

    /// Raw residuals `y_i - yhat_i`.
    pub fn residuals(&self) -> &[f64] {
        &self.residuals
    }

    /// Residual mean `mu_eps` (should sit near zero; Table II).
    pub fn residual_mean(&self) -> f64 {
        self.residual_mean
    }

    /// Residual standard deviation `sigma_eps` — the spread the confidence
    /// computation of Eq. 2 uses.
    pub fn residual_std(&self) -> f64 {
        self.residual_std
    }

    /// Coefficient of determination `R^2` (uncentered when fitted without an
    /// intercept).
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Number of observations used by the fit.
    pub fn n_obs(&self) -> usize {
        self.n_obs
    }

    /// Predicts `yhat` for a feature row (length must equal the number of
    /// non-intercept regressors).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` does not match the fitted regressor count.
    pub fn predict(&self, features: &[f64]) -> f64 {
        let offset = usize::from(self.intercept);
        assert_eq!(
            features.len(),
            self.coefficients.len() - offset,
            "feature count mismatch in OlsFit::predict"
        );
        let mut y = if self.intercept { self.coefficients[0] } else { 0.0 };
        for (j, &x) in features.iter().enumerate() {
            y += self.coefficients[offset + j] * x;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_rng::Rng;

    fn noisy_dataset(n: usize, betas: &[f64], noise: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let row: Vec<f64> = (0..betas.len()).map(|_| rng.gen_range(0.0..10.0)).collect();
            let eps = if noise > 0.0 { rng.gen_range(-noise..noise) } else { 0.0 };
            let y: f64 = row.iter().zip(betas).map(|(x, b)| x * b).sum::<f64>() + eps;
            xs.push(row);
            ys.push(y);
        }
        (xs, ys)
    }

    #[test]
    fn recovers_exact_coefficients_without_noise() {
        let (xs, ys) = noisy_dataset(50, &[1.5, -2.0, 0.3], 0.0, 1);
        let fit = OlsBuilder::new().fit(&xs, &ys).unwrap();
        assert!((fit.coefficients()[0] - 1.5).abs() < 1e-9);
        assert!((fit.coefficients()[1] + 2.0).abs() < 1e-9);
        assert!((fit.coefficients()[2] - 0.3).abs() < 1e-9);
        assert!(fit.r_squared() > 0.999999);
    }

    #[test]
    fn recovers_coefficients_under_noise() {
        let (xs, ys) = noisy_dataset(500, &[2.5, 0.8], 0.5, 2);
        let fit = OlsBuilder::new().fit(&xs, &ys).unwrap();
        assert!((fit.coefficients()[0] - 2.5).abs() < 0.05);
        assert!((fit.coefficients()[1] - 0.8).abs() < 0.05);
        // Both regressors are strongly significant.
        assert!(fit.p_values().iter().all(|&p| p < 1e-6));
    }

    #[test]
    fn intercept_fit_recovers_offset() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 7.0 + 0.5 * r[0]).collect();
        let fit = OlsBuilder::new().intercept(true).fit(&xs, &ys).unwrap();
        assert!(fit.has_intercept());
        assert!((fit.coefficients()[0] - 7.0).abs() < 1e-9);
        assert!((fit.coefficients()[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn irrelevant_feature_has_large_p_value() {
        let mut rng = Rng::seed_from_u64(3);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..300 {
            let x1: f64 = rng.gen_range(0.0..10.0);
            let junk: f64 = rng.gen_range(0.0..10.0);
            xs.push(vec![x1, junk]);
            ys.push(3.0 * x1 + rng.gen_range(-2.0..2.0));
        }
        let fit = OlsBuilder::new().fit(&xs, &ys).unwrap();
        assert!(fit.p_values()[0] < 1e-6, "real feature must be significant");
        assert!(fit.p_values()[1] > 0.05, "junk feature must be insignificant");
    }

    #[test]
    fn residual_diagnostics_are_sane() {
        let (xs, ys) = noisy_dataset(400, &[1.0, 1.0], 1.0, 4);
        let fit = OlsBuilder::new().fit(&xs, &ys).unwrap();
        // Uniform(-1,1) noise: mean ~0, sd ~1/sqrt(3)=0.577.
        assert!(fit.residual_mean().abs() < 0.1);
        assert!((fit.residual_std() - 0.577).abs() < 0.1);
        assert_eq!(fit.residuals().len(), 400);
        assert_eq!(fit.n_obs(), 400);
    }

    #[test]
    fn rejects_collinear_features() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert!(matches!(
            OlsBuilder::new().fit(&xs, &ys).unwrap_err(),
            StatsError::Singular(_)
        ));
    }

    #[test]
    fn rejects_too_few_observations() {
        let xs = vec![vec![1.0, 2.0], vec![2.0, 3.0]];
        let ys = vec![1.0, 2.0];
        assert!(matches!(
            OlsBuilder::new().fit(&xs, &ys).unwrap_err(),
            StatsError::InsufficientData { .. }
        ));
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let xs = vec![vec![1.0], vec![2.0]];
        let ys = vec![1.0];
        assert!(matches!(
            OlsBuilder::new().fit(&xs, &ys).unwrap_err(),
            StatsError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn rejects_nan_input() {
        let xs = vec![vec![1.0], vec![f64::NAN], vec![3.0]];
        let ys = vec![1.0, 2.0, 3.0];
        assert!(matches!(
            OlsBuilder::new().fit(&xs, &ys).unwrap_err(),
            StatsError::NonFinite(_)
        ));
    }

    #[test]
    fn predict_matches_fit() {
        let (xs, ys) = noisy_dataset(100, &[2.0, -1.0], 0.0, 5);
        let fit = OlsBuilder::new().fit(&xs, &ys).unwrap();
        assert!((fit.predict(&[3.0, 4.0]) - (2.0 * 3.0 - 4.0)).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn predict_panics_on_wrong_arity() {
        let (xs, ys) = noisy_dataset(100, &[2.0, -1.0], 0.0, 6);
        let fit = OlsBuilder::new().fit(&xs, &ys).unwrap();
        fit.predict(&[1.0]);
    }

    #[test]
    fn json_roundtrip() {
        let (xs, ys) = noisy_dataset(50, &[1.0], 0.1, 7);
        let fit = OlsBuilder::new().fit(&xs, &ys).unwrap();
        let json = crate::json::to_string(&fit);
        let back: OlsFit = crate::json::from_str(&json).unwrap();
        assert_eq!(fit.n_obs(), back.n_obs());
        assert_eq!(fit.has_intercept(), back.has_intercept());
        for (a, b) in fit.coefficients().iter().zip(back.coefficients()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((fit.r_squared() - back.r_squared()).abs() < 1e-12);
        assert!((fit.residual_std() - back.residual_std()).abs() < 1e-12);
    }
}
