//! Descriptive statistics and empirical distributions.
//!
//! Section V of the paper validates error prediction with a *normalized
//! root-mean-square error* (Eq. 7) and reports accuracy as CDFs and 50th/90th
//! percentiles of localization error (Figs. 6-8). This module provides those
//! primitives.

use crate::{Result, StatsError};

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] on an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::InsufficientData { got: 0, needed: 1 });
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample variance (Bessel-corrected).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] when fewer than two observations
/// are supplied.
pub fn variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(StatsError::InsufficientData { got: xs.len(), needed: 2 });
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation.
///
/// # Errors
///
/// Same as [`variance`].
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    variance(xs).map(f64::sqrt)
}

/// Root-mean-square error between predictions and ground truth.
///
/// # Errors
///
/// * [`StatsError::DimensionMismatch`] — slices have different lengths.
/// * [`StatsError::InsufficientData`] — empty input.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> Result<f64> {
    if predicted.len() != actual.len() {
        return Err(StatsError::DimensionMismatch {
            context: "rmse",
            got: (predicted.len(), 1),
            expected: (actual.len(), 1),
        });
    }
    if predicted.is_empty() {
        return Err(StatsError::InsufficientData { got: 0, needed: 1 });
    }
    let ss: f64 = predicted.iter().zip(actual).map(|(p, a)| (p - a) * (p - a)).sum();
    Ok((ss / predicted.len() as f64).sqrt())
}

/// Normalized RMSE — Eq. 7 of the paper: RMSE of the predicted localization
/// errors divided by the mean of the true localization errors.
///
/// This is the quantity Table III reports per scheme and condition.
///
/// # Errors
///
/// Same as [`rmse`]; additionally [`StatsError::InvalidParameter`] when the
/// mean of `actual` is zero (the normalization is undefined).
pub fn normalized_rmse(predicted: &[f64], actual: &[f64]) -> Result<f64> {
    let r = rmse(predicted, actual)?;
    let m = mean(actual)?;
    if m == 0.0 {
        return Err(StatsError::InvalidParameter("normalized_rmse: mean of actual is zero"));
    }
    Ok(r / m)
}

/// Linear-interpolated percentile (`q` in `[0, 100]`).
///
/// # Errors
///
/// [`StatsError::InsufficientData`] on an empty slice,
/// [`StatsError::InvalidParameter`] when `q` is outside `[0, 100]` or the
/// data contains NaN.
pub fn percentile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::InsufficientData { got: 0, needed: 1 });
    }
    if !(0.0..=100.0).contains(&q) {
        return Err(StatsError::InvalidParameter("percentile q must be in [0, 100]"));
    }
    if xs.iter().any(|v| v.is_nan()) {
        return Err(StatsError::NonFinite("percentile input"));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let w = rank - lo as f64;
        Ok(sorted[lo] * (1.0 - w) + sorted[hi] * w)
    }
}

/// Five-number-style summary of a sample.
///
/// # Examples
///
/// ```
/// use uniloc_stats::Summary;
///
/// let s = Summary::from_sample(&[1.0, 2.0, 3.0, 4.0, 100.0])?;
/// assert_eq!(s.n, 5);
/// assert_eq!(s.median, 3.0);
/// assert!(s.mean > s.median); // outlier pulls the mean
/// # Ok::<(), uniloc_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when `n == 1`).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 90th percentile — the paper's favorite tail statistic.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `xs`.
    ///
    /// # Errors
    ///
    /// [`StatsError::InsufficientData`] on empty input,
    /// [`StatsError::NonFinite`] if the sample contains NaN.
    pub fn from_sample(xs: &[f64]) -> Result<Self> {
        if xs.is_empty() {
            return Err(StatsError::InsufficientData { got: 0, needed: 1 });
        }
        if xs.iter().any(|v| v.is_nan()) {
            return Err(StatsError::NonFinite("Summary input"));
        }
        let sd = if xs.len() > 1 { std_dev(xs)? } else { 0.0 };
        Ok(Summary {
            n: xs.len(),
            mean: mean(xs)?,
            std_dev: sd,
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            median: percentile(xs, 50.0)?,
            p90: percentile(xs, 90.0)?,
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        })
    }
}

/// Empirical cumulative distribution function over a fixed sample.
///
/// Backs every CDF figure in the evaluation (Figs. 7 and 8).
///
/// # Examples
///
/// ```
/// use uniloc_stats::Ecdf;
///
/// let cdf = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(cdf.eval(2.5), 0.5);
/// assert_eq!(cdf.eval(0.0), 0.0);
/// assert_eq!(cdf.eval(10.0), 1.0);
/// # Ok::<(), uniloc_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF, taking ownership of the sample.
    ///
    /// # Errors
    ///
    /// [`StatsError::InsufficientData`] on empty input,
    /// [`StatsError::NonFinite`] on NaN.
    pub fn new(mut sample: Vec<f64>) -> Result<Self> {
        if sample.is_empty() {
            return Err(StatsError::InsufficientData { got: 0, needed: 1 });
        }
        if sample.iter().any(|v| v.is_nan()) {
            return Err(StatsError::NonFinite("Ecdf input"));
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        Ok(Ecdf { sorted: sample })
    }

    /// `P(X <= x)` under the empirical distribution.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x when we ask for
        // the first index where the predicate flips.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse ECDF: the smallest sample value `v` with `P(X <= v) >= p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 1.0, "Ecdf::quantile requires p in (0,1], got {p}");
        let idx = ((p * self.sorted.len() as f64).ceil() as usize).saturating_sub(1);
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates the CDF on an evenly spaced grid from `min` to `max` —
    /// convenient for printing the figure series.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        let n = points.max(2);
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        // Population variance is 4; Bessel-corrected = 32/7.
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
        assert!(percentile(&[], 50.0).is_err());
        assert!(Ecdf::new(vec![]).is_err());
        assert!(Summary::from_sample(&[]).is_err());
    }

    #[test]
    fn rmse_known() {
        let pred = [1.0, 2.0, 3.0];
        let act = [2.0, 2.0, 5.0];
        // Errors: -1, 0, -2 => mean square = 5/3.
        assert!((rmse(&pred, &act).unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmse_rejects_mismatch() {
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn normalized_rmse_matches_eq7() {
        let pred = [3.0, 5.0];
        let act = [4.0, 4.0];
        let r = ((1.0 + 1.0) / 2.0f64).sqrt();
        assert!((normalized_rmse(&pred, &act).unwrap() - r / 4.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_rmse_rejects_zero_mean() {
        assert!(normalized_rmse(&[1.0, -1.0], &[1.0, -1.0]).is_err());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&xs, 100.0).unwrap(), 4.0);
        assert_eq!(percentile(&xs, 50.0).unwrap(), 2.5);
        assert!((percentile(&xs, 90.0).unwrap() - 3.7).abs() < 1e-12);
    }

    #[test]
    fn percentile_validates_q() {
        assert!(percentile(&[1.0], -1.0).is_err());
        assert!(percentile(&[1.0], 101.0).is_err());
    }

    #[test]
    fn summary_fields() {
        let s = Summary::from_sample(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn summary_single_observation() {
        let s = Summary::from_sample(&[2.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn ecdf_step_behavior() {
        let cdf = Ecdf::new(vec![1.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.5); // ties counted
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(3.0), 1.0);
        assert_eq!(cdf.len(), 4);
        assert!(!cdf.is_empty());
    }

    #[test]
    fn ecdf_quantile_inverse() {
        let cdf = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        assert_eq!(cdf.quantile(0.2), 10.0);
        assert_eq!(cdf.quantile(0.5), 30.0);
        assert_eq!(cdf.quantile(0.9), 50.0);
        assert_eq!(cdf.quantile(1.0), 50.0);
    }

    #[test]
    fn ecdf_series_monotone() {
        let cdf = Ecdf::new(vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]).unwrap();
        let series = cdf.series(20);
        assert_eq!(series.len(), 20);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1, "ECDF series must be nondecreasing");
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn nan_rejected_everywhere() {
        assert!(percentile(&[1.0, f64::NAN], 50.0).is_err());
        assert!(Ecdf::new(vec![f64::NAN]).is_err());
        assert!(Summary::from_sample(&[f64::NAN]).is_err());
    }
}
