//! Statistical substrate for the UniLoc reproduction.
//!
//! UniLoc's contribution (error modeling + locally-weighted Bayesian model
//! averaging) is built on a small amount of classical statistics. Rather than
//! pulling in a heavyweight numerics stack, this crate implements exactly the
//! pieces the paper needs, from scratch:
//!
//! * [`matrix`] — a small dense row-major matrix with the factorizations
//!   required by ordinary least squares (Cholesky, partially pivoted LU).
//! * [`dist`] — the error function, the normal distribution (the paper models
//!   per-scheme localization error as `N(mu_t, sigma_eps)`, Section IV-A) and
//!   Student's t distribution (used for coefficient p-values in Table II).
//! * [`ols`] — multiple linear regression with full inference output:
//!   coefficient estimates, standard errors, t statistics, p-values, R^2 and
//!   residual diagnostics, with or without an intercept (the paper forces
//!   `beta_0 = 0` for all schemes except GPS, Section III-B).
//! * [`describe`] — descriptive statistics, RMSE / normalized RMSE (Eq. 7)
//!   and empirical CDFs (used throughout Section V).
//!
//! # Examples
//!
//! Fitting the paper's error-model regression (Eq. 1) on synthetic data:
//!
//! ```
//! use uniloc_stats::ols::OlsBuilder;
//!
//! // y = 2.0 * x1 - 0.5 * x2 (+ noise-free here)
//! let xs = vec![
//!     vec![1.0, 2.0],
//!     vec![2.0, 1.0],
//!     vec![3.0, 4.0],
//!     vec![4.0, 0.0],
//!     vec![0.5, 2.5],
//! ];
//! let ys: Vec<f64> = xs.iter().map(|r| 2.0 * r[0] - 0.5 * r[1]).collect();
//! let fit = OlsBuilder::new().intercept(false).fit(&xs, &ys)?;
//! assert!((fit.coefficients()[0] - 2.0).abs() < 1e-9);
//! assert!((fit.coefficients()[1] + 0.5).abs() < 1e-9);
//! # Ok::<(), uniloc_stats::StatsError>(())
//! ```

pub mod describe;
pub mod dist;
pub mod json;
pub mod matrix;
pub mod ols;

use std::error::Error;
use std::fmt;

/// Errors produced by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// Operand shapes are incompatible (e.g. `m x n` times `p x q`, `n != p`).
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: &'static str,
        /// Dimensions the caller supplied.
        got: (usize, usize),
        /// Dimensions the operation required.
        expected: (usize, usize),
    },
    /// A matrix that must be invertible / positive definite is (numerically)
    /// singular. Carries the pivot index where decomposition broke down.
    Singular(usize),
    /// The input sample is empty or too small for the requested statistic.
    InsufficientData {
        /// Number of observations supplied.
        got: usize,
        /// Minimum number of observations required.
        needed: usize,
    },
    /// An input contained a NaN or infinity where finite data is required.
    NonFinite(&'static str),
    /// A distribution parameter is out of its valid domain (e.g. sigma <= 0).
    InvalidParameter(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::DimensionMismatch { context, got, expected } => write!(
                f,
                "dimension mismatch in {context}: got {}x{}, expected {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            StatsError::Singular(k) => {
                write!(f, "matrix is singular or not positive definite at pivot {k}")
            }
            StatsError::InsufficientData { got, needed } => {
                write!(f, "insufficient data: got {got} observations, need at least {needed}")
            }
            StatsError::NonFinite(what) => write!(f, "non-finite value encountered in {what}"),
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for StatsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;

pub use describe::{mean, normalized_rmse, percentile, rmse, std_dev, variance, Ecdf, Summary};
pub use dist::{erf, erfc, Normal, StudentT};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use matrix::Matrix;
pub use ols::{OlsBuilder, OlsFit};
