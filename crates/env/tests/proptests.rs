//! Property-based tests for the simulated world.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use uniloc_env::campus::{build_path, PathSpec};
use uniloc_env::{EnvKind, SpatialNoise};
use uniloc_geom::Point;

fn kind_strategy() -> impl Strategy<Value = EnvKind> {
    proptest::sample::select(EnvKind::ALL.to_vec())
}

proptest! {
    /// Shadowing fields are deterministic and bounded for any seed/query.
    #[test]
    fn spatial_noise_deterministic_and_bounded(
        seed in 0u64..10_000,
        salt in 0u64..100,
        x in -500.0f64..500.0,
        y in -500.0f64..500.0,
        sigma in 0.1f64..12.0,
    ) {
        let f = SpatialNoise::new(seed, 4.0, sigma);
        let p = Point::new(x, y);
        let v1 = f.sample(salt, p);
        let v2 = f.sample(salt, p);
        prop_assert_eq!(v1, v2);
        prop_assert!(v1.is_finite());
        // Bilinear blend of ~N(0, sigma) nodes: |v| beyond 8 sigma would be
        // astronomically unlikely and indicates a scaling bug.
        prop_assert!(v1.abs() < 8.0 * sigma, "sample {v1} vs sigma {sigma}");
    }

    /// Any generated path scenario is internally consistent: route length
    /// equals the spec sum, segments tile the route, and the route is never
    /// blocked by its own walls.
    #[test]
    fn generated_paths_are_consistent(
        seed in 0u64..500,
        lengths in proptest::collection::vec(30.0f64..120.0, 1..5),
        kinds in proptest::collection::vec(kind_strategy(), 5),
    ) {
        let specs: Vec<PathSpec> = lengths
            .iter()
            .zip(&kinds)
            .map(|(&l, &k)| PathSpec::new(k, l))
            .collect();
        let total: f64 = lengths.iter().sum();
        let s = build_path("prop", seed, &specs);
        prop_assert!((s.route.length() - total).abs() < 1e-9);
        // Segments tile [0, total].
        prop_assert!((s.segments[0].start_station).abs() < 1e-9);
        for w in s.segments.windows(2) {
            prop_assert!((w[0].end_station - w[1].start_station).abs() < 1e-9);
        }
        prop_assert!((s.segments.last().unwrap().end_station - total).abs() < 1e-9);
        // The walkable route never crosses its own walls.
        let stations = s.route.sample_stations(2.0);
        for w in stations.windows(2) {
            let a = s.route.point_at(w[0]);
            let b = s.route.point_at(w[1]);
            prop_assert!(!s.world.floorplan().blocks(a, b),
                "route blocked between {} and {}", w[0], w[1]);
        }
        // Zone lookup along the route agrees with the segment labels.
        // Adjacent outdoor zones share a priority and may overlap near
        // corners, so outdoor segments are checked on the indoor/outdoor
        // split; roofed zones out-prioritize outdoor ones and must match
        // exactly.
        for seg in &s.segments {
            let mid = s.route.point_at((seg.start_station + seg.end_station) / 2.0);
            if seg.kind.is_roofed() {
                prop_assert_eq!(s.world.kind_at(mid), seg.kind);
            } else {
                prop_assert!(!s.world.is_indoor(mid));
            }
        }
    }

    /// Observations respect receiver floors for arbitrary query points.
    #[test]
    fn observations_respect_floors(
        x in -50.0f64..400.0,
        y in -50.0f64..120.0,
        rng_seed in 0u64..100,
    ) {
        let s = build_path(
            "floors",
            7,
            &[PathSpec::new(EnvKind::Office, 60.0), PathSpec::new(EnvKind::OpenSpace, 60.0)],
        );
        let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
        let p = Point::new(x, y);
        for (_, rss) in s.world.wifi_observation(p, &mut rng) {
            prop_assert!(rss >= s.world.propagation().wifi_floor_dbm);
            prop_assert!(rss < 30.0, "implausibly strong WiFi: {rss}");
        }
        for (_, rss) in s.world.cell_observation(p, &mut rng) {
            prop_assert!(rss >= s.world.propagation().cell_floor_dbm);
            prop_assert!(rss < 0.0, "implausibly strong cellular: {rss}");
        }
        let sats = s.world.visible_satellites(p, &mut rng);
        prop_assert!(sats <= 14);
        prop_assert!(s.world.ambient_light(p, &mut rng) >= 0.0);
        let sky = s.world.sky_view(p);
        prop_assert!((0.0..=1.0).contains(&sky));
    }
}
