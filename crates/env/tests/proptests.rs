//! Property-based tests for the simulated world, on the in-repo
//! [`uniloc_rng::check`] harness.

use uniloc_env::campus::{build_path, PathSpec};
use uniloc_env::{EnvKind, SpatialNoise};
use uniloc_geom::Point;
use uniloc_rng::check::Checker;
use uniloc_rng::{require, require_eq, Rng};

/// Shared regressions file for this suite (the `.proptest-regressions`
/// successor; format `name 0xseed scale`).
const REGRESSIONS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/proptests.regressions");

fn checker(name: &str) -> Checker {
    Checker::new(name).cases(128).regressions(REGRESSIONS)
}

fn pick_kind(rng: &mut Rng) -> EnvKind {
    let all = EnvKind::ALL;
    all[rng.gen_range(0..all.len())]
}

/// Shadowing fields are deterministic and bounded for any seed/query.
#[test]
fn spatial_noise_deterministic_and_bounded() {
    checker("spatial_noise_deterministic_and_bounded").run(
        |rng, scale| {
            (
                rng.gen_range(0..10_000u64),                       // seed
                rng.gen_range(0..100u64),                          // salt
                Point::new(
                    rng.gen_range(-500.0 * scale..500.0 * scale),
                    rng.gen_range(-500.0 * scale..500.0 * scale),
                ),
                rng.gen_range(0.1..0.1 + 11.9 * scale),            // sigma
            )
        },
        |&(seed, salt, p, sigma)| {
            let f = SpatialNoise::new(seed, 4.0, sigma);
            let v1 = f.sample(salt, p);
            let v2 = f.sample(salt, p);
            require_eq!(v1, v2);
            require!(v1.is_finite());
            // Bilinear blend of ~N(0, sigma) nodes: |v| beyond 8 sigma would
            // be astronomically unlikely and indicates a scaling bug.
            require!(v1.abs() < 8.0 * sigma, "sample {v1} vs sigma {sigma}");
            Ok(())
        },
    );
}

/// The consistency conditions of `generated_paths_are_consistent`, shared
/// with the pinned regression case below.
fn check_path_consistency(
    seed: u64,
    lengths: &[f64],
    kinds: &[EnvKind],
) -> Result<(), String> {
    let specs: Vec<PathSpec> = lengths
        .iter()
        .zip(kinds)
        .map(|(&l, &k)| PathSpec::new(k, l))
        .collect();
    let total: f64 = lengths.iter().sum();
    let s = build_path("prop", seed, &specs);
    require!((s.route.length() - total).abs() < 1e-9);
    // Segments tile [0, total].
    require!((s.segments[0].start_station).abs() < 1e-9);
    for w in s.segments.windows(2) {
        require!((w[0].end_station - w[1].start_station).abs() < 1e-9);
    }
    require!((s.segments.last().unwrap().end_station - total).abs() < 1e-9);
    // The walkable route never crosses its own walls.
    let stations = s.route.sample_stations(2.0);
    for w in stations.windows(2) {
        let a = s.route.point_at(w[0]);
        let b = s.route.point_at(w[1]);
        require!(
            !s.world.floorplan().blocks(a, b),
            "route blocked between {} and {}",
            w[0],
            w[1]
        );
    }
    // Zone lookup along the route agrees with the segment labels.
    // Adjacent outdoor zones share a priority and may overlap near
    // corners, so outdoor segments are checked on the indoor/outdoor
    // split; roofed zones out-prioritize outdoor ones and must match
    // exactly.
    for seg in &s.segments {
        let mid = s.route.point_at((seg.start_station + seg.end_station) / 2.0);
        if seg.kind.is_roofed() {
            require_eq!(s.world.kind_at(mid), seg.kind);
        } else {
            require!(!s.world.is_indoor(mid));
        }
    }
    Ok(())
}

/// Any generated path scenario is internally consistent: route length
/// equals the spec sum, segments tile the route, and the route is never
/// blocked by its own walls.
#[test]
fn generated_paths_are_consistent() {
    checker("generated_paths_are_consistent").run(
        |rng, scale| {
            let n = rng.gen_range(1..5usize);
            let lengths: Vec<f64> = (0..n)
                .map(|_| rng.gen_range(30.0..30.0 + 90.0 * scale))
                .collect();
            let kinds: Vec<EnvKind> = (0..5).map(|_| pick_kind(rng)).collect();
            let seed = rng.gen_range(0..500u64);
            (seed, lengths, kinds)
        },
        |(seed, lengths, kinds)| check_path_consistency(*seed, lengths, kinds),
    );
}

/// The counterexample proptest shrank to before the migration (carried over
/// from `tests/proptests.proptest-regressions`): a five-segment path built
/// with seed 0 whose first two segments are 30 m.
#[test]
fn generated_paths_regression_seed0_five_kinds() {
    use EnvKind::{Office, OpenSpace, Road};
    check_path_consistency(
        0,
        &[30.0, 30.0],
        &[OpenSpace, Road, Office, Office, Office],
    )
    .unwrap();
}

/// Observations respect receiver floors for arbitrary query points.
#[test]
fn observations_respect_floors() {
    checker("observations_respect_floors").run(
        |rng, scale| {
            (
                Point::new(
                    175.0 + (rng.gen_range(-50.0..400.0) - 175.0) * scale,
                    35.0 + (rng.gen_range(-50.0..120.0) - 35.0) * scale,
                ),
                rng.gen_range(0..100u64),
            )
        },
        |&(p, rng_seed)| {
            let s = build_path(
                "floors",
                7,
                &[
                    PathSpec::new(EnvKind::Office, 60.0),
                    PathSpec::new(EnvKind::OpenSpace, 60.0),
                ],
            );
            let mut rng = Rng::seed_from_u64(rng_seed);
            for (_, rss) in s.world.wifi_observation(p, &mut rng) {
                require!(rss >= s.world.propagation().wifi_floor_dbm);
                require!(rss < 30.0, "implausibly strong WiFi: {rss}");
            }
            for (_, rss) in s.world.cell_observation(p, &mut rng) {
                require!(rss >= s.world.propagation().cell_floor_dbm);
                require!(rss < 0.0, "implausibly strong cellular: {rss}");
            }
            let sats = s.world.visible_satellites(p, &mut rng);
            require!(sats <= 14);
            require!(s.world.ambient_light(p, &mut rng) >= 0.0);
            let sky = s.world.sky_view(p);
            require!((0.0..=1.0).contains(&sky));
            Ok(())
        },
    );
}
