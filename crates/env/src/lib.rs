//! Simulated physical world for the UniLoc reproduction.
//!
//! The original paper evaluates on a real university campus and urban venues
//! with physical WiFi access points, GSM towers, GPS satellites and human
//! walkers. None of those are available to a pure-Rust reproduction, so this
//! crate simulates the *environment layer*: everything underneath the sensor
//! APIs that the five localization schemes consume. The substitutions are
//! documented in `DESIGN.md`; the guiding principle is that the **features
//! the error models see** (Table I of the paper) must vary across space the
//! way the paper describes — e.g. the basement has no WiFi and no GPS but
//! two audible cell towers, outdoor fingerprints are 12 m apart, corridors
//! constrain PDR drift while open spaces do not.
//!
//! * [`zone`] — the indoor/outdoor zone taxonomy ([`EnvKind`]) with
//!   per-kind sky view, ambient light, magnetic disturbance and cellular
//!   penetration loss.
//! * [`noise`] — deterministic spatially-correlated noise (lognormal
//!   shadowing fields that are stable across revisits, so fingerprinting
//!   works).
//! * [`radio`] — log-distance path-loss propagation for WiFi and cellular.
//! * [`world`] — the [`World`] container with truth-level observation
//!   queries.
//! * [`walker`] — gait-personalised pedestrian trajectory generation.
//! * [`campus`] — the paper's campus: the daily path of Fig. 2 and the
//!   eight paths of Fig. 4.
//! * [`venues`] — the shopping mall, urban open space and offices used in
//!   Section V.
//!
//! # Examples
//!
//! ```
//! use uniloc_env::campus;
//!
//! let scenario = campus::daily_path(7);
//! assert_eq!(scenario.route.length().round(), 320.0);
//! let mut rng = uniloc_rng::Rng::seed_from_u64(1);
//! let start = scenario.route.start();
//! // The office where the path starts is indoors and has audible APs.
//! assert!(scenario.world.is_indoor(start));
//! assert!(!scenario.world.wifi_observation(start, &mut rng).is_empty());
//! ```

pub mod campus;
pub mod noise;
pub mod radio;
pub mod venues;
pub mod walker;
pub mod world;
pub mod zone;

pub use campus::Scenario;
pub use noise::SpatialNoise;
pub use radio::{AccessPoint, ApId, CellTower, PropagationConfig, TowerId};
pub use walker::{GaitProfile, StepEvent, Trajectory, Walker};
pub use world::{World, WorldBuilder};
pub use zone::{EnvKind, Zone};
