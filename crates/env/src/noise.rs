//! Deterministic spatially-correlated noise fields.
//!
//! Lognormal shadowing makes RSSI vary from place to place — but for
//! fingerprinting to work at all, that variation must be *stable across
//! revisits*: the offline survey and the online measurement at the same
//! location must see (almost) the same shadowing. [`SpatialNoise`] provides
//! such a field: a seeded value-noise lattice with bilinear interpolation,
//! so nearby points get correlated values and the same point always gets the
//! same value. Fast temporal fading is added separately (and randomly) at
//! measurement time.

use uniloc_geom::Point;

/// SplitMix64 — tiny, high-quality hash/PRNG step for lattice nodes.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_node(seed: u64, salt: u64, ix: i64, iy: i64) -> u64 {
    let mut h = splitmix64(seed ^ salt.wrapping_mul(0xA076_1D64_78BD_642F));
    h = splitmix64(h ^ (ix as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB));
    splitmix64(h ^ (iy as u64).wrapping_mul(0x8EBC_6AF0_9C88_C6E3))
}

/// Maps a 64-bit hash to an approximately standard-normal value by summing
/// twelve uniforms (Irwin–Hall); ample for shadowing.
fn gaussian_from_hash(h: u64) -> f64 {
    let mut s = 0.0;
    let mut x = h;
    for _ in 0..12 {
        x = splitmix64(x);
        s += (x >> 11) as f64 / (1u64 << 53) as f64;
    }
    s - 6.0
}

/// A seeded, smooth, zero-mean Gaussian field over the map plane.
///
/// # Examples
///
/// ```
/// use uniloc_env::SpatialNoise;
/// use uniloc_geom::Point;
///
/// let field = SpatialNoise::new(42, 4.0, 6.0);
/// let a = field.sample(1, Point::new(10.0, 10.0));
/// // Deterministic: the same query always returns the same value.
/// assert_eq!(a, field.sample(1, Point::new(10.0, 10.0)));
/// // Different salts give independent fields.
/// assert_ne!(a, field.sample(2, Point::new(10.0, 10.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpatialNoise {
    seed: u64,
    /// Lattice cell size in meters (correlation distance).
    cell_m_milli: u64,
    /// Field standard deviation, scaled by 1000 to keep Eq/Hash derivable.
    sigma_milli: u64,
}

impl SpatialNoise {
    /// Creates a field with the given `seed`, correlation `cell` size
    /// (meters) and standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `cell <= 0` or `sigma < 0`.
    pub fn new(seed: u64, cell: f64, sigma: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        SpatialNoise {
            seed,
            cell_m_milli: (cell * 1000.0).round() as u64,
            sigma_milli: (sigma * 1000.0).round() as u64,
        }
    }

    fn cell(&self) -> f64 {
        self.cell_m_milli as f64 / 1000.0
    }

    /// Field standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma_milli as f64 / 1000.0
    }

    /// Samples the field for stream `salt` (e.g. one access-point id per
    /// stream) at point `p`. Returns a value with standard deviation
    /// [`SpatialNoise::sigma`], smoothly varying in space.
    pub fn sample(&self, salt: u64, p: Point) -> f64 {
        let cell = self.cell();
        let gx = p.x / cell;
        let gy = p.y / cell;
        let ix = gx.floor() as i64;
        let iy = gy.floor() as i64;
        let fx = gx - ix as f64;
        let fy = gy - iy as f64;
        // Smoothstep for C1 continuity.
        let sx = fx * fx * (3.0 - 2.0 * fx);
        let sy = fy * fy * (3.0 - 2.0 * fy);
        let n00 = gaussian_from_hash(hash_node(self.seed, salt, ix, iy));
        let n10 = gaussian_from_hash(hash_node(self.seed, salt, ix + 1, iy));
        let n01 = gaussian_from_hash(hash_node(self.seed, salt, ix, iy + 1));
        let n11 = gaussian_from_hash(hash_node(self.seed, salt, ix + 1, iy + 1));
        let a = n00 * (1.0 - sx) + n10 * sx;
        let b = n01 * (1.0 - sx) + n11 * sx;
        (a * (1.0 - sy) + b * sy) * self.sigma()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = SpatialNoise::new(7, 4.0, 6.0);
        let b = SpatialNoise::new(7, 4.0, 6.0);
        for i in 0..50 {
            let p = Point::new(i as f64 * 1.7, (i * i % 13) as f64);
            assert_eq!(a.sample(3, p), b.sample(3, p));
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = SpatialNoise::new(1, 4.0, 6.0);
        let b = SpatialNoise::new(2, 4.0, 6.0);
        let p = Point::new(10.0, 20.0);
        assert_ne!(a.sample(0, p), b.sample(0, p));
    }

    #[test]
    fn spatial_continuity() {
        let f = SpatialNoise::new(9, 4.0, 6.0);
        // Values 10 cm apart differ much less than sigma.
        for i in 0..100 {
            let p = Point::new(i as f64 * 0.37, i as f64 * 0.11);
            let q = Point::new(p.x + 0.1, p.y);
            assert!((f.sample(5, p) - f.sample(5, q)).abs() < 2.0);
        }
    }

    #[test]
    fn distribution_roughly_standard() {
        let f = SpatialNoise::new(11, 4.0, 1.0);
        let mut vals = Vec::new();
        for i in 0..60 {
            for j in 0..60 {
                // Sample at lattice nodes (independent values).
                vals.push(f.sample(1, Point::new(i as f64 * 4.0, j as f64 * 4.0)));
            }
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn sigma_scales_field() {
        let f1 = SpatialNoise::new(3, 4.0, 1.0);
        let f6 = SpatialNoise::new(3, 4.0, 6.0);
        let p = Point::new(12.3, 45.6);
        assert!((f6.sample(7, p) - 6.0 * f1.sample(7, p)).abs() < 1e-9);
    }

    #[test]
    fn zero_sigma_is_flat() {
        let f = SpatialNoise::new(3, 4.0, 0.0);
        assert_eq!(f.sample(1, Point::new(5.0, 5.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn rejects_zero_cell() {
        SpatialNoise::new(0, 0.0, 1.0);
    }

    #[test]
    fn negative_coordinates_work() {
        let f = SpatialNoise::new(5, 4.0, 2.0);
        let v = f.sample(1, Point::new(-17.3, -4.4));
        assert!(v.is_finite());
        assert_eq!(v, f.sample(1, Point::new(-17.3, -4.4)));
    }
}
