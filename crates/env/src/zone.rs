//! Zone taxonomy: the environment kinds the paper's daily path traverses.
//!
//! "The path is 320 meters and composed of different segments, including
//! indoors (office, basement passageway, semi-open corridor and car park)
//! and outdoors." Each [`EnvKind`] carries the physical properties that
//! drive sensor data quality: sky view (GPS satellite visibility), ambient
//! light and magnetic disturbance (IODetector inputs), and the penetration
//! loss cellular signals suffer inside.

use uniloc_geom::{Point, Polygon};

/// The kind of environment at a map location.
///
/// The paper "treat[s] all the places with roofs (e.g., corridors on the
/// edges of buildings) as indoor environment" — [`EnvKind::is_roofed`]
/// encodes exactly that split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EnvKind {
    /// An office floor: dense APs, narrow corridors, stable signals.
    Office,
    /// An interior corridor.
    Corridor,
    /// A roofed corridor on the edge of a building (treated as indoor).
    SemiOpenCorridor,
    /// A basement passageway: no WiFi, no GPS, weak cellular.
    Basement,
    /// A covered car park.
    CarPark,
    /// An outdoor open space (grass, plaza).
    OpenSpace,
    /// An outdoor road / walkway.
    Road,
    /// A shopping-mall floor (the paper's mall floor is at basement level).
    MallFloor,
}

impl EnvKind {
    /// All kinds, for enumeration in tests and sweeps.
    pub const ALL: [EnvKind; 8] = [
        EnvKind::Office,
        EnvKind::Corridor,
        EnvKind::SemiOpenCorridor,
        EnvKind::Basement,
        EnvKind::CarPark,
        EnvKind::OpenSpace,
        EnvKind::Road,
        EnvKind::MallFloor,
    ];

    /// Whether the paper classifies this kind as indoor ("all the places
    /// with roofs").
    pub fn is_roofed(self) -> bool {
        !matches!(self, EnvKind::OpenSpace | EnvKind::Road)
    }

    /// Fraction of the sky visible to GNSS receivers (0 = none, 1 = open
    /// sky).
    pub fn sky_view(self) -> f64 {
        match self {
            EnvKind::Office => 0.05,
            EnvKind::Corridor => 0.08,
            EnvKind::SemiOpenCorridor => 0.30,
            EnvKind::Basement => 0.0,
            EnvKind::CarPark => 0.12,
            EnvKind::OpenSpace => 0.95,
            EnvKind::Road => 0.80,
            EnvKind::MallFloor => 0.0,
        }
    }

    /// Typical daytime ambient light in lux (IODetector's primary feature).
    pub fn base_light_lux(self) -> f64 {
        match self {
            EnvKind::Office => 400.0,
            EnvKind::Corridor => 300.0,
            EnvKind::SemiOpenCorridor => 2_000.0,
            EnvKind::Basement => 150.0,
            EnvKind::CarPark => 200.0,
            EnvKind::OpenSpace => 20_000.0,
            EnvKind::Road => 15_000.0,
            EnvKind::MallFloor => 500.0,
        }
    }

    /// Magnetic disturbance level in `[0, 1]` (steel structures disturb the
    /// magnetometer; IODetector's secondary feature, and heading noise for
    /// PDR).
    pub fn magnetic_disturbance(self) -> f64 {
        match self {
            EnvKind::Office => 0.55,
            EnvKind::Corridor => 0.50,
            EnvKind::SemiOpenCorridor => 0.35,
            EnvKind::Basement => 0.80,
            EnvKind::CarPark => 0.70,
            EnvKind::OpenSpace => 0.10,
            EnvKind::Road => 0.20,
            EnvKind::MallFloor => 0.75,
        }
    }

    /// Extra attenuation (dB) that macro-cell signals suffer at this kind of
    /// place. The mall floor "is at the basement floor and we can only
    /// receive the signals from two cell towers on average".
    pub fn cellular_penetration_loss_db(self) -> f64 {
        match self {
            EnvKind::Office => 14.0,
            EnvKind::Corridor => 12.0,
            EnvKind::SemiOpenCorridor => 6.0,
            EnvKind::Basement => 32.0,
            EnvKind::CarPark => 18.0,
            EnvKind::OpenSpace => 0.0,
            EnvKind::Road => 0.0,
            EnvKind::MallFloor => 28.0,
        }
    }

    /// Extra attenuation (dB) for WiFi signals crossing into/inside this
    /// kind (on top of per-wall losses). The basement has effectively no
    /// WiFi coverage.
    pub fn wifi_extra_loss_db(self) -> f64 {
        match self {
            EnvKind::Basement => 35.0,
            EnvKind::CarPark => 10.0,
            _ => 0.0,
        }
    }

    /// Default effective path width (m) when no corridor is mapped — the
    /// `beta_2` feature for motion/fusion schemes in open areas ("in outdoor
    /// environments [...] wider paths").
    pub fn default_path_width_m(self) -> f64 {
        match self {
            EnvKind::Office => 2.0,
            EnvKind::Corridor => 2.5,
            EnvKind::SemiOpenCorridor => 3.0,
            EnvKind::Basement => 2.5,
            EnvKind::CarPark => 8.0,
            EnvKind::OpenSpace => 15.0,
            EnvKind::Road => 10.0,
            EnvKind::MallFloor => 5.0,
        }
    }
}

impl std::fmt::Display for EnvKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EnvKind::Office => "office",
            EnvKind::Corridor => "corridor",
            EnvKind::SemiOpenCorridor => "semi-open corridor",
            EnvKind::Basement => "basement",
            EnvKind::CarPark => "car park",
            EnvKind::OpenSpace => "open space",
            EnvKind::Road => "road",
            EnvKind::MallFloor => "mall floor",
        };
        f.write_str(s)
    }
}

/// A named region of the map with a single [`EnvKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct Zone {
    name: String,
    kind: EnvKind,
    polygon: Polygon,
    priority: i32,
}

impl Zone {
    /// Creates a zone. Higher `priority` wins where zones overlap (a
    /// building zone drawn over a campus-wide outdoor zone, say).
    pub fn new(name: impl Into<String>, kind: EnvKind, polygon: Polygon, priority: i32) -> Self {
        Zone { name: name.into(), kind, polygon, priority }
    }

    /// Zone name (for reporting).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Environment kind.
    pub fn kind(&self) -> EnvKind {
        self.kind
    }

    /// Zone outline.
    pub fn polygon(&self) -> &Polygon {
        &self.polygon
    }

    /// Overlap priority.
    pub fn priority(&self) -> i32 {
        self.priority
    }

    /// Whether the zone contains the point.
    pub fn contains(&self, p: Point) -> bool {
        self.polygon.contains(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_geom::Rect;

    #[test]
    fn roofed_split_matches_paper() {
        // Everything except open space and road counts as indoor.
        assert!(EnvKind::Office.is_roofed());
        assert!(EnvKind::SemiOpenCorridor.is_roofed());
        assert!(EnvKind::CarPark.is_roofed());
        assert!(EnvKind::MallFloor.is_roofed());
        assert!(!EnvKind::OpenSpace.is_roofed());
        assert!(!EnvKind::Road.is_roofed());
    }

    #[test]
    fn basement_is_hostile_to_wifi_and_gps() {
        assert_eq!(EnvKind::Basement.sky_view(), 0.0);
        assert!(EnvKind::Basement.wifi_extra_loss_db() > 30.0);
        assert!(
            EnvKind::Basement.cellular_penetration_loss_db()
                > EnvKind::Office.cellular_penetration_loss_db()
        );
    }

    #[test]
    fn outdoor_light_dominates_indoor() {
        for kind in EnvKind::ALL {
            if kind.is_roofed() {
                assert!(kind.base_light_lux() < 5_000.0, "{kind} too bright");
            } else {
                assert!(kind.base_light_lux() > 10_000.0, "{kind} too dark");
            }
        }
    }

    #[test]
    fn outdoor_paths_are_wider() {
        assert!(
            EnvKind::OpenSpace.default_path_width_m() > EnvKind::Office.default_path_width_m()
        );
    }

    #[test]
    fn sky_view_in_unit_interval() {
        for kind in EnvKind::ALL {
            let s = kind.sky_view();
            assert!((0.0..=1.0).contains(&s));
            let m = kind.magnetic_disturbance();
            assert!((0.0..=1.0).contains(&m));
        }
    }

    #[test]
    fn zone_contains_and_accessors() {
        let poly = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0))
            .unwrap()
            .to_polygon();
        let z = Zone::new("office-a", EnvKind::Office, poly, 5);
        assert_eq!(z.name(), "office-a");
        assert_eq!(z.kind(), EnvKind::Office);
        assert_eq!(z.priority(), 5);
        assert!(z.contains(Point::new(5.0, 5.0)));
        assert!(!z.contains(Point::new(15.0, 5.0)));
    }

    #[test]
    fn display_names() {
        assert_eq!(EnvKind::SemiOpenCorridor.to_string(), "semi-open corridor");
        assert_eq!(EnvKind::CarPark.to_string(), "car park");
    }
}
