//! The urban venues of Section V: the training office and open space (where
//! Table II's error models are learned), a shopping-mall floor and an urban
//! open space (where 89% of the experiments run, in places the models never
//! saw).

use crate::campus::{Scenario, SegmentInfo};
use crate::world::WorldBuilder;
use crate::zone::EnvKind;
use uniloc_geom::{Corridor, FloorPlan, Landmark, LandmarkKind, Point, Polyline, Rect};

/// Builds a rectangular indoor venue with a serpentine route.
///
/// `rows` lanes run the long way across the floor, connected at alternating
/// ends — the standard way to survey a floor on foot.
fn serpentine(width: f64, height: f64, rows: usize, inset: f64, phase: f64) -> Polyline {
    assert!(rows >= 2, "serpentine needs at least two rows");
    let mut pts = Vec::new();
    let dy = (height - 2.0 * inset) / (rows - 1) as f64;
    for r in 0..rows {
        let y = inset + r as f64 * dy;
        let (x0, x1) = if r % 2 == 0 { (inset + phase, width - inset) } else { (width - inset, inset + phase) };
        pts.push(Point::new(x0, y));
        pts.push(Point::new(x1, y));
    }
    Polyline::new(pts).expect("serpentine vertices are valid")
}

/// Common tower ring shared by the urban venues.
fn with_towers(builder: WorldBuilder) -> WorldBuilder {
    [
        Point::new(230.0, 160.0),
        Point::new(-250.0, 140.0),
        Point::new(520.0, -380.0),
        Point::new(-480.0, -420.0),
        Point::new(700.0, 280.0),
    ]
    .into_iter()
    .fold(builder, |b, t| b.cell_tower(t))
}

/// An office floor of `width x height` meters with corridor lanes of
/// *alternating physical widths* (narrow 2 m corridors and 5 m open-plan
/// aisles, both of which real offices have), walls at the lane edges,
/// landmarks and dense APs. The width variation matters: the motion/fusion
/// error models include corridor width (`beta_2`), and a single-width
/// training floor would leave that coefficient unidentifiable.
///
/// This is the venue family used both for error-model training (the
/// paper's 56 x 20 m^2 office) and for the "another office" new-place
/// tests.
pub fn office(name: &str, seed: u64, width: f64, height: f64) -> Scenario {
    const NARROW: f64 = 2.0;
    const WIDE: f64 = 5.0;
    // Lay lanes bottom-up with alternating widths until the floor is full.
    let mut lanes: Vec<(f64, f64)> = Vec::new(); // (center y, lane width)
    let mut y = 3.0;
    let mut idx = 0usize;
    loop {
        let w = if idx.is_multiple_of(2) { NARROW } else { WIDE };
        if y + w / 2.0 > height - 1.0 {
            break;
        }
        lanes.push((y, w));
        let next_w = if idx.is_multiple_of(2) { WIDE } else { NARROW };
        y += w / 2.0 + next_w / 2.0 + 0.8;
        idx += 1;
    }
    assert!(lanes.len() >= 2, "office too small for a serpentine survey");

    let mut plan = FloorPlan::new();
    let mut route_pts = Vec::new();
    for (r, &(y, w)) in lanes.iter().enumerate() {
        let (x0, x1) = if r % 2 == 0 { (3.0, width - 3.0) } else { (width - 3.0, 3.0) };
        route_pts.push(Point::new(x0, y));
        route_pts.push(Point::new(x1, y));
        let lane = Polyline::new(vec![Point::new(3.0, y), Point::new(width - 3.0, y)])
            .expect("lane has positive length");
        plan.add_corridor(Corridor::new(lane, w).expect("positive lane width"));
        // Walls at the lane edges, with gaps at both ends for turns.
        plan.add_wall(Point::new(6.0, y - w / 2.0), Point::new(width - 6.0, y - w / 2.0));
        plan.add_wall(Point::new(6.0, y + w / 2.0), Point::new(width - 6.0, y + w / 2.0));
        // Turn landmarks at lane ends.
        for x in [3.0, width - 3.0] {
            plan.add_landmark(
                Landmark::new(LandmarkKind::Turn, Point::new(x, y), 1.5)
                    .expect("positive radius"),
            );
        }
        // Door signatures along the lane (sparse: only distinctive doors
        // make usable landmarks).
        let mut x = 18.0;
        while x < width - 10.0 {
            plan.add_landmark(
                Landmark::new(LandmarkKind::Door, Point::new(x, y), 1.5)
                    .expect("positive radius"),
            );
            x += 30.0;
        }
    }
    let route = Polyline::new(route_pts).expect("serpentine vertices are valid");
    let rect = Rect::new(Point::new(0.0, 0.0), Point::new(width, height))
        .expect("finite venue corners");
    let mut builder = WorldBuilder::new(name, seed)
        .zone_rect(name, EnvKind::Office, rect, 10)
        .floorplan(plan);
    // APs on a ~15 m grid.
    for p in rect.grid(15.0) {
        builder = builder.access_point(p);
    }
    let world = with_towers(builder).build();
    let len = route.length();
    Scenario {
        name: name.to_owned(),
        world,
        route,
        segments: vec![SegmentInfo { start_station: 0.0, end_station: len, kind: EnvKind::Office }],
    }
}

/// The paper's training office: 56 x 20 m^2.
pub fn training_office(seed: u64) -> Scenario {
    office("training-office", seed, 56.0, 20.0)
}

/// The shopping-mall floor (95 x 27 m^2, at basement level so only ~2 cell
/// towers are audible). Returns `variants` scenarios sharing the same floor
/// but walking different ~300 m trajectories, mirroring the paper's "10
/// different 300-m trajectories".
pub fn shopping_mall(seed: u64, variants: usize) -> Vec<Scenario> {
    let (width, height) = (95.0, 27.0);
    let rect = Rect::new(Point::new(0.0, 0.0), Point::new(width, height))
        .expect("finite venue corners");
    let mut plan = FloorPlan::new();
    let aisle_width = EnvKind::MallFloor.default_path_width_m();
    // Three aisles with storefront walls between them.
    for (i, y) in [4.5, 13.5, 22.5].into_iter().enumerate() {
        let aisle = Polyline::new(vec![Point::new(3.0, y), Point::new(width - 3.0, y)])
            .expect("aisle has positive length");
        plan.add_corridor(Corridor::new(aisle, aisle_width).expect("positive aisle width"));
        if i < 2 {
            let wy = y + 4.5;
            plan.add_wall(Point::new(7.0, wy), Point::new(width - 7.0, wy));
        }
        for x in [3.0, width - 3.0] {
            plan.add_landmark(
                Landmark::new(LandmarkKind::Turn, Point::new(x, y), 1.5)
                    .expect("positive radius"),
            );
        }
        // A few distinctive shop entrances act as door landmarks.
        let mut x = 18.0;
        while x < width - 10.0 {
            plan.add_landmark(
                Landmark::new(LandmarkKind::Door, Point::new(x, y), 1.5)
                    .expect("positive radius"),
            );
            x += 32.0;
        }
    }
    let mut builder = WorldBuilder::new("shopping-mall", seed)
        .zone_rect("mall-floor", EnvKind::MallFloor, rect, 10)
        .floorplan(plan);
    for p in rect.grid(18.0) {
        builder = builder.access_point(p);
    }
    let world = with_towers(builder).build();

    (0..variants.max(1))
        .map(|i| {
            let phase = (i % 5) as f64 * 2.0;
            let mut route = serpentine(width, height, 3, 4.5, phase);
            if i % 2 == 1 {
                route = route.reversed();
            }
            let len = route.length();
            Scenario {
                name: format!("mall-t{i}"),
                world: world.clone(),
                route,
                segments: vec![SegmentInfo {
                    start_station: 0.0,
                    end_station: len,
                    kind: EnvKind::MallFloor,
                }],
            }
        })
        .collect()
}

/// An urban open space. Fingerprints are 12 m apart out here, GPS sees the
/// whole sky, and there are no corridors to constrain PDR.
pub fn open_space(name: &str, seed: u64, width: f64, height: f64, variants: usize) -> Vec<Scenario> {
    let rect = Rect::new(Point::new(0.0, 0.0), Point::new(width, height))
        .expect("finite venue corners");
    let mut plan = FloorPlan::new();
    // A few scattered signatures (building corners, statues) — sparse, as
    // the paper notes it is "hard to find sufficient signatures outdoors".
    plan.add_landmark(
        Landmark::new(LandmarkKind::Signature, Point::new(width * 0.2, height * 0.3), 2.0)
            .expect("positive radius"),
    );
    plan.add_landmark(
        Landmark::new(LandmarkKind::Signature, Point::new(width * 0.75, height * 0.7), 2.0)
            .expect("positive radius"),
    );
    let mut builder = WorldBuilder::new(name, seed)
        .zone_rect(name, EnvKind::OpenSpace, rect, 1)
        .floorplan(plan);
    // Sparse APs at the space's edges (from surrounding buildings).
    for p in [
        Point::new(2.0, 2.0),
        Point::new(width - 2.0, 2.0),
        Point::new(2.0, height - 2.0),
        Point::new(width - 2.0, height - 2.0),
        Point::new(width / 2.0, -3.0),
    ] {
        builder = builder.access_point(p);
    }
    let world = with_towers(builder).build();

    (0..variants.max(1))
        .map(|i| {
            let rows = 3 + (i % 2);
            let phase = (i % 4) as f64 * 3.0;
            let mut route = serpentine(width, height, rows, 6.0, phase);
            if i % 2 == 1 {
                route = route.reversed();
            }
            let len = route.length();
            Scenario {
                name: format!("{name}-t{i}"),
                world: world.clone(),
                route,
                segments: vec![SegmentInfo {
                    start_station: 0.0,
                    end_station: len,
                    kind: EnvKind::OpenSpace,
                }],
            }
        })
        .collect()
}

/// The training open space used alongside the training office for learning
/// Table II's outdoor coefficients.
///
/// Deviation from the paper's ~1000 m^2 rectangle: the training walk is a
/// one-directional 260 m outdoor path with a single mid-way turn. PDR drift
/// (heading bias, gait-scale error) largely *cancels* on back-and-forth
/// serpentine surveys, which would train the outdoor
/// distance-from-landmark coefficient (beta_1) to ~0; the evaluation paths
/// are one-directional, so the training walk must be too.
pub fn training_open_space(seed: u64) -> Scenario {
    crate::campus::build_path(
        "training-open-space",
        seed,
        &[
            crate::campus::PathSpec::new(EnvKind::OpenSpace, 150.0),
            crate::campus::PathSpec::new(EnvKind::OpenSpace, 110.0),
        ],
    )
}

/// The evaluation urban open space of Fig. 8b.
pub fn urban_open_space(seed: u64, variants: usize) -> Vec<Scenario> {
    open_space("urban-open-space", seed, 95.0, 60.0, variants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_rng::Rng;

    #[test]
    fn training_office_dimensions() {
        let s = training_office(1);
        let bb = s.world.zones()[0].polygon().bounding_rect();
        assert_eq!(bb.width(), 56.0);
        assert_eq!(bb.height(), 20.0);
        assert!(s.route.length() > 150.0, "route long enough to survey the floor");
        assert!(s.world.is_indoor(Point::new(10.0, 10.0)));
    }

    #[test]
    fn office_route_stays_inside() {
        let s = training_office(2);
        for station in s.route.sample_stations(2.0) {
            let p = s.route.point_at(station);
            assert!(
                s.world.zones()[0].contains(p),
                "route leaves the office at station {station} ({p})"
            );
        }
    }

    #[test]
    fn office_route_not_blocked_by_walls() {
        let s = training_office(3);
        let stations = s.route.sample_stations(1.0);
        for w in stations.windows(2) {
            let a = s.route.point_at(w[0]);
            let b = s.route.point_at(w[1]);
            assert!(!s.world.floorplan().blocks(a, b), "blocked at {}..{}", w[0], w[1]);
        }
    }

    #[test]
    fn mall_variants_share_world() {
        let malls = shopping_mall(4, 10);
        assert_eq!(malls.len(), 10);
        for m in &malls {
            assert!((m.route.length() - 300.0).abs() < 80.0, "length {}", m.route.length());
            assert_eq!(m.world.name(), "shopping-mall");
        }
        // Different variants walk different routes.
        assert_ne!(malls[0].route, malls[1].route);
    }

    #[test]
    fn mall_hears_few_towers() {
        let malls = shopping_mall(5, 1);
        let mut rng = Rng::seed_from_u64(3);
        let p = malls[0].route.point_at(50.0);
        let mut heard = 0usize;
        for _ in 0..20 {
            heard += malls[0].world.cell_observation(p, &mut rng).len();
        }
        let avg = heard as f64 / 20.0;
        assert!((1.0..=3.5).contains(&avg), "mall cellular avg {avg}");
    }

    #[test]
    fn mall_has_wifi() {
        let malls = shopping_mall(6, 1);
        let mut rng = Rng::seed_from_u64(4);
        let p = malls[0].route.point_at(100.0);
        assert!(malls[0].world.wifi_observation(p, &mut rng).len() >= 3);
    }

    #[test]
    fn open_space_is_outdoor_with_sky() {
        let spaces = urban_open_space(7, 10);
        assert_eq!(spaces.len(), 10);
        let s = &spaces[0];
        let mut rng = Rng::seed_from_u64(5);
        let p = s.route.point_at(30.0);
        assert!(!s.world.is_indoor(p));
        let mut sats = 0;
        for _ in 0..20 {
            sats += s.world.visible_satellites(p, &mut rng);
        }
        assert!(sats as f64 / 20.0 > 8.0);
        // No corridors outdoors.
        assert_eq!(s.world.floorplan().corridor_width_at(p), None);
    }

    #[test]
    fn training_open_space_is_one_directional_outdoor() {
        let s = training_open_space(8);
        assert_eq!(s.route.length(), 260.0);
        assert_eq!(s.outdoor_length(), 260.0);
        // Long unlandmarked straights so drift accumulation is observable
        // during training.
        let longest = s
            .route
            .segments()
            .map(|seg| seg.length())
            .fold(0.0f64, f64::max);
        assert!(longest > 100.0, "longest straight {longest}");
    }

    #[test]
    fn serpentine_length_scales_with_rows() {
        let three = serpentine(95.0, 27.0, 3, 4.5, 0.0);
        let four = serpentine(95.0, 27.0, 4, 4.5, 0.0);
        assert!(four.length() > three.length());
    }
}
