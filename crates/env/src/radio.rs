//! RF infrastructure and the log-distance path-loss channel.
//!
//! WiFi fingerprinting (RADAR [1]) and cellular fingerprinting ([22]) both
//! consume RSSI vectors. We generate them with the standard log-distance
//! path-loss model plus (a) spatially-stable lognormal shadowing (see
//! [`crate::noise`]), (b) per-wall attenuation from the floor plan, (c)
//! per-zone penetration loss, and (d) fast temporal fading drawn fresh at
//! every measurement. The receiver reports nothing below its sensitivity floor
//! — which is what makes the basement WiFi-dark and leaves "signals from two
//! cell towers on average" at the mall's basement floor, exactly the
//! conditions the paper's error models must recognize.

use uniloc_geom::Point;

/// Identifier of a WiFi access point (stable across surveys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ApId(pub u32);

impl std::fmt::Display for ApId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ap{}", self.0)
    }
}

/// Identifier of a cellular tower.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TowerId(pub u32);

impl std::fmt::Display for TowerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell{}", self.0)
    }
}

/// A WiFi access point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessPoint {
    /// Stable identifier (the BSSID stand-in).
    pub id: ApId,
    /// Position on the local map.
    pub position: Point,
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
}

impl AccessPoint {
    /// Creates an access point with the default 20 dBm transmit power.
    pub fn new(id: ApId, position: Point) -> Self {
        AccessPoint { id, position, tx_power_dbm: 20.0 }
    }
}

/// A cellular (GSM) tower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTower {
    /// Stable identifier (the cell-id stand-in).
    pub id: TowerId,
    /// Position on the local map (towers sit hundreds of meters away).
    pub position: Point,
    /// Transmit power in dBm (macro cells are ~43 dBm).
    pub tx_power_dbm: f64,
}

impl CellTower {
    /// Creates a tower with the default 43 dBm transmit power.
    pub fn new(id: TowerId, position: Point) -> Self {
        CellTower { id, position, tx_power_dbm: 43.0 }
    }
}

/// Channel parameters for the simulated world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropagationConfig {
    /// Path-loss exponent for WiFi links (indoor-ish, ~3).
    pub wifi_exponent: f64,
    /// Reference path loss at 1 m for WiFi (dB).
    pub wifi_ref_loss_db: f64,
    /// Per-wall attenuation (dB) for WiFi links.
    pub wall_loss_db: f64,
    /// Cap on total wall attenuation (dB) — beyond a few walls, diffraction
    /// dominates.
    pub max_wall_loss_db: f64,
    /// WiFi receiver sensitivity floor (dBm).
    pub wifi_floor_dbm: f64,
    /// Lognormal shadowing sigma for WiFi (dB).
    pub wifi_shadowing_sigma_db: f64,
    /// Fast temporal fading sigma for WiFi indoors (dB), fresh per
    /// measurement.
    pub wifi_temporal_sigma_db: f64,
    /// Fast temporal fading sigma for WiFi outdoors (dB) — multipath from
    /// people and vehicles makes outdoor links flutter harder.
    pub wifi_temporal_outdoor_sigma_db: f64,
    /// Path-loss exponent for cellular links.
    pub cell_exponent: f64,
    /// Reference path loss at 1 m for cellular (dB).
    pub cell_ref_loss_db: f64,
    /// Cellular receiver sensitivity floor (dBm).
    pub cell_floor_dbm: f64,
    /// Lognormal shadowing sigma for cellular (dB).
    pub cell_shadowing_sigma_db: f64,
    /// Fast temporal fading sigma for cellular (dB).
    pub cell_temporal_sigma_db: f64,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        PropagationConfig {
            wifi_exponent: 3.0,
            wifi_ref_loss_db: 40.0,
            wall_loss_db: 5.0,
            max_wall_loss_db: 20.0,
            wifi_floor_dbm: -90.0,
            wifi_shadowing_sigma_db: 4.5,
            wifi_temporal_sigma_db: 2.5,
            wifi_temporal_outdoor_sigma_db: 5.0,
            cell_exponent: 3.5,
            cell_ref_loss_db: 32.0,
            cell_floor_dbm: -112.0,
            cell_shadowing_sigma_db: 8.0,
            cell_temporal_sigma_db: 2.0,
        }
    }
}

impl PropagationConfig {
    /// Deterministic mean WiFi RSS at distance `d` meters through `walls`
    /// walls (before shadowing/fading), in dBm.
    pub fn wifi_mean_rss(&self, tx_power_dbm: f64, d: f64, walls: usize) -> f64 {
        let d = d.max(1.0);
        let wall_loss = (walls as f64 * self.wall_loss_db).min(self.max_wall_loss_db);
        tx_power_dbm - self.wifi_ref_loss_db - 10.0 * self.wifi_exponent * d.log10() - wall_loss
    }

    /// Deterministic mean cellular RSS at distance `d` meters with
    /// `penetration_db` building penetration loss, in dBm.
    pub fn cell_mean_rss(&self, tx_power_dbm: f64, d: f64, penetration_db: f64) -> f64 {
        let d = d.max(1.0);
        tx_power_dbm - self.cell_ref_loss_db - 10.0 * self.cell_exponent * d.log10()
            - penetration_db
    }
}

impl uniloc_stats::ToJson for ApId {
    fn to_json(&self) -> uniloc_stats::Json {
        uniloc_stats::ToJson::to_json(&self.0)
    }
}

impl uniloc_stats::FromJson for ApId {
    fn from_json(json: &uniloc_stats::Json) -> Result<Self, uniloc_stats::JsonError> {
        uniloc_stats::FromJson::from_json(json).map(ApId)
    }
}

impl uniloc_stats::ToJson for TowerId {
    fn to_json(&self) -> uniloc_stats::Json {
        uniloc_stats::ToJson::to_json(&self.0)
    }
}

impl uniloc_stats::FromJson for TowerId {
    fn from_json(json: &uniloc_stats::Json) -> Result<Self, uniloc_stats::JsonError> {
        uniloc_stats::FromJson::from_json(json).map(TowerId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wifi_rss_decreases_with_distance() {
        let c = PropagationConfig::default();
        let r1 = c.wifi_mean_rss(20.0, 1.0, 0);
        let r10 = c.wifi_mean_rss(20.0, 10.0, 0);
        let r100 = c.wifi_mean_rss(20.0, 100.0, 0);
        assert!(r1 > r10 && r10 > r100);
        // Log-distance: each decade costs 10 * n dB.
        assert!((r1 - r10 - 30.0).abs() < 1e-9);
        assert!((r10 - r100 - 30.0).abs() < 1e-9);
    }

    #[test]
    fn wifi_rss_at_reference_distance() {
        let c = PropagationConfig::default();
        assert_eq!(c.wifi_mean_rss(20.0, 1.0, 0), -20.0);
        // Distances below 1 m are clamped.
        assert_eq!(c.wifi_mean_rss(20.0, 0.1, 0), -20.0);
    }

    #[test]
    fn wall_attenuation_caps() {
        let c = PropagationConfig::default();
        let none = c.wifi_mean_rss(20.0, 10.0, 0);
        let two = c.wifi_mean_rss(20.0, 10.0, 2);
        let ten = c.wifi_mean_rss(20.0, 10.0, 10);
        assert_eq!(none - two, 10.0);
        assert_eq!(none - ten, c.max_wall_loss_db);
    }

    #[test]
    fn cell_rss_with_penetration() {
        let c = PropagationConfig::default();
        let outdoor = c.cell_mean_rss(43.0, 500.0, 0.0);
        let basement = c.cell_mean_rss(43.0, 500.0, 32.0);
        assert_eq!(outdoor - basement, 32.0);
        // A 500 m macro link is audible outdoors...
        assert!(outdoor > c.cell_floor_dbm);
    }

    #[test]
    fn typical_links_against_floor() {
        let c = PropagationConfig::default();
        // A WiFi AP 30 m away through 2 walls is audible...
        assert!(c.wifi_mean_rss(20.0, 30.0, 2) > c.wifi_floor_dbm);
        // ...but not at 200 m through many walls.
        assert!(c.wifi_mean_rss(20.0, 200.0, 6) < c.wifi_floor_dbm);
    }

    #[test]
    fn id_display() {
        assert_eq!(ApId(3).to_string(), "ap3");
        assert_eq!(TowerId(1).to_string(), "cell1");
    }

    #[test]
    fn constructors_use_default_power() {
        let ap = AccessPoint::new(ApId(0), Point::origin());
        assert_eq!(ap.tx_power_dbm, 20.0);
        let tower = CellTower::new(TowerId(0), Point::origin());
        assert_eq!(tower.tx_power_dbm, 43.0);
    }
}
