//! The [`World`]: one simulated venue with zones, RF infrastructure, a floor
//! plan and truth-level observation queries.
//!
//! The world answers "what would a perfect receiver at point `p` measure?".
//! Device imperfections (RSSI offsets between phone models, GPS fix error,
//! IMU drift) are layered on top by `uniloc-sensors`.

use crate::noise::SpatialNoise;
use crate::radio::{AccessPoint, ApId, CellTower, PropagationConfig, TowerId};
use crate::zone::{EnvKind, Zone};
use uniloc_rng::Rng;
use uniloc_geom::{FloorPlan, GeoCoord, GeoFrame, Point, Rect, Segment};

/// Salt namespaces so shadowing fields of APs and towers never collide.
const WIFI_SALT: u64 = 0x5749_4649; // "WIFI"
const CELL_SALT: u64 = 0x4345_4C4C; // "CELL"
const SAT_SALT: u64 = 0x5341_5400; // "SAT"

/// A complete simulated venue.
///
/// Build one with [`WorldBuilder`] or use the prebuilt scenarios in
/// [`crate::campus`] and [`crate::venues`].
///
/// # Examples
///
/// ```
/// use uniloc_env::{EnvKind, WorldBuilder};
/// use uniloc_geom::{Point, Rect};
///
/// let world = WorldBuilder::new("demo", 1)
///     .zone_rect("room", EnvKind::Office, Rect::new(Point::new(0.0, 0.0), Point::new(20.0, 10.0))?, 1)
///     .access_point(Point::new(10.0, 5.0))
///     .build();
/// assert!(world.is_indoor(Point::new(5.0, 5.0)));
/// assert!(!world.is_indoor(Point::new(50.0, 50.0)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct World {
    name: String,
    zones: Vec<Zone>,
    floorplan: FloorPlan,
    aps: Vec<AccessPoint>,
    towers: Vec<CellTower>,
    propagation: PropagationConfig,
    shadowing: SpatialNoise,
    /// Macro-cell shadowing varies over tens of meters (much longer
    /// correlation than WiFi's room-scale fading).
    cell_shadowing: SpatialNoise,
    geo_frame: GeoFrame,
    bounds: Rect,
    /// Environment kind assumed outside every zone.
    default_kind: EnvKind,
}

impl World {
    /// Venue name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All zones.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// The floor plan (walls / corridors / landmarks).
    pub fn floorplan(&self) -> &FloorPlan {
        &self.floorplan
    }

    /// Deployed access points.
    pub fn access_points(&self) -> &[AccessPoint] {
        &self.aps
    }

    /// Reachable cell towers.
    pub fn cell_towers(&self) -> &[CellTower] {
        &self.towers
    }

    /// Channel parameters.
    pub fn propagation(&self) -> &PropagationConfig {
        &self.propagation
    }

    /// The geographic frame anchoring this map.
    pub fn geo_frame(&self) -> &GeoFrame {
        &self.geo_frame
    }

    /// Bounding rectangle of the venue.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The zone containing `p` (highest priority wins), if any.
    pub fn zone_at(&self, p: Point) -> Option<&Zone> {
        self.zones
            .iter()
            .filter(|z| z.contains(p))
            .max_by_key(|z| z.priority())
    }

    /// Environment kind at `p` (the builder's default kind outside all
    /// zones).
    pub fn kind_at(&self, p: Point) -> EnvKind {
        self.zone_at(p).map_or(self.default_kind, Zone::kind)
    }

    /// Ground-truth indoor/outdoor flag ("all the places with roofs" are
    /// indoor).
    pub fn is_indoor(&self, p: Point) -> bool {
        self.kind_at(p).is_roofed()
    }

    /// Number of walls a straight ray from `a` to `b` crosses.
    pub fn wall_crossings(&self, a: Point, b: Point) -> usize {
        let ray = Segment::new(a, b);
        self.floorplan
            .walls()
            .iter()
            .filter(|w| w.segment.intersects(&ray))
            .count()
    }

    /// Truth-level WiFi scan at `p`: every audible AP with its RSS in dBm,
    /// sorted by id. Includes stable shadowing plus fresh temporal fading.
    pub fn wifi_observation(&self, p: Point, rng: &mut Rng) -> Vec<(ApId, f64)> {
        let kind = self.kind_at(p);
        let extra = kind.wifi_extra_loss_db();
        // Indoor shadowing decorrelates at room scale (walls, furniture);
        // outdoor shadowing varies over tens of meters.
        let (field, temporal) = if kind.is_roofed() {
            (&self.shadowing, self.propagation.wifi_temporal_sigma_db)
        } else {
            (&self.cell_shadowing, self.propagation.wifi_temporal_outdoor_sigma_db)
        };
        let mut out = Vec::new();
        for ap in &self.aps {
            let d = ap.position.distance(p);
            let walls = self.wall_crossings(ap.position, p);
            let mean = self.propagation.wifi_mean_rss(ap.tx_power_dbm, d, walls) - extra;
            let shadow = field.sample(WIFI_SALT ^ u64::from(ap.id.0), p)
                * (self.propagation.wifi_shadowing_sigma_db / field.sigma().max(1e-9));
            let fading = gauss(rng) * temporal;
            let rss = mean + shadow + fading;
            if rss >= self.propagation.wifi_floor_dbm {
                out.push((ap.id, rss));
            }
        }
        out
    }

    /// Truth-level cellular scan at `p`, sorted by id.
    pub fn cell_observation(&self, p: Point, rng: &mut Rng) -> Vec<(TowerId, f64)> {
        let kind = self.kind_at(p);
        let pen = kind.cellular_penetration_loss_db();
        let mut out = Vec::new();
        for tower in &self.towers {
            let d = tower.position.distance(p);
            let mean = self.propagation.cell_mean_rss(tower.tx_power_dbm, d, pen);
            let shadow = self.cell_shadowing.sample(CELL_SALT ^ u64::from(tower.id.0), p)
                * (self.propagation.cell_shadowing_sigma_db
                    / self.cell_shadowing.sigma().max(1e-9));
            let fading = gauss(rng) * self.propagation.cell_temporal_sigma_db;
            let rss = mean + shadow + fading;
            if rss >= self.propagation.cell_floor_dbm {
                out.push((tower.id, rss));
            }
        }
        out
    }

    /// Sky-view fraction at `p` (from the zone kind, smoothly dithered so
    /// satellite counts vary within a zone).
    pub fn sky_view(&self, p: Point) -> f64 {
        let base = self.kind_at(p).sky_view();
        let dither = self.shadowing.sample(SAT_SALT, p) / self.shadowing.sigma().max(1e-9) * 0.05;
        (base + dither).clamp(0.0, 1.0)
    }

    /// Number of GNSS satellites visible at `p`. Outdoors this averages
    /// ~10-11 (the paper measures 10.9); indoors it collapses.
    pub fn visible_satellites(&self, p: Point, rng: &mut Rng) -> u32 {
        let sky = self.sky_view(p);
        let mean = 12.0 * sky;
        let n = mean + gauss(rng) * 0.8;
        n.round().clamp(0.0, 14.0) as u32
    }

    /// Ambient light level in lux (daytime).
    pub fn ambient_light(&self, p: Point, rng: &mut Rng) -> f64 {
        let base = self.kind_at(p).base_light_lux();
        (base * (1.0 + 0.15 * gauss(rng))).max(0.0)
    }

    /// Magnetic disturbance level in `[0, 1]` at `p`.
    pub fn magnetic_disturbance(&self, p: Point) -> f64 {
        self.kind_at(p).magnetic_disturbance()
    }
}

/// Standard normal sample from a uniform RNG (Box–Muller).
fn gauss(rng: &mut Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Builder for [`World`].
#[derive(Debug, Clone)]
pub struct WorldBuilder {
    name: String,
    seed: u64,
    zones: Vec<Zone>,
    floorplan: FloorPlan,
    aps: Vec<AccessPoint>,
    towers: Vec<CellTower>,
    propagation: PropagationConfig,
    geo_origin: GeoCoord,
    default_kind: EnvKind,
    next_ap: u32,
    next_tower: u32,
}

impl WorldBuilder {
    /// Starts a world named `name`; `seed` fixes the shadowing fields.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        WorldBuilder {
            name: name.into(),
            seed,
            zones: Vec::new(),
            floorplan: FloorPlan::new(),
            aps: Vec::new(),
            towers: Vec::new(),
            propagation: PropagationConfig::default(),
            geo_origin: GeoCoord::new(1.3483, 103.6831).expect("valid NTU anchor"),
            default_kind: EnvKind::OpenSpace,
            next_ap: 0,
            next_tower: 0,
        }
    }

    /// Adds a polygonal zone.
    pub fn zone(mut self, z: Zone) -> Self {
        self.zones.push(z);
        self
    }

    /// Adds a rectangular zone.
    pub fn zone_rect(self, name: &str, kind: EnvKind, rect: Rect, priority: i32) -> Self {
        self.zone(Zone::new(name, kind, rect.to_polygon(), priority))
    }

    /// Replaces the floor plan.
    pub fn floorplan(mut self, plan: FloorPlan) -> Self {
        self.floorplan = plan;
        self
    }

    /// Adds an access point with an auto-assigned id.
    pub fn access_point(mut self, position: Point) -> Self {
        self.aps.push(AccessPoint::new(ApId(self.next_ap), position));
        self.next_ap += 1;
        self
    }

    /// Adds a cell tower with an auto-assigned id.
    pub fn cell_tower(mut self, position: Point) -> Self {
        self.towers.push(CellTower::new(TowerId(self.next_tower), position));
        self.next_tower += 1;
        self
    }

    /// Overrides channel parameters.
    pub fn propagation(mut self, cfg: PropagationConfig) -> Self {
        self.propagation = cfg;
        self
    }

    /// Sets the environment kind outside all zones (default:
    /// [`EnvKind::OpenSpace`]).
    pub fn default_kind(mut self, kind: EnvKind) -> Self {
        self.default_kind = kind;
        self
    }

    /// Sets the geographic coordinate of the map origin.
    pub fn geo_origin(mut self, origin: GeoCoord) -> Self {
        self.geo_origin = origin;
        self
    }

    /// Finalizes the world.
    pub fn build(self) -> World {
        // Bounds cover zones, APs and a margin.
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        fn grow(min: &mut Point, max: &mut Point, p: Point) {
            *min = Point::new(min.x.min(p.x), min.y.min(p.y));
            *max = Point::new(max.x.max(p.x), max.y.max(p.y));
        }
        for z in &self.zones {
            let bb = z.polygon().bounding_rect();
            grow(&mut min, &mut max, bb.min());
            grow(&mut min, &mut max, bb.max());
        }
        for ap in &self.aps {
            grow(&mut min, &mut max, ap.position);
        }
        if !min.is_finite() || !max.is_finite() {
            grow(&mut min, &mut max, Point::origin());
            grow(&mut min, &mut max, Point::new(100.0, 100.0));
        }
        let bounds = Rect::new(min, max).expect("finite bounds").expanded(20.0);
        World {
            name: self.name,
            zones: self.zones,
            floorplan: self.floorplan,
            aps: self.aps,
            towers: self.towers,
            propagation: self.propagation,
            // Unit-sigma fields, scaled per-use by each channel's sigma.
            // WiFi shadowing decorrelates at room scale; macro-cell
            // shadowing at block scale.
            shadowing: SpatialNoise::new(self.seed, 4.0, 1.0),
            cell_shadowing: SpatialNoise::new(self.seed.wrapping_add(0xCE11), 22.0, 1.0),
            geo_frame: GeoFrame::new(self.geo_origin, Point::origin()),
            bounds,
            default_kind: self.default_kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_world() -> World {
        let office = Rect::new(Point::new(0.0, 0.0), Point::new(30.0, 10.0)).unwrap();
        let basement = Rect::new(Point::new(30.0, 0.0), Point::new(60.0, 10.0)).unwrap();
        WorldBuilder::new("demo", 42)
            .zone_rect("office", EnvKind::Office, office, 1)
            .zone_rect("basement", EnvKind::Basement, basement, 1)
            .access_point(Point::new(5.0, 5.0))
            .access_point(Point::new(25.0, 5.0))
            .cell_tower(Point::new(250.0, 150.0))
            .cell_tower(Point::new(-400.0, 200.0))
            .build()
    }

    #[test]
    fn zone_lookup_and_default() {
        let w = demo_world();
        assert_eq!(w.kind_at(Point::new(5.0, 5.0)), EnvKind::Office);
        assert_eq!(w.kind_at(Point::new(45.0, 5.0)), EnvKind::Basement);
        assert_eq!(w.kind_at(Point::new(200.0, 200.0)), EnvKind::OpenSpace);
        assert!(w.is_indoor(Point::new(5.0, 5.0)));
        assert!(!w.is_indoor(Point::new(200.0, 200.0)));
    }

    #[test]
    fn priority_resolves_overlap() {
        let outer = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
        let inner = Rect::new(Point::new(40.0, 40.0), Point::new(60.0, 60.0)).unwrap();
        let w = WorldBuilder::new("overlap", 1)
            .zone_rect("campus", EnvKind::OpenSpace, outer, 0)
            .zone_rect("building", EnvKind::Office, inner, 5)
            .build();
        assert_eq!(w.kind_at(Point::new(50.0, 50.0)), EnvKind::Office);
        assert_eq!(w.kind_at(Point::new(10.0, 10.0)), EnvKind::OpenSpace);
    }

    #[test]
    fn wifi_observation_in_office_vs_basement() {
        let w = demo_world();
        let mut rng = Rng::seed_from_u64(1);
        let office_scan = w.wifi_observation(Point::new(5.0, 5.0), &mut rng);
        assert!(!office_scan.is_empty(), "office must hear APs");
        // Basement extra loss (35 dB) plus distance kills WiFi.
        let basement_scan = w.wifi_observation(Point::new(55.0, 5.0), &mut rng);
        assert!(
            basement_scan.len() < office_scan.len(),
            "basement must hear fewer APs than the office"
        );
    }

    #[test]
    fn wifi_rss_is_repeatable_up_to_fading() {
        let w = demo_world();
        let p = Point::new(10.0, 5.0);
        let mut r1 = Rng::seed_from_u64(10);
        let mut r2 = Rng::seed_from_u64(20);
        let s1 = w.wifi_observation(p, &mut r1);
        let s2 = w.wifi_observation(p, &mut r2);
        assert_eq!(s1.len(), s2.len());
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(a.0, b.0);
            // Shadowing is identical; only temporal fading differs.
            assert!(
                (a.1 - b.1).abs() < 6.0 * w.propagation().wifi_temporal_sigma_db,
                "revisit RSS differs too much: {} vs {}",
                a.1,
                b.1
            );
        }
    }

    #[test]
    fn cell_observation_reaches_indoors() {
        let w = demo_world();
        let mut rng = Rng::seed_from_u64(2);
        // Basement still hears at least one macro tower (they are loud).
        // Temporal fading can drop a single scan below the floor, so the
        // claim is over a handful of draws rather than one.
        let heard = (0..8)
            .map(|_| w.cell_observation(Point::new(45.0, 5.0), &mut rng).len())
            .sum::<usize>();
        assert!(heard > 0);
    }

    #[test]
    fn satellites_follow_sky_view() {
        let w = demo_world();
        let mut rng = Rng::seed_from_u64(3);
        let mut outdoor_total = 0;
        let mut basement_total = 0;
        for _ in 0..50 {
            outdoor_total += w.visible_satellites(Point::new(200.0, 200.0), &mut rng);
            basement_total += w.visible_satellites(Point::new(45.0, 5.0), &mut rng);
        }
        let outdoor_avg = outdoor_total as f64 / 50.0;
        let basement_avg = basement_total as f64 / 50.0;
        assert!(outdoor_avg > 9.0, "outdoor avg {outdoor_avg}");
        assert!(basement_avg < 2.0, "basement avg {basement_avg}");
    }

    #[test]
    fn light_separates_indoor_outdoor() {
        let w = demo_world();
        let mut rng = Rng::seed_from_u64(4);
        let indoor = w.ambient_light(Point::new(5.0, 5.0), &mut rng);
        let outdoor = w.ambient_light(Point::new(200.0, 200.0), &mut rng);
        assert!(outdoor > indoor * 5.0);
    }

    #[test]
    fn wall_crossings_counted() {
        let mut plan = FloorPlan::new();
        plan.add_wall(Point::new(10.0, -5.0), Point::new(10.0, 5.0));
        plan.add_wall(Point::new(20.0, -5.0), Point::new(20.0, 5.0));
        let w = WorldBuilder::new("walls", 1).floorplan(plan).build();
        assert_eq!(w.wall_crossings(Point::new(0.0, 0.0), Point::new(30.0, 0.0)), 2);
        assert_eq!(w.wall_crossings(Point::new(0.0, 0.0), Point::new(15.0, 0.0)), 1);
        assert_eq!(w.wall_crossings(Point::new(11.0, 0.0), Point::new(19.0, 0.0)), 0);
    }

    #[test]
    fn bounds_cover_zones() {
        let w = demo_world();
        assert!(w.bounds().contains(Point::new(0.0, 0.0)));
        assert!(w.bounds().contains(Point::new(60.0, 10.0)));
    }

    #[test]
    fn geo_frame_round_trips() {
        let w = demo_world();
        let p = Point::new(12.0, 34.0);
        let g = w.geo_frame().to_geo(p);
        let back = w.geo_frame().to_local(g);
        assert!((back.x - p.x).abs() < 1e-9);
        assert!((back.y - p.y).abs() < 1e-9);
    }
}
