//! Pedestrian trajectory generation with personalised gait.
//!
//! The paper tests "with 6 persons, including both females and males with
//! different ages (from 20s to 50s)" and relies on the PDR system's step
//! personalisation to absorb individual gait differences. A [`Walker`] walks
//! a route step by step: each step has a true length (drawn from the
//! persona's distribution), a true duration ("the normal period of one human
//! walking step is from 0.4 s to 0.7 s"), and a true heading from the route
//! tangent. The IMU simulator then corrupts these truths into sensor
//! readings.

use uniloc_rng::Rng;
use uniloc_geom::{Point, Polyline};

/// A walking-style profile for one person.
#[derive(Debug, Clone, PartialEq)]
pub struct GaitProfile {
    /// Persona name (for reports).
    pub name: String,
    /// Mean step length in meters.
    pub step_length_m: f64,
    /// Mean step frequency in Hz.
    pub step_freq_hz: f64,
    /// Coefficient of variation of step length (fraction).
    pub length_cv: f64,
    /// Hand-tremble heading noise, standard deviation in radians.
    pub tremble_rad: f64,
}

impl GaitProfile {
    /// A typical adult gait (0.65 m steps at 1.8 Hz).
    pub fn average() -> Self {
        GaitProfile {
            name: "average".to_owned(),
            step_length_m: 0.65,
            step_freq_hz: 1.8,
            length_cv: 0.06,
            tremble_rad: 0.05,
        }
    }

    /// The six evaluation personas (both sexes, ages 20s-50s), mirroring the
    /// paper's subject pool.
    pub fn personas() -> Vec<GaitProfile> {
        let mk = |name: &str, len: f64, freq: f64, cv: f64, tremble: f64| GaitProfile {
            name: name.to_owned(),
            step_length_m: len,
            step_freq_hz: freq,
            length_cv: cv,
            tremble_rad: tremble,
        };
        vec![
            mk("f-20s", 0.62, 1.95, 0.05, 0.04),
            mk("m-20s", 0.72, 1.90, 0.05, 0.05),
            mk("f-30s", 0.63, 1.85, 0.06, 0.05),
            mk("m-30s", 0.74, 1.80, 0.06, 0.05),
            mk("f-40s", 0.60, 1.70, 0.07, 0.06),
            mk("m-50s", 0.66, 1.60, 0.08, 0.07),
        ]
    }

    /// Mean walking speed in m/s.
    pub fn speed(&self) -> f64 {
        self.step_length_m * self.step_freq_hz
    }
}

/// One true step taken by a walker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEvent {
    /// Time of step completion, seconds since walk start.
    pub t: f64,
    /// Duration of this step in seconds.
    pub duration: f64,
    /// True position after the step.
    pub position: Point,
    /// True heading of travel during the step (compass radians).
    pub heading: f64,
    /// True step length in meters.
    pub step_length: f64,
    /// Arc-length distance from the route start.
    pub station: f64,
}

/// A completed walk along a route: the ground truth for every experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    steps: Vec<StepEvent>,
    route_length: f64,
}

impl Trajectory {
    /// The step events in time order.
    pub fn steps(&self) -> &[StepEvent] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the walk has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total duration in seconds.
    pub fn duration(&self) -> f64 {
        self.steps.last().map_or(0.0, |s| s.t)
    }

    /// Length of the walked route in meters.
    pub fn route_length(&self) -> f64 {
        self.route_length
    }

    /// True position at time `t` (linear interpolation between steps, clamped
    /// to the walk).
    pub fn position_at(&self, t: f64) -> Point {
        if self.steps.is_empty() {
            return Point::origin();
        }
        if t <= self.steps[0].t {
            return self.steps[0].position;
        }
        let idx = self.steps.partition_point(|s| s.t <= t);
        if idx >= self.steps.len() {
            return self.steps[self.steps.len() - 1].position;
        }
        let a = &self.steps[idx - 1];
        let b = &self.steps[idx];
        let w = if b.t > a.t { (t - a.t) / (b.t - a.t) } else { 0.0 };
        a.position.lerp(b.position, w)
    }
}

/// Walks routes with a given gait.
///
/// # Examples
///
/// ```
/// use uniloc_env::{GaitProfile, Walker};
/// use uniloc_geom::{Point, Polyline};
///
/// let route = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0)])?;
/// let mut walker = Walker::new(
///     GaitProfile::average(),
///     uniloc_rng::Rng::seed_from_u64(1),
/// );
/// let walk = walker.walk(&route);
/// // ~50 m / 0.65 m per step:
/// assert!((walk.len() as i64 - 77).abs() < 8);
/// let last = walk.steps().last().unwrap();
/// assert!((last.station - route.length()).abs() < 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Walker {
    gait: GaitProfile,
    rng: Rng,
}

impl Walker {
    /// Creates a walker with a gait and a seeded RNG.
    pub fn new(gait: GaitProfile, rng: Rng) -> Self {
        Walker { gait, rng }
    }

    /// The walker's gait profile.
    pub fn gait(&self) -> &GaitProfile {
        &self.gait
    }

    /// Walks the full route, returning the ground-truth trajectory.
    pub fn walk(&mut self, route: &Polyline) -> Trajectory {
        let mut steps = Vec::new();
        let mut station = 0.0;
        let mut t = 0.0;
        let len = route.length();
        while station < len {
            let step_len = (self.gait.step_length_m
                * (1.0 + self.gait.length_cv * gauss(&mut self.rng)))
            .clamp(0.3 * self.gait.step_length_m, 1.8 * self.gait.step_length_m);
            // Step period varies in the paper's 0.4-0.7 s band.
            let nominal = 1.0 / self.gait.step_freq_hz;
            let duration = (nominal * (1.0 + 0.08 * gauss(&mut self.rng))).clamp(0.4, 0.7);
            let heading = route.heading_at(station + step_len / 2.0);
            station = (station + step_len).min(len);
            t += duration;
            steps.push(StepEvent {
                t,
                duration,
                position: route.point_at(station),
                heading,
                step_length: step_len,
                station,
            });
        }
        Trajectory { steps, route_length: len }
    }
}

fn gauss(rng: &mut Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_route(len: f64) -> Polyline {
        Polyline::new(vec![Point::new(0.0, 0.0), Point::new(len, 0.0)]).unwrap()
    }

    #[test]
    fn walk_covers_route() {
        let route = straight_route(100.0);
        let mut w = Walker::new(GaitProfile::average(), Rng::seed_from_u64(7));
        let traj = w.walk(&route);
        let last = traj.steps().last().unwrap();
        assert!((last.station - 100.0).abs() < 1e-9);
        assert_eq!(last.position, Point::new(100.0, 0.0));
        assert_eq!(traj.route_length(), 100.0);
    }

    #[test]
    fn step_count_matches_gait() {
        let route = straight_route(130.0);
        let gait = GaitProfile::average();
        let expected = 130.0 / gait.step_length_m;
        let mut w = Walker::new(gait, Rng::seed_from_u64(8));
        let n = w.walk(&route).len() as f64;
        assert!((n - expected).abs() < expected * 0.1, "n={n}, expected~{expected}");
    }

    #[test]
    fn step_durations_in_band() {
        let route = straight_route(200.0);
        let mut w = Walker::new(GaitProfile::average(), Rng::seed_from_u64(9));
        for s in w.walk(&route).steps() {
            assert!((0.4..=0.7).contains(&s.duration), "duration {}", s.duration);
        }
    }

    #[test]
    fn times_strictly_increase() {
        let route = straight_route(80.0);
        let mut w = Walker::new(GaitProfile::average(), Rng::seed_from_u64(10));
        let traj = w.walk(&route);
        for pair in traj.steps().windows(2) {
            assert!(pair[1].t > pair[0].t);
            assert!(pair[1].station >= pair[0].station);
        }
    }

    #[test]
    fn position_at_interpolates() {
        let route = straight_route(50.0);
        let mut w = Walker::new(GaitProfile::average(), Rng::seed_from_u64(11));
        let traj = w.walk(&route);
        // Before the walk starts.
        assert_eq!(traj.position_at(-1.0), traj.steps()[0].position);
        // After it ends.
        assert_eq!(traj.position_at(1e9), traj.steps().last().unwrap().position);
        // Midway between steps 10 and 11.
        let a = &traj.steps()[10];
        let b = &traj.steps()[11];
        let mid = traj.position_at((a.t + b.t) / 2.0);
        assert!((mid.x - (a.position.x + b.position.x) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn personas_are_distinct_and_plausible() {
        let personas = GaitProfile::personas();
        assert_eq!(personas.len(), 6);
        for p in &personas {
            assert!((0.4..0.9).contains(&p.step_length_m));
            assert!((1.3..2.2).contains(&p.step_freq_hz));
            assert!((0.6..1.7).contains(&p.speed()));
        }
        // Distinct names.
        let mut names: Vec<&str> = personas.iter().map(|p| p.name.as_str()).collect();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let route = straight_route(60.0);
        let mut w1 = Walker::new(GaitProfile::average(), Rng::seed_from_u64(5));
        let mut w2 = Walker::new(GaitProfile::average(), Rng::seed_from_u64(5));
        assert_eq!(w1.walk(&route), w2.walk(&route));
    }

    #[test]
    fn heading_follows_route_turns() {
        let route = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(20.0, 20.0),
        ])
        .unwrap();
        let mut w = Walker::new(GaitProfile::average(), Rng::seed_from_u64(6));
        let traj = w.walk(&route);
        let early = traj.steps()[3].heading;
        let late = traj.steps().last().unwrap().heading;
        assert!((early - std::f64::consts::FRAC_PI_2).abs() < 1e-6, "east leg");
        assert!(late.abs() < 1e-6, "north leg");
    }

    #[test]
    fn empty_trajectory_behaviour() {
        let traj = Trajectory { steps: vec![], route_length: 0.0 };
        assert!(traj.is_empty());
        assert_eq!(traj.duration(), 0.0);
        assert_eq!(traj.position_at(1.0), Point::origin());
    }
}
