//! Shared harness for the experiment regenerators.
//!
//! Every table and figure in the paper's evaluation (Section V) has a
//! binary in `src/bin/` that regenerates it against the simulated substrate
//! (see `DESIGN.md` for the per-experiment index). This library holds what
//! they share: the one-time error-model training, walk aggregation and
//! plain-text table/series printing.

pub mod chaos;
pub mod fleet;
pub mod microbench;
pub mod regression;

use std::sync::Arc;

use uniloc_core::error_model::{train, ErrorModelSet};
use uniloc_core::pipeline::{self, EpochRecord, PipelineConfig};
use uniloc_env::{venues, Scenario};
use uniloc_obs::{StderrSubscriber, TraceLevel};
use uniloc_schemes::SchemeId;
use uniloc_sensors::{DeviceProfile, RssiCalibration, SensorHub};
use uniloc_stats::json::{Json, ToJson};
use uniloc_stats::{percentile, Ecdf};

/// Installs a stderr progress subscriber at `Info` so the regenerators'
/// `uniloc_obs::info!` progress lines are visible; set `UNILOC_QUIET=1` to
/// suppress them. Every `src/bin/` regenerator calls this first.
pub fn init_obs() {
    if std::env::var_os("UNILOC_QUIET").is_some_and(|v| v == "1") {
        return;
    }
    uniloc_obs::global()
        .set_subscriber(Some(Arc::new(StderrSubscriber::new(TraceLevel::Info))));
}

/// Writes `results/BENCH_<name>.json` (or `./BENCH_<name>.json` when no
/// `results/` directory exists under the working directory): the per-stage
/// latency breakdown accumulated in the global `span.*` duration
/// histograms while the regenerator ran. Returns the path written, or
/// `None` when no spans were recorded.
///
/// # Errors
///
/// Propagates the write error.
pub fn write_latency_breakdown(name: &str) -> std::io::Result<Option<String>> {
    let snap = uniloc_obs::global_metrics().snapshot();
    let mut stages = Vec::new();
    for (metric, h) in &snap.histograms {
        let Some(stage) = metric.strip_prefix("span.") else { continue };
        let Some((p50, p90, p99)) = h.summary() else { continue };
        stages.push((
            stage.to_owned(),
            Json::Obj(vec![
                ("count".to_owned(), h.count().to_json()),
                ("mean_ns".to_owned(), h.mean().to_json()),
                ("p50_ns".to_owned(), p50.to_json()),
                ("p90_ns".to_owned(), p90.to_json()),
                ("p99_ns".to_owned(), p99.to_json()),
                ("sum_ns".to_owned(), h.sum.to_json()),
            ]),
        ));
    }
    if stages.is_empty() {
        return Ok(None);
    }
    let doc = Json::Obj(vec![
        ("bench".to_owned(), Json::Str(name.to_owned())),
        ("stages".to_owned(), Json::Obj(stages)),
    ]);
    let dir = if std::path::Path::new("results").is_dir() { "results" } else { "." };
    let path = format!("{dir}/BENCH_{name}.json");
    std::fs::write(&path, doc.canonical().to_string_pretty())?;
    Ok(Some(path))
}

/// Emits the run's latency breakdown (see [`write_latency_breakdown`]) and
/// logs where it went; every regenerator calls this last.
pub fn finish(name: &str) {
    match write_latency_breakdown(name) {
        Ok(Some(path)) => uniloc_obs::info!("latency breakdown: {path}"),
        Ok(None) => {}
        Err(e) => uniloc_obs::warn!("latency breakdown for {name} not written: {e}"),
    }
}

/// Worker count for the regenerators: `UNILOC_JOBS` when set (≥ 1), else
/// the machine's available cores. Results are byte-identical at any value.
pub fn jobs_from_env() -> usize {
    std::env::var("UNILOC_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        })
}

/// Runs one [`pipeline::run_walk`] per `(scenario, cfg, seed)` triple on
/// up to [`jobs_from_env`] workers, returning records in input order.
/// Each walk executes under an isolated observability session; the merged
/// span-timing metrics are re-absorbed into the process registry
/// afterward, so [`write_latency_breakdown`] sees the same histograms as
/// a sequential run.
pub fn run_walks_parallel(
    walks: &[(Scenario, PipelineConfig, u64)],
    models: &ErrorModelSet,
) -> Vec<Vec<EpochRecord>> {
    let jobs = jobs_from_env();
    let (records, obs) =
        uniloc_core::parallel::run_observed(walks, jobs, |_, (scenario, cfg, seed)| {
            pipeline::run_walk(scenario, models, cfg, *seed)
        });
    if let Err(e) = uniloc_obs::process_metrics().absorb(&obs.metrics) {
        uniloc_obs::warn!("bench metrics re-absorb failed: {e}");
    }
    records
}

/// The labels used across printed tables, in the paper's order.
pub const SYSTEM_LABELS: [&str; 8] =
    ["gps", "wifi", "cellular", "motion", "fusion", "oracle", "uniloc1", "uniloc2"];

/// Trains the error models exactly as Section III-B does: one pass over the
/// training office and the training open space.
///
/// # Panics
///
/// Panics if the training venues fail to produce enough samples (they
/// cannot, unless the substrate is broken).
pub fn trained_models(seed: u64) -> ErrorModelSet {
    uniloc_obs::info!("training error models (office + open space, seed {seed}) ...");
    let cfg = PipelineConfig::default();
    let mut samples = pipeline::collect_training(&venues::training_office(seed), &cfg, seed + 10);
    samples.extend(pipeline::collect_training(
        &venues::training_open_space(seed + 1),
        &cfg,
        seed + 11,
    ));
    train(&samples).expect("training venues produce enough samples")
}

/// Per-epoch error series of one system, for figure printing.
pub fn system_errors(records: &[EpochRecord], system: &str) -> Vec<Option<f64>> {
    records
        .iter()
        .map(|r| match system {
            "oracle" => r.oracle_error,
            "uniloc1" => r.uniloc1_error,
            "uniloc2" => r.uniloc2_error,
            _ => {
                let id = parse_scheme(system);
                r.scheme_errors.iter().find(|(s, _)| *s == id).and_then(|(_, e)| *e)
            }
        })
        .collect()
}

/// Maps a label to a [`SchemeId`].
///
/// # Panics
///
/// Panics on unknown labels.
pub fn parse_scheme(label: &str) -> SchemeId {
    match label {
        "gps" => SchemeId::Gps,
        "wifi" => SchemeId::Wifi,
        "cellular" => SchemeId::Cellular,
        "motion" => SchemeId::Motion,
        "fusion" => SchemeId::Fusion,
        other => panic!("unknown scheme label {other}"),
    }
}

/// Mean of the defined values, or `None`.
pub fn mean_defined(values: &[Option<f64>]) -> Option<f64> {
    pipeline::mean_defined(values.iter().copied())
}

/// Buckets an error series by route station and returns
/// `(bucket_center, mean_error)` rows — the x-axis of Figs. 2 and 3
/// ("Distance from the start point (m)").
pub fn station_series(
    records: &[EpochRecord],
    errors: &[Option<f64>],
    bucket_m: f64,
) -> Vec<(f64, f64)> {
    assert!(bucket_m > 0.0);
    let max_station = records.iter().map(|r| r.station).fold(0.0f64, f64::max);
    let n = (max_station / bucket_m).ceil() as usize + 1;
    let mut sums = vec![0.0; n];
    let mut counts = vec![0usize; n];
    for (r, e) in records.iter().zip(errors) {
        if let Some(e) = e {
            let idx = (r.station / bucket_m) as usize;
            sums[idx] += e;
            counts[idx] += 1;
        }
    }
    (0..n)
        .filter(|&i| counts[i] > 0)
        .map(|i| ((i as f64 + 0.5) * bucket_m, sums[i] / counts[i] as f64))
        .collect()
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut line = String::new();
    for h in headers {
        line.push_str(&format!("{h:>12}"));
    }
    println!("{line}");
    for row in rows {
        let mut line = String::new();
        for cell in row {
            line.push_str(&format!("{cell:>12}"));
        }
        println!("{line}");
    }
}

/// Formats an optional value.
pub fn fmt_opt(v: Option<f64>, prec: usize) -> String {
    match v {
        Some(v) => format!("{v:.prec$}"),
        None => "-".to_owned(),
    }
}

/// CDF summary for one system: `(p50, p90, mean)`.
pub fn cdf_summary(errors: &[f64]) -> Option<(f64, f64, f64)> {
    if errors.is_empty() {
        return None;
    }
    let p50 = percentile(errors, 50.0).ok()?;
    let p90 = percentile(errors, 90.0).ok()?;
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    Some((p50, p90, mean))
}

/// Prints a CDF as an ASCII series (x = error, y = cumulative fraction).
pub fn print_cdf_series(label: &str, errors: &[f64], points: usize) {
    let Ok(cdf) = Ecdf::new(errors.to_vec()) else {
        println!("  {label:<10} (no data)");
        return;
    };
    let series = cdf.series(points);
    let line: Vec<String> =
        series.iter().map(|(x, p)| format!("({x:.1},{p:.2})")).collect();
    println!("  {label:<10} {}", line.join(" "));
}

/// Collects all defined errors of a system across multiple runs.
pub fn pooled_errors(runs: &[Vec<EpochRecord>], system: &str) -> Vec<f64> {
    runs.iter()
        .flat_map(|records| {
            system_errors(records, system)
                .into_iter()
                .flatten()
                .collect::<Vec<f64>>()
        })
        .collect()
}

/// Learns the LG G3 -> Nexus 5X RSSI calibration from paired scans in a
/// scenario — the online offset calibration of Section III-B / Fig. 8d.
pub fn learn_calibration(scenario: &Scenario, seed: u64) -> Option<RssiCalibration> {
    let mut nexus = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), seed);
    let mut g3 = SensorHub::new(&scenario.world, DeviceProfile::lg_g3(), seed);
    let mut pairs = Vec::new();
    for p in scenario.survey_points(6.0, 12.0) {
        let a = nexus.scan_wifi(p);
        let b = g3.scan_wifi(p);
        let mut i = 0;
        let mut j = 0;
        while i < a.readings.len() && j < b.readings.len() {
            match a.readings[i].0.cmp(&b.readings[j].0) {
                std::cmp::Ordering::Equal => {
                    pairs.push((b.readings[j].1, a.readings[i].1));
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
    }
    RssiCalibration::learn(&pairs)
}
