//! The bench-regression gate: diffing a fresh latency breakdown against
//! the committed `results/BENCH_*.json` baselines.
//!
//! Every regenerator in `src/bin/` writes a per-stage latency breakdown
//! (see [`crate::write_latency_breakdown`]). Those files are committed, so
//! the tree carries a performance baseline — this module turns it into a
//! gate: parse every baseline strictly (rejecting malformed JSON and
//! duplicate keys, which the lenient reader would otherwise shadow
//! silently), compare stage-by-stage, and classify differences.
//!
//! Two classes of signal get different treatment:
//!
//! * **Structure** — the stage set and each stage's sample `count` are
//!   deterministic for a fixed workload. A missing stage or a count change
//!   means the instrumentation or the workload changed: a hard finding,
//!   fixed by re-blessing the baseline.
//! * **Latency** — wall-clock numbers vary across machines and runs, so
//!   mean latency only counts as a regression beyond a generous relative
//!   threshold ([`DiffConfig::latency_tolerance`]), and `scripts/ci.sh`
//!   runs the fresh-run comparison warn-only.

use std::collections::BTreeMap;

use uniloc_stats::impl_json_struct;
use uniloc_stats::json::Json;

/// Per-stage latency statistics, mirroring the breakdown JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Recorded span count (deterministic for a fixed workload).
    pub count: u64,
    /// Mean span duration (ns).
    pub mean_ns: f64,
    /// Median span duration (ns).
    pub p50_ns: f64,
    /// 90th-percentile span duration (ns).
    pub p90_ns: f64,
    /// 99th-percentile span duration (ns).
    pub p99_ns: f64,
    /// Total time in the stage (ns).
    pub sum_ns: f64,
}

impl_json_struct!(StageStats { count, mean_ns, p50_ns, p90_ns, p99_ns, sum_ns });

/// One parsed `BENCH_<name>.json` breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Bench name (the regenerator's name).
    pub bench: String,
    /// Stage name → statistics, sorted by stage name.
    pub stages: BTreeMap<String, StageStats>,
}

/// Rejects any JSON document containing a duplicate object key anywhere —
/// the in-repo parser keeps both entries and `get` returns the first, so a
/// duplicated key would silently shadow data in a committed baseline.
///
/// # Errors
///
/// Returns the offending key (with enough context to find it).
pub fn check_duplicate_keys(doc: &Json) -> Result<(), String> {
    match doc {
        Json::Obj(pairs) => {
            let mut seen = std::collections::BTreeSet::new();
            for (key, value) in pairs {
                if !seen.insert(key.as_str()) {
                    return Err(format!("duplicate object key `{key}`"));
                }
                check_duplicate_keys(value)
                    .map_err(|e| format!("under key `{key}`: {e}"))?;
            }
            Ok(())
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                check_duplicate_keys(item).map_err(|e| format!("at index {i}: {e}"))?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Parses one breakdown document strictly: duplicate keys rejected, every
/// stage's statistics required.
///
/// # Errors
///
/// Describes the first structural problem found.
pub fn parse_bench_report(doc: &Json) -> Result<BenchReport, String> {
    check_duplicate_keys(doc)?;
    let bench = doc
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("missing string field `bench`")?
        .to_owned();
    let Some(Json::Obj(stage_pairs)) = doc.get("stages") else {
        return Err("missing object field `stages`".to_owned());
    };
    let mut stages = BTreeMap::new();
    for (name, stats) in stage_pairs {
        let stats: StageStats = uniloc_stats::json::FromJson::from_json(stats)
            .map_err(|e| format!("stage `{name}`: {e}"))?;
        stages.insert(name.clone(), stats);
    }
    Ok(BenchReport { bench, stages })
}

/// Loads every `BENCH_*.json` in `dir`, sorted by file name.
///
/// # Errors
///
/// Fails on an unreadable directory, unreadable file, malformed JSON,
/// duplicate keys or a structurally invalid report — naming the file.
pub fn load_dir(dir: &str) -> Result<Vec<(String, BenchReport)>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot read {dir}: {e}"))?;
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    let mut reports = Vec::with_capacity(names.len());
    for name in names {
        let path = format!("{dir}/{name}");
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let report = parse_bench_report(&doc).map_err(|e| format!("{path}: {e}"))?;
        reports.push((name, report));
    }
    Ok(reports)
}

/// A flattened `PROF_alloc.json` heap profile: stage path (`;`-joined,
/// as in the folded lines) → the four exclusive counters, plus the
/// steady-state meter. Allocation counts of the seeded fleet are exact
/// integers, so the gate diffs them with zero tolerance — any drift is a
/// real change in the pipeline's heap behavior.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AllocProfile {
    /// `fleet;engine.update;…` path → `[allocs, bytes, deallocs, reallocs]`.
    pub paths: BTreeMap<String, [u64; 4]>,
    /// Steady-window allocation total (`steady.allocs`).
    pub steady_allocs: u64,
    /// Steady-window epoch total (`steady.epochs`).
    pub steady_epochs: u64,
}

/// Names of the four per-stage allocation counters, in `AllocProfile`
/// slot order.
pub const ALLOC_FIELDS: [&str; 4] = ["allocs", "bytes", "deallocs", "reallocs"];

/// Parses a `PROF_alloc.json` document strictly (duplicate keys rejected)
/// and flattens its stage tree to paths.
///
/// # Errors
///
/// Describes the first structural problem found.
pub fn parse_alloc_profile(doc: &Json) -> Result<AllocProfile, String> {
    check_duplicate_keys(doc)?;
    if doc.get("prof").and_then(Json::as_str) != Some("alloc") {
        return Err("missing field `prof`: `alloc`".to_owned());
    }
    let steady = doc.get("steady").ok_or("missing object field `steady`")?;
    let int = |d: &Json, k: &str| {
        d.get(k)
            .and_then(Json::as_i64)
            .and_then(|v| u64::try_from(v).ok())
            .ok_or_else(|| format!("missing integer field `{k}`"))
    };
    let mut profile = AllocProfile {
        steady_allocs: int(steady, "allocs").map_err(|e| format!("under `steady`: {e}"))?,
        steady_epochs: int(steady, "epochs").map_err(|e| format!("under `steady`: {e}"))?,
        ..AllocProfile::default()
    };
    fn walk(node: &Json, prefix: &str, out: &mut AllocProfile) -> Result<(), String> {
        let name = node
            .get("name")
            .and_then(Json::as_str)
            .ok_or("stage node missing string field `name`")?;
        let path = if prefix.is_empty() { name.to_owned() } else { format!("{prefix};{name}") };
        let mut slots = [0u64; 4];
        for (i, field) in ALLOC_FIELDS.iter().enumerate() {
            slots[i] = node
                .get(field)
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("stage `{path}` missing integer field `{field}`"))?;
        }
        if out.paths.insert(path.clone(), slots).is_some() {
            return Err(format!("duplicate stage path `{path}`"));
        }
        for child in node.get("children").and_then(Json::as_arr).unwrap_or(&[]) {
            walk(child, &path, out)?;
        }
        Ok(())
    }
    let root = doc.get("root").ok_or("missing object field `root`")?;
    walk(root, "", &mut profile)?;
    Ok(profile)
}

/// Loads `dir/PROF_alloc.json` when present (strictly parsed).
///
/// # Errors
///
/// Fails on an unreadable *present* file or a strict-parse failure; an
/// absent file is `Ok(None)`.
pub fn load_alloc_profile(dir: &str) -> Result<Option<AllocProfile>, String> {
    let path = format!("{dir}/PROF_alloc.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read {path}: {e}")),
    };
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    parse_alloc_profile(&doc).map(Some).map_err(|e| format!("{path}: {e}"))
}

/// Diffs two heap profiles exactly: every stage path must exist on both
/// sides with identical counters, and the steady meter must match to the
/// integer. Every finding is a regression — there is no tolerance band.
pub fn diff_alloc_profiles(baseline: &AllocProfile, candidate: &AllocProfile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (path, base) in &baseline.paths {
        let Some(cand) = candidate.paths.get(path) else {
            findings.push(Finding::AllocStageSetChanged {
                path: path.clone(),
                detail: "missing from candidate profile".to_owned(),
            });
            continue;
        };
        for (i, field) in ALLOC_FIELDS.iter().enumerate() {
            if base[i] != cand[i] {
                findings.push(Finding::AllocDrift {
                    path: path.clone(),
                    field,
                    baseline: base[i],
                    candidate: cand[i],
                });
            }
        }
    }
    for path in candidate.paths.keys() {
        if !baseline.paths.contains_key(path) {
            findings.push(Finding::AllocStageSetChanged {
                path: path.clone(),
                detail: "not in baseline profile".to_owned(),
            });
        }
    }
    for (field, base, cand) in [
        ("steady.allocs", baseline.steady_allocs, candidate.steady_allocs),
        ("steady.epochs", baseline.steady_epochs, candidate.steady_epochs),
    ] {
        if base != cand {
            findings.push(Finding::AllocDrift {
                path: "(meter)".to_owned(),
                field,
                baseline: base,
                candidate: cand,
            });
        }
    }
    findings
}

/// Comparison tuning.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Maximum tolerated relative increase in a stage's mean latency
    /// before it counts as a regression (e.g. `4.0` = five-fold). Latency
    /// baselines come from whatever machine last blessed them, so the
    /// default is deliberately generous; structure is compared exactly.
    pub latency_tolerance: f64,
    /// Tighter budget for `fleet.*` stages (e.g. `2.0` = three-fold). The
    /// fleet bench amortizes thousands of epochs per stage sample, so its
    /// means are far more stable than the single-walk stages and can hold
    /// a stricter line without flaking across machines.
    pub fleet_latency_tolerance: f64,
    /// Tighter budget for `pipeline.*` stages, same rationale: pipeline
    /// stage samples amortize whole training/walk passes, and since the
    /// indexed-matching work landed they no longer hide O(survey)
    /// fingerprint scans, so a large mean increase is a real regression,
    /// not machine noise.
    pub pipeline_latency_tolerance: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            latency_tolerance: 4.0,
            fleet_latency_tolerance: 2.0,
            pipeline_latency_tolerance: 2.0,
        }
    }
}

impl DiffConfig {
    /// The latency tolerance that applies to `stage`.
    pub fn tolerance_for(&self, stage: &str) -> f64 {
        if stage.starts_with("fleet.") {
            self.fleet_latency_tolerance
        } else if stage.starts_with("pipeline.") {
            self.pipeline_latency_tolerance
        } else {
            self.latency_tolerance
        }
    }
}

/// One difference between a baseline and a candidate report.
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// A baseline stage is absent from the candidate run.
    MissingStage {
        /// Stage name.
        stage: String,
    },
    /// The candidate recorded a stage the baseline does not know.
    NewStage {
        /// Stage name.
        stage: String,
    },
    /// A stage's deterministic sample count changed.
    CountMismatch {
        /// Stage name.
        stage: String,
        /// Baseline count.
        baseline: u64,
        /// Candidate count.
        candidate: u64,
    },
    /// A stage's mean latency grew beyond the tolerance.
    LatencyRegression {
        /// Stage name.
        stage: String,
        /// Baseline mean (ns).
        baseline_mean_ns: f64,
        /// Candidate mean (ns).
        candidate_mean_ns: f64,
        /// `candidate / baseline`.
        ratio: f64,
    },
    /// A heap-profile counter changed — exact integers, zero tolerance.
    AllocDrift {
        /// Stage path (`;`-joined) or `(meter)` for the steady meter.
        path: String,
        /// Which counter drifted (`allocs`/`bytes`/`deallocs`/`reallocs`,
        /// or a `steady.*` meter field).
        field: &'static str,
        /// Baseline value.
        baseline: u64,
        /// Candidate value.
        candidate: u64,
    },
    /// The heap profile's stage set itself changed.
    AllocStageSetChanged {
        /// Stage path.
        path: String,
        /// Which side lost or gained it.
        detail: String,
    },
}

impl Finding {
    /// Whether this finding should fail a strict gate (new stages are
    /// informational: they appear whenever instrumentation is added).
    pub fn is_regression(&self) -> bool {
        !matches!(self, Finding::NewStage { .. })
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::MissingStage { stage } => {
                write!(f, "stage `{stage}` missing from candidate run")
            }
            Finding::NewStage { stage } => {
                write!(f, "stage `{stage}` is new (not in baseline)")
            }
            Finding::CountMismatch { stage, baseline, candidate } => write!(
                f,
                "stage `{stage}` count changed: {baseline} -> {candidate} (re-bless if intended)"
            ),
            Finding::LatencyRegression {
                stage,
                baseline_mean_ns,
                candidate_mean_ns,
                ratio,
            } => write!(
                f,
                "stage `{stage}` mean latency {:.1} us -> {:.1} us ({ratio:.2}x)",
                baseline_mean_ns / 1e3,
                candidate_mean_ns / 1e3,
            ),
            Finding::AllocDrift { path, field, baseline, candidate } => write!(
                f,
                "heap profile `{path}` {field} changed: {baseline} -> {candidate} \
                 (exact gate; re-bless if intended)"
            ),
            Finding::AllocStageSetChanged { path, detail } => {
                write!(f, "heap profile stage `{path}` {detail}")
            }
        }
    }
}

/// Diffs one candidate report against its baseline.
pub fn diff_reports(
    baseline: &BenchReport,
    candidate: &BenchReport,
    cfg: &DiffConfig,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (stage, base) in &baseline.stages {
        let Some(cand) = candidate.stages.get(stage) else {
            findings.push(Finding::MissingStage { stage: stage.clone() });
            continue;
        };
        if cand.count != base.count {
            findings.push(Finding::CountMismatch {
                stage: stage.clone(),
                baseline: base.count,
                candidate: cand.count,
            });
        }
        if base.mean_ns > 0.0 && cand.mean_ns.is_finite() {
            let ratio = cand.mean_ns / base.mean_ns;
            if ratio > 1.0 + cfg.tolerance_for(stage) {
                findings.push(Finding::LatencyRegression {
                    stage: stage.clone(),
                    baseline_mean_ns: base.mean_ns,
                    candidate_mean_ns: cand.mean_ns,
                    ratio,
                });
            }
        }
    }
    for stage in candidate.stages.keys() {
        if !baseline.stages.contains_key(stage) {
            findings.push(Finding::NewStage { stage: stage.clone() });
        }
    }
    findings
}

/// The outcome of a directory-level comparison.
#[derive(Debug, Clone, Default)]
pub struct DiffOutcome {
    /// `(file name, findings)` per bench compared (empty findings = clean).
    pub compared: Vec<(String, Vec<Finding>)>,
    /// Baseline benches the candidate directory did not regenerate (the
    /// gate can run against a partial fresh run).
    pub skipped: Vec<String>,
}

impl DiffOutcome {
    /// Regression-grade findings across every compared bench.
    pub fn regressions(&self) -> impl Iterator<Item = (&str, &Finding)> {
        self.compared.iter().flat_map(|(name, findings)| {
            findings
                .iter()
                .filter(|f| f.is_regression())
                .map(move |f| (name.as_str(), f))
        })
    }

    /// Whether the gate passes.
    pub fn is_clean(&self) -> bool {
        self.regressions().next().is_none()
    }
}

/// Diffs every baseline `BENCH_*.json` in `baseline_dir` against the same
/// file in `candidate_dir`; candidate files absent from the baseline are
/// ignored, baseline files absent from the candidate are reported as
/// skipped (a fresh run may regenerate only a subset).
///
/// # Errors
///
/// Fails when either directory or any present report fails strict parsing
/// (see [`load_dir`]).
pub fn diff_dirs(
    baseline_dir: &str,
    candidate_dir: &str,
    cfg: &DiffConfig,
) -> Result<DiffOutcome, String> {
    let baselines = load_dir(baseline_dir)?;
    if baselines.is_empty() {
        return Err(format!("no BENCH_*.json baselines in {baseline_dir}"));
    }
    let candidates: BTreeMap<String, BenchReport> =
        load_dir(candidate_dir)?.into_iter().collect();
    let mut outcome = DiffOutcome::default();
    for (name, baseline) in baselines {
        match candidates.get(&name) {
            Some(candidate) => outcome
                .compared
                .push((name, diff_reports(&baseline, candidate, cfg))),
            None => outcome.skipped.push(name),
        }
    }
    // The heap profile rides the same gate as an exact-match section:
    // allocation counts of the seeded fleet are deterministic integers.
    if let Some(base_alloc) = load_alloc_profile(baseline_dir)? {
        match load_alloc_profile(candidate_dir)? {
            Some(cand_alloc) => outcome
                .compared
                .push(("PROF_alloc.json".to_owned(), diff_alloc_profiles(&base_alloc, &cand_alloc))),
            None => outcome.skipped.push("PROF_alloc.json".to_owned()),
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(count: u64, mean_ns: f64) -> StageStats {
        StageStats {
            count,
            mean_ns,
            p50_ns: mean_ns,
            p90_ns: mean_ns * 1.5,
            p99_ns: mean_ns * 2.0,
            sum_ns: mean_ns * count as f64,
        }
    }

    fn report(stages: &[(&str, StageStats)]) -> BenchReport {
        BenchReport {
            bench: "demo".to_owned(),
            stages: stages.iter().map(|(n, s)| (n.to_string(), s.clone())).collect(),
        }
    }

    #[test]
    fn self_diff_is_clean() {
        let r = report(&[("a", stats(10, 1e6)), ("b", stats(5, 2e6))]);
        assert!(diff_reports(&r, &r, &DiffConfig::default()).is_empty());
    }

    #[test]
    fn structural_changes_are_regressions() {
        let base = report(&[("a", stats(10, 1e6)), ("b", stats(5, 2e6))]);
        let cand = report(&[("a", stats(11, 1e6)), ("c", stats(1, 1e6))]);
        let findings = diff_reports(&base, &cand, &DiffConfig::default());
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::CountMismatch { stage, .. } if stage == "a")));
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::MissingStage { stage } if stage == "b")));
        let new = findings
            .iter()
            .find(|f| matches!(f, Finding::NewStage { stage } if stage == "c"))
            .unwrap();
        assert!(!new.is_regression(), "new stages are informational");
    }

    #[test]
    fn latency_needs_to_exceed_tolerance() {
        let base = report(&[("a", stats(10, 1e6))]);
        let slower = report(&[("a", stats(10, 3e6))]);
        let cfg = DiffConfig { latency_tolerance: 4.0, ..DiffConfig::default() };
        assert!(diff_reports(&base, &slower, &cfg).is_empty(), "3x is within 5x budget");
        let much_slower = report(&[("a", stats(10, 6e6))]);
        let findings = diff_reports(&base, &much_slower, &cfg);
        assert!(matches!(findings[0], Finding::LatencyRegression { ratio, .. } if ratio > 5.0));
    }

    #[test]
    fn fleet_stages_hold_a_tighter_latency_line() {
        let cfg = DiffConfig::default();
        assert_eq!(cfg.tolerance_for("fleet.epoch"), 2.0);
        assert_eq!(cfg.tolerance_for("pipeline.collect_training"), 2.0);
        assert_eq!(cfg.tolerance_for("run_walk"), 4.0);
        // 4x is within the general 5x budget but beyond the fleet 3x one.
        let base = report(&[("fleet.epoch", stats(10, 1e6)), ("run_walk", stats(10, 1e6))]);
        let slower = report(&[("fleet.epoch", stats(10, 4e6)), ("run_walk", stats(10, 4e6))]);
        let findings = diff_reports(&base, &slower, &cfg);
        assert_eq!(findings.len(), 1, "only the fleet stage regresses: {findings:?}");
        assert!(
            matches!(&findings[0], Finding::LatencyRegression { stage, .. } if stage == "fleet.epoch")
        );
    }

    #[test]
    fn duplicate_keys_rejected_recursively() {
        let ok = Json::parse(r#"{"a":1,"b":{"c":2}}"#).unwrap();
        assert!(check_duplicate_keys(&ok).is_ok());
        let top = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert!(check_duplicate_keys(&top).unwrap_err().contains("`a`"));
        let nested = Json::parse(r#"{"outer":[{"k":1,"k":2}]}"#).unwrap();
        let err = check_duplicate_keys(&nested).unwrap_err();
        assert!(err.contains("`k`") && err.contains("outer"), "{err}");
    }

    #[test]
    fn parse_rejects_malformed_reports() {
        let no_bench = Json::parse(r#"{"stages":{}}"#).unwrap();
        assert!(parse_bench_report(&no_bench).is_err());
        let bad_stage =
            Json::parse(r#"{"bench":"x","stages":{"a":{"count":1}}}"#).unwrap();
        assert!(parse_bench_report(&bad_stage).unwrap_err().contains("stage `a`"));
    }

    #[test]
    fn committed_results_parse_and_self_diff_clean() {
        // The repo's own baselines must always satisfy the strict parser.
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
        let reports = load_dir(dir).expect("committed baselines parse strictly");
        assert!(!reports.is_empty(), "results/ has committed BENCH files");
        let alloc = load_alloc_profile(dir).expect("committed heap profile parses strictly");
        assert!(alloc.is_some(), "results/ has a committed PROF_alloc.json");
        let outcome = diff_dirs(dir, dir, &DiffConfig::default()).unwrap();
        assert!(outcome.is_clean(), "self-diff must report no regression");
        assert!(outcome.skipped.is_empty());
        // Every BENCH file plus the exact-match heap-profile section.
        assert_eq!(outcome.compared.len(), reports.len() + 1);
        assert!(outcome.compared.iter().any(|(n, f)| n == "PROF_alloc.json" && f.is_empty()));
    }

    fn alloc_doc(update_allocs: u64) -> Json {
        Json::parse(&format!(
            r#"{{"prof":"alloc","unit":"allocs","allocs_per_epoch":5.0,
                "steady":{{"allocs":30,"epochs":6}},
                "root":{{"name":"fleet","allocs":{update_allocs},"bytes":100,
                         "deallocs":1,"reallocs":0,"children":[
                  {{"name":"engine.update","allocs":{update_allocs},"bytes":100,
                    "deallocs":1,"reallocs":0,"children":[]}}]}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn alloc_profile_parses_and_flattens_paths() {
        let p = parse_alloc_profile(&alloc_doc(40)).unwrap();
        assert_eq!(p.steady_allocs, 30);
        assert_eq!(p.steady_epochs, 6);
        assert_eq!(p.paths["fleet"], [40, 100, 1, 0]);
        assert_eq!(p.paths["fleet;engine.update"], [40, 100, 1, 0]);
        let not_alloc = Json::parse(r#"{"prof":"fleet"}"#).unwrap();
        assert!(parse_alloc_profile(&not_alloc).is_err());
    }

    #[test]
    fn alloc_diff_is_exact_and_always_regression() {
        let base = parse_alloc_profile(&alloc_doc(40)).unwrap();
        assert!(diff_alloc_profiles(&base, &base).is_empty(), "self-diff clean");
        // One allocation of drift fails — zero tolerance.
        let cand = parse_alloc_profile(&alloc_doc(41)).unwrap();
        let findings = diff_alloc_profiles(&base, &cand);
        assert!(!findings.is_empty());
        assert!(findings.iter().all(Finding::is_regression));
        assert!(findings.iter().any(
            |f| matches!(f, Finding::AllocDrift { path, field, baseline: 40, candidate: 41 }
                if path == "fleet;engine.update" && *field == "allocs")
        ));
        // A vanished stage is structural drift.
        let mut missing = base.clone();
        missing.paths.remove("fleet;engine.update");
        assert!(diff_alloc_profiles(&base, &missing)
            .iter()
            .any(|f| matches!(f, Finding::AllocStageSetChanged { .. })));
        // Meter drift is caught too.
        let mut meter = base.clone();
        meter.steady_epochs = 7;
        assert!(diff_alloc_profiles(&base, &meter).iter().any(
            |f| matches!(f, Finding::AllocDrift { field, .. } if *field == "steady.epochs")
        ));
    }
}
