//! Table V — response-time decomposition for one location estimate.
//!
//! Paper targets: schemes run on the server in parallel so the slowest
//! (fusion, 5.6 ms) dominates compute; UniLoc adds only ~6.1 ms (error
//! prediction 6.0 ms + BMA 0.1 ms); transmissions are ~73% of the total.
//!
//! This binary also *measures* the two UniLoc-added stages on this machine
//! by timing the real implementations, and prints the model both with the
//! paper's constants and with the measured values.
//!
//! Run with: `cargo run --release -p uniloc-bench --bin table5_response_time`

use std::time::Instant;
use uniloc_bench::trained_models;
use uniloc_core::confidence::{adaptive_tau, confidence};
use uniloc_core::error_model::ErrorPrediction;
use uniloc_core::response::ResponseTimeModel;
use uniloc_iodetect::IoState;
use uniloc_schemes::SchemeId;

fn print_model(title: &str, model: &ResponseTimeModel) {
    let r = model.report();
    println!("\n-- {title} --");
    println!("  phone sensing + preprocess : {:7.2} ms", model.phone_ms);
    println!("  upload                     : {:7.2} ms", model.upload_ms);
    for (id, ms) in &model.scheme_ms {
        println!("  server compute {id:<10}  : {ms:7.2} ms (parallel)");
    }
    println!("  error prediction           : {:7.3} ms", model.error_prediction_ms);
    println!("  BMA                        : {:7.3} ms", model.bma_ms);
    println!("  download                   : {:7.2} ms", model.download_ms);
    println!("  ------------------------------------");
    println!("  slowest scheme             : {:7.2} ms", r.slowest_scheme_ms);
    println!("  total                      : {:7.2} ms", r.total_ms);
    println!("  transmissions              : {:6.1}% of total", r.transmission_fraction * 100.0);
    println!("  UniLoc-added computation   : {:7.3} ms", model.uniloc_added_ms());
}

fn main() {
    uniloc_bench::init_obs();
    println!("Table V — response time for one location estimate");

    // Measure the real error-prediction stage: five schemes x predict.
    let models = trained_models(1);
    let features: [(SchemeId, Vec<f64>); 5] = [
        (SchemeId::Gps, vec![]),
        (SchemeId::Wifi, vec![2.0, 4.0]),
        (SchemeId::Cellular, vec![2.0, 4.0, 4.0]),
        (SchemeId::Motion, vec![30.0, 3.0]),
        (SchemeId::Fusion, vec![30.0, 3.0, 2.0]),
    ];
    const ITERS: u32 = 100_000;
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for _ in 0..ITERS {
        for (id, f) in &features {
            let io = if f.is_empty() { IoState::Outdoor } else { IoState::Indoor };
            if let Some(p) = models.predict(*id, io, f) {
                acc += p.mean;
            }
        }
    }
    let errpred_ms = t0.elapsed().as_secs_f64() * 1000.0 / ITERS as f64;

    // Measure the real BMA stage: tau, confidences, weights, weighted mean.
    let preds: Vec<ErrorPrediction> = vec![
        ErrorPrediction { mean: 13.5, sigma: 9.4 },
        ErrorPrediction { mean: 3.0, sigma: 4.7 },
        ErrorPrediction { mean: 8.0, sigma: 8.2 },
        ErrorPrediction { mean: 2.5, sigma: 1.2 },
        ErrorPrediction { mean: 2.0, sigma: 0.9 },
    ];
    let positions = [(5.0, 5.0), (6.0, 4.0), (9.0, 8.0), (5.5, 4.5), (5.8, 4.9)];
    let t0 = Instant::now();
    let mut sink = 0.0f64;
    for _ in 0..ITERS {
        let tau = adaptive_tau(&preds).unwrap();
        let confs: Vec<f64> = preds.iter().map(|&p| confidence(p, tau)).collect();
        let total: f64 = confs.iter().sum();
        let mut x = 0.0;
        let mut y = 0.0;
        for (c, (px, py)) in confs.iter().zip(positions) {
            x += c / total * px;
            y += c / total * py;
        }
        sink += x + y;
    }
    let bma_ms = t0.elapsed().as_secs_f64() * 1000.0 / ITERS as f64;
    // Keep the optimizer honest.
    assert!(acc.is_finite() && sink.is_finite());

    print_model("paper-calibrated constants", &ResponseTimeModel::default());
    print_model(
        "with UniLoc stages measured on this machine",
        &ResponseTimeModel::default().with_measured(errpred_ms, bma_ms),
    );
    println!("\nmeasured: error prediction {errpred_ms:.4} ms, BMA {bma_ms:.4} ms per fix");
    println!("paper: error prediction 6.0 ms, BMA 0.1 ms on their workstation; both are");
    println!("'light-weight, as they only involve simple linear calculation'.");
    uniloc_bench::finish("table5_response_time");
}
