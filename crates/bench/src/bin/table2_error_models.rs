//! Table II — error-model coefficients for the four feature-driven schemes
//! (WiFi, cellular, motion, fusion), indoor and outdoor, plus the GPS
//! constant model.
//!
//! The paper reports, per scheme: coefficient estimates, p-values, residual
//! mean `mu_eps`, residual deviation `sigma_eps` and `R^2`; its headline
//! checks are (1) at least two features per scheme with p < 0.05, (2)
//! residual mean near zero, (3) R^2 >= ~0.85 for motion/fusion while WiFi /
//! cellular R^2 are low yet *sufficient for ranking schemes*.
//!
//! Run with: `cargo run --release -p uniloc-bench --bin table2_error_models`

use uniloc_bench::trained_models;
use uniloc_core::error_model::ErrorModelSet;
use uniloc_iodetect::IoState;
use uniloc_schemes::SchemeId;

fn feature_names(id: SchemeId, io: IoState) -> Vec<&'static str> {
    match (id, io) {
        (SchemeId::Wifi, _) => vec!["fp density (b1)", "rssi dist dev (b2)"],
        (SchemeId::Cellular, _) => {
            vec!["fp density (b1)", "rssi dist dev (b2)", "audible towers (b3)"]
        }
        (SchemeId::Motion, _) => vec!["dist from landmark (b1)", "corridor width (b2)"],
        (SchemeId::Fusion, IoState::Indoor) => {
            vec!["dist from landmark (b1)", "corridor width (b2)", "fp density (b3)"]
        }
        (SchemeId::Fusion, IoState::Outdoor) => {
            vec!["dist from landmark (b1)", "corridor width (b2)"]
        }
        _ => vec![],
    }
}

fn print_models(models: &ErrorModelSet) {
    for io in [IoState::Indoor, IoState::Outdoor] {
        println!("\n--- {io} models ---");
        for id in SchemeId::BUILTIN {
            let Some(m) = models.model(id, io) else {
                println!("{id:<9}  (no model — scheme unavailable in this environment)");
                continue;
            };
            println!(
                "{id:<9}  n={:<5} mu_eps={:+6.3}  sigma_eps={:6.2}  R^2={:5.2}  intercept={:6.2}",
                m.n_obs, m.residual_mean, m.sigma, m.r_squared, m.intercept
            );
            let names = feature_names(id, io);
            for ((name, c), p) in names.iter().zip(&m.coefficients).zip(&m.p_values) {
                let sig = if *p < 0.05 { "significant" } else { "not significant" };
                println!("           {name:<24} estimate={c:+8.3}  p={p:7.4}  ({sig})");
            }
        }
    }
}

fn main() {
    uniloc_bench::init_obs();
    println!("Table II — error-model coefficients (trained in the office + open space)");
    let models = trained_models(1);
    print_models(&models);

    // The paper's appropriateness checks.
    println!("\nmodel appropriateness checks:");
    for io in [IoState::Indoor, IoState::Outdoor] {
        for id in [SchemeId::Wifi, SchemeId::Cellular, SchemeId::Motion, SchemeId::Fusion] {
            if let Some(m) = models.model(id, io) {
                let significant = m.p_values.iter().filter(|&&p| p < 0.05).count();
                let mu_ok = m.residual_mean.abs() < 1.0;
                println!(
                    "  {io} {id:<9} significant features: {significant}/{}  residual mean near zero: {}",
                    m.p_values.len(),
                    if mu_ok { "yes" } else { "NO" },
                );
            }
        }
    }
    println!("\npaper targets: motion/fusion R^2 high (>=0.7-0.85); wifi/cellular R^2 low");
    println!("but sufficient, since UniLoc only needs *relative* errors to rank schemes.");
    uniloc_bench::finish("table2_error_models");
}
