//! Fig. 3 — oracle vs UniLoc along the daily path.
//!
//! "UniLoc1 can find the best localization scheme and UniLoc2 outperforms
//! the oracle at many locations, especially in the outdoor environments,
//! where the localization errors of individual schemes are large."
//!
//! Run with: `cargo run --release -p uniloc-bench --bin fig3_uniloc_vs_oracle`

use uniloc_bench::{station_series, system_errors, trained_models};
use uniloc_core::pipeline::{self, PipelineConfig};
use uniloc_env::campus;

fn main() {
    uniloc_bench::init_obs();
    let cfg = PipelineConfig::default();
    let models = trained_models(1);
    let scenario = campus::daily_path(3);
    let records = pipeline::run_walk(&scenario, &models, &cfg, 12);

    println!("Fig. 3 — oracle vs UniLoc along the daily path (10 m buckets)");
    for label in ["oracle", "uniloc1", "uniloc2"] {
        let errors = system_errors(&records, label);
        let series = station_series(&records, &errors, 10.0);
        let cells: Vec<String> =
            series.iter().map(|(s, e)| format!("({s:.0},{e:.1})")).collect();
        println!("{label:<8} {}", cells.join(" "));
    }

    // Where does UniLoc2 beat the oracle?
    let mut beats = 0usize;
    let mut beats_outdoor = 0usize;
    let mut outdoor_total = 0usize;
    let mut total = 0usize;
    for r in &records {
        if let (Some(o), Some(u2)) = (r.oracle_error, r.uniloc2_error) {
            total += 1;
            if !r.indoor {
                outdoor_total += 1;
            }
            if u2 < o {
                beats += 1;
                if !r.indoor {
                    beats_outdoor += 1;
                }
            }
        }
    }
    println!(
        "\nUniLoc2 beats the oracle at {:.1}% of locations ({:.1}% of outdoor ones)",
        beats as f64 / total as f64 * 100.0,
        if outdoor_total > 0 { beats_outdoor as f64 / outdoor_total as f64 * 100.0 } else { 0.0 },
    );
    println!("paper: combining can beat the best single scheme because the other");
    println!("schemes pull the combined result closer to the true location.");
    uniloc_bench::finish("fig3_uniloc_vs_oracle");
}
