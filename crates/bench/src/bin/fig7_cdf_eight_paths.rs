//! Fig. 7 — CDF of localization error over all eight daily paths.
//!
//! Paper targets: UniLoc1 substantially beats every individual scheme;
//! UniLoc2 tolerates prediction uncertainty better and beats the oracle;
//! at the 50th percentile UniLoc1 reduces the fusion scheme's error ~1.4x
//! and UniLoc2 ~1.6x; the 90th percentile of UniLoc2 is ~5.8 m, ~1.8x
//! better than RADAR's 10.6 m (while motion/fusion blow up to ~15.3 m on
//! long unlandmarked outdoor stretches).
//!
//! Run with: `cargo run --release -p uniloc-bench --bin fig7_cdf_eight_paths`

use uniloc_bench::{
    cdf_summary, pooled_errors, print_cdf_series, print_table, trained_models, SYSTEM_LABELS,
};
use uniloc_core::pipeline::PipelineConfig;
use uniloc_env::{campus, GaitProfile};

fn main() {
    uniloc_bench::init_obs();
    let models = trained_models(1);

    println!("Fig. 7 — error CDF over the eight daily paths (3 walkers each)");
    let personas = GaitProfile::personas();
    let mut walks = Vec::new();
    let paths = campus::all_paths(3);
    for (i, scenario) in paths.iter().enumerate() {
        for (j, gait) in personas.iter().step_by(2).enumerate() {
            let cfg = PipelineConfig { gait: gait.clone(), ..PipelineConfig::default() };
            walks.push((scenario.clone(), cfg, 300 + i as u64 * 17 + j as u64 * 7));
        }
    }
    // The walks fan out on UNILOC_JOBS workers; records come back in the
    // same (path, persona) order the sequential loop produced.
    let runs = uniloc_bench::run_walks_parallel(&walks, &models);
    for scenario in &paths {
        println!("  walked {} ({:.0} m) with 3 personas", scenario.name, scenario.route.length());
    }

    println!("\nCDF series (error m, cumulative fraction):");
    for label in SYSTEM_LABELS {
        let errors = pooled_errors(&runs, label);
        print_cdf_series(label, &errors, 15);
    }

    let mut rows = Vec::new();
    for label in SYSTEM_LABELS {
        let errors = pooled_errors(&runs, label);
        match cdf_summary(&errors) {
            Some((p50, p90, mean)) => rows.push(vec![
                label.to_owned(),
                format!("{p50:.2}"),
                format!("{p90:.2}"),
                format!("{mean:.2}"),
                format!("{}", errors.len()),
            ]),
            None => rows.push(vec![label.to_owned(), "-".into(), "-".into(), "-".into(), "0".into()]),
        }
    }
    print_table("percentiles", &["system", "p50 (m)", "p90 (m)", "mean (m)", "n"], &rows);

    let summary = |label: &str| cdf_summary(&pooled_errors(&runs, label));
    if let (Some(f), Some(u1), Some(u2), Some(w)) =
        (summary("fusion"), summary("uniloc1"), summary("uniloc2"), summary("wifi"))
    {
        println!("\np50 reduction vs fusion:  uniloc1 {:.2}x   uniloc2 {:.2}x", f.0 / u1.0, f.0 / u2.0);
        println!("p90: uniloc2 {:.1} m vs wifi {:.1} m ({:.2}x) vs fusion {:.1} m ({:.2}x)",
            u2.1, w.1, w.1 / u2.1, f.1, f.1 / u2.1);
        println!("paper: p50 gains 1.4x (uniloc1) / 1.6x (uniloc2); p90 uniloc2 ~5.8 m.");
    }
    uniloc_bench::finish("fig7_cdf_eight_paths");
}
