//! Table III — normalized RMSE of the online error prediction, per scheme,
//! for the four conditions {same place, new place} x {same device,
//! different device}.
//!
//! Paper targets (shape): average prediction nRMSE < ~0.49 with the same
//! device in the same place, rising to ~0.76 with a new device in new
//! places — imperfect, but enough to *rank* schemes.
//!
//! Run with: `cargo run --release -p uniloc-bench --bin table3_error_prediction`

use uniloc_bench::{fmt_opt, learn_calibration, print_table, trained_models};
use uniloc_core::pipeline::{self, EpochRecord, PipelineConfig};
use uniloc_env::{venues, Scenario};
use uniloc_schemes::SchemeId;
use uniloc_sensors::DeviceProfile;
use uniloc_stats::normalized_rmse;

/// Pairs (predicted, actual) for one scheme across records.
fn prediction_pairs(records: &[EpochRecord], id: SchemeId) -> (Vec<f64>, Vec<f64>) {
    let mut predicted = Vec::new();
    let mut actual = Vec::new();
    for r in records {
        let p = r
            .predictions
            .iter()
            .find(|(s, _)| *s == id)
            .and_then(|(_, p)| p.map(|p| p.mean));
        let a = r
            .scheme_errors
            .iter()
            .find(|(s, _)| *s == id)
            .and_then(|(_, e)| *e);
        if let (Some(p), Some(a)) = (p, a) {
            predicted.push(p);
            actual.push(a);
        }
    }
    (predicted, actual)
}

fn condition_nrmse(
    scenarios: &[Scenario],
    models: &uniloc_core::error_model::ErrorModelSet,
    device: DeviceProfile,
    calibrate: bool,
    seed: u64,
) -> Vec<(SchemeId, Option<f64>)> {
    let mut per_scheme: Vec<(SchemeId, Vec<f64>, Vec<f64>)> = SchemeId::BUILTIN
        .iter()
        .map(|&id| (id, Vec::new(), Vec::new()))
        .collect();
    for (i, sc) in scenarios.iter().enumerate() {
        let cfg = PipelineConfig {
            device,
            calibration: if calibrate { learn_calibration(sc, seed + 50 + i as u64) } else { None },
            ..PipelineConfig::default()
        };
        let records = pipeline::run_walk(sc, models, &cfg, seed + i as u64);
        for (id, preds, acts) in &mut per_scheme {
            let (p, a) = prediction_pairs(&records, *id);
            preds.extend(p);
            acts.extend(a);
        }
    }
    per_scheme
        .into_iter()
        .map(|(id, p, a)| {
            let n = if p.len() >= 20 { normalized_rmse(&p, &a).ok() } else { None };
            (id, n)
        })
        .collect()
}

fn main() {
    uniloc_bench::init_obs();
    println!("Table III — normalized RMSE of online error prediction");
    let models = trained_models(1);

    // Same places: the training venues themselves.
    let same_places = vec![venues::training_office(1), venues::training_open_space(2)];
    // New places: another office, the shopping mall and the urban open
    // space ("most of the testing environments (~89%) are different from
    // the places where the data were collected").
    let mut new_places = vec![venues::office("another-office", 77, 48.0, 18.0)];
    new_places.extend(venues::shopping_mall(78, 2));
    new_places.extend(venues::urban_open_space(79, 2));

    let conditions: [(&str, &[Scenario], DeviceProfile, bool); 4] = [
        ("same/sameDev", &same_places, DeviceProfile::nexus_5x(), false),
        ("same/diffDev", &same_places, DeviceProfile::lg_g3(), true),
        ("new/sameDev", &new_places, DeviceProfile::nexus_5x(), false),
        ("new/diffDev", &new_places, DeviceProfile::lg_g3(), true),
    ];

    let mut rows = Vec::new();
    let mut col_results: Vec<Vec<Option<f64>>> = Vec::new();
    for (i, (_, scenarios, device, calibrate)) in conditions.iter().enumerate() {
        let res = condition_nrmse(scenarios, &models, *device, *calibrate, 200 + 10 * i as u64);
        col_results.push(res.iter().map(|(_, n)| *n).collect());
    }
    for (row_idx, id) in SchemeId::BUILTIN.iter().enumerate() {
        let mut row = vec![id.to_string()];
        for col in &col_results {
            row.push(fmt_opt(col[row_idx], 2));
        }
        rows.push(row);
    }
    // Average row.
    let mut avg_row = vec!["average".to_owned()];
    for col in &col_results {
        let defined: Vec<f64> = col.iter().flatten().copied().collect();
        let avg = if defined.is_empty() {
            None
        } else {
            Some(defined.iter().sum::<f64>() / defined.len() as f64)
        };
        avg_row.push(fmt_opt(avg, 2));
    }
    rows.push(avg_row);

    print_table(
        "normalized RMSE (lower is better)",
        &["scheme", "same/sameD", "same/diffD", "new/sameD", "new/diffD"],
        &rows,
    );
    println!("\npaper targets: ~0.49 average for same place + device, ~0.76 for new");
    println!("place + device; prediction degrades away from training but stays usable.");
    uniloc_bench::finish("table3_error_prediction");
}
