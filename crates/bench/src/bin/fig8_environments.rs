//! Fig. 8 — error CDFs in the urban venues and with heterogeneous devices.
//!
//! * (a) shopping mall, (b) urban open space, (c) office — UniLoc2 gains
//!   ~1.7x at both the 50th and 90th percentiles vs individual schemes,
//!   even though the error models were trained elsewhere.
//! * (d) heterogeneous device (LG G3 against a Nexus-5X-trained database):
//!   online RSSI offset calibration recovers most of the loss (~1.9x at the
//!   90th percentile).
//!
//! Run with: `cargo run --release -p uniloc-bench --bin fig8_environments`

use uniloc_bench::{
    cdf_summary, learn_calibration, pooled_errors, print_table, trained_models, SYSTEM_LABELS,
};
use uniloc_core::pipeline::{self, EpochRecord, PipelineConfig};
use uniloc_env::{venues, Scenario};
use uniloc_sensors::DeviceProfile;

fn run_set(
    scenarios: &[Scenario],
    models: &uniloc_core::error_model::ErrorModelSet,
    cfg: &PipelineConfig,
    seed: u64,
) -> Vec<Vec<EpochRecord>> {
    scenarios
        .iter()
        .enumerate()
        .map(|(i, sc)| pipeline::run_walk(sc, models, cfg, seed + i as u64 * 13))
        .collect()
}

fn venue_table(title: &str, runs: &[Vec<EpochRecord>]) {
    let mut rows = Vec::new();
    for label in SYSTEM_LABELS {
        let errors = pooled_errors(runs, label);
        match cdf_summary(&errors) {
            Some((p50, p90, mean)) => rows.push(vec![
                label.to_owned(),
                format!("{p50:.2}"),
                format!("{p90:.2}"),
                format!("{mean:.2}"),
            ]),
            None => rows.push(vec![label.to_owned(), "-".into(), "-".into(), "-".into()]),
        }
    }
    print_table(title, &["system", "p50 (m)", "p90 (m)", "mean (m)"], &rows);
}

fn main() {
    uniloc_bench::init_obs();
    let cfg = PipelineConfig::default();
    let models = trained_models(1);

    // (a) shopping mall: 10 trajectories of ~300 m.
    let malls = venues::shopping_mall(40, 10);
    let mall_runs = run_set(&malls, &models, &cfg, 400);
    venue_table("Fig. 8a — shopping mall (10 x ~300 m)", &mall_runs);

    // (b) urban open space: 10 trajectories.
    let spaces = venues::urban_open_space(41, 10);
    let space_runs = run_set(&spaces, &models, &cfg, 500);
    venue_table("Fig. 8b — urban open space (10 trajectories)", &space_runs);

    // (c) office (a new office, not the training one).
    let office = vec![venues::office("fig8-office", 42, 50.0, 18.0)];
    let office_runs = run_set(&office, &models, &cfg, 600);
    venue_table("Fig. 8c — office", &office_runs);

    // (d) heterogeneous devices on the office + mall, with and without the
    // online RSSI offset calibration.
    println!("\nFig. 8d — LG G3 against the Nexus-5X-trained fingerprints");
    let hetero: Vec<Scenario> = office.into_iter().chain(malls.into_iter().take(3)).collect();
    for (label, calibrate) in [("with calibration", true), ("without calibration", false)] {
        let runs: Vec<Vec<EpochRecord>> = hetero
            .iter()
            .enumerate()
            .map(|(i, sc)| {
                let cfg = PipelineConfig {
                    device: DeviceProfile::lg_g3(),
                    calibration: if calibrate {
                        learn_calibration(sc, 700 + i as u64)
                    } else {
                        None
                    },
                    ..PipelineConfig::default()
                };
                pipeline::run_walk(sc, &models, &cfg, 800 + i as u64 * 13)
            })
            .collect();
        let wifi = cdf_summary(&pooled_errors(&runs, "wifi"));
        let uniloc2 = cdf_summary(&pooled_errors(&runs, "uniloc2"));
        if let (Some(w), Some(u)) = (wifi, uniloc2) {
            println!(
                "  {label:<20} wifi p50={:5.2} p90={:5.2}   uniloc2 p50={:5.2} p90={:5.2}",
                w.0, w.1, u.0, u.1
            );
        }
    }
    println!("\npaper: calibration recovers most heterogeneity loss (~1.9x at p90),");
    println!("and UniLoc assimilates the per-scheme heterogeneity handling.");
    uniloc_bench::finish("fig8_environments");
}
