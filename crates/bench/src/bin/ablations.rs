//! Ablations of UniLoc's design choices (Section IV discussion):
//!
//! 1. **Locally-weighted BMA vs global-weight BMA vs unweighted mean** —
//!    the paper's contribution over prior BMA fusion [29] is computing a
//!    *unique weight per location* from real-time context rather than one
//!    fixed weight per scheme for the whole place.
//! 2. **Adaptive tau vs fixed tau** — Eq. 2 sets the confidence threshold
//!    "adaptively at different locations, as the average predicted error of
//!    all available schemes".
//! 3. **Robustness to error-model noise** — "even with imperfect online
//!    error prediction", UniLoc2 "can better tolerate the uncertainty":
//!    coefficients are perturbed and the end accuracy tracked.
//! 4. **Fingerprint-spacing sweep** — the spatial-density feature's effect
//!    on the WiFi scheme (the paper downsamples to 5/10/15 m).
//! 5. **Horus vs RADAR** — the probabilistic-fingerprinting sample-count
//!    trade-off the paper cites as its reason for using RADAR.
//! 6. **A-Loc-style selection vs UniLoc** — the related-work baseline [28]
//!    that picks one low-cost scheme meeting an accuracy requirement.
//! 7. **Location-predictor choice** — the paper's second-order HMM vs the
//!    Kalman filter it also names, vs no smoothing at all.
//! 8. **Point-mass vs full-posterior BMA** — Eq. 4 evaluated over each
//!    scheme's posterior candidates instead of its point estimate.
//!
//! Run with: `cargo run --release -p uniloc-bench --bin ablations`

use uniloc_bench::{mean_defined, system_errors, trained_models};
use uniloc_core::aloc::ALocSelector;
use uniloc_core::confidence::confidence;
use uniloc_core::energy::PowerProfile;
use uniloc_core::error_model::{ErrorModelSet, ErrorPrediction};
use uniloc_core::pipeline::{self, EpochRecord, PipelineConfig};
use uniloc_env::{campus, venues};
use uniloc_geom::Point;
use uniloc_iodetect::IoState;
use uniloc_schemes::{
    HorusScheme, LocalizationScheme, ProbFingerprintDb, SchemeId, WifiFingerprintDb,
    WifiFingerprintScheme,
};
use uniloc_sensors::{DeviceProfile, SensorHub};
use uniloc_env::{GaitProfile, Walker};
use uniloc_rng::Rng;

/// Re-fuses recorded per-epoch estimates with externally supplied weights
/// and returns the mean error.
fn refuse(records: &[EpochRecord], weight_of: impl Fn(&EpochRecord, SchemeId) -> f64) -> f64 {
    let mut errors = Vec::new();
    for r in records {
        let mut wsum = 0.0;
        let mut x = 0.0;
        let mut y = 0.0;
        for (id, est) in &r.estimates {
            if let Some(p) = est {
                let w = weight_of(r, *id);
                if w > 0.0 {
                    wsum += w;
                    x += w * p.x;
                    y += w * p.y;
                }
            }
        }
        if wsum > 0.0 {
            errors.push(Point::new(x / wsum, y / wsum).distance(r.truth));
        }
    }
    errors.iter().sum::<f64>() / errors.len() as f64
}

fn recorded_weight(r: &EpochRecord, id: SchemeId) -> f64 {
    r.weights.iter().find(|(s, _)| *s == id).map_or(0.0, |(_, w)| *w)
}

fn prediction_of(r: &EpochRecord, id: SchemeId) -> Option<ErrorPrediction> {
    r.predictions.iter().find(|(s, _)| *s == id).and_then(|(_, p)| *p)
}

fn main() {
    uniloc_bench::init_obs();
    let cfg = PipelineConfig::default();
    let models = trained_models(1);
    let scenario = campus::daily_path(3);
    let records = pipeline::run_walk(&scenario, &models, &cfg, 12);

    // ---- 1. weighting strategies -------------------------------------
    println!("== ablation 1: BMA weighting strategy (daily path) ==");
    let local = refuse(&records, recorded_weight);
    // Global weights: each scheme's average confidence-derived weight over
    // the whole walk (the [29] baseline: one weight per scheme per place).
    let mut global: Vec<(SchemeId, f64)> = SchemeId::BUILTIN
        .iter()
        .map(|&id| {
            let mean_w = records.iter().map(|r| recorded_weight(r, id)).sum::<f64>()
                / records.len() as f64;
            (id, mean_w)
        })
        .collect();
    global.sort_by_key(|(id, _)| *id);
    let global_err = refuse(&records, |_, id| {
        global.iter().find(|(s, _)| *s == id).map_or(0.0, |(_, w)| *w)
    });
    let unweighted = refuse(&records, |_, _| 1.0);
    println!("  locally-weighted BMA (UniLoc2) : {local:.2} m");
    println!("  globally-weighted BMA ([29])   : {global_err:.2} m");
    println!("  unweighted mean                : {unweighted:.2} m");
    println!("  paper claim: per-location weights adapt to spatial variation.");

    // ---- 2. adaptive vs fixed tau -------------------------------------
    println!("\n== ablation 2: adaptive vs fixed confidence threshold ==");
    let with_tau = |records: &[EpochRecord], tau: Option<f64>| {
        refuse(records, |r, id| {
            let Some(p) = prediction_of(r, id) else { return 0.0 };
            let t = tau.or(r.tau).unwrap_or(5.0);
            confidence(p, t)
        })
    };
    println!("  adaptive tau (Eq. 2)           : {:.2} m", with_tau(&records, None));
    for fixed in [2.0, 5.0, 10.0, 20.0] {
        println!("  fixed tau = {fixed:>4.1} m            : {:.2} m", with_tau(&records, Some(fixed)));
    }

    // ---- 3. robustness to error-model noise ---------------------------
    println!("\n== ablation 3: robustness to error-model perturbation ==");
    for pct in [0.0, 0.2, 0.5, 1.0] {
        let mut noisy = ErrorModelSet::default();
        let mut rng = Rng::seed_from_u64(99);
        for id in SchemeId::BUILTIN {
            for io in [IoState::Indoor, IoState::Outdoor] {
                if let Some(m) = models.model(id, io) {
                    let mut m = m.clone();
                    for c in &mut m.coefficients {
                        *c *= 1.0 + rng.gen_range(-pct..=pct);
                    }
                    m.intercept *= 1.0 + rng.gen_range(-pct..=pct.max(1e-12));
                    noisy.insert(id, io, m);
                }
            }
        }
        let recs = pipeline::run_walk(&scenario, &noisy, &cfg, 12);
        let u1 = mean_defined(&system_errors(&recs, "uniloc1")).unwrap_or(f64::NAN);
        let u2 = mean_defined(&system_errors(&recs, "uniloc2")).unwrap_or(f64::NAN);
        println!(
            "  coefficients perturbed +/-{:>3.0}%:  uniloc1 {u1:5.2} m   uniloc2 {u2:5.2} m",
            pct * 100.0
        );
    }
    println!("  paper claim: UniLoc2 tolerates prediction uncertainty better than");
    println!("  selection, because weighting degrades gracefully.");

    // ---- 4. fingerprint-spacing sweep ----------------------------------
    println!("\n== ablation 4: WiFi error vs fingerprint spacing (office) ==");
    let office = venues::training_office(61);
    let mut hub = SensorHub::new(&office.world, DeviceProfile::nexus_5x(), 62);
    let points = office.survey_points(1.5, 12.0);
    let full_db = WifiFingerprintDb::survey_wifi(&mut hub, &points);
    let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(63));
    let walk = walker.walk(&office.route);
    let mut run_hub = SensorHub::new(&office.world, DeviceProfile::nexus_5x(), 64);
    let frames = run_hub.sample_walk(&walk, 0.5);
    for spacing in [1.5, 3.0, 5.0, 10.0, 15.0] {
        let db = if spacing > 1.5 { full_db.downsampled(spacing) } else { full_db.clone() };
        let density = db
            .local_density(Point::new(28.0, 10.0), 20.0)
            .unwrap_or(f64::NAN);
        let mut scheme = WifiFingerprintScheme::new(db).with_min_aps(3);
        let errs: Vec<f64> = frames
            .iter()
            .filter_map(|f| scheme.update(f).map(|e| e.position.distance(f.true_position)))
            .collect();
        let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        println!(
            "  spacing {spacing:>4.1} m  (measured density {density:>5.2} m)  wifi error {mean:5.2} m"
        );
    }
    println!("  paper claim: error grows with fingerprint spacing — the beta_1 feature.");

    // ---- 5. Horus vs RADAR: the sample-count trade-off -----------------
    println!("\n== ablation 5: Horus vs RADAR (probabilistic fingerprints) ==");
    let radar_err = {
        let mut scheme = WifiFingerprintScheme::new(full_db.clone()).with_min_aps(3);
        let errs: Vec<f64> = frames
            .iter()
            .filter_map(|f| scheme.update(f).map(|e| e.position.distance(f.true_position)))
            .collect();
        errs.iter().sum::<f64>() / errs.len().max(1) as f64
    };
    println!("  RADAR (1 sample/point)           : {radar_err:5.2} m");
    for samples in [1u32, 4, 12] {
        let mut survey_hub = SensorHub::new(&office.world, DeviceProfile::nexus_5x(), 65);
        let db = ProbFingerprintDb::survey(&mut survey_hub, &points, samples);
        let mut scheme = HorusScheme::new(db);
        let errs: Vec<f64> = frames
            .iter()
            .filter_map(|f| scheme.update(f).map(|e| e.position.distance(f.true_position)))
            .collect();
        let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        println!("  Horus ({samples:>2} samples/point)        : {mean:5.2} m");
    }
    println!("  paper: Horus needs many samples per location, which is why its");
    println!("  evaluation uses RADAR; with enough samples Horus catches up.");

    // ---- 6. A-Loc selection vs UniLoc ----------------------------------
    println!("\n== ablation 6: A-Loc-style selection vs UniLoc (daily path) ==");
    let power = PowerProfile::default();
    for requirement in [3.0, 6.0, 12.0] {
        let aloc = ALocSelector::new(requirement);
        let mut errors = Vec::new();
        let mut power_sum = 0.0;
        for r in &records {
            // Rebuild per-epoch reports from the recorded data.
            let reports: Vec<uniloc_core::engine::SchemeReport> = r
                .estimates
                .iter()
                .map(|(id, est)| uniloc_core::engine::SchemeReport {
                    id: *id,
                    estimate: est.map(uniloc_schemes::LocationEstimate::at),
                    prediction: prediction_of(r, *id),
                    confidence: 0.0,
                    weight: 0.0,
                })
                .collect();
            if let Some(choice) = aloc.select(&reports) {
                if let Some(e) = r
                    .scheme_errors
                    .iter()
                    .find(|(s, _)| *s == choice)
                    .and_then(|(_, e)| *e)
                {
                    errors.push(e);
                    power_sum += power.scheme_power_mw(choice);
                }
            }
        }
        let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
        let avg_power = power_sum / errors.len().max(1) as f64;
        println!(
            "  A-Loc (req {requirement:>4.1} m): error {mean:5.2} m at {avg_power:6.0} mW selected-scheme power"
        );
    }
    let u1 = mean_defined(&system_errors(&records, "uniloc1")).unwrap_or(f64::NAN);
    let u2 = mean_defined(&system_errors(&records, "uniloc2")).unwrap_or(f64::NAN);
    println!("  UniLoc1 (selection)  : error {u1:5.2} m");
    println!("  UniLoc2 (combination): error {u2:5.2} m");
    println!("  paper: a-Loc picks ONE low-cost scheme meeting a requirement; UniLoc");
    println!("  combines all of them — trading a little energy for accuracy.");

    // ---- 7. online location predictor for the density feature ----------
    println!("\n== ablation 7: location predictor for the beta_1 feature ==");
    for (label, kind) in [
        ("second-order HMM (paper)", uniloc_core::PredictorKind::Hmm2),
        ("Kalman filter", uniloc_core::PredictorKind::Kalman),
        ("last estimate", uniloc_core::PredictorKind::LastEstimate),
    ] {
        let cfg = PipelineConfig { predictor: kind, ..PipelineConfig::default() };
        let recs = pipeline::run_walk(&scenario, &models, &cfg, 12);
        let u2 = mean_defined(&system_errors(&recs, "uniloc2")).unwrap_or(f64::NAN);
        println!("  {label:<26}: uniloc2 {u2:5.2} m");
    }
    println!("  paper: 'a second order HMM ... can provide an acceptable estimation");
    println!("  accuracy' — the choice of predictor barely moves the end result.");

    // ---- 8. point-mass vs full-posterior BMA ----------------------------
    println!("\n== ablation 8: BMA over point estimates vs full posteriors ==");
    let point = mean_defined(&system_errors(&records, "uniloc2")).unwrap_or(f64::NAN);
    let mixture =
        mean_defined(&records.iter().map(|r| r.uniloc2_mixture_error).collect::<Vec<_>>())
            .unwrap_or(f64::NAN);
    println!("  point-mass components (default) : {point:5.2} m");
    println!("  posterior-mean components       : {mixture:5.2} m");
    println!("  Eq. 4's estimate is the mixture mean, so combining each scheme's");
    println!("  posterior mean (top-k candidates / particle cloud) is the literal");
    println!("  reading; with posteriors centered on the estimates both agree.");
    uniloc_bench::finish("ablations");
}
