//! Fig. 6 — average localization error of every system along the daily
//! path.
//!
//! Paper numbers: fusion is the best individual scheme at 4.0 m, the
//! oracle reaches 3.7 m, and UniLoc2 reaches 2.6 m — reducing the fusion
//! scheme's error by ~1.7x and beating the oracle.
//!
//! Run with: `cargo run --release -p uniloc-bench --bin fig6_average_error`

use uniloc_bench::{fmt_opt, mean_defined, print_table, system_errors, trained_models, SYSTEM_LABELS};
use uniloc_core::pipeline::PipelineConfig;
use uniloc_env::campus;

fn main() {
    uniloc_bench::init_obs();
    let cfg = PipelineConfig::default();
    let models = trained_models(1);
    let scenario = campus::daily_path(3);

    // Average over several walks (different walkers/noise) for stability;
    // the walks fan out on UNILOC_JOBS workers in seed order.
    let walks: Vec<_> =
        (0..5u64).map(|run| (scenario.clone(), cfg.clone(), 12 + run * 31)).collect();
    let mut all_means: Vec<Vec<f64>> = vec![Vec::new(); SYSTEM_LABELS.len()];
    for records in uniloc_bench::run_walks_parallel(&walks, &models) {
        for (i, label) in SYSTEM_LABELS.iter().enumerate() {
            if let Some(m) = mean_defined(&system_errors(&records, label)) {
                all_means[i].push(m);
            }
        }
    }

    let rows: Vec<Vec<String>> = SYSTEM_LABELS
        .iter()
        .enumerate()
        .map(|(i, label)| {
            let v = &all_means[i];
            let mean = if v.is_empty() {
                None
            } else {
                Some(v.iter().sum::<f64>() / v.len() as f64)
            };
            vec![(*label).to_owned(), fmt_opt(mean, 2)]
        })
        .collect();
    print_table("Fig. 6 — average error on the daily path (5 walks)", &["system", "mean (m)"], &rows);

    let get = |label: &str| {
        let i = SYSTEM_LABELS.iter().position(|l| *l == label).unwrap();
        let v = &all_means[i];
        if v.is_empty() { f64::NAN } else { v.iter().sum::<f64>() / v.len() as f64 }
    };
    let fusion = get("fusion");
    let uniloc2 = get("uniloc2");
    let oracle = get("oracle");
    let uniloc1 = get("uniloc1");
    println!("\npaper: fusion 4.0 m, oracle/uniloc1 3.7 m, uniloc2 2.6 m");
    println!(
        "ours:  fusion {:.1} m, oracle {:.1} m, uniloc1 {:.1} m, uniloc2 {:.1} m",
        fusion, oracle, uniloc1, uniloc2
    );
    println!(
        "uniloc2 vs fusion: {:.2}x   uniloc2 vs uniloc1: {:.2}x",
        fusion / uniloc2,
        uniloc1 / uniloc2
    );
    uniloc_bench::finish("fig6_average_error");
}
