//! Table IV — power and energy consumption along the daily path.
//!
//! Paper targets: the motion-based PDR is the cheapest scheme; UniLoc adds
//! only ~14% on top of it (all low-power sensors plus a duty-cycled GPS);
//! outdoors, the duty cycling cuts GPS energy ~2.1x vs the stock receiver.
//!
//! Run with: `cargo run --release -p uniloc-bench --bin table4_energy`

use uniloc_bench::trained_models;
use uniloc_core::energy::PowerProfile;
use uniloc_core::pipeline::{self, PipelineConfig};
use uniloc_env::campus;
use uniloc_schemes::SchemeId;

fn main() {
    uniloc_bench::init_obs();
    let cfg = PipelineConfig::default();
    let models = trained_models(1);
    let profile = PowerProfile::default();

    println!("Table IV — power/energy along daily path 1 (Galaxy S2 power profile)");
    let scenario = campus::daily_path(3);
    let records = pipeline::run_walk(&scenario, &models, &cfg, 12);
    let rows = profile.tabulate(&records);
    println!("{:<16}{:>12}{:>10}{:>12}", "system", "power (mW)", "time (s)", "energy (J)");
    for r in &rows {
        println!(
            "{:<16}{:>12.0}{:>10.1}{:>12.1}",
            r.system, r.power_mw, r.time_s, r.energy_j
        );
    }

    let motion = profile.scheme_power_mw(SchemeId::Motion);
    let duty = records.iter().filter(|r| r.gps_enabled).count() as f64 / records.len() as f64;
    let uniloc = profile.uniloc_power_mw(duty);
    println!(
        "\nUniLoc overhead vs motion PDR: {:+.1}%   (paper: +14%)",
        (uniloc / motion - 1.0) * 100.0
    );
    println!("GPS receiver duty cycle on path 1: {:.1}% of epochs", duty * 100.0);

    // Outdoor GPS saving, pooled over all eight paths (longer outdoor
    // stretches are where the policy earns its keep).
    let mut outdoor = 0usize;
    let mut enabled = 0usize;
    for (i, sc) in campus::all_paths(3).into_iter().enumerate() {
        let recs = pipeline::run_walk(&sc, &models, &cfg, 900 + i as u64 * 13);
        outdoor += recs.iter().filter(|r| !r.indoor).count();
        enabled += recs.iter().filter(|r| !r.indoor && r.gps_enabled).count();
    }
    if enabled > 0 {
        println!(
            "\noutdoor GPS saving over the eight paths: {:.1}x (receiver on {}/{} outdoor epochs)",
            outdoor as f64 / enabled as f64,
            enabled,
            outdoor
        );
    } else {
        println!(
            "\noutdoor GPS saving: receiver never enabled ({outdoor} outdoor epochs) — the"
        );
        println!("other schemes' predicted errors stayed below the GPS constant (13.5 m).");
    }
    println!("paper: 2.1x outdoor saving from turning GPS off when it cannot win.");
    uniloc_bench::finish("table4_energy");
}
