//! Fig. 4 — the eight daily campus paths: 2.78 km total, ~0.8 km outdoor
//! and ~1.98 km indoor.
//!
//! Run with: `cargo run --release -p uniloc-bench --bin fig4_paths`

use uniloc_bench::print_table;
use uniloc_env::campus;

fn main() {
    uniloc_bench::init_obs();
    println!("Fig. 4 — the eight daily paths");
    let paths = campus::all_paths(3);
    let mut rows = Vec::new();
    let mut total = 0.0;
    let mut outdoor = 0.0;
    for p in &paths {
        let len = p.route.length();
        let out = p.outdoor_length();
        total += len;
        outdoor += out;
        let segs: Vec<String> = p
            .segments
            .iter()
            .map(|s| format!("{}({:.0}m)", s.kind, s.end_station - s.start_station))
            .collect();
        rows.push(vec![
            p.name.clone(),
            format!("{len:.0}"),
            format!("{out:.0}"),
            format!("{:.0}", len - out),
            segs.join(" "),
        ]);
    }
    rows.push(vec![
        "total".to_owned(),
        format!("{total:.0}"),
        format!("{outdoor:.0}"),
        format!("{:.0}", total - outdoor),
        String::new(),
    ]);
    print_table(
        "path inventory",
        &["path", "length", "outdoor", "indoor", "segments"],
        &rows,
    );
    println!("\npaper: 2.78 km total = 0.80 km outdoor + 1.98 km indoor");
    println!(
        "ours:  {:.2} km total = {:.2} km outdoor + {:.2} km indoor",
        total / 1000.0,
        outdoor / 1000.0,
        (total - outdoor) / 1000.0
    );
    uniloc_bench::finish("fig4_paths");
}
