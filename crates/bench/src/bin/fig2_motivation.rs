//! Fig. 2 — localization error of the five schemes (and the oracle) along
//! the daily path.
//!
//! "We run five typical localization programs independently on a smartphone
//! along with a daily walking path [...] 320 meters and composed of
//! different segments." The figure's observations to reproduce:
//!
//! 1. no single scheme covers the whole path with stable performance, and
//! 2. schemes complement each other — the cellular scheme wins ~15% of
//!    locations, concentrated in the basement where WiFi and GPS are dead.
//!
//! Run with: `cargo run --release -p uniloc-bench --bin fig2_motivation`

use uniloc_bench::{
    fmt_opt, mean_defined, print_table, station_series, system_errors, trained_models,
    SYSTEM_LABELS,
};
use uniloc_core::pipeline::{self, PipelineConfig};
use uniloc_env::campus;
use uniloc_schemes::SchemeId;

fn main() {
    uniloc_bench::init_obs();
    let cfg = PipelineConfig::default();
    // Models are needed only for UniLoc's own columns; the five schemes and
    // the oracle are model-free.
    let models = trained_models(1);
    let scenario = campus::daily_path(3);
    let records = pipeline::run_walk(&scenario, &models, &cfg, 12);

    println!("Fig. 2 — error along the daily path ({} m)", scenario.route.length());
    println!("segments: office 0-50, semi-open corridor 50-130, basement 130-190,");
    println!("          car park 190-240, open space 240-320\n");

    // Error-vs-station series per scheme (10 m buckets).
    for label in ["gps", "wifi", "cellular", "motion", "fusion", "oracle"] {
        let errors = system_errors(&records, label);
        let series = station_series(&records, &errors, 10.0);
        let cells: Vec<String> =
            series.iter().map(|(s, e)| format!("({s:.0},{e:.1})")).collect();
        println!("{label:<9} {}", cells.join(" "));
    }

    // Mean error and availability per system.
    let rows: Vec<Vec<String>> = SYSTEM_LABELS
        .iter()
        .map(|label| {
            let errors = system_errors(&records, label);
            let avail =
                errors.iter().filter(|e| e.is_some()).count() as f64 / errors.len() as f64;
            vec![
                (*label).to_owned(),
                fmt_opt(mean_defined(&errors), 2),
                format!("{:.1}%", avail * 100.0),
            ]
        })
        .collect();
    print_table("mean error over the path", &["system", "mean (m)", "avail"], &rows);

    // Observation 2: who wins where? (oracle choice shares, and where the
    // cellular wins sit).
    let total = records.iter().filter(|r| r.oracle_choice.is_some()).count();
    println!("\noracle winner share (paper: cellular wins ~15%, mostly in the basement):");
    for id in SchemeId::BUILTIN {
        let wins = records.iter().filter(|r| r.oracle_choice == Some(id)).count();
        let basement_wins = records
            .iter()
            .filter(|r| {
                r.oracle_choice == Some(id)
                    && scenario.kind_at_station(r.station) == uniloc_env::EnvKind::Basement
            })
            .count();
        println!(
            "  {id:<9} {:5.1}%   (of which basement: {:4.1}% of all locations)",
            wins as f64 / total as f64 * 100.0,
            basement_wins as f64 / total as f64 * 100.0
        );
    }
    uniloc_bench::finish("fig2_motivation");
}
