//! Fig. 5 — scheme usage: how often UniLoc1 selects each scheme vs how
//! often the oracle would.
//!
//! "The usage of different localization schemes in UniLoc1 is close to the
//! oracle. Even with imperfect online error prediction, UniLoc1 can make
//! the right selection, as long as the predicted error can distinguish the
//! accuracy of underlying schemes." The paper also notes WiFi usage is low
//! because the fusion scheme is selected instead when sensor data quality
//! is high.
//!
//! Run with: `cargo run --release -p uniloc-bench --bin fig5_usage`

use uniloc_bench::{print_table, trained_models};
use uniloc_core::pipeline::{self, PipelineConfig};
use uniloc_env::campus;
use uniloc_schemes::SchemeId;

fn main() {
    uniloc_bench::init_obs();
    let cfg = PipelineConfig::default();
    let models = trained_models(1);
    let scenario = campus::daily_path(3);
    let records = pipeline::run_walk(&scenario, &models, &cfg, 12);

    println!("Fig. 5 — scheme usage along the daily path");
    let total = records.len() as f64;
    let mut rows = Vec::new();
    for id in SchemeId::BUILTIN {
        let uniloc1 =
            records.iter().filter(|r| r.uniloc1_choice == Some(id)).count() as f64 / total;
        let oracle =
            records.iter().filter(|r| r.oracle_choice == Some(id)).count() as f64 / total;
        let bma_weight: f64 = records
            .iter()
            .filter_map(|r| r.weights.iter().find(|(s, _)| *s == id).map(|(_, w)| *w))
            .sum::<f64>()
            / total;
        rows.push(vec![
            id.to_string(),
            format!("{:.1}%", uniloc1 * 100.0),
            format!("{:.1}%", oracle * 100.0),
            format!("{:.1}%", bma_weight * 100.0),
        ]);
    }
    print_table(
        "usage share",
        &["scheme", "uniloc1", "oracle", "bma weight"],
        &rows,
    );

    // Agreement between UniLoc1 and the oracle.
    let agree = records
        .iter()
        .filter(|r| r.uniloc1_choice.is_some() && r.uniloc1_choice == r.oracle_choice)
        .count() as f64
        / total;
    println!("\nUniLoc1 picks the oracle's scheme at {:.1}% of locations.", agree * 100.0);
    println!("paper: usage distributions are close; occasional misselection is cheap");
    println!("because the top schemes are near each other when it happens.");

    // Cost of misselection: mean regret when UniLoc1 differs from oracle.
    let regrets: Vec<f64> = records
        .iter()
        .filter(|r| r.uniloc1_choice != r.oracle_choice)
        .filter_map(|r| match (r.uniloc1_error, r.oracle_error) {
            (Some(u), Some(o)) => Some(u - o),
            _ => None,
        })
        .collect();
    if !regrets.is_empty() {
        println!(
            "mean extra error when misselecting: {:.2} m over {} locations",
            regrets.iter().sum::<f64>() / regrets.len() as f64,
            regrets.len()
        );
    }
    uniloc_bench::finish("fig5_usage");
}
