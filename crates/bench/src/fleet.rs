//! The fleet load generator: thousands of seeded walkers — mixed personas,
//! devices, venues and fault plans — served by one deterministic
//! [`FleetScheduler`], shared by `uniloc fleet` and the differential test
//! suite.
//!
//! Every walker is fully determined by its [`SessionSpec`], whose seed is
//! `split_seed(fleet_seed, lane)` — disjoint per-lane streams
//! (property-tested in `tests/fleet_properties.rs`). The generator's
//! artifacts echo the spec mix and a per-session FNV-1a digest of the
//! canonical epoch records, so a one-line `diff` proves two runs served
//! byte-identical fleets. The report deliberately excludes `jobs`,
//! `resident` and every wall-clock number: it must be byte-identical at
//! any worker count, resident cap and machine speed (held by
//! `tests/fleet_differential.rs` and the CI fleet smoke).
//!
//! Throughput (epochs/sec, sessions/sec, p99 epoch latency) goes to
//! `BENCH_fleet.json` instead, in the `bench-diff` gate's stage shape.

use std::sync::Arc;

use crate::chaos::{error_stats, fused_error, scenario_by_name};
use uniloc_core::error_model::ErrorModelSet;
use uniloc_core::fleet::{
    FinishedSession, FleetRunStats, FleetScheduler, FleetSession, SessionCheckpoint,
};
use uniloc_core::pipeline::{self, EpochRecord, PipelineConfig};
use uniloc_core::session::Session;
use uniloc_env::{GaitProfile, Scenario};
use uniloc_faults::{FaultInjector, FaultPlan};
use uniloc_obs::fleet::{FleetAggregator, FleetSnapshot, SessionMeta};
use uniloc_obs::ObsSession;
use uniloc_rng::split_seed;
use uniloc_sensors::{DeviceProfile, SensorFrame};
use uniloc_stats::json::{Json, ToJson};

/// Load-generator parameters. Everything that shapes the fleet's *output*
/// lives here except `jobs`/`resident`, which only shape its execution.
#[derive(Clone)]
pub struct FleetConfig {
    /// Root seed; lane seeds derive via [`split_seed`].
    pub seed: u64,
    /// Walkers to admit.
    pub sessions: usize,
    /// Scenario vocabulary names cycled across lanes
    /// ([`scenario_by_name`]).
    pub scenario_names: Vec<String>,
    /// Worker threads for the scheduler (`<= 1` runs inline). Never
    /// affects artifacts.
    pub jobs: usize,
    /// Maximum sessions live at once; bounds memory, never affects
    /// artifacts. `0` picks a default.
    pub resident: usize,
    /// Truncates each walk to this many epochs; `0` keeps full walks.
    pub max_epochs: usize,
    /// Every `chaos_every`-th lane walks under a fault plan (cycling the
    /// smoke library); `0` keeps the whole fleet clean.
    pub chaos_every: usize,
    /// Serve every walker under a stubbed [`ObsSession`] (the *obs off*
    /// half of the obs-overhead bench). Records are byte-identical either
    /// way — observability never feeds the pipeline — but captures come
    /// back empty, so no fleet snapshot is aggregated.
    pub obs_stub: bool,
    /// Telemetry aggregation shards (`0` picks the default). Never affects
    /// artifacts: the shard merge is associative and commutative, which
    /// `tests/fleet_proptests.rs` holds.
    pub shards: usize,
    /// Worst-session exemplars kept by the fleet observatory (`0` picks
    /// the default, [`uniloc_obs::fleet::EXEMPLAR_CAP`]). Shapes only the
    /// health plane's exemplar table, never the fleet report.
    pub top_k: usize,
}

/// The complete recipe for one walker. A spec (plus the shared error
/// models and base config) determines the session's records byte for byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    pub lane: u64,
    pub name: String,
    /// Scenario vocabulary name.
    pub scenario: String,
    /// Persona name from [`GaitProfile::personas`].
    pub persona: String,
    /// `nexus5x` or `lgg3`.
    pub device: String,
    /// Fault-plan name, `none` for a clean walker.
    pub plan: String,
    /// The session's root seed: `split_seed(fleet_seed, lane)`.
    pub seed: u64,
}

impl SessionSpec {
    /// The spec a checkpoint was taken from — restore rebuilds the walker
    /// from this and replays to the cursor.
    pub fn from_checkpoint(ckpt: &SessionCheckpoint) -> SessionSpec {
        SessionSpec {
            lane: ckpt.lane,
            name: ckpt.name.clone(),
            scenario: ckpt.scenario.clone(),
            persona: ckpt.persona.clone(),
            device: ckpt.device.clone(),
            plan: ckpt.plan.clone(),
            seed: ckpt.seed,
        }
    }

    /// The checkpoint naming this spec with `cursor` frames served.
    pub fn checkpoint(&self, cursor: usize) -> SessionCheckpoint {
        SessionCheckpoint {
            lane: self.lane,
            name: self.name.clone(),
            scenario: self.scenario.clone(),
            persona: self.persona.clone(),
            device: self.device.clone(),
            plan: self.plan.clone(),
            seed: self.seed,
            cursor: cursor as u64,
        }
    }
}

/// Generates the fleet's session mix: scenarios, personas, devices and
/// fault plans cycled over lanes, seeds split per lane.
///
/// # Errors
///
/// Returns the first unknown scenario name.
pub fn fleet_specs(cfg: &FleetConfig) -> Result<Vec<SessionSpec>, String> {
    for name in &cfg.scenario_names {
        scenario_by_name(name, 1)?;
    }
    if cfg.scenario_names.is_empty() {
        return Err("fleet needs at least one scenario".to_owned());
    }
    let personas = GaitProfile::personas();
    let plans = FaultPlan::smoke_library();
    let mut specs = Vec::with_capacity(cfg.sessions);
    for lane in 0..cfg.sessions as u64 {
        let scenario = cfg.scenario_names[lane as usize % cfg.scenario_names.len()].clone();
        let persona = personas[lane as usize % personas.len()].name.clone();
        let device = if lane % 2 == 0 { "nexus5x" } else { "lgg3" };
        let plan = if cfg.chaos_every > 0 && (lane as usize + 1).is_multiple_of(cfg.chaos_every) {
            plans[(lane as usize / cfg.chaos_every) % plans.len()].name.clone()
        } else {
            "none".to_owned()
        };
        specs.push(SessionSpec {
            lane,
            name: format!("s{lane:05}-{scenario}-{persona}"),
            scenario,
            persona,
            device: device.to_owned(),
            plan,
            seed: split_seed(cfg.seed, lane),
        });
    }
    Ok(specs)
}

/// The per-walker pipeline config: the shared base with the spec's persona
/// and device swapped in.
///
/// # Panics
///
/// Panics on a persona or device name outside the generator vocabulary.
pub fn spec_pipeline_config(base: &PipelineConfig, spec: &SessionSpec) -> PipelineConfig {
    let gait = GaitProfile::personas()
        .into_iter()
        .find(|g| g.name == spec.persona)
        .unwrap_or_else(|| panic!("unknown persona {}", spec.persona));
    let device = match spec.device.as_str() {
        "nexus5x" => DeviceProfile::nexus_5x(),
        "lgg3" => DeviceProfile::lg_g3(),
        other => panic!("unknown device {other}"),
    };
    PipelineConfig { gait, device, ..base.clone() }
}

/// The spec's venue, seeded with the spec's own seed — every walker gets
/// its own deterministic world.
///
/// # Panics
///
/// Panics on an unknown scenario name ([`fleet_specs`] validates them).
pub fn spec_scenario(spec: &SessionSpec) -> Scenario {
    scenario_by_name(&spec.scenario, spec.seed)
        .unwrap_or_else(|e| panic!("spec scenario vanished: {e}"))
}

/// The spec's frame stream: the walk, truncated to `max_epochs` (when
/// nonzero), then fault-injected when the spec names a plan — the same
/// chaos-seed discipline as the chaos sweep.
pub fn spec_frames(
    scenario: &Scenario,
    cfg: &PipelineConfig,
    spec: &SessionSpec,
    max_epochs: usize,
) -> Vec<SensorFrame> {
    let mut frames = pipeline::walk_frames(scenario, cfg, spec.seed);
    if max_epochs > 0 {
        frames.truncate(max_epochs);
    }
    if spec.plan == "none" {
        return frames;
    }
    let plan = FaultPlan::library()
        .into_iter()
        .find(|p| p.name == spec.plan)
        .unwrap_or_else(|| panic!("unknown fault plan {}", spec.plan));
    let chaos_seed = spec.seed
        ^ plan.name.bytes().fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
    let mut injector =
        FaultInjector::new(plan, chaos_seed).with_geo_frame(*scenario.world.geo_frame());
    injector.inject_walk(&frames)
}

/// Builds the spec's [`FleetSession`] — venue, frames and serving session,
/// all constructed under the walker's isolated observability session.
pub fn build_session(
    spec: SessionSpec,
    models: Arc<ErrorModelSet>,
    base: PipelineConfig,
    max_epochs: usize,
) -> FleetSession {
    build_session_with_obs(spec, models, base, max_epochs, false)
}

/// [`build_session`] with the walker's observability selectable: stubbed
/// sessions run the same instrument sites against sink state (the
/// obs-overhead bench's *off* half).
pub fn build_session_with_obs(
    spec: SessionSpec,
    models: Arc<ErrorModelSet>,
    base: PipelineConfig,
    max_epochs: usize,
    obs_stub: bool,
) -> FleetSession {
    let lane = spec.lane;
    let name = spec.name.clone();
    let obs = if obs_stub {
        Arc::new(ObsSession::stubbed())
    } else {
        // Full observability includes the allocation observatory: the
        // walker's timed spans attribute heap traffic into its isolated
        // registry (`alloc.*` counters), which the fleet aggregator folds
        // like any other counter.
        let mut obs = ObsSession::isolated();
        obs.alloc_tracking = true;
        Arc::new(obs)
    };
    FleetSession::build_with_obs(lane, name, obs, move || {
        let scenario = spec_scenario(&spec);
        let cfg = spec_pipeline_config(&base, &spec);
        let frames = spec_frames(&scenario, &cfg, &spec, max_epochs);
        let session = Session::new(Arc::new(scenario), &models, &cfg, spec.seed);
        (session, frames)
    })
}

/// Restores a checkpointed walker: rebuilds from the spec and silently
/// replays to the cursor, after which it records only post-checkpoint
/// epochs. Determinism makes this byte-equivalent to never having stopped.
pub fn restore_session(
    ckpt: &SessionCheckpoint,
    models: Arc<ErrorModelSet>,
    base: PipelineConfig,
    max_epochs: usize,
) -> FleetSession {
    let mut session = build_session(SessionSpec::from_checkpoint(ckpt), models, base, max_epochs);
    session.replay_to(ckpt.cursor as usize);
    session
}

/// The spec's records through the *legacy batch path*
/// ([`pipeline::run_walk_on_frames`]), for differential testing against
/// the scheduler.
pub fn solo_records(
    spec: &SessionSpec,
    models: &ErrorModelSet,
    base: &PipelineConfig,
    max_epochs: usize,
) -> Vec<EpochRecord> {
    let scenario = spec_scenario(spec);
    let cfg = spec_pipeline_config(base, spec);
    let frames = spec_frames(&scenario, &cfg, spec, max_epochs);
    pipeline::run_walk_on_frames(&scenario, models, &cfg, spec.seed, &frames)
}

/// FNV-1a 64 over arbitrary bytes — the artifact digest primitive.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of a record series: FNV-1a over the canonical JSON array.
pub fn records_digest(records: &[EpochRecord]) -> u64 {
    let doc = Json::Arr(records.iter().map(ToJson::to_json).collect()).canonical();
    fnv1a64(doc.to_string().as_bytes())
}

/// One retired walker's row in the fleet report.
pub struct SessionSummary {
    pub spec: SessionSpec,
    pub epochs: usize,
    /// [`records_digest`] of the session's records.
    pub digest: u64,
    pub mean_error: Option<f64>,
    pub nonfinite_fused: usize,
    pub quarantined: Vec<String>,
    /// Flight-recorder lines the walker's isolated obs captured
    /// (postmortems; deterministic — session clocks follow simulation
    /// time).
    pub flight_lines: usize,
}

/// The generator's complete output: the canonical report (worker-count
/// invariant) and the run's wall-clock stats (bench-only).
pub struct FleetResult {
    pub report: Json,
    pub summaries: Vec<SessionSummary>,
    pub stats: FleetRunStats,
    /// Resilience-contract violations: non-finite fused estimates, or a
    /// quarantined clean walker whose records diverge from a solo legacy
    /// replay of the same spec (the isolation-breach spot-check).
    pub violations: Vec<String>,
    /// The fleet observatory's aggregate — every retired capture folded
    /// through the sharded merge. `None` when the fleet ran obs-stubbed
    /// (stub captures are empty by design).
    pub snapshot: Option<FleetSnapshot>,
}

/// The aggregator's view of one retired walker.
fn session_meta(s: &SessionSummary) -> SessionMeta {
    SessionMeta {
        lane: s.spec.lane,
        name: s.spec.name.clone(),
        persona: s.spec.persona.clone(),
        device: s.spec.device.clone(),
        venue: s.spec.scenario.clone(),
        faulted: s.spec.plan != "none",
        epochs: s.epochs as u64,
        mean_error_m: s.mean_error,
        nonfinite: s.nonfinite_fused as u64,
        quarantined: s.quarantined.clone(),
    }
}

fn summarize(spec: SessionSpec, finished: &FinishedSession) -> SessionSummary {
    let (mean_error, _, _) = error_stats(&finished.records);
    let nonfinite_fused =
        finished.records.iter().filter_map(fused_error).filter(|e| !e.is_finite()).count();
    let mut quarantined: Vec<String> = Vec::new();
    for r in &finished.records {
        for id in &r.quarantined {
            let s = id.to_string();
            if !quarantined.contains(&s) {
                quarantined.push(s);
            }
        }
    }
    SessionSummary {
        spec,
        epochs: finished.epochs,
        digest: records_digest(&finished.records),
        mean_error,
        nonfinite_fused,
        quarantined,
        flight_lines: finished.capture.flight_lines.len(),
    }
}

/// Runs the whole fleet to completion, summarizing and dropping each
/// session's records as it retires so memory stays bounded by the
/// resident cap at any fleet size.
///
/// # Errors
///
/// Returns the first unknown scenario name.
pub fn run_fleet(
    models: &Arc<ErrorModelSet>,
    base: &PipelineConfig,
    cfg: &FleetConfig,
) -> Result<FleetResult, String> {
    let specs = fleet_specs(cfg)?;
    // The dump cap is per-run: earlier runs in this process (another fleet
    // round, a solo walk, a test) must not starve this fleet's postmortem
    // budget on the process-wide recorder.
    uniloc_obs::process_flight().rearm_dumps();
    let resident = if cfg.resident == 0 { 64 } else { cfg.resident };
    let mut scheduler = FleetScheduler::new(cfg.jobs, base.epoch_interval, resident);
    for spec in &specs {
        let (spec, models, base) = (spec.clone(), Arc::clone(models), base.clone());
        let (max_epochs, obs_stub) = (cfg.max_epochs, cfg.obs_stub);
        scheduler.admit(spec.lane, move || {
            build_session_with_obs(spec, models, base, max_epochs, obs_stub)
        });
    }
    uniloc_obs::info!(
        "fleet: {} session(s) over {} scenario(s), resident cap {resident}",
        specs.len(),
        cfg.scenario_names.len()
    );
    let mut specs = specs.into_iter();
    let mut summaries = Vec::with_capacity(cfg.sessions);
    let mut agg =
        (!cfg.obs_stub).then(|| FleetAggregator::with_exemplar_cap(cfg.shards, cfg.top_k));
    let stats = scheduler.run(|finished| {
        let spec = specs.next().expect("one spec per retired session");
        assert_eq!(spec.lane, finished.lane, "fleet retired out of lane order");
        let summary = summarize(spec, &finished);
        if let Some(agg) = agg.as_mut() {
            agg.observe(&session_meta(&summary), &finished.capture);
        }
        summaries.push(summary);
    });

    // Resilience contract. Non-finite fused estimates are always a
    // violation — the defense stack scrubs them even under faults. A
    // quarantine on a *clean* walker, though, is not by itself one:
    // harsh venues legitimately trip the quarantine machine on clean
    // data (path1's NLOS stretches quarantine cellular for some
    // personas). What would be a breach is a neighbor's fault leaking
    // in — and since every session is deterministic, a leak shows up
    // as the fleet's records diverging from a solo replay of the same
    // spec through the legacy batch path. So each suspicious walker
    // gets spot-checked against its solo digest, capped so a venue
    // where quarantine is the norm cannot stall a large fleet.
    const SPOT_CHECK_CAP: usize = 64;
    let mut violations = Vec::new();
    let mut suspicious: Vec<&SessionSummary> = Vec::new();
    for s in &summaries {
        if s.nonfinite_fused > 0 {
            violations.push(format!(
                "{}: {} non-finite fused estimate(s)",
                s.spec.name, s.nonfinite_fused
            ));
        }
        if s.spec.plan == "none" && !s.quarantined.is_empty() {
            suspicious.push(s);
        }
    }
    if suspicious.len() > SPOT_CHECK_CAP {
        uniloc_obs::info!(
            "fleet: {} quarantined clean walker(s); spot-checking the first {SPOT_CHECK_CAP}",
            suspicious.len()
        );
        suspicious.truncate(SPOT_CHECK_CAP);
    }
    for s in suspicious {
        let solo = solo_records(&s.spec, models, base, cfg.max_epochs);
        if records_digest(&solo) != s.digest {
            violations.push(format!(
                "{}: fleet records diverge from the solo legacy run \
                 (quarantined {:?} — isolation breach)",
                s.spec.name, s.quarantined
            ));
        }
    }

    let report = fleet_report(cfg, &summaries);
    let snapshot = agg.map(|a| a.snapshot());
    Ok(FleetResult { report, summaries, stats, violations, snapshot })
}

/// The obs layer's measured cost: one fleet served twice per pass — obs
/// fully on vs. [`ObsSession::stubbed`] — keeping each mode's best
/// (fastest) pass. Wall-clock only; the records are verified byte-identical
/// via the fleet digest before any throughput is compared.
pub struct ObsOverhead {
    /// Best epochs/s with isolated (full) observability.
    pub epochs_per_sec_obs: f64,
    /// Best epochs/s with stubbed observability.
    pub epochs_per_sec_stub: f64,
    /// Fractional throughput cost of the obs layer:
    /// `(stub - obs) / stub`. Negative means noise favored the obs run.
    pub overhead_frac: f64,
}

/// Measures the obs layer's throughput cost over `passes` paired runs of
/// the configured fleet (see [`ObsOverhead`]). Best-of-N per mode bounds
/// scheduler noise; both modes must serve byte-identical fleets.
///
/// # Errors
///
/// Returns scenario errors, and a hard error when the obs-on and
/// obs-stubbed runs disagree on the fleet digest — that would mean
/// observability leaked into the pipeline.
pub fn measure_obs_overhead(
    models: &Arc<ErrorModelSet>,
    base: &PipelineConfig,
    cfg: &FleetConfig,
    passes: usize,
) -> Result<ObsOverhead, String> {
    let digest_of = |report: &Json| -> String {
        report
            .get("fleet_digest")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_owned()
    };
    let eps = |stats: &FleetRunStats| -> f64 {
        let secs = stats.run_ns as f64 / 1e9;
        if secs > 0.0 { stats.epochs as f64 / secs } else { 0.0 }
    };
    let mut best_obs: f64 = 0.0;
    let mut best_stub: f64 = 0.0;
    for pass in 0..passes.max(1) {
        let on = run_fleet(models, base, &FleetConfig { obs_stub: false, ..cfg.clone() })?;
        let off = run_fleet(models, base, &FleetConfig { obs_stub: true, ..cfg.clone() })?;
        if digest_of(&on.report) != digest_of(&off.report) {
            return Err(
                "obs-stubbed fleet served different records than the obs-on fleet \
                 — observability leaked into the pipeline"
                    .to_owned(),
            );
        }
        best_obs = best_obs.max(eps(&on.stats));
        best_stub = best_stub.max(eps(&off.stats));
        uniloc_obs::info!(
            "obs-overhead pass {}/{}: obs {:.0} epochs/s, stub {:.0} epochs/s",
            pass + 1,
            passes.max(1),
            eps(&on.stats),
            eps(&off.stats)
        );
    }
    let overhead_frac =
        if best_stub > 0.0 { (best_stub - best_obs) / best_stub } else { 0.0 };
    Ok(ObsOverhead {
        epochs_per_sec_obs: best_obs,
        epochs_per_sec_stub: best_stub,
        overhead_frac,
    })
}

/// Assembles the canonical fleet report. Deliberately excludes `jobs`,
/// `resident` and all wall-clock numbers — see the module docs.
fn fleet_report(cfg: &FleetConfig, summaries: &[SessionSummary]) -> Json {
    let opt = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
    let rows: Vec<Json> = summaries
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("lane".into(), Json::Int(s.spec.lane as i64)),
                ("name".into(), Json::Str(s.spec.name.clone())),
                ("scenario".into(), Json::Str(s.spec.scenario.clone())),
                ("persona".into(), Json::Str(s.spec.persona.clone())),
                ("device".into(), Json::Str(s.spec.device.clone())),
                ("plan".into(), Json::Str(s.spec.plan.clone())),
                ("seed".into(), Json::Str(format!("{:016x}", s.spec.seed))),
                ("epochs".into(), Json::Int(s.epochs as i64)),
                ("digest".into(), Json::Str(format!("{:016x}", s.digest))),
                ("mean_error_m".into(), opt(s.mean_error)),
                ("nonfinite_fused".into(), Json::Int(s.nonfinite_fused as i64)),
                (
                    "quarantined".into(),
                    Json::Arr(s.quarantined.iter().cloned().map(Json::Str).collect()),
                ),
                ("flight_lines".into(), Json::Int(s.flight_lines as i64)),
            ])
        })
        .collect();
    // The fleet digest folds every session digest in lane order: one
    // number that two runs must share iff they served identical fleets.
    let mut fleet_digest: u64 = 0xcbf2_9ce4_8422_2325;
    for s in summaries {
        fleet_digest ^= s.digest.wrapping_add(s.spec.lane);
        fleet_digest = fleet_digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let total_epochs: usize = summaries.iter().map(|s| s.epochs).sum();
    let faulted = summaries.iter().filter(|s| s.spec.plan != "none").count();
    let quarantined_sessions = summaries.iter().filter(|s| !s.quarantined.is_empty()).count();
    Json::Obj(vec![
        ("fleet".into(), Json::Str("uniloc-fleet".into())),
        ("seed".into(), Json::Int(cfg.seed as i64)),
        ("sessions".into(), Json::Int(summaries.len() as i64)),
        (
            "scenarios".into(),
            Json::Arr(cfg.scenario_names.iter().cloned().map(Json::Str).collect()),
        ),
        ("max_epochs".into(), Json::Int(cfg.max_epochs as i64)),
        ("chaos_every".into(), Json::Int(cfg.chaos_every as i64)),
        ("total_epochs".into(), Json::Int(total_epochs as i64)),
        ("faulted_sessions".into(), Json::Int(faulted as i64)),
        ("quarantined_sessions".into(), Json::Int(quarantined_sessions as i64)),
        ("fleet_digest".into(), Json::Str(format!("{fleet_digest:016x}"))),
        ("rows".into(), Json::Arr(rows)),
    ])
    .canonical()
}

/// Writes `BENCH_fleet.json` in the `bench-diff` gate's shape: the
/// scheduler's wall-clock histograms as stages (`fleet.epoch`,
/// `fleet.round`, `fleet.run`) plus throughput headline keys (which the
/// gate's parser ignores).
///
/// # Errors
///
/// Propagates the write error.
pub fn write_fleet_bench(stats: &FleetRunStats) -> std::io::Result<Option<String>> {
    let reg = uniloc_obs::MetricsRegistry::new();
    let epoch = reg.histogram("fleet.epoch", uniloc_obs::DURATION_BUCKETS_NS);
    for &ns in &stats.epoch_ns {
        epoch.record_ns(ns);
    }
    let round = reg.histogram("fleet.round", uniloc_obs::DURATION_BUCKETS_NS);
    for &ns in &stats.round_ns {
        round.record_ns(ns);
    }
    let run = reg.histogram("fleet.run", uniloc_obs::DURATION_BUCKETS_NS);
    run.record_ns(stats.run_ns);

    let mut stages = Vec::new();
    let mut p99_epoch_ns = None;
    for (name, h) in [("fleet.epoch", &epoch), ("fleet.round", &round), ("fleet.run", &run)] {
        let snap = h.snapshot();
        let Some((p50, p90, p99)) = snap.summary() else { continue };
        if name == "fleet.epoch" {
            p99_epoch_ns = Some(p99);
        }
        stages.push((
            name.to_owned(),
            Json::Obj(vec![
                ("count".to_owned(), snap.count().to_json()),
                ("mean_ns".to_owned(), snap.mean().to_json()),
                ("p50_ns".to_owned(), p50.to_json()),
                ("p90_ns".to_owned(), p90.to_json()),
                ("p99_ns".to_owned(), p99.to_json()),
                ("sum_ns".to_owned(), snap.sum.to_json()),
            ]),
        ));
    }
    if stages.is_empty() {
        return Ok(None);
    }
    let secs = stats.run_ns as f64 / 1e9;
    let doc = Json::Obj(vec![
        ("bench".to_owned(), Json::Str("fleet".to_owned())),
        ("stages".to_owned(), Json::Obj(stages)),
        ("sessions".to_owned(), Json::Int(stats.sessions as i64)),
        ("epochs".to_owned(), Json::Int(stats.epochs as i64)),
        ("rounds".to_owned(), Json::Int(stats.rounds as i64)),
        (
            "epochs_per_sec".to_owned(),
            if secs > 0.0 { Json::Num(stats.epochs as f64 / secs) } else { Json::Null },
        ),
        (
            "sessions_per_sec".to_owned(),
            if secs > 0.0 { Json::Num(stats.sessions as f64 / secs) } else { Json::Null },
        ),
        (
            "p99_epoch_ms".to_owned(),
            p99_epoch_ns.map_or(Json::Null, |ns| Json::Num(ns / 1e6)),
        ),
    ]);
    let dir = if std::path::Path::new("results").is_dir() { "results" } else { "." };
    let path = format!("{dir}/BENCH_fleet.json");
    std::fs::write(&path, doc.canonical().to_string_pretty())?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(sessions: usize) -> FleetConfig {
        FleetConfig {
            seed: 7,
            sessions,
            scenario_names: vec!["office".to_owned(), "open-space".to_owned()],
            jobs: 2,
            resident: 4,
            max_epochs: 20,
            chaos_every: 8,
            obs_stub: false,
            shards: 0,
            top_k: 0,
        }
    }

    #[test]
    fn specs_mix_personas_devices_and_plans() {
        let specs = fleet_specs(&cfg(16)).unwrap();
        assert_eq!(specs.len(), 16);
        // Lane seeds are split — all distinct.
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16);
        // Both devices, several personas, both scenarios appear.
        assert!(specs.iter().any(|s| s.device == "nexus5x"));
        assert!(specs.iter().any(|s| s.device == "lgg3"));
        assert!(specs.iter().any(|s| s.scenario == "office"));
        assert!(specs.iter().any(|s| s.scenario == "open-space"));
        // chaos_every = 8 faults lanes 7 and 15.
        let faulted: Vec<u64> =
            specs.iter().filter(|s| s.plan != "none").map(|s| s.lane).collect();
        assert_eq!(faulted, vec![7, 15]);
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        let mut c = cfg(4);
        c.scenario_names = vec!["mars".to_owned()];
        assert!(fleet_specs(&c).unwrap_err().contains("mars"));
    }

    #[test]
    fn checkpoint_spec_round_trip() {
        let spec = fleet_specs(&cfg(8)).unwrap().swap_remove(7);
        let ckpt = spec.checkpoint(13);
        assert_eq!(ckpt.cursor, 13);
        assert_eq!(SessionSpec::from_checkpoint(&ckpt), spec);
    }

    #[test]
    fn fnv_digest_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
