//! The fleet load generator: thousands of seeded walkers — mixed personas,
//! devices, venues and fault plans — served by one deterministic
//! [`FleetScheduler`], shared by `uniloc fleet` and the differential test
//! suite.
//!
//! Every walker is fully determined by its [`SessionSpec`], whose seed is
//! `split_seed(fleet_seed, lane)` — disjoint per-lane streams
//! (property-tested in `tests/fleet_properties.rs`). The generator's
//! artifacts echo the spec mix and a per-session FNV-1a digest of the
//! canonical epoch records, so a one-line `diff` proves two runs served
//! byte-identical fleets. The report deliberately excludes `jobs`,
//! `resident` and every wall-clock number: it must be byte-identical at
//! any worker count, resident cap and machine speed (held by
//! `tests/fleet_differential.rs` and the CI fleet smoke).
//!
//! Throughput (epochs/sec, sessions/sec, p99 epoch latency) goes to
//! `BENCH_fleet.json` instead, in the `bench-diff` gate's stage shape.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::chaos::{error_stats, fused_error, scenario_by_name};
use uniloc_core::error_model::ErrorModelSet;
use uniloc_core::fleet::{
    check_checkpoint_version, CheckpointError, FinishedSession, FleetEvent, FleetRunStats,
    FleetScheduler, FleetSession, RunControl, SessionCheckpoint, SupervisionPolicy,
    CHECKPOINT_VERSION,
};
use uniloc_core::pipeline::{self, EpochRecord, PipelineConfig};
use uniloc_core::session::Session;
use uniloc_env::{GaitProfile, Scenario};
use uniloc_faults::{FaultInjector, FaultPlan};
use uniloc_obs::fleet::{FleetAggregator, FleetSnapshot, SessionMeta};
use uniloc_obs::ObsSession;
use uniloc_rng::split_seed;
use uniloc_sensors::{DeviceProfile, SensorFrame};
use uniloc_stats::json::{field, FromJson, Json, JsonError, ToJson};

/// Load-generator parameters. Everything that shapes the fleet's *output*
/// lives here except `jobs`/`resident`, which only shape its execution.
#[derive(Clone)]
pub struct FleetConfig {
    /// Root seed; lane seeds derive via [`split_seed`].
    pub seed: u64,
    /// Walkers to admit.
    pub sessions: usize,
    /// Scenario vocabulary names cycled across lanes
    /// ([`scenario_by_name`]).
    pub scenario_names: Vec<String>,
    /// Worker threads for the scheduler (`<= 1` runs inline). Never
    /// affects artifacts.
    pub jobs: usize,
    /// Maximum sessions live at once; bounds memory, never affects
    /// artifacts. `0` picks a default.
    pub resident: usize,
    /// Truncates each walk to this many epochs; `0` keeps full walks.
    pub max_epochs: usize,
    /// Every `chaos_every`-th lane walks under a fault plan (cycling the
    /// smoke library); `0` keeps the whole fleet clean.
    pub chaos_every: usize,
    /// Serve every walker under a stubbed [`ObsSession`] (the *obs off*
    /// half of the obs-overhead bench). Records are byte-identical either
    /// way — observability never feeds the pipeline — but captures come
    /// back empty, so no fleet snapshot is aggregated.
    pub obs_stub: bool,
    /// Telemetry aggregation shards (`0` picks the default). Never affects
    /// artifacts: the shard merge is associative and commutative, which
    /// `tests/fleet_proptests.rs` holds.
    pub shards: usize,
    /// Worst-session exemplars kept by the fleet observatory (`0` picks
    /// the default, [`uniloc_obs::fleet::EXEMPLAR_CAP`]). Shapes only the
    /// health plane's exemplar table, never the fleet report.
    pub top_k: usize,
    /// Arms a process-level fault on this lane: its walker panics at
    /// epoch [`FleetConfig::panic_epoch`] (plan `panic_at_epoch_<E>`),
    /// exercising the supervisor's strike/poison path. `None` keeps the
    /// fleet panic-free.
    pub panic_lane: Option<u64>,
    /// The epoch [`FleetConfig::panic_lane`] panics at.
    pub panic_epoch: u64,
}

/// The complete recipe for one walker. A spec (plus the shared error
/// models and base config) determines the session's records byte for byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    pub lane: u64,
    pub name: String,
    /// Scenario vocabulary name.
    pub scenario: String,
    /// Persona name from [`GaitProfile::personas`].
    pub persona: String,
    /// `nexus5x` or `lgg3`.
    pub device: String,
    /// Fault-plan name, `none` for a clean walker.
    pub plan: String,
    /// The session's root seed: `split_seed(fleet_seed, lane)`.
    pub seed: u64,
}

impl SessionSpec {
    /// The spec a checkpoint was taken from — restore rebuilds the walker
    /// from this and replays to the cursor.
    pub fn from_checkpoint(ckpt: &SessionCheckpoint) -> SessionSpec {
        SessionSpec {
            lane: ckpt.lane,
            name: ckpt.name.clone(),
            scenario: ckpt.scenario.clone(),
            persona: ckpt.persona.clone(),
            device: ckpt.device.clone(),
            plan: ckpt.plan.clone(),
            seed: ckpt.seed,
        }
    }

    /// The checkpoint naming this spec with `cursor` frames served.
    pub fn checkpoint(&self, cursor: usize) -> SessionCheckpoint {
        SessionCheckpoint {
            version: CHECKPOINT_VERSION,
            lane: self.lane,
            name: self.name.clone(),
            scenario: self.scenario.clone(),
            persona: self.persona.clone(),
            device: self.device.clone(),
            plan: self.plan.clone(),
            seed: self.seed,
            cursor: cursor as u64,
        }
    }
}

/// Generates the fleet's session mix: scenarios, personas, devices and
/// fault plans cycled over lanes, seeds split per lane.
///
/// # Errors
///
/// Returns the first unknown scenario name.
pub fn fleet_specs(cfg: &FleetConfig) -> Result<Vec<SessionSpec>, String> {
    for name in &cfg.scenario_names {
        scenario_by_name(name, 1)?;
    }
    if cfg.scenario_names.is_empty() {
        return Err("fleet needs at least one scenario".to_owned());
    }
    let personas = GaitProfile::personas();
    let plans = FaultPlan::smoke_library();
    let mut specs = Vec::with_capacity(cfg.sessions);
    for lane in 0..cfg.sessions as u64 {
        let scenario = cfg.scenario_names[lane as usize % cfg.scenario_names.len()].clone();
        let persona = personas[lane as usize % personas.len()].name.clone();
        let device = if lane % 2 == 0 { "nexus5x" } else { "lgg3" };
        let plan = if cfg.panic_lane == Some(lane) {
            // The process-fault lane: sensor chaos never stacks on top, so
            // the panicking walker's frame stream (and hence its partial
            // records at poison time) stays byte-deterministic.
            FaultPlan::panic_at_epoch(cfg.panic_epoch).name
        } else if cfg.chaos_every > 0 && (lane as usize + 1).is_multiple_of(cfg.chaos_every) {
            plans[(lane as usize / cfg.chaos_every) % plans.len()].name.clone()
        } else {
            "none".to_owned()
        };
        specs.push(SessionSpec {
            lane,
            name: format!("s{lane:05}-{scenario}-{persona}"),
            scenario,
            persona,
            device: device.to_owned(),
            plan,
            seed: split_seed(cfg.seed, lane),
        });
    }
    Ok(specs)
}

/// The per-walker pipeline config: the shared base with the spec's persona
/// and device swapped in.
///
/// # Panics
///
/// Panics on a persona or device name outside the generator vocabulary.
pub fn spec_pipeline_config(base: &PipelineConfig, spec: &SessionSpec) -> PipelineConfig {
    let gait = GaitProfile::personas()
        .into_iter()
        .find(|g| g.name == spec.persona)
        .unwrap_or_else(|| panic!("unknown persona {}", spec.persona));
    let device = match spec.device.as_str() {
        "nexus5x" => DeviceProfile::nexus_5x(),
        "lgg3" => DeviceProfile::lg_g3(),
        other => panic!("unknown device {other}"),
    };
    PipelineConfig { gait, device, ..base.clone() }
}

/// The spec's venue, seeded with the spec's own seed — every walker gets
/// its own deterministic world.
///
/// # Panics
///
/// Panics on an unknown scenario name ([`fleet_specs`] validates them).
pub fn spec_scenario(spec: &SessionSpec) -> Scenario {
    scenario_by_name(&spec.scenario, spec.seed)
        .unwrap_or_else(|e| panic!("spec scenario vanished: {e}"))
}

/// The spec's frame stream: the walk, truncated to `max_epochs` (when
/// nonzero), then fault-injected when the spec names a plan — the same
/// chaos-seed discipline as the chaos sweep.
pub fn spec_frames(
    scenario: &Scenario,
    cfg: &PipelineConfig,
    spec: &SessionSpec,
    max_epochs: usize,
) -> Vec<SensorFrame> {
    let mut frames = pipeline::walk_frames(scenario, cfg, spec.seed);
    if max_epochs > 0 {
        frames.truncate(max_epochs);
    }
    if spec.plan == "none" {
        return frames;
    }
    let plan = FaultPlan::by_name(&spec.plan)
        .unwrap_or_else(|| panic!("unknown fault plan {}", spec.plan));
    let chaos_seed = spec.seed
        ^ plan.name.bytes().fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
    let mut injector =
        FaultInjector::new(plan, chaos_seed).with_geo_frame(*scenario.world.geo_frame());
    injector.inject_walk(&frames)
}

/// Builds the spec's [`FleetSession`] — venue, frames and serving session,
/// all constructed under the walker's isolated observability session.
pub fn build_session(
    spec: SessionSpec,
    models: Arc<ErrorModelSet>,
    base: PipelineConfig,
    max_epochs: usize,
) -> FleetSession {
    build_session_with_obs(spec, models, base, max_epochs, false)
}

/// [`build_session`] with the walker's observability selectable: stubbed
/// sessions run the same instrument sites against sink state (the
/// obs-overhead bench's *off* half).
pub fn build_session_with_obs(
    spec: SessionSpec,
    models: Arc<ErrorModelSet>,
    base: PipelineConfig,
    max_epochs: usize,
    obs_stub: bool,
) -> FleetSession {
    let lane = spec.lane;
    let name = spec.name.clone();
    let panic_epoch = FaultPlan::by_name(&spec.plan).and_then(|p| p.panic_epoch());
    let obs = if obs_stub {
        Arc::new(ObsSession::stubbed())
    } else {
        // Full observability includes the allocation observatory: the
        // walker's timed spans attribute heap traffic into its isolated
        // registry (`alloc.*` counters), which the fleet aggregator folds
        // like any other counter.
        let mut obs = ObsSession::isolated();
        obs.alloc_tracking = true;
        Arc::new(obs)
    };
    let mut fleet_session = FleetSession::build_with_obs(lane, name, obs, move || {
        let scenario = spec_scenario(&spec);
        let cfg = spec_pipeline_config(&base, &spec);
        let frames = spec_frames(&scenario, &cfg, &spec, max_epochs);
        let session = Session::new(Arc::new(scenario), &models, &cfg, spec.seed);
        (session, frames)
    });
    fleet_session.set_panic_at_epoch(panic_epoch);
    fleet_session
}

/// Restores a checkpointed walker: rebuilds from the spec and silently
/// replays to the cursor, after which it records only post-checkpoint
/// epochs. Determinism makes this byte-equivalent to never having stopped.
pub fn restore_session(
    ckpt: &SessionCheckpoint,
    models: Arc<ErrorModelSet>,
    base: PipelineConfig,
    max_epochs: usize,
) -> FleetSession {
    let mut session = build_session(SessionSpec::from_checkpoint(ckpt), models, base, max_epochs);
    session.replay_to(ckpt.cursor as usize);
    session
}

/// The spec's records through the *legacy batch path*
/// ([`pipeline::run_walk_on_frames`]), for differential testing against
/// the scheduler.
pub fn solo_records(
    spec: &SessionSpec,
    models: &ErrorModelSet,
    base: &PipelineConfig,
    max_epochs: usize,
) -> Vec<EpochRecord> {
    let scenario = spec_scenario(spec);
    let cfg = spec_pipeline_config(base, spec);
    let frames = spec_frames(&scenario, &cfg, spec, max_epochs);
    pipeline::run_walk_on_frames(&scenario, models, &cfg, spec.seed, &frames)
}

/// FNV-1a 64 over arbitrary bytes — the artifact digest primitive.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of a record series: FNV-1a over the canonical JSON array.
pub fn records_digest(records: &[EpochRecord]) -> u64 {
    let doc = Json::Arr(records.iter().map(ToJson::to_json).collect()).canonical();
    fnv1a64(doc.to_string().as_bytes())
}

/// One retired walker's row in the fleet report. Round-trips through JSON
/// exactly (the checkpoint-resident form for already-retired walkers).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSummary {
    pub spec: SessionSpec,
    pub epochs: usize,
    /// [`records_digest`] of the session's records.
    pub digest: u64,
    pub mean_error: Option<f64>,
    pub nonfinite_fused: usize,
    pub quarantined: Vec<String>,
    /// Flight-recorder lines the walker's isolated obs captured
    /// (postmortems; deterministic — session clocks follow simulation
    /// time).
    pub flight_lines: usize,
    /// `Some(failure)` when the supervisor poisoned the walker after it
    /// exhausted its panic strikes; the row then summarizes the partial
    /// records served before the first panic.
    pub poisoned: Option<String>,
}

/// The generator's complete output: the canonical report (worker-count
/// invariant) and the run's wall-clock stats (bench-only).
pub struct FleetResult {
    pub report: Json,
    pub summaries: Vec<SessionSummary>,
    pub stats: FleetRunStats,
    /// Resilience-contract violations: non-finite fused estimates, or a
    /// quarantined clean walker whose records diverge from a solo legacy
    /// replay of the same spec (the isolation-breach spot-check).
    pub violations: Vec<String>,
    /// The fleet observatory's aggregate — every retired capture folded
    /// through the sharded merge. `None` when the fleet ran obs-stubbed
    /// (stub captures are empty by design).
    pub snapshot: Option<FleetSnapshot>,
}

/// The aggregator's view of one retired walker.
fn session_meta(s: &SessionSummary) -> SessionMeta {
    SessionMeta {
        lane: s.spec.lane,
        name: s.spec.name.clone(),
        persona: s.spec.persona.clone(),
        device: s.spec.device.clone(),
        venue: s.spec.scenario.clone(),
        faulted: s.spec.plan != "none",
        epochs: s.epochs as u64,
        mean_error_m: s.mean_error,
        nonfinite: s.nonfinite_fused as u64,
        quarantined: s.quarantined.clone(),
    }
}

fn summarize(spec: SessionSpec, finished: &FinishedSession) -> SessionSummary {
    let (mean_error, _, _) = error_stats(&finished.records);
    let nonfinite_fused =
        finished.records.iter().filter_map(fused_error).filter(|e| !e.is_finite()).count();
    let mut quarantined: Vec<String> = Vec::new();
    for r in &finished.records {
        for id in &r.quarantined {
            let s = id.to_string();
            if !quarantined.contains(&s) {
                quarantined.push(s);
            }
        }
    }
    SessionSummary {
        spec,
        epochs: finished.epochs,
        digest: records_digest(&finished.records),
        mean_error,
        nonfinite_fused,
        quarantined,
        flight_lines: finished.capture.flight_lines.len(),
        poisoned: finished.poisoned.as_ref().map(std::string::ToString::to_string),
    }
}

impl ToJson for SessionSummary {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("lane".into(), Json::Int(self.spec.lane as i64)),
            ("name".into(), Json::Str(self.spec.name.clone())),
            ("scenario".into(), Json::Str(self.spec.scenario.clone())),
            ("persona".into(), Json::Str(self.spec.persona.clone())),
            ("device".into(), Json::Str(self.spec.device.clone())),
            ("plan".into(), Json::Str(self.spec.plan.clone())),
            ("seed".into(), Json::Str(format!("{:016x}", self.spec.seed))),
            ("epochs".into(), Json::Int(self.epochs as i64)),
            ("digest".into(), Json::Str(format!("{:016x}", self.digest))),
            ("mean_error_m".into(), self.mean_error.map_or(Json::Null, Json::Num)),
            ("nonfinite_fused".into(), Json::Int(self.nonfinite_fused as i64)),
            (
                "quarantined".into(),
                Json::Arr(self.quarantined.iter().cloned().map(Json::Str).collect()),
            ),
            ("flight_lines".into(), Json::Int(self.flight_lines as i64)),
            (
                "poisoned".into(),
                self.poisoned.as_ref().map_or(Json::Null, |p| Json::Str(p.clone())),
            ),
        ])
    }
}

fn hex_field(json: &Json, name: &str) -> Result<u64, JsonError> {
    let s: String = field(json, name)?;
    u64::from_str_radix(&s, 16).map_err(|e| JsonError::new(format!("field `{name}` `{s}`: {e}")))
}

fn string_list(json: &Json, name: &str) -> Result<Vec<String>, JsonError> {
    let items: Vec<Json> = field(json, name)?;
    items
        .iter()
        .map(String::from_json)
        .collect::<Result<_, _>>()
        .map_err(|e| JsonError::new(format!("field `{name}`: {e}")))
}

/// A nullable field: `Null` (or an absent key) parses as `None`.
fn opt_field<T: FromJson>(json: &Json, name: &str) -> Result<Option<T>, JsonError> {
    match json.get(name) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => T::from_json(v)
            .map(Some)
            .map_err(|e| JsonError::new(format!("field `{name}`: {e}"))),
    }
}

impl FromJson for SessionSummary {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(SessionSummary {
            spec: SessionSpec {
                lane: field::<u64>(json, "lane")?,
                name: field(json, "name")?,
                scenario: field(json, "scenario")?,
                persona: field(json, "persona")?,
                device: field(json, "device")?,
                plan: field(json, "plan")?,
                seed: hex_field(json, "seed")?,
            },
            epochs: field(json, "epochs")?,
            digest: hex_field(json, "digest")?,
            mean_error: opt_field(json, "mean_error_m")?,
            nonfinite_fused: field(json, "nonfinite_fused")?,
            quarantined: string_list(json, "quarantined")?,
            flight_lines: field(json, "flight_lines")?,
            poisoned: opt_field(json, "poisoned")?,
        })
    }
}

/// One resident (not yet retired) walker in a [`FleetCheckpoint`]: its
/// recipe + cursor, plus the supervision state the scheduler carries for
/// it (strikes accrued, backoff rounds still to serve).
#[derive(Debug, Clone, PartialEq)]
pub struct ResidentEntry {
    pub checkpoint: SessionCheckpoint,
    pub strikes: u32,
    pub backoff_rounds: u64,
}

impl ToJson for ResidentEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("checkpoint".into(), self.checkpoint.to_json()),
            ("strikes".into(), self.strikes.to_json()),
            ("backoff_rounds".into(), self.backoff_rounds.to_json()),
        ])
    }
}

impl FromJson for ResidentEntry {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(ResidentEntry {
            checkpoint: field(json, "checkpoint")?,
            strikes: field(json, "strikes")?,
            backoff_rounds: field(json, "backoff_rounds")?,
        })
    }
}

/// The durable whole-fleet checkpoint: everything `uniloc fleet --resume`
/// needs to reproduce an uninterrupted run's artifacts byte for byte.
///
/// The fleet is deterministic, so — like [`SessionCheckpoint`] — this is a
/// *recipe*, not a state dump: the config echo pins the spec mix, each
/// resident walker carries its recipe + cursor (its RNG streams are pure
/// functions of the seed, so replay restores every stream position), and
/// the already-retired rows plus the aggregate snapshot carry everything
/// the dropped sessions contributed. Jobs and resident cap are deliberately
/// absent: they never shape artifacts, so a resume may change them.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]); restore rejects others.
    pub version: u64,
    /// Config echo — resume validates these against its own [`FleetConfig`].
    pub seed: u64,
    pub sessions: usize,
    pub scenario_names: Vec<String>,
    pub max_epochs: usize,
    pub chaos_every: usize,
    pub obs_stub: bool,
    pub shards: usize,
    pub top_k: usize,
    pub panic_lane: Option<u64>,
    pub panic_epoch: u64,
    /// Scheduler rounds completed when the checkpoint was cut (the
    /// scheduler cursor; diagnostics only — resume re-derives scheduling
    /// from the restored session states).
    pub round: u64,
    /// Every retired walker's row — flushed or still buffered for
    /// lane-order flushing — sorted by lane.
    pub retired: Vec<SessionSummary>,
    /// Every walker still being served, sorted by lane.
    pub resident: Vec<ResidentEntry>,
    /// The fleet observatory aggregate over exactly the `retired` rows
    /// (`None` for an obs-stubbed fleet).
    pub snapshot: Option<FleetSnapshot>,
}

impl ToJson for FleetCheckpoint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::Int(self.version as i64)),
            ("seed".into(), Json::Str(format!("{:016x}", self.seed))),
            ("sessions".into(), self.sessions.to_json()),
            (
                "scenarios".into(),
                Json::Arr(self.scenario_names.iter().cloned().map(Json::Str).collect()),
            ),
            ("max_epochs".into(), self.max_epochs.to_json()),
            ("chaos_every".into(), self.chaos_every.to_json()),
            ("obs_stub".into(), Json::Bool(self.obs_stub)),
            ("shards".into(), self.shards.to_json()),
            ("top_k".into(), self.top_k.to_json()),
            ("panic_lane".into(), self.panic_lane.map_or(Json::Null, |l| l.to_json())),
            ("panic_epoch".into(), self.panic_epoch.to_json()),
            ("round".into(), self.round.to_json()),
            ("retired".into(), Json::Arr(self.retired.iter().map(ToJson::to_json).collect())),
            ("resident".into(), Json::Arr(self.resident.iter().map(ToJson::to_json).collect())),
            ("snapshot".into(), self.snapshot.as_ref().map_or(Json::Null, ToJson::to_json)),
        ])
    }
}

impl FromJson for FleetCheckpoint {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let retired: Vec<Json> = field(json, "retired")?;
        let resident: Vec<Json> = field(json, "resident")?;
        Ok(FleetCheckpoint {
            version: field::<u64>(json, "version")?,
            seed: hex_field(json, "seed")?,
            sessions: field(json, "sessions")?,
            scenario_names: string_list(json, "scenarios")?,
            max_epochs: field(json, "max_epochs")?,
            chaos_every: field(json, "chaos_every")?,
            obs_stub: field(json, "obs_stub")?,
            shards: field(json, "shards")?,
            top_k: field(json, "top_k")?,
            panic_lane: opt_field(json, "panic_lane")?,
            panic_epoch: field(json, "panic_epoch")?,
            round: field(json, "round")?,
            retired: retired
                .iter()
                .map(SessionSummary::from_json)
                .collect::<Result<_, _>>()
                .map_err(|e| JsonError::new(format!("field `retired`: {e}")))?,
            resident: resident
                .iter()
                .map(ResidentEntry::from_json)
                .collect::<Result<_, _>>()
                .map_err(|e| JsonError::new(format!("field `resident`: {e}")))?,
            snapshot: opt_field(json, "snapshot")?,
        })
    }
}

impl FleetCheckpoint {
    /// Parses and *validates* a fleet checkpoint document, rejecting
    /// foreign format versions — the typed restore entry point.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::VersionMismatch`] on a foreign version,
    /// [`CheckpointError::Malformed`] on any other parse failure.
    pub fn restore(json: &Json) -> Result<FleetCheckpoint, CheckpointError> {
        check_checkpoint_version(json)?;
        let ckpt: FleetCheckpoint =
            FromJson::from_json(json).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        // The nested per-walker checkpoints share the document's format:
        // a resident entry under a different version means a tampered or
        // spliced document, not merely a stale one — reject it the same
        // typed way.
        for entry in &ckpt.resident {
            if entry.checkpoint.version != CHECKPOINT_VERSION {
                return Err(CheckpointError::VersionMismatch {
                    found: entry.checkpoint.version,
                    expected: CHECKPOINT_VERSION,
                });
            }
        }
        Ok(ckpt)
    }

    /// Validates that `cfg` regenerates the fleet this checkpoint was cut
    /// from — every artifact-shaping knob must match (jobs and resident
    /// cap are execution-only and free to change).
    ///
    /// # Errors
    ///
    /// Names the first mismatched knob.
    pub fn check_config(&self, cfg: &FleetConfig) -> Result<(), String> {
        let mismatch = |knob: &str, ckpt: String, now: String| -> Result<(), String> {
            Err(format!(
                "checkpoint was cut from a different fleet: {knob} was {ckpt}, resume asks {now}"
            ))
        };
        if self.seed != cfg.seed {
            return mismatch("seed", self.seed.to_string(), cfg.seed.to_string());
        }
        if self.sessions != cfg.sessions {
            return mismatch("sessions", self.sessions.to_string(), cfg.sessions.to_string());
        }
        if self.scenario_names != cfg.scenario_names {
            return mismatch(
                "scenarios",
                self.scenario_names.join(","),
                cfg.scenario_names.join(","),
            );
        }
        if self.max_epochs != cfg.max_epochs {
            return mismatch("max_epochs", self.max_epochs.to_string(), cfg.max_epochs.to_string());
        }
        if self.chaos_every != cfg.chaos_every {
            return mismatch(
                "chaos_every",
                self.chaos_every.to_string(),
                cfg.chaos_every.to_string(),
            );
        }
        if self.obs_stub != cfg.obs_stub {
            return mismatch("obs_stub", self.obs_stub.to_string(), cfg.obs_stub.to_string());
        }
        if self.shards != cfg.shards {
            return mismatch("shards", self.shards.to_string(), cfg.shards.to_string());
        }
        if self.top_k != cfg.top_k {
            return mismatch("top_k", self.top_k.to_string(), cfg.top_k.to_string());
        }
        if self.panic_lane != cfg.panic_lane {
            return mismatch(
                "panic_lane",
                format!("{:?}", self.panic_lane),
                format!("{:?}", cfg.panic_lane),
            );
        }
        if self.panic_epoch != cfg.panic_epoch {
            return mismatch(
                "panic_epoch",
                self.panic_epoch.to_string(),
                cfg.panic_epoch.to_string(),
            );
        }
        Ok(())
    }
}

/// Writes a JSON document durably: canonical bytes to a same-directory
/// temp file, fsync'd, then atomically renamed over `path` — a crash
/// mid-write leaves either the old checkpoint or the new one, never a
/// torn file.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn atomic_write_json(path: &str, doc: &Json) -> std::io::Result<()> {
    use std::io::Write;
    let tmp = format!("{path}.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(doc.canonical().to_string_pretty().as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Loads and validates a [`FleetCheckpoint`] written by
/// [`atomic_write_json`].
///
/// # Errors
///
/// Describes the read, parse, or version failure.
pub fn load_fleet_checkpoint(path: &str) -> Result<FleetCheckpoint, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read checkpoint {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("parse checkpoint {path}: {e}"))?;
    FleetCheckpoint::restore(&json).map_err(|e| format!("restore checkpoint {path}: {e}"))
}

/// Durability knobs for [`run_fleet_durable`]. The default runs exactly
/// like [`run_fleet`]: no checkpoints, no simulated crash, default
/// supervision.
#[derive(Debug, Clone, Default)]
pub struct FleetRunOptions {
    /// Cut a [`FleetCheckpoint`] every N scheduler rounds (`0` = never;
    /// requires `checkpoint_path`).
    pub checkpoint_every: u64,
    /// Where checkpoints land (atomically replaced at each cut).
    pub checkpoint_path: Option<String>,
    /// Resume from this checkpoint instead of starting fresh.
    pub resume_from: Option<FleetCheckpoint>,
    /// Simulated process crash: abandon the run after this many rounds
    /// (the crash-injection harness's kill switch).
    pub crash_after_rounds: Option<u64>,
    /// Panic supervision policy (strikes and retry backoff).
    pub policy: SupervisionPolicy,
}

/// What [`run_fleet_durable`] produced.
pub enum FleetOutcome {
    /// The fleet ran to completion.
    Completed(Box<FleetResult>),
    /// The simulated crash cut the run short after `rounds` rounds; the
    /// last checkpoint on disk (if any) is the resume point.
    Crashed { rounds: u64 },
}

/// Runs the whole fleet to completion, summarizing and dropping each
/// session's records as it retires so memory stays bounded by the
/// resident cap at any fleet size.
///
/// # Errors
///
/// Returns the first unknown scenario name.
pub fn run_fleet(
    models: &Arc<ErrorModelSet>,
    base: &PipelineConfig,
    cfg: &FleetConfig,
) -> Result<FleetResult, String> {
    match run_fleet_durable(models, base, cfg, FleetRunOptions::default())? {
        FleetOutcome::Completed(result) => Ok(*result),
        FleetOutcome::Crashed { .. } => unreachable!("no crash scheduled"),
    }
}

/// [`run_fleet`] with the crash-safety machinery exposed: periodic
/// durable checkpoints, resume, and the simulated-crash kill switch. A
/// resumed run's `FLEET.json` / `FLEET_HEALTH.json` / profiler artifacts
/// are byte-identical to an uninterrupted run's — the crash-recovery
/// differential suite (`tests/fleet_crash_recovery.rs`) and the CI smoke
/// hold that.
///
/// # Errors
///
/// Returns unknown scenario names, a resume config mismatch
/// ([`FleetCheckpoint::check_config`]), and checkpoint write failures.
pub fn run_fleet_durable(
    models: &Arc<ErrorModelSet>,
    base: &PipelineConfig,
    cfg: &FleetConfig,
    opts: FleetRunOptions,
) -> Result<FleetOutcome, String> {
    let specs = fleet_specs(cfg)?;
    if let Some(ckpt) = &opts.resume_from {
        ckpt.check_config(cfg)?;
    }
    if opts.checkpoint_every > 0 && opts.checkpoint_path.is_none() {
        return Err("checkpoint cadence set but no checkpoint path".to_owned());
    }
    // The dump cap is per-run: earlier runs in this process (another fleet
    // round, a solo walk, a test) must not starve this fleet's postmortem
    // budget on the process-wide recorder. (Session postmortems budget on
    // each walker's own isolated recorder, so this cannot perturb
    // resume byte-identity.)
    uniloc_obs::process_flight().rearm_dumps();
    let resident_cap = if cfg.resident == 0 { 64 } else { cfg.resident };
    let mut scheduler = FleetScheduler::new(cfg.jobs, base.epoch_interval, resident_cap);

    // Resume state: rows already retired (they skip admission entirely),
    // the aggregate those rows folded into, and the supervision + cursor
    // state of every walker that was still being served at the cut.
    let (mut summaries, base_snap, mut restored) = match opts.resume_from {
        Some(ckpt) => {
            let restored: BTreeMap<u64, ResidentEntry> =
                ckpt.resident.into_iter().map(|r| (r.checkpoint.lane, r)).collect();
            (ckpt.retired, ckpt.snapshot, restored)
        }
        None => (Vec::with_capacity(cfg.sessions), None, BTreeMap::new()),
    };
    let retired_lanes: std::collections::BTreeSet<u64> =
        summaries.iter().map(|s| s.spec.lane).collect();
    let spec_by_lane: BTreeMap<u64, SessionSpec> =
        specs.iter().map(|s| (s.lane, s.clone())).collect();

    let mut admitted = 0usize;
    for spec in &specs {
        if retired_lanes.contains(&spec.lane) {
            continue;
        }
        admitted += 1;
        let (spec, models, base) = (spec.clone(), Arc::clone(models), base.clone());
        let (max_epochs, obs_stub) = (cfg.max_epochs, cfg.obs_stub);
        match restored.remove(&spec.lane) {
            // A mid-flight walker: rebuild from its recipe and replay the
            // already-served frames *with recording*, so its eventual row
            // and capture match an uninterrupted serve byte for byte.
            Some(entry) => {
                let cursor = entry.checkpoint.cursor as usize;
                scheduler.admit_restored(
                    spec.lane,
                    entry.strikes,
                    entry.backoff_rounds,
                    move || {
                        let mut session =
                            build_session_with_obs(spec, models, base, max_epochs, obs_stub);
                        session.replay_recorded(cursor);
                        session
                    },
                );
            }
            None => scheduler.admit(spec.lane, move || {
                build_session_with_obs(spec, models, base, max_epochs, obs_stub)
            }),
        }
    }
    if !restored.is_empty() {
        let lanes: Vec<u64> = restored.keys().copied().collect();
        return Err(format!("checkpoint resident lane(s) {lanes:?} missing from the spec mix"));
    }
    uniloc_obs::info!(
        "fleet: {} session(s) over {} scenario(s), resident cap {resident_cap}, {} resumed row(s)",
        admitted,
        cfg.scenario_names.len(),
        summaries.len()
    );

    let mut agg =
        (!cfg.obs_stub).then(|| FleetAggregator::with_exemplar_cap(cfg.shards, cfg.top_k));
    let control = RunControl {
        checkpoint_every: opts.checkpoint_every,
        stop_after_rounds: opts.crash_after_rounds,
    };
    let mut ckpt_error: Option<String> = None;
    let stats = scheduler.run_supervised(&opts.policy, &control, |event| match event {
        FleetEvent::Finished(finished) => {
            let spec = spec_by_lane
                .get(&finished.lane)
                .unwrap_or_else(|| panic!("retired lane {} has no spec", finished.lane))
                .clone();
            let summary = summarize(spec, &finished);
            if let Some(agg) = agg.as_mut() {
                agg.observe(&session_meta(&summary), &finished.capture);
            }
            summaries.push(summary);
        }
        FleetEvent::Checkpoint { round, resident, unflushed } => {
            let Some(path) = opts.checkpoint_path.as_deref() else { return };
            if ckpt_error.is_some() {
                return;
            }
            // The checkpoint aggregate covers exactly its retired rows:
            // the resumed base, everything folded since, and the
            // finished-but-unflushed sessions folded in directly (the
            // fold is associative and commutative, so folding them here
            // and later in their own shard lands on the same snapshot).
            let mut rows = summaries.clone();
            let mut snap = match (&base_snap, &agg) {
                (Some(b), Some(a)) => Some(b.merge(&a.snapshot())),
                (None, Some(a)) => Some(a.snapshot()),
                (b, None) => b.clone(),
            };
            for finished in unflushed {
                let spec = spec_by_lane
                    .get(&finished.lane)
                    .unwrap_or_else(|| panic!("unflushed lane {} has no spec", finished.lane))
                    .clone();
                let summary = summarize(spec, finished);
                if let Some(snap) = snap.as_mut() {
                    snap.observe(&session_meta(&summary), &finished.capture);
                }
                rows.push(summary);
            }
            rows.sort_by_key(|s| s.spec.lane);
            let ckpt = FleetCheckpoint {
                version: CHECKPOINT_VERSION,
                seed: cfg.seed,
                sessions: cfg.sessions,
                scenario_names: cfg.scenario_names.clone(),
                max_epochs: cfg.max_epochs,
                chaos_every: cfg.chaos_every,
                obs_stub: cfg.obs_stub,
                shards: cfg.shards,
                top_k: cfg.top_k,
                panic_lane: cfg.panic_lane,
                panic_epoch: cfg.panic_epoch,
                round,
                retired: rows,
                resident: resident
                    .iter()
                    .map(|r| ResidentEntry {
                        checkpoint: spec_by_lane
                            .get(&r.lane)
                            .unwrap_or_else(|| panic!("resident lane {} has no spec", r.lane))
                            .checkpoint(r.cursor as usize),
                        strikes: r.strikes,
                        backoff_rounds: r.backoff_rounds,
                    })
                    .collect(),
                snapshot: snap,
            };
            if let Err(e) = atomic_write_json(path, &ckpt.to_json()) {
                ckpt_error = Some(format!("write checkpoint {path}: {e}"));
            }
        }
    });
    if let Some(e) = ckpt_error {
        return Err(e);
    }
    if stats.aborted {
        uniloc_obs::info!("fleet: simulated crash after {} round(s)", stats.rounds);
        return Ok(FleetOutcome::Crashed { rounds: stats.rounds });
    }
    // Resumed rows arrive before this run's retirements; restore the
    // canonical lane order.
    summaries.sort_by_key(|s| s.spec.lane);

    // Resilience contract. Non-finite fused estimates are always a
    // violation — the defense stack scrubs them even under faults. A
    // quarantine on a *clean* walker, though, is not by itself one:
    // harsh venues legitimately trip the quarantine machine on clean
    // data (path1's NLOS stretches quarantine cellular for some
    // personas). What would be a breach is a neighbor's fault leaking
    // in — and since every session is deterministic, a leak shows up
    // as the fleet's records diverging from a solo replay of the same
    // spec through the legacy batch path. So each suspicious walker
    // gets spot-checked against its solo digest, capped so a venue
    // where quarantine is the norm cannot stall a large fleet.
    const SPOT_CHECK_CAP: usize = 64;
    let mut violations = Vec::new();
    let mut suspicious: Vec<&SessionSummary> = Vec::new();
    for s in &summaries {
        if s.nonfinite_fused > 0 {
            violations.push(format!(
                "{}: {} non-finite fused estimate(s)",
                s.spec.name, s.nonfinite_fused
            ));
        }
        if s.spec.plan == "none" && !s.quarantined.is_empty() {
            suspicious.push(s);
        }
    }
    if suspicious.len() > SPOT_CHECK_CAP {
        uniloc_obs::info!(
            "fleet: {} quarantined clean walker(s); spot-checking the first {SPOT_CHECK_CAP}",
            suspicious.len()
        );
        suspicious.truncate(SPOT_CHECK_CAP);
    }
    for s in suspicious {
        let solo = solo_records(&s.spec, models, base, cfg.max_epochs);
        if records_digest(&solo) != s.digest {
            violations.push(format!(
                "{}: fleet records diverge from the solo legacy run \
                 (quarantined {:?} — isolation breach)",
                s.spec.name, s.quarantined
            ));
        }
    }

    let report = fleet_report(cfg, &summaries);
    // A resumed run's aggregate: the checkpoint's fold ⊕ this run's fold.
    // Both operands use the same exact merge algebra, so this equals the
    // uninterrupted fold byte for byte.
    let snapshot = match (base_snap, agg) {
        (Some(b), Some(a)) => Some(b.merge(&a.snapshot())),
        (None, Some(a)) => Some(a.snapshot()),
        (b, None) => b,
    };
    Ok(FleetOutcome::Completed(Box::new(FleetResult {
        report,
        summaries,
        stats,
        violations,
        snapshot,
    })))
}

/// The obs layer's measured cost: one fleet served twice per pass — obs
/// fully on vs. [`ObsSession::stubbed`] — keeping each mode's best
/// (fastest) pass. Wall-clock only; the records are verified byte-identical
/// via the fleet digest before any throughput is compared.
pub struct ObsOverhead {
    /// Best epochs/s with isolated (full) observability.
    pub epochs_per_sec_obs: f64,
    /// Best epochs/s with stubbed observability.
    pub epochs_per_sec_stub: f64,
    /// Fractional throughput cost of the obs layer:
    /// `(stub - obs) / stub`. Negative means noise favored the obs run.
    pub overhead_frac: f64,
}

/// Measures the obs layer's throughput cost over `passes` paired runs of
/// the configured fleet (see [`ObsOverhead`]). Best-of-N per mode bounds
/// scheduler noise; both modes must serve byte-identical fleets.
///
/// # Errors
///
/// Returns scenario errors, and a hard error when the obs-on and
/// obs-stubbed runs disagree on the fleet digest — that would mean
/// observability leaked into the pipeline.
pub fn measure_obs_overhead(
    models: &Arc<ErrorModelSet>,
    base: &PipelineConfig,
    cfg: &FleetConfig,
    passes: usize,
) -> Result<ObsOverhead, String> {
    let digest_of = |report: &Json| -> String {
        report
            .get("fleet_digest")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_owned()
    };
    let eps = |stats: &FleetRunStats| -> f64 {
        let secs = stats.run_ns as f64 / 1e9;
        if secs > 0.0 { stats.epochs as f64 / secs } else { 0.0 }
    };
    let mut best_obs: f64 = 0.0;
    let mut best_stub: f64 = 0.0;
    for pass in 0..passes.max(1) {
        let on = run_fleet(models, base, &FleetConfig { obs_stub: false, ..cfg.clone() })?;
        let off = run_fleet(models, base, &FleetConfig { obs_stub: true, ..cfg.clone() })?;
        if digest_of(&on.report) != digest_of(&off.report) {
            return Err(
                "obs-stubbed fleet served different records than the obs-on fleet \
                 — observability leaked into the pipeline"
                    .to_owned(),
            );
        }
        best_obs = best_obs.max(eps(&on.stats));
        best_stub = best_stub.max(eps(&off.stats));
        uniloc_obs::info!(
            "obs-overhead pass {}/{}: obs {:.0} epochs/s, stub {:.0} epochs/s",
            pass + 1,
            passes.max(1),
            eps(&on.stats),
            eps(&off.stats)
        );
    }
    let overhead_frac =
        if best_stub > 0.0 { (best_stub - best_obs) / best_stub } else { 0.0 };
    Ok(ObsOverhead {
        epochs_per_sec_obs: best_obs,
        epochs_per_sec_stub: best_stub,
        overhead_frac,
    })
}

/// Assembles the canonical fleet report. Deliberately excludes `jobs`,
/// `resident` and all wall-clock numbers — see the module docs.
fn fleet_report(cfg: &FleetConfig, summaries: &[SessionSummary]) -> Json {
    // The row shape is the summary's JSON form — the same bytes the
    // checkpoint carries, so a resumed row re-enters the report verbatim.
    let rows: Vec<Json> = summaries.iter().map(ToJson::to_json).collect();
    // The fleet digest folds every session digest in lane order: one
    // number that two runs must share iff they served identical fleets.
    let mut fleet_digest: u64 = 0xcbf2_9ce4_8422_2325;
    for s in summaries {
        fleet_digest ^= s.digest.wrapping_add(s.spec.lane);
        fleet_digest = fleet_digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let total_epochs: usize = summaries.iter().map(|s| s.epochs).sum();
    let faulted = summaries.iter().filter(|s| s.spec.plan != "none").count();
    let quarantined_sessions = summaries.iter().filter(|s| !s.quarantined.is_empty()).count();
    let poisoned_sessions = summaries.iter().filter(|s| s.poisoned.is_some()).count();
    Json::Obj(vec![
        ("fleet".into(), Json::Str("uniloc-fleet".into())),
        ("seed".into(), Json::Int(cfg.seed as i64)),
        ("sessions".into(), Json::Int(summaries.len() as i64)),
        (
            "scenarios".into(),
            Json::Arr(cfg.scenario_names.iter().cloned().map(Json::Str).collect()),
        ),
        ("max_epochs".into(), Json::Int(cfg.max_epochs as i64)),
        ("chaos_every".into(), Json::Int(cfg.chaos_every as i64)),
        ("total_epochs".into(), Json::Int(total_epochs as i64)),
        ("faulted_sessions".into(), Json::Int(faulted as i64)),
        ("quarantined_sessions".into(), Json::Int(quarantined_sessions as i64)),
        ("poisoned_sessions".into(), Json::Int(poisoned_sessions as i64)),
        ("fleet_digest".into(), Json::Str(format!("{fleet_digest:016x}"))),
        ("rows".into(), Json::Arr(rows)),
    ])
    .canonical()
}

/// Writes `BENCH_fleet.json` in the `bench-diff` gate's shape: the
/// scheduler's wall-clock histograms as stages (`fleet.epoch`,
/// `fleet.round`, `fleet.run`) plus throughput headline keys (which the
/// gate's parser ignores).
///
/// # Errors
///
/// Propagates the write error.
pub fn write_fleet_bench(stats: &FleetRunStats) -> std::io::Result<Option<String>> {
    let reg = uniloc_obs::MetricsRegistry::new();
    let epoch = reg.histogram("fleet.epoch", uniloc_obs::DURATION_BUCKETS_NS);
    for &ns in &stats.epoch_ns {
        epoch.record_ns(ns);
    }
    let round = reg.histogram("fleet.round", uniloc_obs::DURATION_BUCKETS_NS);
    for &ns in &stats.round_ns {
        round.record_ns(ns);
    }
    let run = reg.histogram("fleet.run", uniloc_obs::DURATION_BUCKETS_NS);
    run.record_ns(stats.run_ns);

    let mut stages = Vec::new();
    let mut p99_epoch_ns = None;
    for (name, h) in [("fleet.epoch", &epoch), ("fleet.round", &round), ("fleet.run", &run)] {
        let snap = h.snapshot();
        let Some((p50, p90, p99)) = snap.summary() else { continue };
        if name == "fleet.epoch" {
            p99_epoch_ns = Some(p99);
        }
        stages.push((
            name.to_owned(),
            Json::Obj(vec![
                ("count".to_owned(), snap.count().to_json()),
                ("mean_ns".to_owned(), snap.mean().to_json()),
                ("p50_ns".to_owned(), p50.to_json()),
                ("p90_ns".to_owned(), p90.to_json()),
                ("p99_ns".to_owned(), p99.to_json()),
                ("sum_ns".to_owned(), snap.sum.to_json()),
            ]),
        ));
    }
    if stages.is_empty() {
        return Ok(None);
    }
    let secs = stats.run_ns as f64 / 1e9;
    let doc = Json::Obj(vec![
        ("bench".to_owned(), Json::Str("fleet".to_owned())),
        ("stages".to_owned(), Json::Obj(stages)),
        ("sessions".to_owned(), Json::Int(stats.sessions as i64)),
        ("epochs".to_owned(), Json::Int(stats.epochs as i64)),
        ("rounds".to_owned(), Json::Int(stats.rounds as i64)),
        (
            "epochs_per_sec".to_owned(),
            if secs > 0.0 { Json::Num(stats.epochs as f64 / secs) } else { Json::Null },
        ),
        (
            "sessions_per_sec".to_owned(),
            if secs > 0.0 { Json::Num(stats.sessions as f64 / secs) } else { Json::Null },
        ),
        (
            "p99_epoch_ms".to_owned(),
            p99_epoch_ns.map_or(Json::Null, |ns| Json::Num(ns / 1e6)),
        ),
    ]);
    let dir = if std::path::Path::new("results").is_dir() { "results" } else { "." };
    let path = format!("{dir}/BENCH_fleet.json");
    std::fs::write(&path, doc.canonical().to_string_pretty())?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(sessions: usize) -> FleetConfig {
        FleetConfig {
            seed: 7,
            sessions,
            scenario_names: vec!["office".to_owned(), "open-space".to_owned()],
            jobs: 2,
            resident: 4,
            max_epochs: 20,
            chaos_every: 8,
            obs_stub: false,
            shards: 0,
            top_k: 0,
            panic_lane: None,
            panic_epoch: 0,
        }
    }

    #[test]
    fn specs_mix_personas_devices_and_plans() {
        let specs = fleet_specs(&cfg(16)).unwrap();
        assert_eq!(specs.len(), 16);
        // Lane seeds are split — all distinct.
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16);
        // Both devices, several personas, both scenarios appear.
        assert!(specs.iter().any(|s| s.device == "nexus5x"));
        assert!(specs.iter().any(|s| s.device == "lgg3"));
        assert!(specs.iter().any(|s| s.scenario == "office"));
        assert!(specs.iter().any(|s| s.scenario == "open-space"));
        // chaos_every = 8 faults lanes 7 and 15.
        let faulted: Vec<u64> =
            specs.iter().filter(|s| s.plan != "none").map(|s| s.lane).collect();
        assert_eq!(faulted, vec![7, 15]);
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        let mut c = cfg(4);
        c.scenario_names = vec!["mars".to_owned()];
        assert!(fleet_specs(&c).unwrap_err().contains("mars"));
    }

    #[test]
    fn checkpoint_spec_round_trip() {
        let spec = fleet_specs(&cfg(8)).unwrap().swap_remove(7);
        let ckpt = spec.checkpoint(13);
        assert_eq!(ckpt.cursor, 13);
        assert_eq!(SessionSpec::from_checkpoint(&ckpt), spec);
    }

    #[test]
    fn fnv_digest_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }

    #[test]
    fn panic_lane_overrides_the_spec_plan() {
        let mut c = cfg(16);
        c.panic_lane = Some(7);
        c.panic_epoch = 5;
        let specs = fleet_specs(&c).unwrap();
        assert_eq!(specs[7].plan, "panic_at_epoch_5");
        // Only the armed lane changes; its neighbors keep their mix.
        let clean = fleet_specs(&cfg(16)).unwrap();
        for lane in (0..16).filter(|&l| l != 7) {
            assert_eq!(specs[lane], clean[lane]);
        }
    }

    #[test]
    fn fleet_checkpoint_round_trips_and_rejects_foreign_configs() {
        let c = cfg(8);
        let specs = fleet_specs(&c).unwrap();
        let ckpt = FleetCheckpoint {
            version: CHECKPOINT_VERSION,
            seed: c.seed,
            sessions: c.sessions,
            scenario_names: c.scenario_names.clone(),
            max_epochs: c.max_epochs,
            chaos_every: c.chaos_every,
            obs_stub: false,
            shards: 0,
            top_k: 0,
            panic_lane: None,
            panic_epoch: 0,
            round: 3,
            retired: vec![SessionSummary {
                spec: specs[0].clone(),
                epochs: 20,
                digest: 0xdead_beef,
                mean_error: Some(1.25),
                nonfinite_fused: 0,
                quarantined: vec!["gps".to_owned()],
                flight_lines: 2,
                poisoned: None,
            }],
            resident: vec![ResidentEntry {
                checkpoint: specs[1].checkpoint(7),
                strikes: 2,
                backoff_rounds: 3,
            }],
            snapshot: None,
        };
        let text = ckpt.to_json().canonical().to_string();
        let back = FleetCheckpoint::restore(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ckpt);
        assert!(back.check_config(&c).is_ok());
        let mut other = c.clone();
        other.seed += 1;
        assert!(back.check_config(&other).unwrap_err().contains("seed"));
        // A foreign format version fails loudly, not by misparse.
        let mut doc = Json::parse(&text).unwrap();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "version" {
                    *v = Json::Int(CHECKPOINT_VERSION as i64 + 9);
                }
            }
        }
        assert!(matches!(
            FleetCheckpoint::restore(&doc),
            Err(CheckpointError::VersionMismatch { .. })
        ));
        // So does a foreign version on a *nested* resident walker's
        // checkpoint (a spliced document, not a stale one).
        let mut spliced = ckpt.clone();
        spliced.resident[0].checkpoint.version = CHECKPOINT_VERSION + 9;
        let spliced = Json::parse(&spliced.to_json().canonical().to_string()).unwrap();
        assert!(matches!(
            FleetCheckpoint::restore(&spliced),
            Err(CheckpointError::VersionMismatch { found, expected: CHECKPOINT_VERSION })
                if found == CHECKPOINT_VERSION + 9
        ));
    }

    /// The tentpole contract at unit scale: crash a checkpointing fleet
    /// between rounds, resume from the file on disk, and the report and
    /// snapshot come out byte-identical to the uninterrupted run —
    /// including a poisoned lane whose strikes straddle the cut.
    #[test]
    fn crashed_fleet_resumes_byte_identically() {
        let mut c = cfg(12);
        c.jobs = 2;
        c.resident = 3;
        c.panic_lane = Some(5);
        c.panic_epoch = 4;
        let models = Arc::new(crate::trained_models(11));
        let base = PipelineConfig::default();

        let straight = run_fleet(&models, &base, &c).unwrap();
        let report = straight.report.to_string();
        assert_eq!(
            straight.report.get("poisoned_sessions").unwrap().as_i64(),
            Some(1),
            "the armed lane must poison, and only it"
        );
        let snap = straight.snapshot.expect("obs-on fleet has a snapshot");
        assert_eq!(snap.counter("fleet.poisoned"), 1);
        assert_eq!(snap.counter("parallel.retries"), 2, "3 strikes = 2 retries");

        let dir = std::env::temp_dir().join(format!("uniloc-fleet-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.ckpt.json").to_string_lossy().into_owned();
        for crash_after in [2u64, 5, 9] {
            let outcome = run_fleet_durable(
                &models,
                &base,
                &c,
                FleetRunOptions {
                    checkpoint_every: 2,
                    checkpoint_path: Some(path.clone()),
                    crash_after_rounds: Some(crash_after),
                    ..FleetRunOptions::default()
                },
            )
            .unwrap();
            assert!(matches!(outcome, FleetOutcome::Crashed { rounds } if rounds == crash_after));
            let ckpt = load_fleet_checkpoint(&path).unwrap();
            let resumed = match run_fleet_durable(
                &models,
                &base,
                &c,
                FleetRunOptions { resume_from: Some(ckpt), ..FleetRunOptions::default() },
            )
            .unwrap()
            {
                FleetOutcome::Completed(r) => *r,
                FleetOutcome::Crashed { .. } => panic!("resume must complete"),
            };
            assert_eq!(
                resumed.report.to_string(),
                report,
                "crash at round {crash_after}: resumed report diverged"
            );
            assert_eq!(
                resumed.snapshot.as_ref(),
                Some(&snap),
                "crash at round {crash_after}: resumed snapshot diverged"
            );
            assert!(resumed.violations.is_empty(), "{:?}", resumed.violations);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
