//! A tiny Criterion-compatible micro-benchmark harness.
//!
//! The hermetic-build policy (see `DESIGN.md`) removed the `criterion`
//! dependency, so the `benches/` targets run on this shim instead. It
//! mirrors the small slice of Criterion's API the workspace uses —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId::from_parameter`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — so the bench
//! sources read identically.
//!
//! Two modes, selected by the command line (cargo passes `--bench` when
//! invoked as `cargo bench`):
//!
//! * **bench mode**: calibrates an iteration count per benchmark, takes
//!   five timed samples and prints `median (min .. max)` ns/iter.
//! * **smoke mode** (everything else, e.g. `cargo test` executing the
//!   bench target): runs each body once so the code path stays covered
//!   without spending benchmark time in the test suite.
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

use std::time::{Duration, Instant};

/// Opaque value barrier; prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The harness entry point handed to every benchmark function.
pub struct Criterion {
    bench_mode: bool,
}

impl Criterion {
    /// Builds a harness from the process arguments: `--bench` selects
    /// bench mode, anything else (notably `cargo test`) selects smoke
    /// mode.
    pub fn from_args() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion { bench_mode }
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher { bench_mode: self.bench_mode, sample: None };
        f(&mut b);
        report(name, self.bench_mode, b.sample);
    }

    /// Opens a named group; members print as `group/id`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned() }
    }
}

/// A named family of related benchmarks (e.g. one per input size).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one group member with its parameter.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut b = Bencher { bench_mode: self.criterion.bench_mode, sample: None };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), self.criterion.bench_mode, b.sample);
    }

    /// Ends the group (provided for Criterion API compatibility).
    pub fn finish(self) {}
}

/// A benchmark label derived from its parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Labels a group member by its parameter value.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }
}

/// Nanoseconds per iteration over the five timed samples.
#[derive(Debug, Clone, Copy)]
struct Sample {
    median: f64,
    min: f64,
    max: f64,
}

/// Drives the measured closure; handed to the benchmark body by the
/// harness.
pub struct Bencher {
    bench_mode: bool,
    sample: Option<Sample>,
}

impl Bencher {
    /// Measures the closure (bench mode) or runs it once (smoke mode).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if !self.bench_mode {
            black_box(f());
            return;
        }
        // Calibrate: double the batch size until one batch takes >= 20 ms,
        // then size batches for ~40 ms each.
        let mut n: u64 = 1;
        let per_iter_ns = loop {
            let t = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(20) {
                break elapsed.as_nanos() as f64 / n as f64;
            }
            n = n.saturating_mul(2);
        };
        let batch = ((40e6 / per_iter_ns).ceil() as u64).max(1);
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.sample = Some(Sample { median: samples[2], min: samples[0], max: samples[4] });
    }
}

fn report(name: &str, bench_mode: bool, sample: Option<Sample>) {
    match sample {
        Some(s) => println!(
            "{name:<40} {:>12}/iter ({} .. {})",
            fmt_ns(s.median),
            fmt_ns(s.min),
            fmt_ns(s.max)
        ),
        None if bench_mode => println!("{name:<40} (no measurement taken)"),
        None => println!("{name:<40} ok (smoke)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Criterion-compatible: bundles benchmark functions into one group
/// function callable from [`criterion_main!`](crate::criterion_main).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::microbench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Criterion-compatible: generates `main` for a `harness = false` bench
/// target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::microbench::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut calls = 0u32;
        let mut b = Bencher { bench_mode: false, sample: None };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.sample.is_none());
    }

    #[test]
    fn bench_mode_measures() {
        let mut b = Bencher { bench_mode: true, sample: None };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        let s = b.sample.expect("bench mode records a sample");
        assert!(s.min <= s.median && s.median <= s.max);
        assert!(s.median > 0.0);
    }

    #[test]
    fn group_labels_compose() {
        let mut c = Criterion { bench_mode: false };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::from_parameter(42), &7, |b, &x| {
            b.iter(|| x * 2);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
