//! The chaos sweep: a deterministic scenario × fault-plan resilience
//! matrix, shared by `uniloc chaos` and the differential test suite.
//!
//! Each cell injects one library fault plan into the exact frame stream
//! the clean walk consumes ([`pipeline::walk_frames`] +
//! [`uniloc_faults::FaultInjector`]), replays it through
//! [`pipeline::run_walk_on_frames`], and reports the error-CDF shift
//! against the clean run, the worst/final degradation-ladder state,
//! non-finite fused estimates (must always be zero), which schemes were
//! quarantined and how many epochs past the last fault window the engine
//! needed to re-admit them.
//!
//! The sweep fans out on [`uniloc_core::parallel::run_observed`]: phase A
//! runs the scenarios' frame generation + clean walks in parallel, phase B
//! runs every (scenario, plan) cell in parallel. Every job executes under
//! an isolated observability session and all outputs — reports, violation
//! list, merged sidecar, progress lines — are assembled on the caller's
//! thread in canonical cell order, so the sweep's results are
//! byte-identical at any `jobs` count (`tests/parallel_differential.rs`
//! holds this at jobs ∈ {1, 2, 4, 8}).

use uniloc_core::error_model::ErrorModelSet;
use uniloc_core::parallel::{run_observed, MergedObs};
use uniloc_core::pipeline::{self, EpochRecord, PipelineConfig};
use uniloc_env::{campus, venues, Scenario};
use uniloc_faults::{FaultInjector, FaultPlan};
use uniloc_stats::json::Json;

/// Resolves the CLI scenario vocabulary (`path1`..`path8`, `mall`,
/// `open-space`, `office`) to a concrete [`Scenario`].
pub fn scenario_by_name(name: &str, seed: u64) -> Result<Scenario, String> {
    match name {
        "path1" | "daily" => Ok(campus::daily_path(seed)),
        "path2" | "path3" | "path4" | "path5" | "path6" | "path7" | "path8" => {
            let idx: usize = name[4..].parse().expect("digit-suffixed name");
            Ok(campus::all_paths(seed).swap_remove(idx - 1))
        }
        "mall" => Ok(venues::shopping_mall(seed, 1).swap_remove(0)),
        "open-space" => Ok(venues::urban_open_space(seed, 1).swap_remove(0)),
        "office" => Ok(venues::office("cli-office", seed, 50.0, 18.0)),
        other => Err(format!("unknown scenario `{other}` (try `uniloc scenarios`)")),
    }
}

/// One chaos run's resilience summary (one scenario × one fault plan).
pub struct ChaosOutcome {
    pub plan: String,
    pub epochs: usize,
    pub injected_events: usize,
    pub clean_mean: Option<f64>,
    pub faulted_mean: Option<f64>,
    pub mean_shift: Option<f64>,
    pub p50_shift: Option<f64>,
    pub p90_shift: Option<f64>,
    pub worst_ladder: String,
    pub final_ladder: String,
    pub lost_terminal: bool,
    pub nonfinite_fused: usize,
    pub quarantined_epochs: usize,
    pub schemes_quarantined: Vec<String>,
    pub epochs_to_recover: Option<usize>,
    pub recovered: bool,
}

impl ChaosOutcome {
    fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
        Json::Obj(vec![
            ("plan".into(), Json::Str(self.plan.clone())),
            ("epochs".into(), Json::Int(self.epochs as i64)),
            ("injected_events".into(), Json::Int(self.injected_events as i64)),
            ("clean_mean_m".into(), opt(self.clean_mean)),
            ("faulted_mean_m".into(), opt(self.faulted_mean)),
            ("mean_shift_m".into(), opt(self.mean_shift)),
            ("p50_shift_m".into(), opt(self.p50_shift)),
            ("p90_shift_m".into(), opt(self.p90_shift)),
            ("worst_ladder".into(), Json::Str(self.worst_ladder.clone())),
            ("final_ladder".into(), Json::Str(self.final_ladder.clone())),
            ("lost_terminal".into(), Json::Bool(self.lost_terminal)),
            ("nonfinite_fused".into(), Json::Int(self.nonfinite_fused as i64)),
            ("quarantined_epochs".into(), Json::Int(self.quarantined_epochs as i64)),
            (
                "schemes_quarantined".into(),
                Json::Arr(self.schemes_quarantined.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "epochs_to_recover".into(),
                self.epochs_to_recover.map_or(Json::Null, |e| Json::Int(e as i64)),
            ),
            ("recovered".into(), Json::Bool(self.recovered)),
        ])
    }
}

/// The fused error of one epoch: UniLoc2 when available, UniLoc1 otherwise
/// (mirroring the engine's own degradation order).
pub fn fused_error(r: &EpochRecord) -> Option<f64> {
    r.uniloc2_error.or(r.uniloc1_error)
}

/// `q`-quantile of a sorted slice (nearest-rank); `None` when empty.
fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    Some(sorted[idx.min(sorted.len() - 1)])
}

/// (mean, p50, p90) of the finite fused errors in `records`.
pub fn error_stats(records: &[EpochRecord]) -> (Option<f64>, Option<f64>, Option<f64>) {
    let mut errs: Vec<f64> =
        records.iter().filter_map(fused_error).filter(|e| e.is_finite()).collect();
    errs.sort_by(|a, b| a.total_cmp(b));
    let mean = if errs.is_empty() {
        None
    } else {
        Some(errs.iter().sum::<f64>() / errs.len() as f64)
    };
    (mean, percentile(&errs, 0.5), percentile(&errs, 0.9))
}

/// Sweep parameters, fully determining the output artifacts.
pub struct ChaosConfig {
    pub seed: u64,
    pub scenario_names: Vec<String>,
    pub plans: Vec<FaultPlan>,
    /// Worker-thread count for the fan-out; `1` runs everything inline on
    /// the caller's thread. The artifacts are identical at any value.
    pub jobs: usize,
}

/// One scenario's finished report.
pub struct ChaosReport {
    /// The scenario's display name (`scenario.name`, e.g. `cli-office`).
    pub scenario: String,
    /// The canonical (sorted-key) report document.
    pub report: Json,
    pub outcomes: Vec<ChaosOutcome>,
}

impl ChaosReport {
    /// The artifact filename this report is written to: `CHAOS_<name>.json`
    /// with path separators and spaces flattened.
    pub fn file_name(&self) -> String {
        format!("CHAOS_{}.json", self.scenario.replace(['/', ' '], "_"))
    }
}

/// The sweep's complete output: per-scenario reports in request order, the
/// resilience-contract violations in canonical cell order, and the merged
/// observability sidecar of every job.
pub struct ChaosSweep {
    pub reports: Vec<ChaosReport>,
    pub violations: Vec<String>,
    pub obs: MergedObs,
}

/// Per-scenario output of phase A: the frame stream every cell replays and
/// the clean baseline it is scored against.
struct ScenarioBase {
    scenario: Scenario,
    frames: Vec<uniloc_sensors::SensorFrame>,
    clean_epochs: usize,
    clean_mean: Option<f64>,
    clean_p50: Option<f64>,
    clean_p90: Option<f64>,
}

/// Runs the scenario × plan matrix and assembles every output in
/// canonical order. Progress lines are emitted from the caller's thread
/// after each phase merges, so stderr output is deterministic too.
///
/// # Errors
///
/// Returns the first unknown scenario name, in request order.
pub fn run_sweep(
    models: &ErrorModelSet,
    cfg: &PipelineConfig,
    sweep: &ChaosConfig,
) -> Result<ChaosSweep, String> {
    let seed = sweep.seed;
    let jobs = sweep.jobs.max(1);

    // Phase A: per-scenario frame generation + clean baseline walk.
    let (bases, obs_a) = run_observed(&sweep.scenario_names, jobs, |_, name| {
        let scenario = scenario_by_name(name, seed)?;
        let frames = pipeline::walk_frames(&scenario, cfg, seed + 100);
        let clean = pipeline::run_walk_on_frames(&scenario, models, cfg, seed + 100, &frames);
        let (clean_mean, clean_p50, clean_p90) = error_stats(&clean);
        Ok(ScenarioBase {
            scenario,
            frames,
            clean_epochs: clean.len(),
            clean_mean,
            clean_p50,
            clean_p90,
        })
    });
    let bases: Vec<ScenarioBase> = bases.into_iter().collect::<Result<_, String>>()?;
    for base in &bases {
        uniloc_obs::info!(
            "chaos: {} — {} epochs, {} plan(s)",
            base.scenario.name,
            base.frames.len(),
            sweep.plans.len()
        );
    }

    // Phase B: every (scenario, plan) cell, scenario-major order.
    let cells: Vec<(usize, usize)> = (0..bases.len())
        .flat_map(|s| (0..sweep.plans.len()).map(move |p| (s, p)))
        .collect();
    let (outcomes, obs_b) = run_observed(&cells, jobs, |_, &(s, p)| {
        run_cell(&bases[s], &sweep.plans[p], models, cfg, seed)
    });

    let mut obs = obs_a;
    obs.absorb(&obs_b).map_err(|e| format!("observability merge failed: {e}"))?;

    // Assemble reports and the violation list in canonical cell order.
    let mut outcomes = outcomes.into_iter();
    let mut reports = Vec::with_capacity(bases.len());
    let mut violations = Vec::new();
    for base in &bases {
        let scenario_outcomes: Vec<ChaosOutcome> =
            outcomes.by_ref().take(sweep.plans.len()).collect();
        for outcome in &scenario_outcomes {
            uniloc_obs::info!(
                "  {:<16} events={:<4} shift mean {:+.1} m p90 {:+.1} m worst={} recover={}",
                outcome.plan,
                outcome.injected_events,
                outcome.mean_shift.unwrap_or(f64::NAN),
                outcome.p90_shift.unwrap_or(f64::NAN),
                outcome.worst_ladder,
                outcome
                    .epochs_to_recover
                    .map_or_else(|| "never".to_owned(), |e| format!("{e} epochs")),
            );
            let name = &base.scenario.name;
            if outcome.lost_terminal {
                violations
                    .push(format!("{}/{}: terminal ladder state is lost", name, outcome.plan));
            }
            if outcome.nonfinite_fused > 0 {
                violations.push(format!(
                    "{}/{}: {} non-finite fused estimate(s)",
                    name, outcome.plan, outcome.nonfinite_fused
                ));
            }
            if !outcome.recovered {
                violations.push(format!(
                    "{}/{}: quarantine never lifted after the fault window",
                    name, outcome.plan
                ));
            }
        }
        let report = Json::Obj(vec![
            ("scenario".into(), Json::Str(base.scenario.name.clone())),
            ("seed".into(), Json::Int(seed as i64)),
            ("epochs".into(), Json::Int(base.clean_epochs as i64)),
            ("clean_mean_m".into(), base.clean_mean.map_or(Json::Null, Json::Num)),
            (
                "runs".into(),
                Json::Arr(scenario_outcomes.iter().map(ChaosOutcome::to_json).collect()),
            ),
        ])
        .canonical();
        reports.push(ChaosReport {
            scenario: base.scenario.name.clone(),
            report,
            outcomes: scenario_outcomes,
        });
    }

    Ok(ChaosSweep { reports, violations, obs })
}

/// One (scenario, plan) cell: inject, replay, score against the clean
/// baseline.
fn run_cell(
    base: &ScenarioBase,
    plan: &FaultPlan,
    models: &ErrorModelSet,
    cfg: &PipelineConfig,
    seed: u64,
) -> ChaosOutcome {
    // Each cell draws from its own fault stream, derived from the sweep
    // seed and the plan's index-free name — re-running the sweep
    // bit-reproduces every cell.
    let chaos_seed =
        seed ^ plan.name.bytes().fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
    let mut injector = FaultInjector::new(plan.clone(), chaos_seed)
        .with_geo_frame(*base.scenario.world.geo_frame());
    let faulted_frames = injector.inject_walk(&base.frames);
    let records =
        pipeline::run_walk_on_frames(&base.scenario, models, cfg, seed + 100, &faulted_frames);

    let (faulted_mean, faulted_p50, faulted_p90) = error_stats(&records);
    let nonfinite_fused =
        records.iter().filter_map(fused_error).filter(|e| !e.is_finite()).count();
    let worst = records.iter().map(|r| r.ladder).max().unwrap_or_default();
    let final_ladder = records.last().map(|r| r.ladder).unwrap_or_default();
    let quarantined_epochs = records.iter().filter(|r| !r.quarantined.is_empty()).count();
    let mut schemes_quarantined: Vec<String> = Vec::new();
    for r in &records {
        for id in &r.quarantined {
            let s = id.to_string();
            if !schemes_quarantined.contains(&s) {
                schemes_quarantined.push(s);
            }
        }
    }
    // Recovery: epochs past the last fault window until the quarantine
    // set empties and stays empty through the end.
    let window_end =
        ((plan.last_window_end() * records.len() as f64).ceil() as usize).min(records.len());
    let clear_from = records
        .iter()
        .rposition(|r| !r.quarantined.is_empty())
        .map_or(window_end, |i| i + 1);
    let recovered = clear_from <= records.len().saturating_sub(1) || quarantined_epochs == 0;
    let epochs_to_recover = if quarantined_epochs == 0 {
        Some(0)
    } else if recovered {
        Some(clear_from.saturating_sub(window_end))
    } else {
        None
    };

    let sub = |a: Option<f64>, b: Option<f64>| match (a, b) {
        (Some(a), Some(b)) => Some(a - b),
        _ => None,
    };
    ChaosOutcome {
        plan: plan.name.clone(),
        epochs: records.len(),
        injected_events: injector.events().len(),
        clean_mean: base.clean_mean,
        faulted_mean,
        mean_shift: sub(faulted_mean, base.clean_mean),
        p50_shift: sub(faulted_p50, base.clean_p50),
        p90_shift: sub(faulted_p90, base.clean_p90),
        worst_ladder: worst.to_string(),
        final_ladder: final_ladder.to_string(),
        lost_terminal: final_ladder == uniloc_core::DegradationLadder::Lost,
        nonfinite_fused,
        quarantined_epochs,
        schemes_quarantined,
        epochs_to_recover,
        recovered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_lookup() {
        assert_eq!(scenario_by_name("path1", 1).unwrap().name, "path1");
        assert_eq!(scenario_by_name("path5", 1).unwrap().name, "path5");
        assert!(scenario_by_name("mall", 1).unwrap().name.starts_with("mall"));
        assert!(scenario_by_name("mars", 1).is_err());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 0.5), Some(2.0));
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 1.0), Some(3.0));
    }

    #[test]
    fn sweep_rejects_unknown_scenario() {
        let models = ErrorModelSet::default();
        let cfg = PipelineConfig::default();
        let sweep = ChaosConfig {
            seed: 1,
            scenario_names: vec!["mars".to_owned()],
            plans: FaultPlan::smoke_library(),
            jobs: 2,
        };
        let err = match run_sweep(&models, &cfg, &sweep) {
            Ok(_) => panic!("unknown scenario must fail"),
            Err(e) => e,
        };
        assert!(err.contains("mars"), "{err}");
    }
}
