//! Micro-benchmark (microbench harness): one PDR particle-filter step update with 300
//! particles — the paper's reason for offloading ("the updating cannot be
//! accomplished within 0.5 s on Google Nexus 5"; Table V books 4.8-5.6 ms
//! on the server).

use uniloc_bench::microbench::{black_box, BenchmarkId, Criterion};
use uniloc_bench::{criterion_group, criterion_main};
use uniloc_rng::Rng;
use uniloc_filters::ParticleFilter;
use uniloc_geom::{FloorPlan, Point, Vector2};

fn corridor_plan() -> FloorPlan {
    let mut plan = FloorPlan::new();
    for i in 0..10 {
        let y = i as f64 * 4.0;
        plan.add_wall(Point::new(0.0, y), Point::new(100.0, y));
    }
    plan
}

fn bench_particle_step(c: &mut Criterion) {
    let plan = corridor_plan();
    let mut group = c.benchmark_group("pdr_step_update");
    for n in [100usize, 300, 1_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = Rng::seed_from_u64(1);
            let mut pf = ParticleFilter::new(
                (0..n).map(|i| Point::new(10.0 + (i % 10) as f64 * 0.1, 2.0)),
            );
            b.iter(|| {
                let mut moves: Vec<(Point, Point)> = Vec::with_capacity(n);
                pf.predict(&mut rng, |p, rng| {
                    let old = *p;
                    *p += Vector2::from_heading(1.57 + rng.gen_range(-0.1..0.1), 0.65);
                    moves.push((old, *p));
                });
                let mut idx = 0;
                pf.reweight(|_| {
                    let (a, bb) = moves[idx];
                    idx += 1;
                    if plan.blocks(a, bb) {
                        0.2
                    } else {
                        1.0
                    }
                });
                pf.maybe_resample(0.5, &mut rng);
                black_box(pf.estimate_xy(|p| (p.x, p.y)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_particle_step);
criterion_main!(benches);
