//! Micro-benchmark (microbench harness): RADAR-style fingerprint matching — the
//! dominant cost of the WiFi/cellular schemes (Table V's per-scheme server
//! compute).

use uniloc_bench::microbench::{black_box, BenchmarkId, Criterion};
use uniloc_bench::{criterion_group, criterion_main};
use uniloc_env::ApId;
use uniloc_schemes::fingerprint::FingerprintDb;
use uniloc_geom::Point;
use uniloc_sensors::WifiScan;

/// A synthetic database of `n` fingerprints with ~8 APs each.
fn db_of(n: usize) -> FingerprintDb<WifiScan> {
    FingerprintDb::from_entries((0..n).map(|i| {
        let p = Point::new((i % 60) as f64 * 1.5, (i / 60) as f64 * 1.5);
        let readings = (0..8)
            .map(|a| {
                (
                    ApId(a),
                    -40.0 - ((i * (a as usize + 3)) % 50) as f64,
                )
            })
            .collect();
        (p, WifiScan { readings })
    }))
}

fn bench_matching(c: &mut Criterion) {
    let scan = WifiScan {
        readings: (0..8).map(|a| (ApId(a), -55.0 - a as f64 * 3.0)).collect(),
    };
    let mut group = c.benchmark_group("fingerprint_match");
    for n in [300usize, 1_000, 3_000] {
        let db = db_of(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| db.match_scan(black_box(&scan), 3))
        });
    }
    group.finish();

    // The density feature lookup (beta_1).
    let db = db_of(1_000);
    c.bench_function("local_density_1000fp", |b| {
        b.iter(|| db.local_density(black_box(Point::new(30.0, 10.0)), 20.0))
    });
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
