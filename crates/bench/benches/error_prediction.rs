//! Micro-benchmark (microbench harness): online error prediction for all five schemes
//! (Table V reports 6.0 ms on the paper's workstation — ours is pure linear
//! algebra over a handful of coefficients, so expect microseconds).

use uniloc_bench::microbench::{black_box, Criterion};
use uniloc_bench::{criterion_group, criterion_main};
use uniloc_core::error_model::{train, ErrorModelSet, TrainingSample};
use uniloc_iodetect::IoState;
use uniloc_schemes::SchemeId;

/// Builds a synthetic but fully populated model set (no venue simulation in
/// the hot loop).
fn synthetic_models() -> ErrorModelSet {
    let mut samples = Vec::new();
    for (scheme, arity) in [
        (SchemeId::Wifi, 2usize),
        (SchemeId::Cellular, 3),
        (SchemeId::Motion, 2),
        (SchemeId::Fusion, 3),
    ] {
        for indoor in [true, false] {
            let arity = if scheme == SchemeId::Fusion && !indoor { 2 } else { arity };
            for i in 0..60 {
                let features: Vec<f64> =
                    (0..arity).map(|j| ((i * 3 + j * 7) % 11) as f64 + 0.5).collect();
                let error = features.iter().sum::<f64>() * 0.7 + (i % 4) as f64 * 0.2;
                samples.push(TrainingSample { scheme, indoor, features, error });
            }
        }
    }
    for i in 0..60 {
        samples.push(TrainingSample {
            scheme: SchemeId::Gps,
            indoor: false,
            features: vec![],
            error: 13.5 + (i % 9) as f64 - 4.0,
        });
    }
    train(&samples).expect("synthetic training data is well-formed")
}

fn bench_error_prediction(c: &mut Criterion) {
    let models = synthetic_models();
    let queries: [(SchemeId, IoState, Vec<f64>); 5] = [
        (SchemeId::Gps, IoState::Outdoor, vec![]),
        (SchemeId::Wifi, IoState::Indoor, vec![2.0, 4.0]),
        (SchemeId::Cellular, IoState::Indoor, vec![2.0, 4.0, 4.0]),
        (SchemeId::Motion, IoState::Indoor, vec![30.0, 3.0]),
        (SchemeId::Fusion, IoState::Indoor, vec![30.0, 3.0, 2.0]),
    ];
    c.bench_function("error_prediction_five_schemes", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (id, io, f) in black_box(&queries) {
                if let Some(p) = models.predict(*id, *io, f) {
                    acc += p.mean + p.sigma;
                }
            }
            acc
        })
    });
}

criterion_group!(benches, bench_error_prediction);
criterion_main!(benches);
