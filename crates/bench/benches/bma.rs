//! Micro-benchmark (microbench harness): the BMA combination stage (Table V reports it
//! at 0.1 ms on the paper's workstation; it is "simple linear calculation").

use uniloc_bench::microbench::{black_box, Criterion};
use uniloc_bench::{criterion_group, criterion_main};
use uniloc_core::confidence::{adaptive_tau, confidence};
use uniloc_core::error_model::ErrorPrediction;

fn bma_round(preds: &[ErrorPrediction], positions: &[(f64, f64)]) -> (f64, f64) {
    let tau = adaptive_tau(preds).expect("non-empty predictions");
    let confs: Vec<f64> = preds.iter().map(|&p| confidence(p, tau)).collect();
    let total: f64 = confs.iter().sum();
    let mut x = 0.0;
    let mut y = 0.0;
    for (c, (px, py)) in confs.iter().zip(positions) {
        x += c / total * px;
        y += c / total * py;
    }
    (x, y)
}

fn bench_bma(c: &mut Criterion) {
    let preds = vec![
        ErrorPrediction { mean: 13.5, sigma: 9.4 },
        ErrorPrediction { mean: 3.0, sigma: 4.7 },
        ErrorPrediction { mean: 8.0, sigma: 8.2 },
        ErrorPrediction { mean: 2.5, sigma: 1.2 },
        ErrorPrediction { mean: 2.0, sigma: 0.9 },
    ];
    let positions = vec![(5.0, 5.0), (6.0, 4.0), (9.0, 8.0), (5.5, 4.5), (5.8, 4.9)];
    c.bench_function("bma_five_schemes", |b| {
        b.iter(|| bma_round(black_box(&preds), black_box(&positions)))
    });

    // Scaling: 20 integrated schemes.
    let many_preds: Vec<ErrorPrediction> = (0..20)
        .map(|i| ErrorPrediction { mean: 2.0 + i as f64, sigma: 1.0 + i as f64 * 0.3 })
        .collect();
    let many_pos: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 20.0 - i as f64)).collect();
    c.bench_function("bma_twenty_schemes", |b| {
        b.iter(|| bma_round(black_box(&many_preds), black_box(&many_pos)))
    });
}

criterion_group!(benches, bench_bma);
criterion_main!(benches);
