//! # uniloc-faults — deterministic fault injection for UniLoc
//!
//! The paper's central robustness claim is that scheme diversity lets the
//! ensemble "temporarily exclude one localization scheme by simply setting
//! its confidence as zero, if it is not available in some regions"
//! (paper §III). This crate supplies the adversary that claim is tested
//! against: a scripted, seeded fault injector that corrupts a
//! [`SensorFrame`](uniloc_sensors::SensorFrame) stream the way the field
//! does — blackouts, AP churn, NLOS bias, multipath jumps, IMU drift,
//! NaN storms, duplicated and time-regressing frames.
//!
//! Design contract:
//!
//! * **Deterministic.** The applied schedule is a pure function of
//!   `(plan, seed, input frames)`. Each input epoch draws from its own
//!   child RNG stream, so frame-stream faults (duplicates, regressions)
//!   never shift the randomness of later epochs. [`FaultInjector::schedule_json`]
//!   is the byte-reproducibility witness used by the proptests.
//! * **Sidecar.** [`FaultPlan::none`] is an exact pass-through: the output
//!   walk is a clone of the input, byte for byte, so golden traces and
//!   determinism tests are unaffected when no faults are scripted.
//! * **Scripted in walk fractions.** Fault windows are `[0, 1]` fractions
//!   of the walk, not absolute epochs, so one plan scales across venues
//!   and the library plans always leave a recovery tail for the engine's
//!   quarantine machinery to prove re-admission.
//!
//! The defense side — the input-validation gate, per-scheme quarantine,
//! and degradation ladder — lives in `uniloc-core`; this crate only
//! attacks.

pub mod inject;
pub mod plan;
pub mod process;

pub use inject::{schedule_summary, FaultEvent, FaultInjector};
pub use plan::{FaultClause, FaultKind, FaultPlan};
pub use process::CrashPoint;
