//! The [`FaultInjector`]: applies a [`FaultPlan`] to a [`SensorFrame`]
//! stream, deterministically.
//!
//! The injector sits between the `SensorHub` and the engine, exactly where
//! a flaky radio, a reflective canyon wall or a dying IMU would sit in the
//! field. Determinism discipline matches `uniloc-rng`'s stream design:
//! every epoch draws from its own child stream forked from the injector
//! seed and the *input* epoch index, so a clause that duplicates or
//! re-emits frames never shifts the randomness of later epochs, and the
//! full applied schedule is byte-reproducible from the `(seed, plan)`
//! pair over the same input frames.

use crate::plan::{FaultClause, FaultKind, FaultPlan};
use uniloc_geom::{GeoCoord, GeoFrame, Vector2};
use uniloc_rng::Rng;
use uniloc_sensors::SensorFrame;
use uniloc_stats::json::{Json, ToJson};

/// One applied fault, as recorded in the injector's schedule log.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Input epoch index the fault was applied at.
    pub epoch: usize,
    /// [`FaultKind::name`] of the fault.
    pub fault: String,
    /// Magnitude detail (displacement in m, bias in dB/rad, count of
    /// corrupted readings, ... — fault-specific, `0` where meaningless).
    pub magnitude: f64,
}

uniloc_stats::impl_json_struct!(FaultEvent { epoch, fault, magnitude });

/// Applies a [`FaultPlan`] to sensor-frame streams.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    geo: Option<GeoFrame>,
    /// Cumulative IMU heading bias (rad) accrued by `ImuBiasRamp`.
    imu_bias: f64,
    /// The heading a stuck compass axis is frozen at, once seen.
    stuck_heading: Option<f64>,
    events: Vec<FaultEvent>,
}

impl FaultInjector {
    /// Creates an injector for `plan`, drawing all randomness from `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultInjector {
            plan,
            seed,
            geo: None,
            imu_bias: 0.0,
            stuck_heading: None,
            events: Vec::new(),
        }
    }

    /// Supplies the map's geographic frame so GPS displacement faults are
    /// exact in map meters. Without it the injector falls back to a flat-
    /// earth degree approximation (fine for fault realism, off by <1% at
    /// campus scale).
    pub fn with_geo_frame(mut self, geo: GeoFrame) -> Self {
        self.geo = Some(geo);
        self
    }

    /// The plan being applied.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The log of every fault applied so far, in application order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The applied schedule serialized as canonical JSON — the
    /// byte-reproducibility witness: same `(seed, plan)` over the same
    /// frames must produce identical bytes.
    pub fn schedule_json(&self) -> String {
        uniloc_stats::json::to_string(&self.events)
    }

    /// Applies the plan to a whole walk. With [`FaultPlan::none`] the
    /// output is an exact clone of the input (same length, same bytes).
    ///
    /// Frame-stream faults may grow the output (duplicates, regressed
    /// re-emissions); per-channel faults corrupt frames in place. The
    /// `faults.injected.<kind>` counters record every application.
    pub fn inject_walk(&mut self, frames: &[SensorFrame]) -> Vec<SensorFrame> {
        let metrics = uniloc_obs::global_metrics();
        let total = frames.len();
        let mut out = Vec::with_capacity(total);
        for (epoch, frame) in frames.iter().enumerate() {
            // A child stream per input epoch: stream-stable regardless of
            // how many frames earlier clauses emitted.
            let mut rng = Rng::seed_from_u64(uniloc_rng::mix64(
                self.seed,
                0x6661756c74u64 ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ));
            let mut frame = frame.clone();
            let mut duplicate = false;
            let mut regressed: Option<f64> = None;
            let active: Vec<FaultClause> = self
                .plan
                .clauses
                .iter()
                .copied()
                .filter(|c| c.active(epoch, total))
                .collect();
            for clause in &active {
                self.apply(clause.kind, epoch, &mut frame, &mut rng, &mut duplicate, &mut regressed);
            }
            for e in &self.events[self.events.len().saturating_sub(active.len())..] {
                metrics.counter(&format!("faults.injected.{}", e.fault)).inc();
            }
            out.push(frame.clone());
            if duplicate {
                out.push(frame.clone());
            }
            if let Some(offset) = regressed {
                let mut old = frame;
                old.t -= offset;
                out.push(old);
            }
        }
        out
    }

    fn log(&mut self, epoch: usize, kind: FaultKind, magnitude: f64) {
        self.events.push(FaultEvent { epoch, fault: kind.name().to_owned(), magnitude });
    }

    fn apply(
        &mut self,
        kind: FaultKind,
        epoch: usize,
        frame: &mut SensorFrame,
        rng: &mut Rng,
        duplicate: &mut bool,
        regressed: &mut Option<f64>,
    ) {
        match kind {
            FaultKind::RadioBlackout { wifi, cell, gps } => {
                if wifi {
                    frame.wifi = None;
                }
                if cell {
                    frame.cell = None;
                }
                if gps {
                    frame.gps = None;
                }
                self.log(epoch, kind, 0.0);
            }
            FaultKind::ApChurn { fraction } => {
                let mut churned = 0usize;
                if let Some(scan) = frame.wifi.as_mut() {
                    for (id, _) in scan.readings.iter_mut() {
                        if rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                            // A phantom id far outside the survey range:
                            // the DB has never heard of it.
                            *id = uniloc_env::ApId(
                                1_000_000 + id.0 + rng.gen_range(0..1_000_000u32),
                            );
                            churned += 1;
                        }
                    }
                    // Scans carry readings in ascending id order; the
                    // fingerprint distance's merge walk relies on it.
                    scan.readings.sort_by_key(|(id, _)| *id);
                    scan.readings.dedup_by_key(|(id, _)| *id);
                }
                self.log(epoch, kind, churned as f64);
            }
            FaultKind::CellNlosBias { bias_db } => {
                if let Some(scan) = frame.cell.as_mut() {
                    for (_, rssi) in scan.readings.iter_mut() {
                        *rssi -= bias_db + 2.0 * rng.standard_normal().abs();
                    }
                }
                self.log(epoch, kind, bias_db);
            }
            FaultKind::GpsMultipathJump { magnitude_m, prob } => {
                let mut applied = 0.0;
                if let Some(fix) = frame.gps.as_mut() {
                    if rng.gen_bool(prob.clamp(0.0, 1.0)) {
                        let angle = rng.gen_range(0.0..(2.0 * std::f64::consts::PI));
                        let jump = Vector2::from_heading(angle, magnitude_m);
                        fix.coordinate = match &self.geo {
                            Some(geo) => geo.to_geo(geo.to_local(fix.coordinate) + jump),
                            None => flat_earth_offset(fix.coordinate, jump),
                        };
                        applied = magnitude_m;
                    }
                }
                self.log(epoch, kind, applied);
            }
            FaultKind::GpsStarvation => {
                if let Some(fix) = frame.gps.as_mut() {
                    if rng.gen_bool(0.3) {
                        // A junk fix leaks through, degraded below the
                        // paper's reliability gate.
                        fix.satellites = 4;
                        fix.hdop = 20.0;
                    } else {
                        frame.gps = None;
                    }
                }
                self.log(epoch, kind, 0.0);
            }
            FaultKind::ImuBiasRamp { rate_rad_per_s } => {
                for step in frame.steps.iter_mut() {
                    self.imu_bias += rate_rad_per_s * step.duration.max(0.0);
                    step.heading_est += self.imu_bias;
                }
                self.log(epoch, kind, self.imu_bias);
            }
            FaultKind::ImuStuckAxis => {
                for step in frame.steps.iter_mut() {
                    let stuck = *self.stuck_heading.get_or_insert(step.heading_est);
                    step.heading_est = stuck;
                }
                self.log(epoch, kind, self.stuck_heading.unwrap_or(0.0));
            }
            FaultKind::NanCorruption { prob } => {
                let mut corrupted = 0.0;
                if rng.gen_bool(prob.clamp(0.0, 1.0)) {
                    corrupted = 1.0;
                    match rng.gen_range(0..6u32) {
                        0 => {
                            if let Some(scan) = frame.wifi.as_mut() {
                                if let Some((_, rssi)) = scan.readings.first_mut() {
                                    *rssi = f64::NAN;
                                }
                            }
                        }
                        1 => {
                            if let Some(scan) = frame.cell.as_mut() {
                                if let Some((_, rssi)) = scan.readings.first_mut() {
                                    *rssi = f64::NAN;
                                }
                            }
                        }
                        2 => {
                            if let Some(fix) = frame.gps.as_mut() {
                                fix.hdop = f64::NAN;
                            }
                        }
                        3 => {
                            if let Some(step) = frame.steps.first_mut() {
                                step.length_est = f64::NAN;
                            }
                        }
                        4 => frame.light_lux = f64::NAN,
                        _ => frame.magnetic_variance = f64::INFINITY,
                    }
                }
                self.log(epoch, kind, corrupted);
            }
            FaultKind::DuplicateFrame { prob } => {
                if rng.gen_bool(prob.clamp(0.0, 1.0)) {
                    *duplicate = true;
                    self.log(epoch, kind, 1.0);
                } else {
                    self.log(epoch, kind, 0.0);
                }
            }
            FaultKind::TimeRegression { offset_s, prob } => {
                if rng.gen_bool(prob.clamp(0.0, 1.0)) {
                    *regressed = Some(offset_s);
                    self.log(epoch, kind, offset_s);
                } else {
                    self.log(epoch, kind, 0.0);
                }
            }
            // Process-level faults never touch the frame stream: the fleet
            // engine arms the panic out-of-band (`set_panic_at_epoch`), so
            // injection is an exact pass-through, like `FaultPlan::none`.
            FaultKind::ProcessPanic { .. } => {}
            FaultKind::ClockJitter { sigma_s } => {
                let jitter = sigma_s * rng.standard_normal();
                frame.t += jitter;
                self.log(epoch, kind, jitter);
            }
        }
    }
}

/// Degree-space fallback for GPS displacement when no [`GeoFrame`] was
/// supplied: 1 degree of latitude ≈ 111,320 m.
fn flat_earth_offset(c: GeoCoord, jump: Vector2) -> GeoCoord {
    const M_PER_DEG_LAT: f64 = 111_320.0;
    let lat = c.lat + jump.y / M_PER_DEG_LAT;
    let lon = c.lon + jump.x / (M_PER_DEG_LAT * c.lat.to_radians().cos().max(1e-6));
    GeoCoord::new(lat.clamp(-90.0, 90.0), lon.clamp(-180.0, 180.0))
        .unwrap_or(c)
}

/// Summary of a schedule: how many events of each kind were applied. Keys
/// are [`FaultKind::name`]s in sorted order.
pub fn schedule_summary(events: &[FaultEvent]) -> Json {
    let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for e in events {
        *counts.entry(e.fault.as_str()).or_default() += 1;
    }
    Json::Obj(
        counts
            .into_iter()
            .map(|(k, v)| (k.to_owned(), (v as i64).to_json()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultClause, FaultKind, FaultPlan};
    use uniloc_env::{campus, GaitProfile, Walker};
    use uniloc_sensors::{DeviceProfile, SensorHub};

    fn frames(seed: u64) -> Vec<SensorFrame> {
        let scenario = campus::daily_path(seed);
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(seed + 1));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), seed + 2);
        hub.sample_walk(&walk, 0.5)
    }

    #[test]
    fn none_plan_is_exact_pass_through() {
        let input = frames(1);
        let mut inj = FaultInjector::new(FaultPlan::none(), 7);
        let output = inj.inject_walk(&input);
        assert_eq!(input, output, "FaultPlan::none() must not touch a single byte");
        assert!(inj.events().is_empty());
    }

    #[test]
    fn same_seed_and_plan_reproduce_schedule_and_frames() {
        let input = frames(2);
        for plan in FaultPlan::library() {
            let mut a = FaultInjector::new(plan.clone(), 99);
            let mut b = FaultInjector::new(plan.clone(), 99);
            let fa = a.inject_walk(&input);
            let fb = b.inject_walk(&input);
            // Compare debug renderings, not PartialEq: NaN-corrupted
            // frames are never `==` themselves.
            assert_eq!(
                format!("{fa:?}"),
                format!("{fb:?}"),
                "{}: faulted frames diverged",
                plan.name
            );
            assert_eq!(
                a.schedule_json(),
                b.schedule_json(),
                "{}: schedules diverged",
                plan.name
            );
        }
    }

    #[test]
    fn different_seeds_diverge_for_stochastic_plans() {
        let input = frames(3);
        let plan = FaultPlan::by_name("gps_multipath").unwrap();
        let mut a = FaultInjector::new(plan.clone(), 1);
        let mut b = FaultInjector::new(plan, 2);
        assert_ne!(a.inject_walk(&input), b.inject_walk(&input));
    }

    #[test]
    fn blackout_kills_radios_inside_window_only() {
        let input = frames(4);
        let clause = FaultClause::over(
            0.4,
            0.6,
            FaultKind::RadioBlackout { wifi: true, cell: true, gps: true },
        );
        let plan = FaultPlan::new("test", vec![clause]);
        let mut inj = FaultInjector::new(plan, 5);
        let out = inj.inject_walk(&input);
        assert_eq!(out.len(), input.len());
        let n = out.len();
        for (i, f) in out.iter().enumerate() {
            let in_window = clause.active(i, n);
            if in_window {
                assert!(f.wifi.is_none() && f.cell.is_none() && f.gps.is_none());
            } else {
                assert_eq!(f, &input[i], "epoch {i} outside the window was touched");
            }
        }
    }

    #[test]
    fn ap_churn_keeps_scans_sorted() {
        let input = frames(5);
        let plan = FaultPlan::new(
            "churn",
            vec![FaultClause::over(0.0, 1.0, FaultKind::ApChurn { fraction: 0.8 })],
        );
        let mut inj = FaultInjector::new(plan, 6);
        let out = inj.inject_walk(&input);
        let mut churned = 0usize;
        for f in &out {
            if let Some(scan) = &f.wifi {
                for w in scan.readings.windows(2) {
                    assert!(w[0].0 < w[1].0, "scan readings must stay id-sorted");
                }
                churned += scan.readings.iter().filter(|(id, _)| id.0 >= 1_000_000).count();
            }
        }
        assert!(churned > 0, "churn plan churned nothing");
    }

    #[test]
    fn gps_jump_moves_fix_by_roughly_the_magnitude() {
        let scenario = campus::daily_path(8);
        let input = {
            let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(9));
            let walk = walker.walk(&scenario.route);
            let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 10);
            hub.sample_walk(&walk, 0.5)
        };
        let plan = FaultPlan::new(
            "jump",
            vec![FaultClause::over(
                0.0,
                1.0,
                FaultKind::GpsMultipathJump { magnitude_m: 500.0, prob: 1.0 },
            )],
        );
        let geo = *scenario.world.geo_frame();
        let mut inj = FaultInjector::new(plan, 11).with_geo_frame(geo);
        let out = inj.inject_walk(&input);
        let mut checked = 0usize;
        for (a, b) in input.iter().zip(&out) {
            if let (Some(fa), Some(fb)) = (a.gps, b.gps) {
                let d = geo.to_local(fa.coordinate).distance(geo.to_local(fb.coordinate));
                assert!((d - 500.0).abs() < 1.0, "jump was {d:.1} m");
                checked += 1;
            }
        }
        assert!(checked > 10, "no fixes to check");
    }

    #[test]
    fn frame_stream_faults_grow_the_stream() {
        let input = frames(12);
        let plan = FaultPlan::new(
            "stream",
            vec![
                FaultClause::over(0.0, 1.0, FaultKind::DuplicateFrame { prob: 0.5 }),
                FaultClause::over(0.0, 1.0, FaultKind::TimeRegression { offset_s: 3.0, prob: 0.3 }),
            ],
        );
        let mut inj = FaultInjector::new(plan, 13);
        let out = inj.inject_walk(&input);
        assert!(out.len() > input.len(), "stream faults must add frames");
        let regressions = out
            .windows(2)
            .filter(|w| w[1].t < w[0].t - 1e-9)
            .count();
        assert!(regressions > 0, "no timestamp regressions in the output");
    }

    #[test]
    fn nan_storm_poisons_channels() {
        let input = frames(14);
        let plan = FaultPlan::new(
            "nan",
            vec![FaultClause::over(0.0, 1.0, FaultKind::NanCorruption { prob: 1.0 })],
        );
        let mut inj = FaultInjector::new(plan, 15);
        let out = inj.inject_walk(&input);
        let poisoned = out
            .iter()
            .filter(|f| {
                !f.light_lux.is_finite()
                    || !f.magnetic_variance.is_finite()
                    || f.gps.is_some_and(|g| !g.hdop.is_finite())
                    || f.steps.iter().any(|s| !s.length_est.is_finite())
                    || f.wifi
                        .as_ref()
                        .is_some_and(|s| s.readings.iter().any(|(_, r)| !r.is_finite()))
                    || f.cell
                        .as_ref()
                        .is_some_and(|s| s.readings.iter().any(|(_, r)| !r.is_finite()))
            })
            .count();
        assert!(
            poisoned as f64 > 0.5 * out.len() as f64,
            "only {poisoned}/{} frames poisoned",
            out.len()
        );
    }
}
