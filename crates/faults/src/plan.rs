//! Fault plans: scripted, windowed fault schedules.
//!
//! A [`FaultPlan`] is a named list of [`FaultClause`]s. Each clause applies
//! one [`FaultKind`] over a window expressed as *fractions of the walk*
//! (`0.0` = first epoch, `1.0` = one past the last), so the same plan
//! stresses a 90-second office loop and a 20-minute campus path at the
//! same relative phase and always leaves the post-window tail available
//! for recovery measurement.
//!
//! Plans are pure data: applying one to a frame stream is the
//! [`FaultInjector`](crate::inject::FaultInjector)'s job, and that
//! application is byte-reproducible from the `(seed, plan)` pair.

use uniloc_stats::json::{FromJson, Json, JsonError, ToJson};

/// One class of sensor-level fault the injector can apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Radio blackout: the listed radios report nothing at all.
    RadioBlackout {
        /// Kill the WiFi radio.
        wifi: bool,
        /// Kill the cellular radio.
        cell: bool,
        /// Kill the GPS receiver.
        gps: bool,
    },
    /// WiFi AP churn: each reading's AP id is remapped to a phantom id
    /// (MAC randomization / AP replacement) with the given probability, so
    /// the online scan stops matching the survey-time database.
    ApChurn {
        /// Per-reading remap probability in `[0, 1]`.
        fraction: f64,
    },
    /// Cellular NLOS: every tower RSSI is attenuated by `bias_db` (plus a
    /// small per-reading jitter), dragging fingerprint matches far from
    /// the true position.
    CellNlosBias {
        /// Attenuation in dB applied to every tower reading.
        bias_db: f64,
    },
    /// GPS multipath: with the given per-epoch probability the fix is
    /// displaced by `magnitude_m` meters in a random direction while still
    /// reporting healthy HDOP/satellite counts.
    GpsMultipathJump {
        /// Displacement magnitude (m).
        magnitude_m: f64,
        /// Per-epoch jump probability in `[0, 1]`.
        prob: f64,
    },
    /// Urban-canyon starvation: the receiver mostly loses the sky; the
    /// occasional fix that does arrive is degraded below the paper's
    /// reliability gate (4 satellites, HDOP 20).
    GpsStarvation,
    /// IMU heading-bias ramp: a gyroscope/magnetometer bias that grows at
    /// `rate_rad_per_s` for the duration of the window.
    ImuBiasRamp {
        /// Bias growth rate (radians per second).
        rate_rad_per_s: f64,
    },
    /// Stuck compass axis: every step in the window reports the heading of
    /// the first step seen in the window.
    ImuStuckAxis,
    /// Numerical corruption: with the given per-epoch probability one
    /// sensor channel (chosen by the seeded stream) delivers NaN/Inf.
    NanCorruption {
        /// Per-epoch corruption probability in `[0, 1]`.
        prob: f64,
    },
    /// Frame duplication: with the given probability the epoch's frame is
    /// delivered twice (same timestamp, same payload).
    DuplicateFrame {
        /// Per-epoch duplication probability in `[0, 1]`.
        prob: f64,
    },
    /// Timestamp regression: with the given probability an extra frame
    /// with its clock rewound by `offset_s` follows the genuine one.
    TimeRegression {
        /// Rewind amount (s).
        offset_s: f64,
        /// Per-epoch regression probability in `[0, 1]`.
        prob: f64,
    },
    /// Clock jitter: every epoch timestamp is perturbed by zero-mean
    /// Gaussian noise of the given standard deviation.
    ClockJitter {
        /// Jitter standard deviation (s).
        sigma_s: f64,
    },
    /// Process-level fault: the serving session *panics* when it is about
    /// to step the given epoch. Unlike every sensor-level kind, this never
    /// touches the frame stream — the injector passes frames through
    /// untouched and the fleet engine arms the panic instead (caught at
    /// the supervised pool boundary and handled by the supervision
    /// policy). Deliberately excluded from [`FaultPlan::library`]: the
    /// unsupervised batch/chaos paths would die on it.
    ProcessPanic {
        /// Epoch index at which the step panics.
        epoch: u64,
    },
}

impl FaultKind {
    /// Stable machine name, used in schedules, metrics
    /// (`faults.injected.<name>`) and chaos reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::RadioBlackout { .. } => "radio_blackout",
            FaultKind::ApChurn { .. } => "ap_churn",
            FaultKind::CellNlosBias { .. } => "cell_nlos_bias",
            FaultKind::GpsMultipathJump { .. } => "gps_multipath_jump",
            FaultKind::GpsStarvation => "gps_starvation",
            FaultKind::ImuBiasRamp { .. } => "imu_bias_ramp",
            FaultKind::ImuStuckAxis => "imu_stuck_axis",
            FaultKind::NanCorruption { .. } => "nan_corruption",
            FaultKind::DuplicateFrame { .. } => "duplicate_frame",
            FaultKind::TimeRegression { .. } => "time_regression",
            FaultKind::ClockJitter { .. } => "clock_jitter",
            FaultKind::ProcessPanic { .. } => "process_panic",
        }
    }
}

/// One windowed fault: a [`FaultKind`] active over `[start, end)` expressed
/// as fractions of the walk's epoch count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultClause {
    /// Window start as a fraction of the walk in `[0, 1]`.
    pub start: f64,
    /// Window end (exclusive) as a fraction of the walk in `[0, 1]`.
    pub end: f64,
    /// The fault applied inside the window.
    pub kind: FaultKind,
}

impl FaultClause {
    /// A clause over `[start, end)` of the walk.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= start <= end <= 1`.
    pub fn over(start: f64, end: f64, kind: FaultKind) -> Self {
        assert!(
            (0.0..=1.0).contains(&start) && (0.0..=1.0).contains(&end) && start <= end,
            "fault window must satisfy 0 <= start <= end <= 1, got {start}..{end}"
        );
        FaultClause { start, end, kind }
    }

    /// Whether the clause is active at `epoch` of a walk `total` epochs
    /// long (the window rounds outward so a non-empty fraction always
    /// covers at least one epoch).
    pub fn active(&self, epoch: usize, total: usize) -> bool {
        if total == 0 || self.start >= self.end {
            return false;
        }
        // Nudge by an epsilon so exact products (0.55 * 100) land on the
        // intended epoch despite binary-fraction rounding.
        let lo = (self.start * total as f64 + 1e-9).floor() as usize;
        let hi = ((self.end * total as f64 - 1e-9).ceil() as usize).min(total);
        // A non-empty fraction always covers at least one epoch.
        let hi = hi.max((lo + 1).min(total));
        (lo..hi).contains(&epoch)
    }
}

/// A named, scripted fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Plan name (used in chaos reports and schedules).
    pub name: String,
    /// The windowed faults; clauses may overlap.
    pub clauses: Vec<FaultClause>,
}

impl FaultPlan {
    /// The empty plan: injection with it is an exact pass-through, byte
    /// for byte — the contract the golden-trace tests pin.
    pub fn none() -> Self {
        FaultPlan { name: "none".to_owned(), clauses: Vec::new() }
    }

    /// A named plan over explicit clauses.
    pub fn new(name: impl Into<String>, clauses: Vec<FaultClause>) -> Self {
        FaultPlan { name: name.into(), clauses }
    }

    /// Whether the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The end of the last fault window as a fraction of the walk
    /// (`0.0` for the empty plan) — everything after it is the recovery
    /// tail chaos sweeps measure.
    pub fn last_window_end(&self) -> f64 {
        self.clauses.iter().map(|c| c.end).fold(0.0, f64::max)
    }

    /// The built-in scenario library: one plan per fault regime the chaos
    /// sweep exercises. Most windows end by 60% of the walk so every plan
    /// leaves a recovery tail; the GPS plans instead target the *last*
    /// quarter (0.78–0.92), because the campus paths only reach open sky —
    /// and therefore only produce GPS fixes — on their outdoor tail, and a
    /// fault window that never overlaps a live channel tests nothing.
    pub fn library() -> Vec<FaultPlan> {
        use FaultKind::*;
        vec![
            FaultPlan::new(
                "radio_blackout",
                vec![FaultClause::over(
                    0.30,
                    0.55,
                    RadioBlackout { wifi: true, cell: true, gps: true },
                )],
            ),
            FaultPlan::new(
                "wifi_ap_churn",
                vec![FaultClause::over(0.30, 0.60, ApChurn { fraction: 0.7 })],
            ),
            FaultPlan::new(
                "cell_nlos",
                vec![FaultClause::over(0.30, 0.60, CellNlosBias { bias_db: 30.0 })],
            ),
            FaultPlan::new(
                "gps_multipath",
                // Short window by design: every in-window re-admission
                // probe re-trips and doubles the sentence, so the window
                // must end while the sentence still fits the walk's tail.
                vec![FaultClause::over(
                    0.78,
                    0.85,
                    GpsMultipathJump { magnitude_m: 900.0, prob: 0.6 },
                )],
            ),
            FaultPlan::new(
                "gps_canyon",
                vec![FaultClause::over(0.78, 0.92, GpsStarvation)],
            ),
            FaultPlan::new(
                "imu_bias_ramp",
                vec![FaultClause::over(0.30, 0.60, ImuBiasRamp { rate_rad_per_s: 0.06 })],
            ),
            FaultPlan::new(
                "imu_stuck_axis",
                vec![FaultClause::over(0.35, 0.55, ImuStuckAxis)],
            ),
            FaultPlan::new(
                "nan_storm",
                vec![FaultClause::over(0.30, 0.50, NanCorruption { prob: 0.8 })],
            ),
            FaultPlan::new(
                "frame_chaos",
                vec![
                    FaultClause::over(0.25, 0.55, DuplicateFrame { prob: 0.3 }),
                    FaultClause::over(0.25, 0.55, TimeRegression { offset_s: 4.0, prob: 0.2 }),
                    FaultClause::over(0.25, 0.55, ClockJitter { sigma_s: 0.05 }),
                ],
            ),
            FaultPlan::new(
                "kitchen_sink",
                vec![
                    FaultClause::over(0.25, 0.45, NanCorruption { prob: 0.5 }),
                    FaultClause::over(
                        0.78,
                        0.88,
                        GpsMultipathJump { magnitude_m: 700.0, prob: 0.5 },
                    ),
                    FaultClause::over(0.35, 0.55, ApChurn { fraction: 0.5 }),
                    FaultClause::over(0.35, 0.55, CellNlosBias { bias_db: 25.0 }),
                    FaultClause::over(0.40, 0.60, ImuBiasRamp { rate_rad_per_s: 0.04 }),
                ],
            ),
        ]
    }

    /// The small subset the CI smoke step sweeps: one radio fault, one
    /// numerical fault, one frame-stream fault.
    pub fn smoke_library() -> Vec<FaultPlan> {
        Self::library()
            .into_iter()
            .filter(|p| {
                matches!(p.name.as_str(), "radio_blackout" | "nan_storm" | "frame_chaos")
            })
            .collect()
    }

    /// The process-level panic-at-epoch plan: the chosen session's step
    /// panics at `epoch`. Named `panic_at_epoch_<N>` so it round-trips
    /// through [`by_name`](Self::by_name) like any library plan, but it is
    /// *not in* [`library`](Self::library) — only the supervised fleet
    /// path may schedule it (the unsupervised batch/chaos paths would die).
    pub fn panic_at_epoch(epoch: u64) -> FaultPlan {
        FaultPlan::new(
            format!("panic_at_epoch_{epoch}"),
            vec![FaultClause::over(0.0, 1.0, FaultKind::ProcessPanic { epoch })],
        )
    }

    /// The epoch a [`FaultKind::ProcessPanic`] clause arms, when the plan
    /// carries one (the last such clause wins).
    pub fn panic_epoch(&self) -> Option<u64> {
        self.clauses.iter().rev().find_map(|c| match c.kind {
            FaultKind::ProcessPanic { epoch } => Some(epoch),
            _ => None,
        })
    }

    /// Looks a plan up by name in [`library`](Self::library) (plus
    /// `"none"` and the process-level `panic_at_epoch_<N>` family).
    pub fn by_name(name: &str) -> Option<FaultPlan> {
        if name == "none" {
            return Some(FaultPlan::none());
        }
        if let Some(epoch) = name.strip_prefix("panic_at_epoch_") {
            return epoch.parse::<u64>().ok().map(FaultPlan::panic_at_epoch);
        }
        Self::library().into_iter().find(|p| p.name == name)
    }
}

impl ToJson for FaultKind {
    fn to_json(&self) -> Json {
        let obj = |fields: Vec<(&str, Json)>| {
            Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
        };
        let mut fields = vec![("kind", Json::Str(self.name().to_owned()))];
        match *self {
            FaultKind::RadioBlackout { wifi, cell, gps } => {
                fields.push(("wifi", wifi.to_json()));
                fields.push(("cell", cell.to_json()));
                fields.push(("gps", gps.to_json()));
            }
            FaultKind::ApChurn { fraction } => fields.push(("fraction", fraction.to_json())),
            FaultKind::CellNlosBias { bias_db } => fields.push(("bias_db", bias_db.to_json())),
            FaultKind::GpsMultipathJump { magnitude_m, prob } => {
                fields.push(("magnitude_m", magnitude_m.to_json()));
                fields.push(("prob", prob.to_json()));
            }
            FaultKind::GpsStarvation | FaultKind::ImuStuckAxis => {}
            FaultKind::ImuBiasRamp { rate_rad_per_s } => {
                fields.push(("rate_rad_per_s", rate_rad_per_s.to_json()));
            }
            FaultKind::NanCorruption { prob } | FaultKind::DuplicateFrame { prob } => {
                fields.push(("prob", prob.to_json()));
            }
            FaultKind::TimeRegression { offset_s, prob } => {
                fields.push(("offset_s", offset_s.to_json()));
                fields.push(("prob", prob.to_json()));
            }
            FaultKind::ClockJitter { sigma_s } => fields.push(("sigma_s", sigma_s.to_json())),
            FaultKind::ProcessPanic { epoch } => {
                fields.push(("epoch", Json::Int(epoch as i64)));
            }
        }
        obj(fields)
    }
}

impl FromJson for FaultKind {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::new("FaultKind object needs a `kind` string"))?;
        let f = |name: &str| -> Result<f64, JsonError> {
            json.get(name)
                .ok_or_else(|| JsonError::new(format!("FaultKind `{kind}` needs `{name}`")))
                .and_then(FromJson::from_json)
        };
        let b = |name: &str| -> Result<bool, JsonError> {
            json.get(name)
                .ok_or_else(|| JsonError::new(format!("FaultKind `{kind}` needs `{name}`")))
                .and_then(FromJson::from_json)
        };
        match kind {
            "radio_blackout" => Ok(FaultKind::RadioBlackout {
                wifi: b("wifi")?,
                cell: b("cell")?,
                gps: b("gps")?,
            }),
            "ap_churn" => Ok(FaultKind::ApChurn { fraction: f("fraction")? }),
            "cell_nlos_bias" => Ok(FaultKind::CellNlosBias { bias_db: f("bias_db")? }),
            "gps_multipath_jump" => Ok(FaultKind::GpsMultipathJump {
                magnitude_m: f("magnitude_m")?,
                prob: f("prob")?,
            }),
            "gps_starvation" => Ok(FaultKind::GpsStarvation),
            "imu_bias_ramp" => {
                Ok(FaultKind::ImuBiasRamp { rate_rad_per_s: f("rate_rad_per_s")? })
            }
            "imu_stuck_axis" => Ok(FaultKind::ImuStuckAxis),
            "nan_corruption" => Ok(FaultKind::NanCorruption { prob: f("prob")? }),
            "duplicate_frame" => Ok(FaultKind::DuplicateFrame { prob: f("prob")? }),
            "time_regression" => Ok(FaultKind::TimeRegression {
                offset_s: f("offset_s")?,
                prob: f("prob")?,
            }),
            "clock_jitter" => Ok(FaultKind::ClockJitter { sigma_s: f("sigma_s")? }),
            "process_panic" => {
                let epoch = json
                    .get("epoch")
                    .and_then(Json::as_i64)
                    .and_then(|e| u64::try_from(e).ok())
                    .ok_or_else(|| {
                        JsonError::new("FaultKind `process_panic` needs a non-negative `epoch`")
                    })?;
                Ok(FaultKind::ProcessPanic { epoch })
            }
            other => Err(JsonError::new(format!("unknown FaultKind `{other}`"))),
        }
    }
}

uniloc_stats::impl_json_struct!(FaultClause { start, end, kind });
uniloc_stats::impl_json_struct!(FaultPlan { name, clauses });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty_and_named() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert_eq!(p.name, "none");
        assert_eq!(p.last_window_end(), 0.0);
    }

    #[test]
    fn windows_round_outward() {
        let c = FaultClause::over(0.30, 0.55, FaultKind::GpsStarvation);
        assert!(!c.active(29, 100));
        assert!(c.active(30, 100));
        assert!(c.active(54, 100));
        assert!(!c.active(55, 100));
        // A sliver window still covers at least one epoch.
        let sliver = FaultClause::over(0.50, 0.501, FaultKind::GpsStarvation);
        assert!(sliver.active(50, 100));
        // Degenerate and empty-walk cases are inert.
        let degenerate = FaultClause::over(0.5, 0.5, FaultKind::GpsStarvation);
        assert!(!degenerate.active(50, 100));
        assert!(!c.active(0, 0));
    }

    #[test]
    #[should_panic(expected = "fault window")]
    fn inverted_window_rejected() {
        FaultClause::over(0.6, 0.3, FaultKind::GpsStarvation);
    }

    #[test]
    fn library_plans_leave_a_recovery_tail() {
        let lib = FaultPlan::library();
        assert!(lib.len() >= 8, "library too small: {}", lib.len());
        for p in &lib {
            assert!(!p.is_none(), "{} is empty", p.name);
            // Every plan must leave a recovery tail — at least the last 8%
            // of the walk fault-free (the GPS plans sit late because the
            // campus paths only produce fixes on their outdoor tail).
            assert!(
                p.last_window_end() <= 0.92,
                "{} leaves no recovery tail (ends at {})",
                p.name,
                p.last_window_end()
            );
            assert_eq!(FaultPlan::by_name(&p.name).as_ref(), Some(p));
        }
        assert_eq!(FaultPlan::by_name("none"), Some(FaultPlan::none()));
        assert_eq!(FaultPlan::by_name("nope"), None);
        assert!(!FaultPlan::smoke_library().is_empty());
    }

    #[test]
    fn plans_round_trip_through_json() {
        for p in FaultPlan::library() {
            let json = uniloc_stats::json::to_string(&p);
            let back: FaultPlan = uniloc_stats::json::from_str(&json).expect("parse plan");
            assert_eq!(back, p, "{} did not round-trip", p.name);
        }
    }

    #[test]
    fn panic_plans_resolve_by_name_and_stay_out_of_the_library() {
        let p = FaultPlan::panic_at_epoch(7);
        assert_eq!(p.name, "panic_at_epoch_7");
        assert_eq!(p.panic_epoch(), Some(7));
        assert_eq!(FaultPlan::none().panic_epoch(), None);
        assert_eq!(FaultPlan::by_name("panic_at_epoch_7"), Some(p.clone()));
        assert_eq!(FaultPlan::by_name("panic_at_epoch_"), None);
        assert_eq!(FaultPlan::by_name("panic_at_epoch_x"), None);
        // Sensor-plan sweeps must never pick up a process fault: a panic
        // plan in `library()` would kill every unsupervised chaos harness.
        assert!(FaultPlan::library().iter().all(|l| l.panic_epoch().is_none()));
        assert!(FaultPlan::smoke_library().iter().all(|l| l.panic_epoch().is_none()));
        let json = uniloc_stats::json::to_string(&p);
        let back: FaultPlan = uniloc_stats::json::from_str(&json).expect("parse panic plan");
        assert_eq!(back, p);
    }
}
