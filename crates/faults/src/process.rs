//! Process-level crash injection: simulated crashes *between* scheduler
//! rounds, for the checkpoint/resume differential harness.
//!
//! A sensor-level fault corrupts what a session sees; a process-level
//! fault kills the process serving it. The fleet engine simulates the
//! latter deterministically — `RunControl::stop_after_rounds` aborts the
//! scheduler loop after N rounds, abandoning every unretired session
//! exactly as a `kill -9` between rounds would. This module supplies the
//! schedule side: *where* to cut, swept deterministically so the
//! differential suite exercises early, middle and late crash points
//! without hand-picking rounds.

/// One simulated crash point: kill the process after `after_rounds`
/// scheduler rounds. The name keys the differential suite's diagnostics,
/// like a [`FaultPlan`](crate::FaultPlan) name keys a chaos row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashPoint {
    /// Schedule name (`crash_after_<N>`).
    pub name: String,
    /// Rounds to complete before the simulated crash.
    pub after_rounds: u64,
}

impl CrashPoint {
    /// The crash point after `after_rounds` rounds.
    pub fn after(after_rounds: u64) -> CrashPoint {
        CrashPoint { name: format!("crash_after_{after_rounds}"), after_rounds }
    }

    /// A deterministic sweep of `points` crash points over a run expected
    /// to take about `total_rounds` rounds: evenly spaced, never at round
    /// zero (a crash before any work is just a fresh start), always
    /// including a near-end cut. Aligning `total_rounds` to a multiple of
    /// the checkpoint cadence sweeps both crash-on-checkpoint and
    /// crash-between-checkpoint cases.
    pub fn sweep(total_rounds: u64, points: usize) -> Vec<CrashPoint> {
        let points = points.max(1) as u64;
        let total = total_rounds.max(points);
        (1..=points).map(|i| CrashPoint::after((total * i) / points)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_spaced_and_never_at_zero() {
        let s = CrashPoint::sweep(12, 4);
        assert_eq!(
            s.iter().map(|c| c.after_rounds).collect::<Vec<_>>(),
            vec![3, 6, 9, 12]
        );
        assert_eq!(s, CrashPoint::sweep(12, 4));
        assert_eq!(s[0].name, "crash_after_3");
        // Degenerate requests still produce at least one nonzero cut.
        for c in CrashPoint::sweep(0, 3) {
            assert!(c.after_rounds >= 1);
        }
        assert_eq!(CrashPoint::sweep(5, 1), vec![CrashPoint::after(5)]);
    }
}
