//! Property-based tests for the estimation filters, on the in-repo
//! [`uniloc_rng::check`] harness.

use uniloc_filters::{Hmm2Predictor, Kalman2D, ParticleFilter};
use uniloc_geom::Point;
use uniloc_rng::check::Checker;
use uniloc_rng::{require, require_eq, Rng};

const REGRESSIONS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/proptests.regressions");

fn checker(name: &str) -> Checker {
    Checker::new(name).cases(128).regressions(REGRESSIONS)
}

/// Weights stay a probability simplex through arbitrary reweight/resample
/// cycles.
#[test]
fn particle_weights_stay_normalized() {
    checker("particle_weights_stay_normalized").run(
        |rng, scale| {
            (
                rng.gen_range(0..1000u64),
                (0..20).map(|_| rng.gen_range(0.0..5.0 * scale)).collect::<Vec<f64>>(),
                rng.gen_bool(0.5),
            )
        },
        |(seed, likes, resample)| {
            let mut rng = Rng::seed_from_u64(*seed);
            let mut pf = ParticleFilter::new((0..likes.len()).map(|i| i as f64));
            let mut idx = 0;
            let changed = pf.reweight(|_| {
                let l = likes[idx % likes.len()];
                idx += 1;
                l
            });
            if changed {
                let total: f64 = pf.particles().iter().map(|p| p.weight).sum();
                require!((total - 1.0).abs() < 1e-9);
            }
            if *resample {
                pf.resample(&mut rng);
                let total: f64 = pf.particles().iter().map(|p| p.weight).sum();
                require!((total - 1.0).abs() < 1e-9);
                // Resampling preserves the population size.
                require_eq!(pf.len(), likes.len());
            }
            Ok(())
        },
    );
}

/// The weighted-mean estimate always lies within the particle range.
#[test]
fn particle_estimate_in_range() {
    checker("particle_estimate_in_range").run(
        |rng, scale| {
            let n = rng.gen_range(2..40usize);
            (
                (0..n)
                    .map(|_| rng.gen_range(-100.0 * scale..100.0 * scale.max(0.01)))
                    .collect::<Vec<f64>>(),
                (0..40).map(|_| rng.gen_range(0.01..1.0)).collect::<Vec<f64>>(),
            )
        },
        |(states, likes)| {
            let mut pf = ParticleFilter::new(states.clone());
            let mut idx = 0;
            pf.reweight(|_| {
                let l = likes[idx % likes.len()];
                idx += 1;
                l
            });
            let est = pf.estimate(|&x| x);
            let lo = states.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = states.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            require!(est >= lo - 1e-9 && est <= hi + 1e-9);
            Ok(())
        },
    );
}

/// Effective sample size is bounded by (0, n].
#[test]
fn ess_bounds() {
    checker("ess_bounds").run(
        |rng, scale| {
            let n = rng.gen_range(2..50usize);
            (0..n)
                .map(|_| rng.gen_range(0.01..0.01 + 9.99 * scale))
                .collect::<Vec<f64>>()
        },
        |likes| {
            let n = likes.len();
            let mut pf = ParticleFilter::new((0..n).map(|i| i as f64));
            let mut idx = 0;
            pf.reweight(|_| {
                let l = likes[idx];
                idx += 1;
                l
            });
            let ess = pf.effective_sample_size();
            require!(ess > 0.0 && ess <= n as f64 + 1e-9, "ess {ess} of {n}");
            Ok(())
        },
    );
}

/// The Kalman filter converges to any constant target it is fed.
#[test]
fn kalman_converges_to_constant() {
    checker("kalman_converges_to_constant").run(
        |rng, scale| {
            (
                rng.gen_range(-500.0 * scale..500.0 * scale.max(0.01)),
                rng.gen_range(-500.0 * scale..500.0 * scale.max(0.01)),
            )
        },
        |&(tx, ty)| {
            let mut kf = Kalman2D::new(Point::origin(), 0.5, 4.0);
            for _ in 0..60 {
                kf.predict(0.5);
                kf.update(Point::new(tx, ty));
            }
            let p = kf.position();
            require!((p.x - tx).abs() < 1.0, "x {} vs {}", p.x, tx);
            require!((p.y - ty).abs() < 1.0, "y {} vs {}", p.y, ty);
            Ok(())
        },
    );
}

/// HMM belief stays normalized for arbitrary observation streams.
#[test]
fn hmm_belief_normalized() {
    checker("hmm_belief_normalized").run(
        |rng, scale| {
            let n = rng.gen_range(1..20usize);
            (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0.0..50.0 * scale.max(0.02)),
                        rng.gen_range(-5.0 * scale..5.0 * scale.max(0.01)),
                    )
                })
                .collect::<Vec<(f64, f64)>>()
        },
        |obs| {
            let grid: Vec<Point> = (0..50).map(|i| Point::new(i as f64, 0.0)).collect();
            let mut hmm = Hmm2Predictor::new(grid, 2.5, 4.0).unwrap();
            for &(x, y) in obs {
                hmm.observe(Point::new(x, y));
                let total: f64 = hmm.belief().iter().sum();
                require!((total - 1.0).abs() < 1e-6, "belief sums to {total}");
                let m = hmm.mean();
                require!(m.x >= -1.0 && m.x <= 50.0, "mean {m} escaped the grid hull");
            }
            Ok(())
        },
    );
}
