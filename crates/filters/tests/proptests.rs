//! Property-based tests for the estimation filters.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use uniloc_filters::{Hmm2Predictor, Kalman2D, ParticleFilter};
use uniloc_geom::Point;

proptest! {
    /// Weights stay a probability simplex through arbitrary
    /// reweight/resample cycles.
    #[test]
    fn particle_weights_stay_normalized(
        seed in 0u64..1000,
        likes in proptest::collection::vec(0.0f64..5.0, 20),
        resample in proptest::bool::ANY,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pf = ParticleFilter::new((0..likes.len()).map(|i| i as f64));
        let mut idx = 0;
        let changed = pf.reweight(|_| {
            let l = likes[idx % likes.len()];
            idx += 1;
            l
        });
        if changed {
            let total: f64 = pf.particles().iter().map(|p| p.weight).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
        if resample {
            pf.resample(&mut rng);
            let total: f64 = pf.particles().iter().map(|p| p.weight).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            // Resampling preserves the population size.
            prop_assert_eq!(pf.len(), likes.len());
        }
    }

    /// The weighted-mean estimate always lies within the particle range.
    #[test]
    fn particle_estimate_in_range(
        states in proptest::collection::vec(-100.0f64..100.0, 2..40),
        likes in proptest::collection::vec(0.01f64..1.0, 40),
    ) {
        let mut pf = ParticleFilter::new(states.clone());
        let mut idx = 0;
        pf.reweight(|_| {
            let l = likes[idx % likes.len()];
            idx += 1;
            l
        });
        let est = pf.estimate(|&x| x);
        let lo = states.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = states.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
    }

    /// Effective sample size is bounded by (0, n].
    #[test]
    fn ess_bounds(
        likes in proptest::collection::vec(0.01f64..10.0, 2..50),
    ) {
        let n = likes.len();
        let mut pf = ParticleFilter::new((0..n).map(|i| i as f64));
        let mut idx = 0;
        pf.reweight(|_| {
            let l = likes[idx];
            idx += 1;
            l
        });
        let ess = pf.effective_sample_size();
        prop_assert!(ess > 0.0 && ess <= n as f64 + 1e-9, "ess {ess} of {n}");
    }

    /// The Kalman filter converges to any constant target it is fed.
    #[test]
    fn kalman_converges_to_constant(
        tx in -500.0f64..500.0,
        ty in -500.0f64..500.0,
    ) {
        let mut kf = Kalman2D::new(Point::origin(), 0.5, 4.0);
        for _ in 0..60 {
            kf.predict(0.5);
            kf.update(Point::new(tx, ty));
        }
        let p = kf.position();
        prop_assert!((p.x - tx).abs() < 1.0, "x {} vs {}", p.x, tx);
        prop_assert!((p.y - ty).abs() < 1.0, "y {} vs {}", p.y, ty);
    }

    /// HMM belief stays normalized for arbitrary observation streams.
    #[test]
    fn hmm_belief_normalized(
        obs in proptest::collection::vec((0.0f64..50.0, -5.0f64..5.0), 1..20),
    ) {
        let grid: Vec<Point> =
            (0..50).map(|i| Point::new(i as f64, 0.0)).collect();
        let mut hmm = Hmm2Predictor::new(grid, 2.5, 4.0).unwrap();
        for (x, y) in obs {
            hmm.observe(Point::new(x, y));
            let total: f64 = hmm.belief().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-6, "belief sums to {total}");
            let m = hmm.mean();
            prop_assert!(m.x >= -1.0 && m.x <= 50.0, "mean {m} escaped the grid hull");
        }
    }
}
