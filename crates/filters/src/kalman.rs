//! A 2-D constant-velocity Kalman filter.
//!
//! State `[x, y, vx, vy]`, position observations. The paper lists the
//! Kalman filter (alongside the second-order HMM it ultimately uses) as a
//! candidate for predicting the user's location when computing the online
//! fingerprint-density feature; it is also the classic smoother for raw GPS
//! tracks.

use uniloc_geom::Point;
use uniloc_stats::Matrix;

/// A constant-velocity Kalman filter over the map plane.
///
/// # Examples
///
/// ```
/// use uniloc_filters::Kalman2D;
/// use uniloc_geom::Point;
///
/// let mut kf = Kalman2D::new(Point::new(0.0, 0.0), 1.0, 4.0);
/// // Target moves east 1 m per tick; observations are noisy.
/// for i in 1..=20 {
///     kf.predict(1.0);
///     kf.update(Point::new(i as f64 + 0.3, -0.2));
/// }
/// let p = kf.position();
/// assert!((p.x - 20.0).abs() < 1.0);
/// assert!(p.y.abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kalman2D {
    /// State vector [x, y, vx, vy] as a 4x1 matrix.
    state: Matrix,
    /// State covariance (4x4).
    cov: Matrix,
    /// Process-noise intensity (acceleration variance).
    q: f64,
    /// Measurement-noise variance (m^2).
    r: f64,
}

impl Kalman2D {
    /// Creates a filter at `start` with zero velocity.
    ///
    /// `q` is the process-noise intensity (how hard the target can
    /// accelerate), `r` the measurement variance in m^2.
    ///
    /// # Panics
    ///
    /// Panics when `q` or `r` is not positive.
    pub fn new(start: Point, q: f64, r: f64) -> Self {
        assert!(q > 0.0 && r > 0.0, "noise parameters must be positive");
        let mut state = Matrix::zeros(4, 1);
        state[(0, 0)] = start.x;
        state[(1, 0)] = start.y;
        let mut cov = Matrix::identity(4);
        for i in 0..4 {
            cov[(i, i)] = 10.0;
        }
        Kalman2D { state, cov, q, r }
    }

    /// Current position estimate.
    pub fn position(&self) -> Point {
        Point::new(self.state[(0, 0)], self.state[(1, 0)])
    }

    /// Current velocity estimate (m/s).
    pub fn velocity(&self) -> (f64, f64) {
        (self.state[(2, 0)], self.state[(3, 0)])
    }

    /// Position variance (trace of the positional covariance block / 2).
    pub fn position_variance(&self) -> f64 {
        (self.cov[(0, 0)] + self.cov[(1, 1)]) / 2.0
    }

    /// Time-update: propagate the constant-velocity model by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics when `dt` is not positive.
    pub fn predict(&mut self, dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        let mut f = Matrix::identity(4);
        f[(0, 2)] = dt;
        f[(1, 3)] = dt;
        self.state = &f * &self.state;
        // Discrete white-noise acceleration process covariance.
        let dt2 = dt * dt;
        let dt3 = dt2 * dt;
        let dt4 = dt3 * dt;
        let mut qm = Matrix::zeros(4, 4);
        qm[(0, 0)] = dt4 / 4.0;
        qm[(1, 1)] = dt4 / 4.0;
        qm[(0, 2)] = dt3 / 2.0;
        qm[(2, 0)] = dt3 / 2.0;
        qm[(1, 3)] = dt3 / 2.0;
        qm[(3, 1)] = dt3 / 2.0;
        qm[(2, 2)] = dt2;
        qm[(3, 3)] = dt2;
        let qm = qm.scale(self.q);
        self.cov = &(&(&f * &self.cov) * &f.transpose()) + &qm;
    }

    /// Measurement-update with a position observation.
    pub fn update(&mut self, z: Point) {
        // H selects position: 2x4.
        let mut h = Matrix::zeros(2, 4);
        h[(0, 0)] = 1.0;
        h[(1, 1)] = 1.0;
        let mut zm = Matrix::zeros(2, 1);
        zm[(0, 0)] = z.x;
        zm[(1, 0)] = z.y;
        let innovation = &zm - &(&h * &self.state);
        let mut r = Matrix::identity(2);
        r[(0, 0)] = self.r;
        r[(1, 1)] = self.r;
        let s = &(&(&h * &self.cov) * &h.transpose()) + &r;
        let k = (&self.cov * &h.transpose())
            .matmul(&s.inverse().expect("innovation covariance is PD"))
            .expect("gain shapes agree");
        self.state = &self.state + &(&k * &innovation);
        let i = Matrix::identity(4);
        let kh = &k * &h;
        self.cov = (&i - &kh).matmul(&self.cov).expect("covariance shapes agree");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_static_target() {
        let mut kf = Kalman2D::new(Point::new(0.0, 0.0), 0.1, 2.0);
        for _ in 0..30 {
            kf.predict(0.5);
            kf.update(Point::new(10.0, -5.0));
        }
        let p = kf.position();
        assert!((p.x - 10.0).abs() < 0.3);
        assert!((p.y + 5.0).abs() < 0.3);
        let (vx, vy) = kf.velocity();
        assert!(vx.abs() < 0.5 && vy.abs() < 0.5);
    }

    #[test]
    fn variance_shrinks_with_updates() {
        let mut kf = Kalman2D::new(Point::origin(), 0.5, 4.0);
        let before = kf.position_variance();
        for _ in 0..10 {
            kf.predict(0.5);
            kf.update(Point::origin());
        }
        assert!(kf.position_variance() < before);
    }

    #[test]
    fn variance_grows_without_updates() {
        let mut kf = Kalman2D::new(Point::origin(), 0.5, 4.0);
        for _ in 0..5 {
            kf.predict(0.5);
            kf.update(Point::origin());
        }
        let settled = kf.position_variance();
        for _ in 0..10 {
            kf.predict(0.5);
        }
        assert!(kf.position_variance() > settled);
    }

    #[test]
    fn tracks_constant_velocity() {
        let mut kf = Kalman2D::new(Point::origin(), 1.0, 1.0);
        for i in 1..=40 {
            kf.predict(0.5);
            // Target: 1 m/s east, 0.5 m/s north.
            kf.update(Point::new(i as f64 * 0.5, i as f64 * 0.25));
        }
        let (vx, vy) = kf.velocity();
        assert!((vx - 1.0).abs() < 0.2, "vx {vx}");
        assert!((vy - 0.5).abs() < 0.2, "vy {vy}");
    }

    #[test]
    #[should_panic(expected = "noise parameters must be positive")]
    fn rejects_bad_noise() {
        Kalman2D::new(Point::origin(), 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn rejects_bad_dt() {
        Kalman2D::new(Point::origin(), 1.0, 1.0).predict(0.0);
    }
}
