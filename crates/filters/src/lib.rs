//! Estimation filters used across the UniLoc schemes.
//!
//! * [`particle`] — the generic particle filter behind the motion-based PDR
//!   and the fusion scheme ("300 particles are generated and maintained
//!   every step", Section II of the paper).
//! * [`kalman`] — a 2-D constant-velocity Kalman filter, one of the
//!   "existing location prediction methods [24], like Hidden Markov Model
//!   (HMM) or Kalman filter" the paper mentions for the online
//!   fingerprint-density feature.
//! * [`hmm`] — the second-order HMM grid predictor the paper actually uses:
//!   "In our current implementation, we use a second order HMM, which can
//!   provide an acceptable estimation accuracy."

pub mod hmm;
pub mod kalman;
pub mod particle;

pub use hmm::Hmm2Predictor;
pub use kalman::Kalman2D;
pub use particle::{Particle, ParticleFilter};
