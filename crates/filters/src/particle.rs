//! A generic sequential-importance-resampling particle filter.
//!
//! The motion-based PDR of [7] and the Travi-Navi-style fusion scheme both
//! maintain a cloud of particles per step: predict with the noisy step
//! model, kill particles that cross walls (weight zero), reweight by RSSI
//! likelihood (fusion only), and resample when the effective sample size
//! collapses.

use uniloc_rng::Rng;

/// One weighted hypothesis.
#[derive(Debug, Clone, PartialEq)]
pub struct Particle<S> {
    /// The hypothesis state.
    pub state: S,
    /// Importance weight (maintained normalized after updates).
    pub weight: f64,
}

/// A particle filter over states of type `S`.
///
/// # Examples
///
/// Tracking a 1-D random walk:
///
/// ```
/// use uniloc_filters::ParticleFilter;
///
/// let mut rng = uniloc_rng::Rng::seed_from_u64(1);
/// let mut pf = ParticleFilter::new((0..200).map(|i| i as f64 * 0.1));
/// // Observe the target near 5.0.
/// pf.reweight(|&x: &f64| (-(x - 5.0) * (x - 5.0)).exp());
/// let est = pf.estimate(|&x| x);
/// assert!((est - 5.0).abs() < 0.5);
/// ```
#[derive(Debug)]
pub struct ParticleFilter<S> {
    particles: Vec<Particle<S>>,
    /// Resampling scratch: the next cloud is built here and swapped in, so
    /// steady-state resampling reuses one buffer instead of allocating a
    /// fresh `Vec` per resample. Empty between calls.
    spare: Vec<Particle<S>>,
    /// Reweighting scratch: the pre-update weights, kept for the
    /// total-collapse rollback. Cleared between calls.
    prior_weights: Vec<f64>,
}

/// Scratch buffers are transient: a clone starts with empty (but
/// pre-sized) scratch, and equality compares the cloud only.
impl<S: Clone> Clone for ParticleFilter<S> {
    fn clone(&self) -> Self {
        ParticleFilter {
            particles: self.particles.clone(),
            spare: Vec::with_capacity(self.particles.len()),
            prior_weights: Vec::with_capacity(self.particles.len()),
        }
    }
}

impl<S: PartialEq> PartialEq for ParticleFilter<S> {
    fn eq(&self, other: &Self) -> bool {
        self.particles == other.particles
    }
}

impl<S: Clone> ParticleFilter<S> {
    /// Creates a filter with uniform weights over the given states.
    ///
    /// # Panics
    ///
    /// Panics when `states` is empty.
    pub fn new(states: impl IntoIterator<Item = S>) -> Self {
        let particles: Vec<Particle<S>> = states
            .into_iter()
            .map(|state| Particle { state, weight: 1.0 })
            .collect();
        assert!(!particles.is_empty(), "particle filter needs at least one particle");
        let n = particles.len();
        let mut pf = ParticleFilter {
            particles,
            spare: Vec::with_capacity(n),
            prior_weights: Vec::with_capacity(n),
        };
        pf.normalize();
        pf
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// Always false — construction rejects empty clouds.
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Read access to the cloud.
    pub fn particles(&self) -> &[Particle<S>] {
        &self.particles
    }

    /// Applies a motion model to every particle.
    pub fn predict<F>(&mut self, rng: &mut Rng, mut motion: F)
    where
        F: FnMut(&mut S, &mut Rng),
    {
        for p in &mut self.particles {
            motion(&mut p.state, rng);
        }
    }

    /// Multiplies weights by a likelihood and renormalizes.
    ///
    /// Returns `false` when every particle got zero likelihood (total
    /// collapse — e.g. all particles crossed walls); in that case the
    /// previous weights are restored so the caller can decide how to
    /// recover (typically by reinitializing around a landmark).
    pub fn reweight<F>(&mut self, mut likelihood: F) -> bool
    where
        F: FnMut(&S) -> f64,
    {
        self.prior_weights.clear();
        self.prior_weights.extend(self.particles.iter().map(|p| p.weight));
        let mut total = 0.0;
        for p in &mut self.particles {
            let l = likelihood(&p.state).max(0.0);
            p.weight *= l;
            total += p.weight;
        }
        if total <= 0.0 || !total.is_finite() {
            for (p, &w) in self.particles.iter_mut().zip(&self.prior_weights) {
                p.weight = w;
            }
            return false;
        }
        for p in &mut self.particles {
            p.weight /= total;
        }
        true
    }

    /// Normalizes weights to sum to one (uniform if all are zero).
    pub fn normalize(&mut self) {
        let total: f64 = self.particles.iter().map(|p| p.weight).sum();
        if total > 0.0 && total.is_finite() {
            for p in &mut self.particles {
                p.weight /= total;
            }
        } else {
            let w = 1.0 / self.particles.len() as f64;
            for p in &mut self.particles {
                p.weight = w;
            }
        }
    }

    /// Effective sample size `1 / sum(w_i^2)` — the standard degeneracy
    /// metric.
    pub fn effective_sample_size(&self) -> f64 {
        let s: f64 = self.particles.iter().map(|p| p.weight * p.weight).sum();
        if s > 0.0 {
            1.0 / s
        } else {
            0.0
        }
    }

    /// Systematic resampling: draws a fresh equally-weighted cloud.
    pub fn resample(&mut self, rng: &mut Rng) {
        let n = self.particles.len();
        let step = 1.0 / n as f64;
        let mut u = rng.gen_range(0.0..step);
        let mut cum = self.particles[0].weight;
        let mut i = 0usize;
        self.spare.clear();
        self.spare.reserve(n);
        for _ in 0..n {
            while u > cum && i + 1 < n {
                i += 1;
                cum += self.particles[i].weight;
            }
            self.spare.push(Particle { state: self.particles[i].state.clone(), weight: step });
            u += step;
        }
        std::mem::swap(&mut self.particles, &mut self.spare);
        self.spare.clear();
    }

    /// Stratified resampling: one uniform draw per stratum of width `1/n`.
    /// Compared with systematic resampling's single shared offset, strata
    /// draws are independent, which removes the (rare) alignment artifacts
    /// a periodic weight pattern can cause.
    pub fn resample_stratified(&mut self, rng: &mut Rng) {
        let n = self.particles.len();
        let step = 1.0 / n as f64;
        let mut cum = self.particles[0].weight;
        let mut i = 0usize;
        self.spare.clear();
        self.spare.reserve(n);
        for k in 0..n {
            let u = k as f64 * step + rng.gen_range(0.0..step);
            while u > cum && i + 1 < n {
                i += 1;
                cum += self.particles[i].weight;
            }
            self.spare.push(Particle { state: self.particles[i].state.clone(), weight: step });
        }
        std::mem::swap(&mut self.particles, &mut self.spare);
        self.spare.clear();
    }

    /// Resamples only when the effective sample size falls below
    /// `threshold_frac * len` (typically 0.5).
    pub fn maybe_resample(&mut self, threshold_frac: f64, rng: &mut Rng) -> bool {
        if self.effective_sample_size() < threshold_frac * self.particles.len() as f64 {
            self.resample(rng);
            true
        } else {
            false
        }
    }

    /// Weighted mean of a scalar projection of the state.
    pub fn estimate<F>(&self, mut project: F) -> f64
    where
        F: FnMut(&S) -> f64,
    {
        self.particles.iter().map(|p| p.weight * project(&p.state)).sum()
    }

    /// Weighted mean of a 2-D projection (e.g. particle position).
    pub fn estimate_xy<F>(&self, mut project: F) -> (f64, f64)
    where
        F: FnMut(&S) -> (f64, f64),
    {
        let mut x = 0.0;
        let mut y = 0.0;
        for p in &self.particles {
            let (px, py) = project(&p.state);
            x += p.weight * px;
            y += p.weight * py;
        }
        (x, y)
    }

    /// Replaces the entire cloud (e.g. reinitializing at a landmark).
    ///
    /// # Panics
    ///
    /// Panics when `states` is empty.
    pub fn reinitialize(&mut self, states: impl IntoIterator<Item = S>) {
        let particles: Vec<Particle<S>> = states
            .into_iter()
            .map(|state| Particle { state, weight: 1.0 })
            .collect();
        assert!(!particles.is_empty(), "cannot reinitialize with zero particles");
        self.particles = particles;
        self.spare.clear();
        self.spare.reserve(self.particles.len());
        self.prior_weights.clear();
        self.prior_weights.reserve(self.particles.len());
        self.normalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Rng {
        Rng::seed_from_u64(seed)
    }

    #[test]
    fn new_normalizes_weights() {
        let pf = ParticleFilter::new(vec![1.0f64, 2.0, 3.0, 4.0]);
        let total: f64 = pf.particles().iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(pf.len(), 4);
        assert!(!pf.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one particle")]
    fn empty_cloud_panics() {
        ParticleFilter::<f64>::new(vec![]);
    }

    #[test]
    fn reweight_concentrates_mass() {
        let mut pf = ParticleFilter::new((0..100).map(|i| i as f64));
        assert!(pf.reweight(|&x| if (40.0..=60.0).contains(&x) { 1.0 } else { 0.0 }));
        let est = pf.estimate(|&x| x);
        assert!((est - 50.0).abs() < 1.0);
        // ESS dropped from 100 to ~21.
        assert!(pf.effective_sample_size() < 25.0);
    }

    #[test]
    fn reweight_total_collapse_restores_weights() {
        let mut pf = ParticleFilter::new(vec![1.0f64, 2.0]);
        let before: Vec<f64> = pf.particles().iter().map(|p| p.weight).collect();
        assert!(!pf.reweight(|_| 0.0));
        let after: Vec<f64> = pf.particles().iter().map(|p| p.weight).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn resample_prefers_heavy_particles() {
        let mut pf = ParticleFilter::new((0..50).map(|i| i as f64));
        pf.reweight(|&x| if x == 7.0 { 1.0 } else { 1e-6 });
        pf.resample(&mut rng(1));
        let sevens = pf.particles().iter().filter(|p| p.state == 7.0).count();
        assert!(sevens > 45, "resampling should clone the dominant particle, got {sevens}");
        // Weights equalized.
        let w = pf.particles()[0].weight;
        assert!(pf.particles().iter().all(|p| (p.weight - w).abs() < 1e-12));
    }

    #[test]
    fn maybe_resample_only_on_degeneracy() {
        let mut pf = ParticleFilter::new((0..10).map(|i| i as f64));
        assert!(!pf.maybe_resample(0.5, &mut rng(2)), "uniform cloud must not resample");
        pf.reweight(|&x| if x < 2.0 { 1.0 } else { 1e-9 });
        assert!(pf.maybe_resample(0.5, &mut rng(3)));
    }

    #[test]
    fn predict_applies_motion() {
        let mut pf = ParticleFilter::new(vec![0.0f64; 10]);
        pf.predict(&mut rng(4), |s, _| *s += 2.0);
        assert!(pf.particles().iter().all(|p| p.state == 2.0));
    }

    #[test]
    fn estimate_xy_weighted_mean() {
        let mut pf = ParticleFilter::new(vec![(0.0f64, 0.0f64), (10.0, 20.0)]);
        pf.reweight(|_| 1.0);
        let (x, y) = pf.estimate_xy(|&(a, b)| (a, b));
        assert!((x - 5.0).abs() < 1e-12);
        assert!((y - 10.0).abs() < 1e-12);
    }

    #[test]
    fn reinitialize_replaces_cloud() {
        let mut pf = ParticleFilter::new(vec![1.0f64]);
        pf.reinitialize(vec![5.0, 6.0, 7.0]);
        assert_eq!(pf.len(), 3);
        let total: f64 = pf.particles().iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stratified_resampling_preserves_distribution() {
        let mut pf = ParticleFilter::new((0..200).map(|i| i as f64));
        // Weight mass concentrated on states 50..70.
        pf.reweight(|&x| if (50.0..70.0).contains(&x) { 1.0 } else { 1e-9 });
        let before = pf.estimate(|&x| x);
        pf.resample_stratified(&mut rng(7));
        let after = pf.estimate(|&x| x);
        assert!((before - after).abs() < 2.0, "{before} vs {after}");
        // Equal weights afterwards.
        let w = pf.particles()[0].weight;
        assert!(pf.particles().iter().all(|p| (p.weight - w).abs() < 1e-12));
        assert_eq!(pf.len(), 200);
        // Survivors come from the heavy region.
        let heavy = pf
            .particles()
            .iter()
            .filter(|p| (50.0..70.0).contains(&p.state))
            .count();
        assert!(heavy > 190, "only {heavy} survivors from the heavy region");
    }

    #[test]
    fn stratified_and_systematic_agree_on_mean(
    ) {
        let mut a = ParticleFilter::new((0..300).map(|i| i as f64 * 0.1));
        let mut b = a.clone();
        let weight = |x: &f64| (-(x - 15.0) * (x - 15.0) / 8.0).exp();
        a.reweight(weight);
        b.reweight(weight);
        a.resample(&mut rng(11));
        b.resample_stratified(&mut rng(12));
        let ma = a.estimate(|&x| x);
        let mb = b.estimate(|&x| x);
        assert!((ma - mb).abs() < 1.0, "systematic {ma} vs stratified {mb}");
    }

    #[test]
    fn tracking_a_moving_target() {
        // A target moves +1 per tick; the filter tracks it through noisy
        // observations.
        let mut r = rng(5);
        let mut pf = ParticleFilter::new((0..300).map(|i| i as f64 * 0.1));
        let mut target = 3.0;
        for _ in 0..30 {
            target += 1.0;
            pf.predict(&mut r, |s, rng| *s += 1.0 + rng.gen_range(-0.3..0.3));
            let obs = target + 0.2;
            pf.reweight(|&x| (-(x - obs) * (x - obs) / 2.0).exp());
            pf.maybe_resample(0.5, &mut r);
        }
        let est = pf.estimate(|&x| x);
        assert!((est - target).abs() < 1.0, "est {est} vs target {target}");
    }
}
