//! Second-order HMM grid location predictor.
//!
//! UniLoc needs the user's (approximate) location *before* the WiFi scheme
//! produces one, to compute the online fingerprint-density feature
//! (`beta_1`): "to calculate the value of factor beta_1, we estimate the
//! user's location based on the existing location prediction methods [...]
//! In our current implementation, we use a second order HMM."
//!
//! States are the fingerprint grid locations. The transition model is
//! second-order: given the last two smoothed positions, the walker is
//! expected to continue with the same displacement; states near the
//! extrapolated point get high transition probability. The observation
//! model is a Gaussian kernel around the latest (noisy) location evidence.

use uniloc_geom::Point;

/// A discrete-grid second-order HMM location filter.
///
/// # Examples
///
/// ```
/// use uniloc_filters::Hmm2Predictor;
/// use uniloc_geom::Point;
///
/// // A 1-D corridor of candidate locations every meter.
/// let grid: Vec<Point> = (0..50).map(|i| Point::new(i as f64, 0.0)).collect();
/// let mut hmm = Hmm2Predictor::new(grid, 2.0, 4.0)?;
/// // Feed noisy observations of a walker moving east 1 m per epoch.
/// let mut est = Point::new(0.0, 0.0);
/// for i in 0..20 {
///     let obs = Point::new(i as f64 + 0.8, 0.0);
///     est = hmm.observe(obs);
/// }
/// // The smoothed track follows the walker (with a small smoothing lag).
/// assert!((est.x - 19.8).abs() < 4.0);
/// // The second-order prediction extrapolates the motion.
/// let next = hmm.predict_next().unwrap();
/// assert!(next.x > est.x);
/// # Ok::<(), &'static str>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Hmm2Predictor {
    states: Vec<Point>,
    belief: Vec<f64>,
    prev_mean: Option<Point>,
    prev_prev_mean: Option<Point>,
    trans_sigma: f64,
    obs_sigma: f64,
}

impl Hmm2Predictor {
    /// Creates a predictor over `states` (typically the fingerprint grid).
    ///
    /// `trans_sigma` is the motion-model spread (m), `obs_sigma` the
    /// observation spread (m).
    ///
    /// # Errors
    ///
    /// Returns an error message when `states` is empty or sigmas are not
    /// positive.
    pub fn new(states: Vec<Point>, trans_sigma: f64, obs_sigma: f64) -> Result<Self, &'static str> {
        if states.is_empty() {
            return Err("Hmm2Predictor needs at least one state");
        }
        if trans_sigma <= 0.0 || obs_sigma <= 0.0 {
            return Err("Hmm2Predictor sigmas must be positive");
        }
        let n = states.len();
        Ok(Hmm2Predictor {
            states,
            belief: vec![1.0 / n as f64; n],
            prev_mean: None,
            prev_prev_mean: None,
            trans_sigma,
            obs_sigma,
        })
    }

    /// The candidate states.
    pub fn states(&self) -> &[Point] {
        &self.states
    }

    /// Current belief over the states (sums to one).
    pub fn belief(&self) -> &[f64] {
        &self.belief
    }

    /// Incorporates one noisy location observation and returns the smoothed
    /// position estimate (belief-weighted mean).
    pub fn observe(&mut self, obs: Point) -> Point {
        // Second-order extrapolation from the two previous means.
        let expected = match (self.prev_mean, self.prev_prev_mean) {
            (Some(m1), Some(m2)) => Some(m1 + (m1 - m2)),
            (Some(m1), None) => Some(m1),
            _ => None,
        };
        let t2 = 2.0 * self.trans_sigma * self.trans_sigma;
        let o2 = 2.0 * self.obs_sigma * self.obs_sigma;
        let mut total = 0.0;
        for (i, s) in self.states.iter().enumerate() {
            let trans = match expected {
                Some(e) => (-s.distance_sq(e) / t2).exp(),
                None => 1.0,
            };
            let observation = (-s.distance_sq(obs) / o2).exp();
            let post = trans * observation;
            self.belief[i] = post;
            total += post;
        }
        if total > 0.0 && total.is_finite() {
            for b in &mut self.belief {
                *b /= total;
            }
        } else {
            // Degenerate: reset to the observation kernel alone.
            let mut t = 0.0;
            for (i, s) in self.states.iter().enumerate() {
                let w = (-s.distance_sq(obs) / o2).exp();
                self.belief[i] = w;
                t += w;
            }
            if t > 0.0 {
                for b in &mut self.belief {
                    *b /= t;
                }
            } else {
                let u = 1.0 / self.states.len() as f64;
                self.belief.fill(u);
            }
        }
        let mean = self.mean();
        self.prev_prev_mean = self.prev_mean;
        self.prev_mean = Some(mean);
        mean
    }

    /// The belief-weighted mean position.
    pub fn mean(&self) -> Point {
        let mut x = 0.0;
        let mut y = 0.0;
        for (s, b) in self.states.iter().zip(&self.belief) {
            x += s.x * b;
            y += s.y * b;
        }
        Point::new(x, y)
    }

    /// Second-order prediction of the *next* position (before any
    /// observation arrives) — what the feature extractor uses.
    pub fn predict_next(&self) -> Option<Point> {
        match (self.prev_mean, self.prev_prev_mean) {
            (Some(m1), Some(m2)) => Some(m1 + (m1 - m2)),
            (Some(m1), None) => Some(m1),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corridor_grid() -> Vec<Point> {
        (0..60).map(|i| Point::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn construction_validation() {
        assert!(Hmm2Predictor::new(vec![], 1.0, 1.0).is_err());
        assert!(Hmm2Predictor::new(corridor_grid(), 0.0, 1.0).is_err());
        assert!(Hmm2Predictor::new(corridor_grid(), 1.0, -1.0).is_err());
        assert!(Hmm2Predictor::new(corridor_grid(), 2.0, 3.0).is_ok());
    }

    #[test]
    fn single_observation_pulls_mean() {
        let mut hmm = Hmm2Predictor::new(corridor_grid(), 2.0, 3.0).unwrap();
        let est = hmm.observe(Point::new(30.0, 0.0));
        assert!((est.x - 30.0).abs() < 2.0, "est {est}");
    }

    #[test]
    fn belief_stays_normalized() {
        let mut hmm = Hmm2Predictor::new(corridor_grid(), 2.0, 3.0).unwrap();
        for i in 0..10 {
            hmm.observe(Point::new(i as f64 * 2.0, 0.0));
            let total: f64 = hmm.belief().iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tracks_and_extrapolates_motion() {
        let mut hmm = Hmm2Predictor::new(corridor_grid(), 2.5, 4.0).unwrap();
        let mut last = Point::origin();
        for i in 0..25 {
            last = hmm.observe(Point::new(i as f64 * 1.5 + 0.4, 0.0));
        }
        let next = hmm.predict_next().unwrap();
        assert!(next.x > last.x, "prediction must lead the track");
        assert!((next.x - last.x) < 4.0, "prediction must stay physical");
    }

    #[test]
    fn smooths_observation_outliers() {
        let mut hmm = Hmm2Predictor::new(corridor_grid(), 2.0, 3.0).unwrap();
        for i in 0..10 {
            hmm.observe(Point::new(i as f64, 0.0));
        }
        // A wild outlier at x = 55 while the walker is near 10.
        let est = hmm.observe(Point::new(55.0, 0.0));
        assert!(est.x < 35.0, "outlier must be damped, got {est}");
    }

    #[test]
    fn far_observation_recovers_gracefully() {
        let mut hmm = Hmm2Predictor::new(corridor_grid(), 2.0, 2.0).unwrap();
        for i in 0..5 {
            hmm.observe(Point::new(i as f64, 0.0));
        }
        // Persistent evidence at the far end eventually wins.
        let mut est = Point::origin();
        for _ in 0..10 {
            est = hmm.observe(Point::new(55.0, 0.0));
        }
        assert!(est.x > 45.0, "belief should follow persistent evidence, got {est}");
    }

    #[test]
    fn predict_before_observations_is_none() {
        let hmm = Hmm2Predictor::new(corridor_grid(), 2.0, 3.0).unwrap();
        assert!(hmm.predict_next().is_none());
    }
}
