//! `uniloc` — command-line driver for the UniLoc reproduction.
//!
//! ```text
//! uniloc train [--seed N] [--out FILE]          train error models, write JSON
//! uniloc run   --models FILE [--scenario NAME]  walk a venue with trained models
//!              [--seed N] [--device nexus5x|lgg3] [--json]
//!              [--metrics FILE] [--trace-level LEVEL] [--virtual-clock]
//! uniloc inspect --models FILE                  print trained coefficients
//! uniloc inspect-metrics --file FILE [--json]   summarize a --metrics JSONL sidecar
//!                                               (--json emits the snapshot as JSON)
//! uniloc inspect-calibration --file FILE        per-scheme reliability bins, coverage
//!                                               and drift state from a sidecar
//! uniloc inspect-flight --file FILE [--full]    flight-recorder postmortems from a
//!                                               sidecar (--full pretty-prints dumps)
//! uniloc bench-diff [--baseline DIR] [--candidate DIR]
//!                   [--threshold X] [--warn-only]
//!                                               diff BENCH_*.json latency breakdowns
//!                                               against the committed baselines
//! uniloc chaos [--plans smoke|full] [--jobs N]  scenario x fault-plan resilience sweep
//!                                               (parallel, deterministic at any --jobs)
//! uniloc fleet [--sessions N] [--obs-stub]      fleet-scale load generator; also writes
//!              [--shards N] [--obs-overhead]    FLEET_HEALTH.json + PROF_fleet.* +
//!              [--top-k N] [--alloc-budget N]   PROF_alloc.* from the fleet observatory
//! uniloc inspect-fleet [--file FILE] [--strict] fleet SLO/health table from a
//!                      [--json]                 FLEET_HEALTH.json artifact
//! uniloc inspect-alloc [--file FILE] [--json]   per-stage heap profile table from a
//!                                               PROF_alloc.json artifact
//! uniloc scenarios                              list available venues
//! ```
//!
//! Global flags: `--quiet` silences progress output (progress is routed
//! through the `uniloc-obs` tracing facade at `info` level, not
//! `eprintln!`, so any subscriber can capture it). `--trace-level` takes
//! `off|error|warn|info|debug|span`; `--virtual-clock` timestamps the
//! sidecar with simulation time so same-seed runs are byte-identical.
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy has no
//! CLI crate); flags are order-independent `--key value` pairs.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;

use uniloc_bench::chaos::scenario_by_name;
use uniloc_core::error_model::{train, ErrorModelSet};
use uniloc_core::pipeline::{self, PipelineConfig};
use uniloc_env::venues;
use uniloc_iodetect::IoState;
use uniloc_obs::{
    JsonlExporter, MultiSubscriber, StderrSubscriber, Subscriber, TraceLevel, VirtualClock,
};
use uniloc_schemes::SchemeId;
use uniloc_sensors::DeviceProfile;
use uniloc_stats::json::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let exporter = match init_obs(&flags) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "train" => cmd_train(&flags),
        "run" => cmd_run(&flags, exporter.as_deref()),
        "inspect" => cmd_inspect(&flags),
        "inspect-metrics" => cmd_inspect_metrics(&flags),
        "inspect-calibration" => cmd_inspect_calibration(&flags),
        "inspect-flight" => cmd_inspect_flight(&flags),
        "bench-diff" => cmd_bench_diff(&flags),
        "chaos" => cmd_chaos(&flags, exporter.as_deref()),
        "fleet" => cmd_fleet(&flags),
        "inspect-fleet" => cmd_inspect_fleet(&flags),
        "inspect-alloc" => cmd_inspect_alloc(&flags),
        "scenarios" => cmd_scenarios(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    uniloc_obs::global().flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  uniloc train [--seed N] [--out FILE]
  uniloc run --models FILE [--scenario NAME] [--seed N] [--device nexus5x|lgg3] [--json]
             [--metrics FILE] [--trace-level off|error|warn|info|debug|span] [--virtual-clock]
  uniloc inspect --models FILE
  uniloc inspect-metrics --file FILE [--json]
  uniloc inspect-calibration --file FILE
  uniloc inspect-flight --file FILE [--full]
  uniloc bench-diff [--baseline DIR] [--candidate DIR] [--threshold X] [--warn-only]
  uniloc chaos [--models FILE] [--scenarios a,b] [--plans smoke|full|p1,p2] [--seed N]
               [--out DIR] [--strict] [--jobs N]
  uniloc fleet [--models FILE] [--sessions N] [--scenarios a,b] [--seed N] [--jobs N]
               [--resident N] [--max-epochs N] [--chaos-every N] [--out DIR] [--bench]
               [--strict] [--shards N] [--obs-stub] [--top-k N] [--alloc-budget N]
               [--obs-overhead] [--overhead-budget X] [--overhead-passes N]
               [--checkpoint-every N] [--checkpoint FILE] [--resume FILE]
               [--crash-after-rounds N] [--panic-lane N] [--panic-epoch N]
  uniloc inspect-fleet [--file FILE] [--strict] [--json]
  uniloc inspect-alloc [--file FILE] [--json]
  uniloc scenarios
global flags: --quiet (suppress progress output)
  --jobs N: worker threads for sweep commands (default: available cores);
            artifacts are byte-identical at any value, --jobs 1 runs inline";

/// Configures the global `uniloc-obs` dispatcher from the flags: a stderr
/// progress printer (unless `--quiet`), a JSONL exporter when `--metrics
/// FILE` is given (returned so `cmd_run` can append the metrics snapshot),
/// the flight recorder (whose postmortems go to the same exporter), and a
/// deterministic [`VirtualClock`] under `--virtual-clock`.
fn init_obs(flags: &BTreeMap<String, String>) -> Result<Option<Arc<JsonlExporter>>, String> {
    let quiet = flags.contains_key("quiet");
    let exporter = match flags.get("metrics") {
        Some(path) => Some(Arc::new(
            JsonlExporter::to_file(path).map_err(|e| format!("create {path}: {e}"))?,
        )),
        None => None,
    };
    let level = match flags.get("trace-level") {
        Some(s) => TraceLevel::parse(s)?,
        // Spans are only worth dispatching when something records them.
        None if exporter.is_some() => Some(TraceLevel::Span),
        None => Some(TraceLevel::Info),
    };
    let mut subs: Vec<Arc<dyn Subscriber>> = Vec::new();
    if !quiet {
        subs.push(Arc::new(StderrSubscriber::new(TraceLevel::Info)));
    }
    if let Some(e) = &exporter {
        subs.push(Arc::clone(e) as Arc<dyn Subscriber>);
    }
    // The flight recorder rides the subscriber chain so its ring always
    // holds the recent window; postmortems land in the metrics sidecar.
    let flight = uniloc_obs::global_flight();
    flight.set_sink(exporter.clone());
    subs.push(Arc::clone(&flight) as Arc<dyn Subscriber>);
    let d = uniloc_obs::global();
    d.set_level(level);
    d.set_subscriber(match subs.len() {
        0 => None,
        1 => Some(subs.pop().expect("one subscriber")),
        _ => Some(Arc::new(MultiSubscriber::new(subs))),
    });
    if flags.contains_key("virtual-clock") {
        d.set_clock(Arc::new(VirtualClock::new()));
    }
    Ok(exporter)
}

/// Parses `--key value` pairs (and bare `--flag` booleans).
fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{}`", args[i]))?;
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            flags.insert(key.to_owned(), args[i + 1].clone());
            i += 2;
        } else {
            flags.insert(key.to_owned(), "true".to_owned());
            i += 1;
        }
    }
    Ok(flags)
}

fn seed_flag(flags: &BTreeMap<String, String>) -> Result<u64, String> {
    match flags.get("seed") {
        Some(s) => s.parse().map_err(|_| format!("--seed must be an integer, got `{s}`")),
        None => Ok(1),
    }
}

/// `--jobs N` (default: the machine's available cores). Sweep artifacts
/// are byte-identical at any value; `--jobs 1` runs inline with no worker
/// threads.
fn jobs_flag(flags: &BTreeMap<String, String>) -> Result<usize, String> {
    match flags.get("jobs") {
        Some(s) => match s.parse() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("--jobs must be a positive integer, got `{s}`")),
        },
        None => Ok(std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)),
    }
}

fn cmd_train(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let seed = seed_flag(flags)?;
    let out = flags.get("out").map(String::as_str).unwrap_or("uniloc-models.json");
    let cfg = PipelineConfig::default();
    uniloc_obs::info!("collecting training data (office + open space, seed {seed}) ...");
    let mut samples = pipeline::collect_training(&venues::training_office(seed), &cfg, seed + 10);
    samples.extend(pipeline::collect_training(
        &venues::training_open_space(seed + 1),
        &cfg,
        seed + 11,
    ));
    uniloc_obs::info!("  {} samples", samples.len());
    let models = train(&samples).map_err(|e| format!("training failed: {e}"))?;
    let json = uniloc_stats::json::to_string_pretty(&models);
    std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
    uniloc_obs::info!("wrote {out}");
    Ok(())
}

fn load_models(flags: &BTreeMap<String, String>) -> Result<ErrorModelSet, String> {
    let path = flags.get("models").ok_or("--models FILE is required")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    uniloc_stats::json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))
}

fn cmd_run(flags: &BTreeMap<String, String>, exporter: Option<&JsonlExporter>) -> Result<(), String> {
    let models = load_models(flags)?;
    let seed = seed_flag(flags)?;
    let name = flags.get("scenario").map(String::as_str).unwrap_or("path1");
    let scenario = scenario_by_name(name, seed)?;
    let device = match flags.get("device").map(String::as_str) {
        None | Some("nexus5x") => DeviceProfile::nexus_5x(),
        Some("lgg3") => DeviceProfile::lg_g3(),
        Some(other) => return Err(format!("unknown device `{other}`")),
    };
    let cfg = PipelineConfig { device, ..PipelineConfig::default() };
    uniloc_obs::info!("walking {} ({:.0} m) ...", scenario.name, scenario.route.length());
    let records = pipeline::run_walk(&scenario, &models, &cfg, seed + 100);

    // Append the end-of-run metrics and calibration snapshots (counters,
    // gauges, span-timing and residual histograms, then the per-scheme
    // calibration cells) after the trace events already streamed out.
    if let Some(e) = exporter {
        for line in uniloc_obs::global_metrics().snapshot().jsonl_lines() {
            e.write_line(&line);
        }
        for line in uniloc_obs::global_calibration().snapshot().jsonl_lines() {
            e.write_line(&line);
        }
        e.flush();
    }

    if flags.contains_key("json") {
        let json = uniloc_stats::json::to_string(&records);
        println!("{json}");
        return Ok(());
    }

    println!("{:<10}{:>10}{:>12}", "system", "mean (m)", "available");
    for id in SchemeId::BUILTIN {
        let mean = pipeline::scheme_mean_error(&records, id);
        let avail = records
            .iter()
            .filter(|r| r.scheme_errors.iter().any(|(s, e)| *s == id && e.is_some()))
            .count() as f64
            / records.len() as f64;
        match mean {
            Some(m) => println!("{:<10}{m:>10.2}{:>11.1}%", id.to_string(), avail * 100.0),
            None => println!("{:<10}{:>10}{:>11.1}%", id.to_string(), "-", avail * 100.0),
        }
    }
    for (label, v) in [
        ("oracle", pipeline::mean_defined(records.iter().map(|r| r.oracle_error))),
        ("uniloc1", pipeline::mean_defined(records.iter().map(|r| r.uniloc1_error))),
        ("uniloc2", pipeline::mean_defined(records.iter().map(|r| r.uniloc2_error))),
    ] {
        match v {
            Some(m) => println!("{label:<10}{m:>10.2}"),
            None => println!("{label:<10}{:>10}", "-"),
        }
    }
    Ok(())
}

fn cmd_inspect(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let models = load_models(flags)?;
    for io in [IoState::Indoor, IoState::Outdoor] {
        println!("== {io} ==");
        for id in SchemeId::BUILTIN {
            match models.model(id, io) {
                Some(m) => println!(
                    "  {id:<9} intercept={:+7.2} coeffs={:?} sigma={:.2} R2={:.2} n={}",
                    m.intercept,
                    m.coefficients
                        .iter()
                        .map(|c| (c * 1000.0).round() / 1000.0)
                        .collect::<Vec<_>>(),
                    m.sigma,
                    m.r_squared,
                    m.n_obs
                ),
                None => println!("  {id:<9} (no model)"),
            }
        }
    }
    Ok(())
}

/// Reads a `--metrics` JSONL sidecar back and pretty-prints its metric
/// lines: counters, gauges, then histograms with count/mean/p50/p90/p99.
/// Trace-event lines (kind `span`/`event`) are counted but not rendered.
/// With `--json`, emits the reassembled [`uniloc_obs::MetricsSnapshot`] as
/// one JSON document instead — the machine-readable format `bench-diff`
/// and external tooling share.
fn cmd_inspect_metrics(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let path = flags.get("file").ok_or("--file FILE is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut snap = uniloc_obs::MetricsSnapshot::default();
    let mut spans = 0usize;
    let mut events = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let absorbed =
            snap.absorb_jsonl(&doc).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        if !absorbed {
            match doc.get("kind").and_then(Json::as_str) {
                Some("span") => spans += 1,
                _ => events += 1,
            }
        }
    }
    if flags.contains_key("json") {
        println!("{}", uniloc_stats::json::to_string(&snap));
        return Ok(());
    }
    println!("{path}: {spans} span records, {events} events");
    if !snap.counters.is_empty() {
        println!("counters:");
        for (name, v) in &snap.counters {
            println!("  {name:<40} {v}");
        }
    }
    if !snap.gauges.is_empty() {
        println!("gauges:");
        for (name, v) in &snap.gauges {
            println!("  {name:<40} {v:.4}");
        }
    }
    if !snap.histograms.is_empty() {
        println!("histograms:");
        println!(
            "  {:<40} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "name", "count", "mean", "p50", "p90", "p99"
        );
        for (name, h) in &snap.histograms {
            match (h.mean(), h.summary()) {
                (Some(mean), Some((p50, p90, p99))) => println!(
                    "  {name:<40} {:>8} {mean:>12.2} {p50:>12.2} {p90:>12.2} {p99:>12.2}",
                    h.count()
                ),
                _ => println!("  {name:<40} {:>8} (empty)", h.count()),
            }
        }
    }
    Ok(())
}

/// Reads the `"kind":"calibration"` cells out of a `--metrics` sidecar and
/// prints each scheme × environment's reliability diagnostics: PIT bin
/// counts, nominal-vs-observed coverage, sharpness and drift state.
fn cmd_inspect_calibration(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let path = flags.get("file").ok_or("--file FILE is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut snap = uniloc_obs::CalibrationSnapshot::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        snap.absorb_jsonl(&doc).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
    }
    if snap.cells.is_empty() {
        println!("{path}: no calibration cells (was the run recorded with --metrics?)");
        return Ok(());
    }
    for cell in &snap.cells {
        println!("== {} / {} ==", cell.scheme, cell.io);
        println!("  observations: {} ({} dropped non-finite)", cell.n, cell.dropped);
        let bins: Vec<String> = cell.pit_counts.iter().map(u64::to_string).collect();
        println!("  reliability bins (PIT 0..1): [{}]", bins.join(", "));
        let cov: Vec<String> = cell
            .quantiles
            .iter()
            .zip(&cell.coverage)
            .map(|(q, c)| format!("{q:.2}->{c:.3}"))
            .collect();
        println!("  coverage (nominal->observed): {}", cov.join("  "));
        println!(
            "  sharpness: predicted {:.2} m (sigma {:.2} m), realized {:.2} m, residual {:+.2} m",
            cell.mean_predicted, cell.mean_sigma, cell.mean_realized, cell.mean_residual
        );
        println!(
            "  drift: cusum +{:.2}/-{:.2}, {} alarm(s)",
            cell.cusum_pos, cell.cusum_neg, cell.drift_alarms
        );
    }
    Ok(())
}

/// Reads the `"kind":"flight"` postmortem dumps out of a `--metrics`
/// sidecar. Default output is one summary line per dump; `--full`
/// pretty-prints the complete dumps (window events, counter deltas,
/// gauges).
fn cmd_inspect_flight(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let path = flags.get("file").ok_or("--file FILE is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut dumps = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        if doc.get("kind").and_then(Json::as_str) == Some("flight") {
            dumps.push(doc);
        }
    }
    if dumps.is_empty() {
        println!("{path}: no flight-recorder dumps (the run hit no anomaly)");
        return Ok(());
    }
    println!("{path}: {} flight-recorder dump(s)", dumps.len());
    for dump in &dumps {
        if flags.contains_key("full") {
            println!("{}", dump.to_string_pretty());
            continue;
        }
        let seq = dump.get("seq").and_then(Json::as_i64).unwrap_or(-1);
        let reason = dump.get("reason").and_then(Json::as_str).unwrap_or("?");
        let t_ns = dump.get("t_ns").and_then(Json::as_i64).unwrap_or(0);
        let events = dump.get("events").and_then(Json::as_arr).map_or(0, <[Json]>::len);
        let deltas =
            dump.get("counters_delta").and_then(Json::as_arr).map_or(0, <[Json]>::len);
        println!(
            "  #{seq} {reason:<22} t={:.1}s window={events} events, {deltas} counters moved",
            t_ns as f64 / 1e9
        );
    }
    Ok(())
}

/// The bench-regression gate: diffs `BENCH_*.json` latency breakdowns in
/// `--candidate DIR` against `--baseline DIR` (both default to
/// `results/`, so a bare `uniloc bench-diff` self-checks the committed
/// baselines). Structural drift (missing stages, changed span counts)
/// always fails; mean-latency growth fails beyond `--threshold` (relative,
/// default 4.0 = five-fold). `--warn-only` reports without failing.
fn cmd_bench_diff(flags: &BTreeMap<String, String>) -> Result<(), String> {
    use uniloc_bench::regression::{diff_dirs, DiffConfig};
    let baseline = flags.get("baseline").map(String::as_str).unwrap_or("results");
    let candidate = flags.get("candidate").map(String::as_str).unwrap_or(baseline);
    let mut cfg = DiffConfig::default();
    if let Some(t) = flags.get("threshold") {
        cfg.latency_tolerance = t
            .parse()
            .map_err(|_| format!("--threshold must be a number, got `{t}`"))?;
    }
    let outcome = diff_dirs(baseline, candidate, &cfg)?;
    for (name, findings) in &outcome.compared {
        if findings.is_empty() {
            println!("ok   {name}");
        } else {
            for f in findings {
                let tag = if f.is_regression() { "FAIL" } else { "note" };
                println!("{tag} {name}: {f}");
            }
        }
    }
    for name in &outcome.skipped {
        println!("skip {name} (not in candidate dir)");
    }
    let regressions = outcome.regressions().count();
    if regressions == 0 {
        println!(
            "no regression across {} bench(es) ({} skipped)",
            outcome.compared.len(),
            outcome.skipped.len()
        );
        Ok(())
    } else if flags.contains_key("warn-only") {
        println!("{regressions} regression finding(s) — warn-only mode, not failing");
        Ok(())
    } else {
        Err(format!("{regressions} bench regression finding(s)"))
    }
}

/// `uniloc chaos`: sweeps a scenario × fault-plan matrix deterministically
/// on up to `--jobs N` worker threads (default: the machine's available
/// cores) and writes one resilience report per scenario to `--out DIR`
/// (default `results/`) as `CHAOS_<scenario>.json`. The sweep itself lives
/// in [`uniloc_bench::chaos`]; results merge in canonical cell order, so
/// the artifacts are byte-identical at any `--jobs` value and `--jobs 1`
/// runs the historical single-threaded path. `--strict` turns the
/// resilience contract into an exit code: a terminal `lost` ladder state,
/// any non-finite fused estimate, or a quarantine that never lifts fails
/// the command — the CI smoke gate runs exactly this against the `smoke`
/// plan set at both `--jobs 1` and `--jobs 4` and diffs the artifacts.
fn cmd_chaos(flags: &BTreeMap<String, String>, exporter: Option<&JsonlExporter>) -> Result<(), String> {
    use uniloc_bench::chaos::{run_sweep, ChaosConfig};
    use uniloc_faults::FaultPlan;

    let seed = seed_flag(flags)?;
    let jobs = jobs_flag(flags)?;
    let out_dir = flags.get("out").map(String::as_str).unwrap_or("results");
    let strict = flags.contains_key("strict");
    let cfg = PipelineConfig::default();

    let models = models_or_train(flags, &cfg, seed)?;

    let scenario_names: Vec<String> = flags
        .get("scenarios")
        .map(|s| s.split(',').map(str::to_owned).collect())
        .unwrap_or_else(|| vec!["office".to_owned(), "path1".to_owned()]);
    let plans: Vec<FaultPlan> = match flags.get("plans").map(String::as_str) {
        None | Some("smoke") => FaultPlan::smoke_library(),
        Some("full") => FaultPlan::library(),
        Some(list) => list
            .split(',')
            .map(|n| FaultPlan::by_name(n).ok_or_else(|| format!("unknown fault plan `{n}`")))
            .collect::<Result<_, _>>()?,
    };

    std::fs::create_dir_all(out_dir).map_err(|e| format!("create {out_dir}: {e}"))?;
    let sweep = run_sweep(&models, &cfg, &ChaosConfig { seed, scenario_names, plans, jobs })?;

    for report in &sweep.reports {
        let path = format!("{out_dir}/{}", report.file_name());
        std::fs::write(&path, report.report.to_string_pretty())
            .map_err(|e| format!("write {path}: {e}"))?;
        uniloc_obs::info!("wrote {path}");
    }

    // The workers ran under isolated observability sessions; their merged
    // sidecar (job-ordered, jobs-count-invariant) lands in the --metrics
    // file after the trace events that streamed from the main thread.
    if let Some(e) = exporter {
        for line in sweep.obs.metrics.jsonl_lines() {
            e.write_line(&line);
        }
        for line in sweep.obs.calibration.jsonl_lines() {
            e.write_line(&line);
        }
        for line in &sweep.obs.flight_lines {
            e.write_line(line);
        }
        e.flush();
    }

    if sweep.violations.is_empty() {
        uniloc_obs::info!("chaos sweep clean: every run stayed finite and recovered");
        Ok(())
    } else {
        for v in &sweep.violations {
            eprintln!("chaos violation: {v}");
        }
        if strict {
            Err(format!("{} resilience violation(s)", sweep.violations.len()))
        } else {
            uniloc_obs::info!(
                "{} violation(s) — rerun with --strict to fail on them",
                sweep.violations.len()
            );
            Ok(())
        }
    }
}

/// `--models FILE` when given, otherwise the standard in-process training
/// pass (office + open space) on `seed` — shared by the sweep commands.
fn models_or_train(
    flags: &BTreeMap<String, String>,
    cfg: &PipelineConfig,
    seed: u64,
) -> Result<ErrorModelSet, String> {
    match flags.get("models") {
        Some(_) => load_models(flags),
        None => {
            uniloc_obs::info!("no --models given; training in-process (seed {seed}) ...");
            let mut samples =
                pipeline::collect_training(&venues::training_office(seed), cfg, seed + 10);
            samples.extend(pipeline::collect_training(
                &venues::training_open_space(seed + 1),
                cfg,
                seed + 11,
            ));
            train(&samples).map_err(|e| format!("training failed: {e}"))
        }
    }
}

/// `--<key> N` as a positive integer, with a default.
fn usize_flag(
    flags: &BTreeMap<String, String>,
    key: &str,
    default: usize,
) -> Result<usize, String> {
    match flags.get(key) {
        Some(s) => s
            .parse()
            .map_err(|_| format!("--{key} must be a non-negative integer, got `{s}`")),
        None => Ok(default),
    }
}

/// `--<key> X` as a finite float, with a default.
fn f64_flag(flags: &BTreeMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match flags.get(key) {
        Some(s) => match s.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(v),
            _ => Err(format!("--{key} must be a finite number, got `{s}`")),
        },
        None => Ok(default),
    }
}

/// `uniloc fleet`: the fleet-scale load generator — `--sessions N` seeded
/// walkers mixing personas, devices, scenarios and (with `--chaos-every
/// K`) fault plans, served concurrently by the deterministic
/// [`uniloc_core::fleet::FleetScheduler`] on `--jobs N` workers with at
/// most `--resident N` sessions live at once. Writes `FLEET.json` plus
/// the fleet-observatory artifacts (`FLEET_HEALTH.json`,
/// `PROF_fleet.folded`, `PROF_fleet.json`) to `--out DIR`: all four are
/// byte-identical at any `--jobs`/`--resident`/`--shards` value and
/// contain no wall-clock numbers, so the CI smoke gate diffs the whole
/// directory across worker counts. `--bench` additionally writes the
/// throughput breakdown (`BENCH_fleet.json`: epochs/sec, sessions/sec,
/// p99 epoch latency) for the `bench-diff` gate. `--obs-stub` swaps every
/// session's observability for the sink configuration (no aggregation
/// artifacts), and `--obs-overhead` runs the paired obs-on/obs-stub bench
/// and fails if the epochs/s cost exceeds `--overhead-budget` (default
/// 5%). `--strict` fails on any resilience violation (a non-finite fused
/// estimate, or a clean walker that got quarantined).
///
/// Crash safety: `--checkpoint-every N` cuts a durable fleet checkpoint
/// (atomic temp-file + rename) every N scheduler rounds to `--checkpoint
/// FILE` (default `<out>/FLEET.ckpt.json`), and `--resume FILE` restores
/// one and finishes the fleet — the artifacts come out byte-identical to
/// an uninterrupted run. On resume, every artifact-shaping knob is taken
/// from the checkpoint itself (only `--jobs`, `--resident`, `--out` and
/// the gate flags still apply). `--crash-after-rounds N` simulates a
/// `kill -9` between rounds N and N+1 (the crash-injection harness), and
/// `--panic-lane L --panic-epoch E` arms a process-level panic fault in
/// lane L at epoch E to exercise the supervisor's poison path.
fn cmd_fleet(flags: &BTreeMap<String, String>) -> Result<(), String> {
    use uniloc_bench::fleet::{
        load_fleet_checkpoint, measure_obs_overhead, run_fleet_durable, write_fleet_bench,
        FleetConfig, FleetOutcome, FleetRunOptions,
    };
    use uniloc_obs::fleet as obsfleet;

    let seed = seed_flag(flags)?;
    let jobs = jobs_flag(flags)?;
    let out_dir = flags.get("out").map(String::as_str).unwrap_or("results");
    let strict = flags.contains_key("strict");
    let cfg = PipelineConfig::default();

    let resume = match flags.get("resume") {
        Some(path) => Some(load_fleet_checkpoint(path)?),
        None => None,
    };
    let fleet_cfg = match &resume {
        // Resuming: the checkpoint pins every artifact-shaping knob (a
        // mismatched flag would silently fork the fleet); only execution
        // knobs come from the command line.
        Some(ckpt) => FleetConfig {
            seed: ckpt.seed,
            sessions: ckpt.sessions,
            scenario_names: ckpt.scenario_names.clone(),
            jobs,
            resident: usize_flag(flags, "resident", 64)?,
            max_epochs: ckpt.max_epochs,
            chaos_every: ckpt.chaos_every,
            obs_stub: ckpt.obs_stub,
            shards: ckpt.shards,
            top_k: ckpt.top_k,
            panic_lane: ckpt.panic_lane,
            panic_epoch: ckpt.panic_epoch,
        },
        None => FleetConfig {
            seed,
            sessions: usize_flag(flags, "sessions", 1000)?,
            scenario_names: flags
                .get("scenarios")
                .map(|s| s.split(',').map(str::to_owned).collect())
                .unwrap_or_else(|| vec!["office".to_owned(), "open-space".to_owned()]),
            jobs,
            resident: usize_flag(flags, "resident", 64)?,
            max_epochs: usize_flag(flags, "max-epochs", 40)?,
            chaos_every: usize_flag(flags, "chaos-every", 0)?,
            obs_stub: flags.contains_key("obs-stub"),
            shards: usize_flag(flags, "shards", 0)?,
            top_k: usize_flag(flags, "top-k", 0)?,
            panic_lane: flags
                .get("panic-lane")
                .map(|_| usize_flag(flags, "panic-lane", 0))
                .transpose()?
                .map(|l| l as u64),
            panic_epoch: usize_flag(flags, "panic-epoch", 0)? as u64,
        },
    };
    let models = Arc::new(models_or_train(flags, &cfg, fleet_cfg.seed)?);
    let checkpoint_every = usize_flag(flags, "checkpoint-every", 0)? as u64;
    let checkpoint_path = flags
        .get("checkpoint")
        .cloned()
        .or_else(|| (checkpoint_every > 0).then(|| format!("{out_dir}/FLEET.ckpt.json")));
    let crash_after_rounds = flags
        .get("crash-after-rounds")
        .map(|_| usize_flag(flags, "crash-after-rounds", 0))
        .transpose()?
        .map(|r| r as u64);
    let alloc_budget = match flags.get("alloc-budget") {
        Some(_) => Some(f64_flag(flags, "alloc-budget", 0.0)?),
        None => None,
    };

    if flags.contains_key("obs-overhead") {
        let passes = usize_flag(flags, "overhead-passes", 2)?;
        let budget = f64_flag(flags, "overhead-budget", 0.05)?;
        let o = measure_obs_overhead(&models, &cfg, &fleet_cfg, passes)?;
        println!(
            "obs_overhead_frac {:.4} budget {:.4} obs_epochs_per_sec {:.0} stub_epochs_per_sec {:.0}",
            o.overhead_frac, budget, o.epochs_per_sec_obs, o.epochs_per_sec_stub
        );
        return if o.overhead_frac > budget {
            Err(format!(
                "obs overhead {:.2}% exceeds budget {:.2}%",
                o.overhead_frac * 100.0,
                budget * 100.0
            ))
        } else {
            uniloc_obs::info!(
                "obs overhead {:.2}% within budget {:.2}%",
                o.overhead_frac * 100.0,
                budget * 100.0
            );
            Ok(())
        };
    }

    std::fs::create_dir_all(out_dir).map_err(|e| format!("create {out_dir}: {e}"))?;
    let outcome = run_fleet_durable(
        &models,
        &cfg,
        &fleet_cfg,
        FleetRunOptions {
            checkpoint_every,
            checkpoint_path: checkpoint_path.clone(),
            resume_from: resume,
            crash_after_rounds,
            ..FleetRunOptions::default()
        },
    )?;
    let result = match outcome {
        FleetOutcome::Completed(result) => *result,
        FleetOutcome::Crashed { rounds } => {
            let at = checkpoint_path.as_deref().unwrap_or("<no checkpoint written>");
            println!(
                "fleet crashed (simulated) after {rounds} round(s); \
                 resume with: uniloc fleet --resume {at}"
            );
            return Ok(());
        }
    };

    let poisoned = result.summaries.iter().filter(|s| s.poisoned.is_some()).count();
    if poisoned > 0 {
        uniloc_obs::info!(
            "fleet: {poisoned} session(s) poisoned by the supervisor; \
             the rest of the fleet completed normally"
        );
    }

    let path = format!("{out_dir}/FLEET.json");
    std::fs::write(&path, result.report.to_string_pretty())
        .map_err(|e| format!("write {path}: {e}"))?;
    uniloc_obs::info!("wrote {path}");

    if let Some(snap) = &result.snapshot {
        let health = obsfleet::health_report(snap, &obsfleet::SloTargets::default());
        let path = format!("{out_dir}/FLEET_HEALTH.json");
        std::fs::write(&path, health.to_string_pretty())
            .map_err(|e| format!("write {path}: {e}"))?;
        uniloc_obs::info!("wrote {path}");

        let tree = obsfleet::profile_tree(snap);
        let path = format!("{out_dir}/PROF_fleet.folded");
        std::fs::write(&path, obsfleet::folded_lines(&tree))
            .map_err(|e| format!("write {path}: {e}"))?;
        uniloc_obs::info!("wrote {path}");
        let path = format!("{out_dir}/PROF_fleet.json");
        std::fs::write(&path, obsfleet::profile_report(&tree).to_string_pretty())
            .map_err(|e| format!("write {path}: {e}"))?;
        uniloc_obs::info!("wrote {path}");

        let heap = obsfleet::alloc_tree(snap);
        let path = format!("{out_dir}/PROF_alloc.folded");
        std::fs::write(&path, obsfleet::alloc_folded_lines(&heap))
            .map_err(|e| format!("write {path}: {e}"))?;
        uniloc_obs::info!("wrote {path}");
        let path = format!("{out_dir}/PROF_alloc.json");
        std::fs::write(&path, obsfleet::alloc_report(snap, &heap).to_string_pretty())
            .map_err(|e| format!("write {path}: {e}"))?;
        uniloc_obs::info!("wrote {path}");
        uniloc_obs::info!(
            "alloc observatory: {:.1} steady-state alloc(s)/epoch",
            snap.allocs_per_epoch()
        );
    }
    if let Some(budget) = alloc_budget {
        let Some(snap) = &result.snapshot else {
            return Err("--alloc-budget needs the alloc observatory; drop --obs-stub".to_owned());
        };
        let observed = snap.allocs_per_epoch();
        if observed > budget {
            return Err(format!(
                "steady-state allocations {observed:.1}/epoch exceed --alloc-budget {budget:.1}"
            ));
        }
        uniloc_obs::info!(
            "alloc budget ok: {observed:.1}/epoch within --alloc-budget {budget:.1}"
        );
    }

    let stats = &result.stats;
    let secs = stats.run_ns as f64 / 1e9;
    uniloc_obs::info!(
        "fleet: {} session(s), {} epoch(s), {} round(s) in {secs:.2}s — {:.0} epochs/s, {:.1} sessions/s",
        stats.sessions,
        stats.epochs,
        stats.rounds,
        stats.epochs as f64 / secs.max(1e-9),
        stats.sessions as f64 / secs.max(1e-9),
    );
    if flags.contains_key("bench") {
        match write_fleet_bench(stats) {
            Ok(Some(p)) => uniloc_obs::info!("wrote {p}"),
            Ok(None) => {}
            Err(e) => return Err(format!("write fleet bench: {e}")),
        }
    }

    if result.violations.is_empty() {
        uniloc_obs::info!(
            "fleet clean: every session stayed finite; quarantines match solo replays"
        );
        Ok(())
    } else {
        for v in &result.violations {
            eprintln!("fleet violation: {v}");
        }
        if strict {
            Err(format!("{} fleet violation(s)", result.violations.len()))
        } else {
            uniloc_obs::info!(
                "{} violation(s) — rerun with --strict to fail on them",
                result.violations.len()
            );
            Ok(())
        }
    }
}

/// `uniloc inspect-fleet`: a `top`-style health table rendered from a
/// `FLEET_HEALTH.json` artifact (`--file FILE`, default
/// `results/FLEET_HEALTH.json`) — fleet totals, the SLO burn table,
/// per-scheme availability, per-cohort breakdowns and the worst-session
/// exemplars. Pure formatting: it never recomputes, so the table always
/// agrees with the artifact the CI gates diff. `--json` re-emits the
/// artifact through the canonical writer instead (machine-readable, and a
/// parse round-trip check in one step). `--strict` fails when any SLO row
/// is out of budget.
fn cmd_inspect_fleet(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let path = flags
        .get("file")
        .map(String::as_str)
        .unwrap_or("results/FLEET_HEALTH.json");
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    if doc.get("health").and_then(Json::as_str) != Some("uniloc-fleet") {
        return Err(format!("{path} is not a uniloc FLEET_HEALTH.json artifact"));
    }
    if flags.contains_key("json") {
        println!("{}", doc.canonical().to_string());
        return Ok(());
    }
    let int = |d: &Json, k: &str| d.get(k).and_then(Json::as_i64).unwrap_or(0);
    let num = |d: &Json, k: &str| d.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);

    println!(
        "fleet health — {} session(s), {} epoch(s) ({} faulted, {} quarantined, {} non-finite)",
        int(&doc, "sessions"),
        int(&doc, "epochs"),
        int(&doc, "faulted_sessions"),
        int(&doc, "quarantined_sessions"),
        int(&doc, "nonfinite_fused"),
    );
    if let Some(flight) = doc.get("flight") {
        println!(
            "flight recorder: {} dump(s), {} dropped, {} suppressed; {} calib drift alarm(s)",
            int(flight, "dumps"),
            int(flight, "dropped"),
            int(flight, "suppressed"),
            doc.get("calib").map_or(0, |c| int(c, "drift_alarms")),
        );
    }
    if let Some(alloc) = doc.get("alloc") {
        println!(
            "alloc observatory: {:.1} steady alloc(s)/epoch ({} allocs over {} steady epochs)",
            num(alloc, "allocs_per_epoch"),
            int(alloc, "steady_allocs"),
            int(alloc, "steady_epochs"),
        );
    }

    let mut violated = 0usize;
    if let Some(rows) = doc.get("slo").and_then(Json::as_arr) {
        println!();
        println!(
            "  {:<34} {:>4} {:>9} {:>9} {:>7}  status",
            "SLO", "kind", "target", "observed", "burn"
        );
        for r in rows {
            let ok = r.get("ok").and_then(Json::as_bool).unwrap_or(false);
            if !ok {
                violated += 1;
            }
            println!(
                "  {:<34} {:>4} {:>9.3} {:>9.3} {:>7.2}  {}",
                r.get("name").and_then(Json::as_str).unwrap_or("?"),
                r.get("kind").and_then(Json::as_str).unwrap_or("?"),
                num(r, "target"),
                num(r, "observed"),
                num(r, "burn"),
                if ok { "ok" } else { "VIOLATED" },
            );
        }
    }

    if let Some(schemes) = doc.get("schemes").and_then(Json::as_obj) {
        println!();
        println!(
            "  {:<10} {:>12} {:>12} {:>10} {:>12}",
            "scheme", "avail_epochs", "availability", "quar_trip", "quar_readmit"
        );
        for (id, s) in schemes {
            println!(
                "  {id:<10} {:>12} {:>12.3} {:>10} {:>12}",
                int(s, "available_epochs"),
                num(s, "availability"),
                int(s, "quarantine_tripped"),
                int(s, "quarantine_readmitted"),
            );
        }
    }

    if let Some(cohorts) = doc.get("cohorts").and_then(Json::as_obj) {
        println!();
        println!(
            "  {:<34} {:>8} {:>7} {:>7} {:>5} {:>6} {:>10}",
            "cohort", "sessions", "epochs", "faulted", "quar", "drift", "mean_err_m"
        );
        for (name, c) in cohorts {
            let mean = c.get("mean_error_m").and_then(Json::as_f64);
            println!(
                "  {name:<34} {:>8} {:>7} {:>7} {:>5} {:>6} {:>10}",
                int(c, "sessions"),
                int(c, "epochs"),
                int(c, "faulted"),
                int(c, "quarantined"),
                int(c, "drift_alarms"),
                mean.map_or("-".to_owned(), |m| format!("{m:.3}")),
            );
        }
    }

    if let Some(exemplars) = doc.get("exemplars").and_then(Json::as_arr) {
        if !exemplars.is_empty() {
            println!();
            println!("  worst sessions (exemplars)");
            println!(
                "  {:<6} {:<18} {:>10} {:>7} {:>11}  quarantined",
                "lane", "name", "mean_err_m", "epochs", "postmortems"
            );
            for e in exemplars {
                let quarantined = e
                    .get("quarantined")
                    .and_then(Json::as_arr)
                    .map_or(String::from("-"), |q| {
                        let ids: Vec<&str> =
                            q.iter().filter_map(Json::as_str).collect();
                        if ids.is_empty() { "-".to_owned() } else { ids.join(",") }
                    });
                println!(
                    "  {:<6} {:<18} {:>10.3} {:>7} {:>11}  {quarantined}",
                    int(e, "lane"),
                    e.get("name").and_then(Json::as_str).unwrap_or("?"),
                    num(e, "mean_error_m"),
                    int(e, "epochs"),
                    int(e, "flight_postmortems"),
                );
            }
        }
    }

    if violated > 0 {
        println!();
        println!("{violated} SLO(s) out of budget");
        if flags.contains_key("strict") {
            return Err(format!("{violated} SLO violation(s)"));
        }
    }
    Ok(())
}

/// `uniloc inspect-alloc`: the per-stage heap profile table rendered from
/// a `PROF_alloc.json` artifact (`--file FILE`, default
/// `results/PROF_alloc.json`) — the steady-state allocs-per-epoch meter
/// and the stage tree with exclusive alloc/byte/dealloc/realloc counts.
/// Pure formatting over the artifact, like `inspect-fleet`. `--json`
/// re-emits the artifact through the canonical writer.
fn cmd_inspect_alloc(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let path = flags
        .get("file")
        .map(String::as_str)
        .unwrap_or("results/PROF_alloc.json");
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    if doc.get("prof").and_then(Json::as_str) != Some("alloc") {
        return Err(format!("{path} is not a uniloc PROF_alloc.json artifact"));
    }
    if flags.contains_key("json") {
        println!("{}", doc.canonical().to_string());
        return Ok(());
    }
    let int = |d: &Json, k: &str| d.get(k).and_then(Json::as_i64).unwrap_or(0);
    let per_epoch = doc.get("allocs_per_epoch").and_then(Json::as_f64).unwrap_or(f64::NAN);
    let steady = doc.get("steady");
    println!(
        "heap profile — {per_epoch:.1} steady alloc(s)/epoch ({} allocs over {} steady epochs)",
        steady.map_or(0, |s| int(s, "allocs")),
        steady.map_or(0, |s| int(s, "epochs")),
    );
    println!();
    println!(
        "  {:<44} {:>12} {:>14} {:>12} {:>10}",
        "stage", "allocs", "bytes", "deallocs", "reallocs"
    );
    fn walk(node: &Json, depth: usize) {
        let int = |k: &str| node.get(k).and_then(Json::as_i64).unwrap_or(0);
        let name = node.get("name").and_then(Json::as_str).unwrap_or("?");
        println!(
            "  {:<44} {:>12} {:>14} {:>12} {:>10}",
            format!("{:indent$}{name}", "", indent = depth * 2),
            int("allocs"),
            int("bytes"),
            int("deallocs"),
            int("reallocs"),
        );
        for child in node.get("children").and_then(Json::as_arr).unwrap_or(&[]) {
            walk(child, depth + 1);
        }
    }
    let root = doc.get("root").ok_or_else(|| format!("{path}: no stage tree"))?;
    walk(root, 0);
    Ok(())
}

fn cmd_scenarios() -> Result<(), String> {
    println!("available scenarios:");
    println!("  path1 .. path8   the eight daily campus paths (path1 = the 320 m daily path)");
    println!("  mall             shopping-mall floor, ~300 m trajectory");
    println!("  open-space       urban open space");
    println!("  office           a 50 x 18 m office floor");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_key_value_pairs() {
        let f = parse_flags(&args(&["--seed", "7", "--out", "x.json"])).unwrap();
        assert_eq!(f.get("seed").unwrap(), "7");
        assert_eq!(f.get("out").unwrap(), "x.json");
    }

    #[test]
    fn parse_bare_booleans() {
        let f = parse_flags(&args(&["--json", "--models", "m.json"])).unwrap();
        assert_eq!(f.get("json").unwrap(), "true");
        assert_eq!(f.get("models").unwrap(), "m.json");
    }

    #[test]
    fn parse_rejects_positional() {
        assert!(parse_flags(&args(&["oops"])).is_err());
    }

    #[test]
    fn seed_parses_or_defaults() {
        let f = parse_flags(&args(&["--seed", "42"])).unwrap();
        assert_eq!(seed_flag(&f).unwrap(), 42);
        let f = parse_flags(&args(&[])).unwrap();
        assert_eq!(seed_flag(&f).unwrap(), 1);
        let f = parse_flags(&args(&["--seed", "nope"])).unwrap();
        assert!(seed_flag(&f).is_err());
    }

    #[test]
    fn inspect_metrics_reads_sidecar_and_reports_bad_lines() {
        let dir = std::env::temp_dir();
        let good = dir.join("uniloc-cli-test-metrics.jsonl");
        std::fs::write(
            &good,
            concat!(
                "{\"kind\":\"span\",\"level\":\"span\",\"name\":\"engine.update\",\"t_ns\":5,\"duration_ns\":3,\"fields\":{}}\n",
                "{\"kind\":\"counter\",\"name\":\"pipeline.epochs\",\"value\":12}\n",
                "{\"kind\":\"gauge\",\"name\":\"engine.tau\",\"value\":0.5}\n",
                "{\"kind\":\"histogram\",\"name\":\"h\",\"bounds\":[1.0,2.0],\"counts\":[1,0,0],\"sum\":0.5,\"dropped\":0}\n",
            ),
        )
        .unwrap();
        let f = parse_flags(&args(&["--file", good.to_str().unwrap()])).unwrap();
        assert!(cmd_inspect_metrics(&f).is_ok());

        let bad = dir.join("uniloc-cli-test-metrics-bad.jsonl");
        std::fs::write(&bad, "{\"kind\":\"counter\"\n").unwrap();
        let f = parse_flags(&args(&["--file", bad.to_str().unwrap()])).unwrap();
        let err = cmd_inspect_metrics(&f).unwrap_err();
        assert!(err.contains(":1:"), "error should cite the line: {err}");
        std::fs::remove_file(&good).ok();
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn inspect_metrics_requires_file_flag() {
        let f = parse_flags(&args(&[])).unwrap();
        assert!(cmd_inspect_metrics(&f).unwrap_err().contains("--file"));
    }

    #[test]
    fn scenario_lookup() {
        assert_eq!(scenario_by_name("path1", 1).unwrap().name, "path1");
        assert_eq!(scenario_by_name("path5", 1).unwrap().name, "path5");
        assert!(scenario_by_name("mall", 1).unwrap().name.starts_with("mall"));
        assert!(scenario_by_name("mars", 1).is_err());
    }
}
