//! IODetector replica: energy-efficient indoor/outdoor detection.
//!
//! UniLoc trains and applies its error models separately for indoor and
//! outdoor environments, and "IODetector [36] is used to automatically
//! identify the indoor and outdoor environments. It is very energy-
//! efficient, as it only uses some low-power sensors, including light
//! sensor, magnetism sensor and cellular signals."
//!
//! This module reproduces the three sub-detectors and their fusion:
//!
//! * **Light** — daylight outdoors is 1-2 orders of magnitude brighter than
//!   artificial indoor lighting.
//! * **Magnetism** — steel structures disturb the geomagnetic field indoors,
//!   raising magnetometer variance.
//! * **Cellular** — entering a building attenuates the aggregate cell RSSI
//!   by the penetration loss; the detector watches for level shifts against
//!   a slow-moving baseline.
//!
//! Each sub-detector votes `Indoor` / `Outdoor` / abstain; votes are fused
//! by confidence-weighted majority with hysteresis (two consecutive
//! contradicting epochs are required to flip the state), which suppresses
//! flicker at doorways.
//!
//! # Examples
//!
//! ```
//! use uniloc_iodetect::{IoDetector, IoState};
//! use uniloc_sensors::SensorFrame;
//!
//! let mut det = IoDetector::new();
//! // Bright daylight, quiet magnetics: outdoor once hysteresis clears
//! // (two consecutive agreeing epochs).
//! det.classify(20_000.0, 0.1, None);
//! let state = det.classify(20_000.0, 0.1, None);
//! assert_eq!(state, IoState::Outdoor);
//! // Dim artificial light, heavy disturbance: back to indoor.
//! det.classify(300.0, 0.7, None);
//! let state = det.classify(300.0, 0.7, None);
//! assert_eq!(state, IoState::Indoor);
//! ```

use uniloc_sensors::SensorFrame;

/// The detector's environment verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoState {
    /// Under a roof (the paper's broad definition of indoor).
    Indoor,
    /// Open sky.
    Outdoor,
}

impl std::fmt::Display for IoState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoState::Indoor => "indoor",
            IoState::Outdoor => "outdoor",
        })
    }
}

/// A sub-detector vote with confidence in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Vote {
    state: IoState,
    confidence: f64,
}

/// Tunable thresholds for the three sub-detectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoDetectorConfig {
    /// Light above this (lux) votes outdoor strongly.
    pub outdoor_lux: f64,
    /// Light below this votes indoor strongly.
    pub indoor_lux: f64,
    /// Magnetic variance above this votes indoor.
    pub magnetic_indoor: f64,
    /// Magnetic variance below this votes outdoor.
    pub magnetic_outdoor: f64,
    /// Cellular level shift (dB) against the baseline that votes indoor.
    pub cell_drop_db: f64,
    /// Smoothing factor for the cellular baseline EMA.
    pub cell_ema: f64,
}

impl Default for IoDetectorConfig {
    fn default() -> Self {
        IoDetectorConfig {
            outdoor_lux: 5_000.0,
            indoor_lux: 1_000.0,
            magnetic_indoor: 0.45,
            magnetic_outdoor: 0.25,
            cell_drop_db: 8.0,
            cell_ema: 0.15,
        }
    }
}

/// Streaming indoor/outdoor detector with hysteresis.
#[derive(Debug, Clone)]
pub struct IoDetector {
    config: IoDetectorConfig,
    state: IoState,
    /// Consecutive epochs contradicting the held state.
    contradictions: u32,
    /// Running cellular RSSI baseline (dBm), `None` until first reading.
    cell_baseline: Option<f64>,
}

impl IoDetector {
    /// Creates a detector with default thresholds, initially assuming
    /// indoor (the paper's walks start in an office).
    pub fn new() -> Self {
        IoDetector::with_config(IoDetectorConfig::default())
    }

    /// Creates a detector with custom thresholds.
    pub fn with_config(config: IoDetectorConfig) -> Self {
        IoDetector { config, state: IoState::Indoor, contradictions: 0, cell_baseline: None }
    }

    /// The currently held state.
    pub fn state(&self) -> IoState {
        self.state
    }

    /// Classifies one epoch from raw features: ambient light (lux),
    /// magnetometer disturbance (0-1) and the mean cellular RSSI (dBm) if a
    /// scan is available. Returns the (hysteresis-filtered) state.
    pub fn classify(&mut self, light_lux: f64, magnetic: f64, mean_cell_dbm: Option<f64>) -> IoState {
        // One fixed slot per sub-detector (`None` = abstain) — this runs
        // every epoch, so the vote set lives on the stack.
        let mut votes: [Option<Vote>; 3] = [None; 3];
        // Light sub-detector.
        if light_lux >= self.config.outdoor_lux {
            votes[0] = Some(Vote { state: IoState::Outdoor, confidence: 0.9 });
        } else if light_lux <= self.config.indoor_lux {
            votes[0] = Some(Vote { state: IoState::Indoor, confidence: 0.7 });
        }
        // Magnetism sub-detector.
        if magnetic >= self.config.magnetic_indoor {
            votes[1] = Some(Vote { state: IoState::Indoor, confidence: 0.5 });
        } else if magnetic <= self.config.magnetic_outdoor {
            votes[1] = Some(Vote { state: IoState::Outdoor, confidence: 0.4 });
        }
        // Cellular sub-detector: level shift vs. baseline.
        if let Some(rssi) = mean_cell_dbm {
            if let Some(base) = self.cell_baseline {
                let delta = rssi - base;
                if delta <= -self.config.cell_drop_db {
                    votes[2] = Some(Vote { state: IoState::Indoor, confidence: 0.5 });
                } else if delta >= self.config.cell_drop_db {
                    votes[2] = Some(Vote { state: IoState::Outdoor, confidence: 0.5 });
                }
                self.cell_baseline =
                    Some(base + self.config.cell_ema * (rssi - base));
            } else {
                self.cell_baseline = Some(rssi);
            }
        }

        let indoor: f64 = votes
            .iter()
            .flatten()
            .filter(|v| v.state == IoState::Indoor)
            .map(|v| v.confidence)
            .sum();
        let outdoor: f64 = votes
            .iter()
            .flatten()
            .filter(|v| v.state == IoState::Outdoor)
            .map(|v| v.confidence)
            .sum();
        let instant = if indoor > outdoor {
            Some(IoState::Indoor)
        } else if outdoor > indoor {
            Some(IoState::Outdoor)
        } else {
            None
        };

        match instant {
            Some(s) if s != self.state => {
                self.contradictions += 1;
                if self.contradictions >= 2 {
                    self.state = s;
                    self.contradictions = 0;
                }
            }
            Some(_) => self.contradictions = 0,
            None => {}
        }
        self.state
    }

    /// Convenience: classifies a full [`SensorFrame`].
    pub fn classify_frame(&mut self, frame: &SensorFrame) -> IoState {
        let mean_cell = frame.cell.as_ref().and_then(|c| {
            if c.readings.is_empty() {
                None
            } else {
                Some(c.readings.iter().map(|r| r.1).sum::<f64>() / c.readings.len() as f64)
            }
        });
        self.classify(frame.light_lux, frame.magnetic_variance, mean_cell)
    }
}

impl Default for IoDetector {
    fn default() -> Self {
        IoDetector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_rng::Rng;
    use uniloc_env::{campus, GaitProfile, Walker};
    use uniloc_sensors::{DeviceProfile, SensorHub};

    #[test]
    fn bright_light_wins_quickly() {
        let mut d = IoDetector::new();
        assert_eq!(d.state(), IoState::Indoor);
        d.classify(25_000.0, 0.1, None);
        let s = d.classify(25_000.0, 0.1, None);
        assert_eq!(s, IoState::Outdoor);
    }

    #[test]
    fn hysteresis_suppresses_single_outliers() {
        let mut d = IoDetector::new();
        // One anomalous bright epoch indoors must not flip the state.
        d.classify(300.0, 0.6, None);
        d.classify(12_000.0, 0.6, None);
        assert_eq!(d.state(), IoState::Indoor);
        d.classify(300.0, 0.6, None);
        assert_eq!(d.state(), IoState::Indoor);
    }

    #[test]
    fn cellular_drop_votes_indoor() {
        let mut d = IoDetector::new();
        // Establish an outdoor state and baseline.
        for _ in 0..3 {
            d.classify(20_000.0, 0.1, Some(-75.0));
        }
        assert_eq!(d.state(), IoState::Outdoor);
        // Ambiguous light (covered walkway) but a sharp cell drop: indoor.
        for _ in 0..4 {
            d.classify(2_500.0, 0.4, Some(-92.0));
        }
        assert_eq!(d.state(), IoState::Indoor);
    }

    #[test]
    fn classify_frame_accuracy_on_daily_path() {
        let scenario = campus::daily_path(11);
        let mut walker =
            Walker::new(GaitProfile::average(), Rng::seed_from_u64(12));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 13);
        let frames = hub.sample_walk(&walk, 0.5);
        let mut detector = IoDetector::new();
        let mut correct = 0usize;
        for f in &frames {
            let predicted = detector.classify_frame(f);
            let truth = if scenario.world.is_indoor(f.true_position) {
                IoState::Indoor
            } else {
                IoState::Outdoor
            };
            if predicted == truth {
                correct += 1;
            }
        }
        let acc = correct as f64 / frames.len() as f64;
        assert!(acc > 0.9, "IODetector accuracy {acc}");
    }

    #[test]
    fn empty_cell_scan_is_ignored() {
        let mut d = IoDetector::new();
        let s = d.classify(300.0, 0.6, None);
        assert_eq!(s, IoState::Indoor);
    }

    #[test]
    fn display_names() {
        assert_eq!(IoState::Indoor.to_string(), "indoor");
        assert_eq!(IoState::Outdoor.to_string(), "outdoor");
    }
}

uniloc_stats::impl_json_enum!(IoState { Indoor, Outdoor });
