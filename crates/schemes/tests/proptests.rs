//! Property-based tests for fingerprint databases and scheme plumbing, on
//! the in-repo [`uniloc_rng::check`] harness.

use std::collections::BTreeMap;
use uniloc_env::ApId;
use uniloc_geom::Point;
use uniloc_rng::check::Checker;
use uniloc_rng::{require, require_eq, Rng};
use uniloc_schemes::fingerprint::FingerprintDb;
use uniloc_schemes::LocationEstimate;
use uniloc_schemes::{Oracle, RadioMapBuilder, SchemeId};
use uniloc_sensors::WifiScan;

const REGRESSIONS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/proptests.regressions");

fn checker(name: &str) -> Checker {
    Checker::new(name).cases(128).regressions(REGRESSIONS)
}

fn gen_scan(rng: &mut Rng) -> WifiScan {
    let n = rng.gen_range(1..8usize);
    let m: BTreeMap<u32, f64> = (0..n)
        .map(|_| (rng.gen_range(0..12u32), rng.gen_range(-90.0..-30.0)))
        .collect();
    WifiScan { readings: m.into_iter().map(|(a, r)| (ApId(a), r)).collect() }
}

fn gen_db(rng: &mut Rng, scale: f64) -> FingerprintDb<WifiScan> {
    let n = 1 + (rng.gen_range(0..39usize) as f64 * scale) as usize;
    FingerprintDb::from_entries((0..n).map(|_| {
        let p = Point::new(rng.gen_range(0.0..60.0), rng.gen_range(0.0..30.0));
        (p, gen_scan(rng))
    }))
}

/// match_scan returns at most k candidates, sorted by ascending RSSI
/// distance.
#[test]
fn match_scan_sorted_and_bounded() {
    checker("match_scan_sorted_and_bounded").run(
        |rng, scale| {
            let db = gen_db(rng, scale);
            let scan = gen_scan(rng);
            let k = rng.gen_range(1..8usize);
            (db, scan, k)
        },
        |(db, scan, k)| {
            let matches = db.match_scan(scan, *k);
            require!(matches.len() <= *k);
            for w in matches.windows(2) {
                require!(w[0].distance <= w[1].distance);
            }
            for m in &matches {
                require!(m.distance.is_finite() && m.distance >= 0.0);
            }
            Ok(())
        },
    );
}

/// Downsampling is idempotent and respects the spacing bound.
#[test]
fn downsample_idempotent() {
    checker("downsample_idempotent").run(
        |rng, scale| (gen_db(rng, scale), rng.gen_range(1.0..1.0 + 19.0 * scale)),
        |(db, spacing)| {
            let once = db.downsampled(*spacing);
            let twice = once.downsampled(*spacing);
            require_eq!(once.len(), twice.len());
            let pts: Vec<Point> = once.positions().collect();
            for (i, a) in pts.iter().enumerate() {
                for b in pts.iter().skip(i + 1) {
                    require!(a.distance(*b) >= spacing - 1e-9);
                }
            }
            Ok(())
        },
    );
}

/// A scan always best-matches its own fingerprint (distance 0).
#[test]
fn self_match_is_exact() {
    checker("self_match_is_exact").run(
        gen_db,
        |db| {
            for (pos, fp) in db.entries() {
                let matches = db.match_scan(fp, 1);
                require!(!matches.is_empty());
                require!(
                    matches[0].distance <= 1e-9,
                    "self-distance {}",
                    matches[0].distance
                );
                // The best match is at the fingerprint's own position,
                // unless a duplicate fingerprint exists elsewhere with
                // identical RSSIs (possible but then distance is still 0).
                let _ = pos;
            }
            Ok(())
        },
    );
}

/// local_density, when defined, is positive and no larger than the search
/// diameter.
#[test]
fn local_density_bounds() {
    checker("local_density_bounds").run(
        |rng, scale| {
            (
                gen_db(rng, scale),
                Point::new(rng.gen_range(0.0..60.0), rng.gen_range(0.0..30.0)),
                rng.gen_range(5.0..5.0 + 35.0 * scale),
            )
        },
        |(db, p, radius)| {
            if let Some(d) = db.local_density(*p, *radius) {
                require!(d > 0.0);
                require!(d <= 2.0 * radius + 1e-9);
            }
            Ok(())
        },
    );
}

/// The oracle never reports a larger error than any available estimate.
#[test]
fn oracle_is_a_lower_bound() {
    checker("oracle_is_a_lower_bound").run(
        |rng, scale| {
            let n = rng.gen_range(1..6usize);
            let est: Vec<Option<(f64, f64)>> = (0..n)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        Some((
                            rng.gen_range(-50.0 * scale..50.0 * scale.max(0.01)),
                            rng.gen_range(-50.0 * scale..50.0 * scale.max(0.01)),
                        ))
                    } else {
                        None
                    }
                })
                .collect();
            let truth = Point::new(
                rng.gen_range(-50.0 * scale..50.0 * scale.max(0.01)),
                rng.gen_range(-50.0 * scale..50.0 * scale.max(0.01)),
            );
            (est, truth)
        },
        |(est, truth)| {
            let ids = [
                SchemeId::Gps,
                SchemeId::Wifi,
                SchemeId::Cellular,
                SchemeId::Motion,
                SchemeId::Fusion,
            ];
            let inputs: Vec<(SchemeId, Option<LocationEstimate>)> = est
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    (ids[i], e.map(|(x, y)| LocationEstimate::at(Point::new(x, y))))
                })
                .collect();
            match Oracle::select(&inputs, *truth) {
                Some((_, _, best)) => {
                    for (_, e) in &inputs {
                        if let Some(e) = e {
                            require!(best <= e.position.distance(*truth) + 1e-9);
                        }
                    }
                }
                None => require!(inputs.iter().all(|(_, e)| e.is_none())),
            }
            Ok(())
        },
    );
}

/// Crowdsourced aggregation keeps cell positions inside the convex hull of
/// the contributing observations.
#[test]
fn crowd_cells_inside_observation_bbox() {
    checker("crowd_cells_inside_observation_bbox").run(
        |rng, scale| {
            let n = 1 + (rng.gen_range(0..29usize) as f64 * scale) as usize;
            (0..n)
                .map(|_| {
                    (
                        (rng.gen_range(0.0..50.0), rng.gen_range(0.0..25.0)),
                        gen_scan(rng),
                        rng.gen_range(0.1..1.0),
                    )
                })
                .collect::<Vec<((f64, f64), WifiScan, f64)>>()
        },
        |obs| {
            let mut b = RadioMapBuilder::new(4.0);
            for ((x, y), scan, w) in obs {
                b.observe(Point::new(*x, *y), scan.clone(), *w);
            }
            let db = b.build();
            for (pos, _) in db.entries() {
                require!((0.0..=50.0).contains(&pos.x));
                require!((0.0..=25.0).contains(&pos.y));
            }
            Ok(())
        },
    );
}
