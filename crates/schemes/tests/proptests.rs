//! Property-based tests for fingerprint databases and scheme plumbing.

use proptest::prelude::*;
use uniloc_env::ApId;
use uniloc_geom::Point;
use uniloc_schemes::fingerprint::FingerprintDb;
use uniloc_schemes::{Oracle, RadioMapBuilder, SchemeId};
use uniloc_schemes::LocationEstimate;
use uniloc_sensors::WifiScan;

fn scan_strategy() -> impl Strategy<Value = WifiScan> {
    proptest::collection::btree_map(0u32..12, -90.0f64..-30.0, 1..8).prop_map(|m| WifiScan {
        readings: m.into_iter().map(|(a, r)| (ApId(a), r)).collect(),
    })
}

fn db_strategy() -> impl Strategy<Value = FingerprintDb<WifiScan>> {
    proptest::collection::vec(
        ((0.0f64..60.0, 0.0f64..30.0), scan_strategy()),
        1..40,
    )
    .prop_map(|entries| {
        FingerprintDb::from_entries(
            entries.into_iter().map(|((x, y), s)| (Point::new(x, y), s)),
        )
    })
}

proptest! {
    /// match_scan returns at most k candidates, sorted by ascending RSSI
    /// distance.
    #[test]
    fn match_scan_sorted_and_bounded(
        db in db_strategy(),
        scan in scan_strategy(),
        k in 1usize..8,
    ) {
        let matches = db.match_scan(&scan, k);
        prop_assert!(matches.len() <= k);
        for w in matches.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance);
        }
        for m in &matches {
            prop_assert!(m.distance.is_finite() && m.distance >= 0.0);
        }
    }

    /// Downsampling is idempotent and respects the spacing bound.
    #[test]
    fn downsample_idempotent(
        db in db_strategy(),
        spacing in 1.0f64..20.0,
    ) {
        let once = db.downsampled(spacing);
        let twice = once.downsampled(spacing);
        prop_assert_eq!(once.len(), twice.len());
        let pts: Vec<Point> = once.positions().collect();
        for (i, a) in pts.iter().enumerate() {
            for b in pts.iter().skip(i + 1) {
                prop_assert!(a.distance(*b) >= spacing - 1e-9);
            }
        }
    }

    /// A scan always best-matches its own fingerprint (distance 0).
    #[test]
    fn self_match_is_exact(db in db_strategy()) {
        for (pos, fp) in db.entries() {
            let matches = db.match_scan(fp, 1);
            prop_assert!(!matches.is_empty());
            prop_assert!(matches[0].distance <= 1e-9,
                "self-distance {}", matches[0].distance);
            // The best match is at the fingerprint's own position, unless a
            // duplicate fingerprint exists elsewhere with identical RSSIs
            // (possible but then distance is still 0).
            let _ = pos;
        }
    }

    /// local_density, when defined, is positive and no larger than the
    /// search diameter.
    #[test]
    fn local_density_bounds(
        db in db_strategy(),
        px in 0.0f64..60.0,
        py in 0.0f64..30.0,
        radius in 5.0f64..40.0,
    ) {
        if let Some(d) = db.local_density(Point::new(px, py), radius) {
            prop_assert!(d > 0.0);
            prop_assert!(d <= 2.0 * radius + 1e-9);
        }
    }

    /// The oracle never reports a larger error than any available estimate.
    #[test]
    fn oracle_is_a_lower_bound(
        est in proptest::collection::vec(
            proptest::option::of((-50.0f64..50.0, -50.0f64..50.0)),
            1..6,
        ),
        tx in -50.0f64..50.0,
        ty in -50.0f64..50.0,
    ) {
        let truth = Point::new(tx, ty);
        let ids = [SchemeId::Gps, SchemeId::Wifi, SchemeId::Cellular,
                   SchemeId::Motion, SchemeId::Fusion];
        let inputs: Vec<(SchemeId, Option<LocationEstimate>)> = est
            .iter()
            .enumerate()
            .map(|(i, e)| {
                (ids[i], e.map(|(x, y)| LocationEstimate::at(Point::new(x, y))))
            })
            .collect();
        match Oracle::select(&inputs, truth) {
            Some((_, _, best)) => {
                for (_, e) in &inputs {
                    if let Some(e) = e {
                        prop_assert!(best <= e.position.distance(truth) + 1e-9);
                    }
                }
            }
            None => prop_assert!(inputs.iter().all(|(_, e)| e.is_none())),
        }
    }

    /// Crowdsourced aggregation keeps cell positions inside the convex hull
    /// of the contributing observations.
    #[test]
    fn crowd_cells_inside_observation_bbox(
        obs in proptest::collection::vec(
            ((0.0f64..50.0, 0.0f64..25.0), scan_strategy(), 0.1f64..1.0),
            1..30,
        ),
    ) {
        let mut b = RadioMapBuilder::new(4.0);
        for ((x, y), scan, w) in &obs {
            b.observe(Point::new(*x, *y), scan.clone(), *w);
        }
        let db = b.build();
        for (pos, _) in db.entries() {
            prop_assert!((0.0..=50.0).contains(&pos.x));
            prop_assert!((0.0..=25.0).contains(&pos.y));
        }
    }
}
