//! Differential equivalence suite: the indexed fingerprint matcher IS the
//! linear scan.
//!
//! The `SignalIndex` behind [`FingerprintDb::match_scan`] is a pure
//! accelerator — an RSSI-quantized inverted index that prunes which
//! entries get scored, never *how* they are scored or ranked. The whole
//! pipeline (golden traces, chaos artifacts, the fleet differential
//! harness) depends on that being exactly true, so this suite drives both
//! paths with adversarial random inputs and asserts bit-level equality,
//! element for element:
//!
//! * random databases × random scans × random `k` × random missing-AP
//!   penalties;
//! * empty scans, scans over a disjoint AP universe, databases with
//!   duplicated survey positions and duplicated fingerprints (distance
//!   ties), `k = 0`, `k > len`;
//! * non-finite RSSIs (NaN, ±inf) in the online scan and in the stored
//!   fingerprints — both paths must rank them identically via `total_cmp`
//!   tie-breaking, not panic;
//! * build determinism: constructing the index twice from the same
//!   entries, or matching twice through the same database (scratch
//!   reuse), yields identical output.
//!
//! Equality is asserted on `f64::to_bits`, not `==`: a NaN distance must
//! match a NaN distance, and `-0.0` must not pass for `0.0`.

use std::collections::BTreeMap;
use uniloc_env::ApId;
use uniloc_geom::Point;
use uniloc_rng::check::Checker;
use uniloc_rng::{require, require_eq, Rng};
use uniloc_schemes::fingerprint::{FingerprintDb, FingerprintMatch};
use uniloc_sensors::WifiScan;

const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/index_differential.regressions");

fn checker(name: &str) -> Checker {
    Checker::new(name).cases(128).regressions(REGRESSIONS)
}

/// Draws an RSSI that is usually physical but occasionally NaN or ±inf —
/// corrupt readings that slipped past upstream validation must rank
/// identically on both paths, not differently-or-panic.
fn gen_rssi(rng: &mut Rng) -> f64 {
    match rng.gen_range(0..20u32) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => rng.gen_range(-95.0..-25.0),
    }
}

/// A scan over AP ids `[base, base + universe)`: shifting `base` between
/// the database and the online scan produces partially or fully disjoint
/// AP sets. Sometimes empty.
fn gen_scan(rng: &mut Rng, base: u32, universe: u32) -> WifiScan {
    let n = rng.gen_range(0..8usize);
    let m: BTreeMap<u32, f64> =
        (0..n).map(|_| (base + rng.gen_range(0..universe), gen_rssi(rng))).collect();
    WifiScan { readings: m.into_iter().map(|(a, r)| (ApId(a), r)).collect() }
}

/// Raw database entries: duplicated survey positions, occasional exact
/// fingerprint duplicates (guaranteed distance ties), and the occasional
/// empty scan (dropped at construction).
fn gen_entries(rng: &mut Rng, scale: f64) -> Vec<(Point, WifiScan)> {
    let n = (rng.gen_range(0..60usize) as f64 * scale) as usize;
    let mut entries: Vec<(Point, WifiScan)> = Vec::with_capacity(n);
    for _ in 0..n {
        // A coarse grid of survey positions, so duplicates are common.
        let p = Point::new(
            rng.gen_range(0..8u32) as f64 * 3.0,
            rng.gen_range(0..4u32) as f64 * 3.0,
        );
        if !entries.is_empty() && rng.gen_range(0..6u32) == 0 {
            // Exact duplicate of an earlier fingerprint: a tied distance
            // that must resolve by entry order on both paths.
            let i = rng.gen_range(0..entries.len());
            let scan = entries[i].1.clone();
            entries.push((p, scan));
        } else {
            entries.push((p, gen_scan(rng, 0, 12)));
        }
    }
    entries
}

fn gen_db(rng: &mut Rng, scale: f64) -> FingerprintDb<WifiScan> {
    let db = FingerprintDb::from_entries(gen_entries(rng, scale));
    match rng.gen_range(0..3u32) {
        0 => db,
        1 => db.with_missing_penalty(rng.gen_range(0.0..30.0)),
        _ => db.with_missing_penalty(rng.gen_range(-5.0..5.0)),
    }
}

/// An online scan that overlaps the database's AP universe fully,
/// partially, or not at all.
fn gen_online(rng: &mut Rng) -> WifiScan {
    let base = match rng.gen_range(0..4u32) {
        0 => 100, // fully disjoint AP universe
        1 => 8,   // partial overlap
        _ => 0,   // same universe
    };
    gen_scan(rng, base, 12)
}

/// Element-for-element bit equality, with the index of the first
/// divergence in the error.
fn require_identical(
    indexed: &[FingerprintMatch],
    linear: &[FingerprintMatch],
) -> Result<(), String> {
    require_eq!(indexed.len(), linear.len());
    for (i, (a, b)) in indexed.iter().zip(linear).enumerate() {
        if a.position.x.to_bits() != b.position.x.to_bits()
            || a.position.y.to_bits() != b.position.y.to_bits()
            || a.distance.to_bits() != b.distance.to_bits()
        {
            return Err(format!("first divergence at rank {i}: indexed {a:?} vs linear {b:?}"));
        }
    }
    Ok(())
}

/// The core differential property: for every database, scan, `k` and
/// penalty, the indexed path returns exactly what scoring every entry
/// returns.
#[test]
fn indexed_match_equals_linear_scan() {
    checker("indexed_match_equals_linear_scan").run(
        |rng, scale| {
            let db = gen_db(rng, scale);
            let scan = gen_online(rng);
            let k = rng.gen_range(0..10usize);
            (db, scan, k)
        },
        |(db, scan, k)| {
            require_identical(&db.match_scan(scan, *k), &db.match_scan_linear(scan, *k))
        },
    );
}

/// `match_scan_into` reuses whatever garbage is in the output buffer —
/// stale capacity, stale contents — without it leaking into the result.
#[test]
fn buffer_reuse_never_leaks_stale_matches() {
    checker("buffer_reuse_never_leaks_stale_matches").run(
        |rng, scale| {
            let db = gen_db(rng, scale);
            let scans: Vec<WifiScan> = (0..4).map(|_| gen_online(rng)).collect();
            let k = rng.gen_range(0..10usize);
            (db, scans, k)
        },
        |(db, scans, k)| {
            let mut buf: Vec<FingerprintMatch> = Vec::new();
            for scan in scans {
                db.match_scan_into(scan, *k, &mut buf);
                require_identical(&buf, &db.match_scan_linear(scan, *k))?;
            }
            Ok(())
        },
    );
}

/// Building the database (and with it the signal index) twice from the
/// same entries is deterministic: both copies answer every query with
/// bit-identical output.
#[test]
fn index_build_is_deterministic() {
    checker("index_build_is_deterministic").run(
        |rng, scale| {
            let entries = gen_entries(rng, scale);
            let scans: Vec<WifiScan> = (0..3).map(|_| gen_online(rng)).collect();
            let k = rng.gen_range(1..8usize);
            (entries, scans, k)
        },
        |(entries, scans, k)| {
            let a = FingerprintDb::from_entries(entries.clone());
            let b = FingerprintDb::from_entries(entries.clone());
            require_eq!(a.len(), b.len());
            for scan in scans {
                require_identical(&a.match_scan(scan, *k), &b.match_scan(scan, *k))?;
                // Matching through the same database twice (thread-local
                // scratch reuse) is also stable.
                require_identical(&a.match_scan(scan, *k), &a.match_scan(scan, *k))?;
            }
            Ok(())
        },
    );
}

/// Degenerate inputs: empty database, empty scan, `k = 0`, `k` far beyond
/// the database size. Both paths agree (and agree on emptiness where the
/// contract demands it).
#[test]
fn degenerate_inputs_agree() {
    checker("degenerate_inputs_agree").run(
        |rng, scale| {
            let db = gen_db(rng, scale);
            let scan = gen_online(rng);
            (db, scan)
        },
        |(db, scan)| {
            let empty_scan = WifiScan::default();
            require!(db.match_scan(&empty_scan, 5).is_empty());
            require!(db.match_scan_linear(&empty_scan, 5).is_empty());
            require!(db.match_scan(scan, 0).is_empty());
            require!(db.match_scan_linear(scan, 0).is_empty());
            for k in [1usize, db.len(), db.len() + 7, 1000] {
                require_identical(&db.match_scan(scan, k), &db.match_scan_linear(scan, k))?;
            }
            let empty_db = FingerprintDb::from_entries(Vec::<(Point, WifiScan)>::new());
            require!(empty_db.match_scan(scan, 5).is_empty());
            require!(empty_db.match_scan_linear(scan, 5).is_empty());
            Ok(())
        },
    );
}

/// Tied distances resolve identically: a database of exact-duplicate
/// fingerprints at distinct positions must come back in entry order on
/// both paths, for every `k`.
#[test]
fn tied_distances_resolve_by_entry_order() {
    checker("tied_distances_resolve_by_entry_order").run(
        |rng, scale| {
            let fp = gen_scan(rng, 0, 6);
            let n = 2 + (rng.gen_range(0..20usize) as f64 * scale) as usize;
            let entries: Vec<(Point, WifiScan)> = (0..n)
                .map(|i| (Point::new(i as f64, rng.gen_range(0.0..30.0)), fp.clone()))
                .collect();
            let scan = gen_scan(rng, 0, 6);
            let k = rng.gen_range(1..8usize);
            (entries, scan, k)
        },
        |(entries, scan, k)| {
            let db = FingerprintDb::from_entries(entries.clone());
            require_identical(&db.match_scan(scan, *k), &db.match_scan_linear(scan, *k))
        },
    );
}
