//! The motion-based PDR scheme (Li et al. [7] with UnLoc-style landmarks).
//!
//! The scheme "infers the walking model (i.e., step count, step length and
//! walking orientation) from the readings of inertial sensors and uses a
//! particle filter to incorporate the map constraints (e.g., path edges and
//! walls). We also detect more landmarks (e.g., turns, doors and
//! signatures) [12] for calibration." 300 particles are maintained per step;
//! particles whose step crosses a wall die; a recognized landmark reweights
//! the cloud around the landmark's known position, resetting accumulated
//! drift (which is why the error model's `beta_1` is *distance from the
//! last landmark*).

use crate::estimate::{LocalizationScheme, LocationEstimate, SchemeId};
use uniloc_rng::Rng;
use uniloc_filters::ParticleFilter;
use uniloc_geom::{FloorPlan, Point, Vector2};
use uniloc_sensors::{SensorFrame, StepMeasurement};

/// Tuning knobs for the PDR particle filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdrConfig {
    /// Particles maintained every step (the paper uses 300).
    pub num_particles: usize,
    /// Per-step multiplicative step-length noise (standard deviation).
    pub step_length_noise: f64,
    /// Per-step additive heading noise (radians, standard deviation).
    pub heading_noise: f64,
    /// Initial cloud spread around the start position (m).
    pub init_spread: f64,
    /// Gaussian kernel width for landmark calibration (m).
    pub landmark_sigma: f64,
    /// Resample when ESS drops below this fraction of the cloud.
    pub resample_frac: f64,
}

impl Default for PdrConfig {
    fn default() -> Self {
        PdrConfig {
            num_particles: 300,
            step_length_noise: 0.08,
            heading_noise: 0.05,
            init_spread: 1.0,
            landmark_sigma: 3.5,
            resample_frac: 0.5,
        }
    }
}

/// One PDR particle: position plus per-particle gait personalisation
/// (step-length scale and heading offset hypotheses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PdrParticle {
    pub pos: Point,
    pub length_scale: f64,
    pub heading_offset: f64,
}

/// The particle-filter machinery shared by the motion-based and fusion
/// schemes.
#[derive(Debug, Clone)]
pub(crate) struct PdrCore {
    pub config: PdrConfig,
    pub plan: FloorPlan,
    pub pf: ParticleFilter<PdrParticle>,
    pub rng: Rng,
    start: Point,
    /// Per-step wall-penalty scratch, recycled across
    /// [`advance_step`](Self::advance_step) calls so the steady-state epoch
    /// loop performs no heap allocation.
    penalty_scratch: Vec<f64>,
}

impl PdrCore {
    pub fn new(plan: FloorPlan, start: Point, config: PdrConfig, seed: u64) -> Self {
        assert!(config.num_particles > 0, "need at least one particle");
        let mut rng = Rng::seed_from_u64(seed);
        let pf = ParticleFilter::new(Self::spawn_cloud(&mut rng, &plan, start, &config));
        let penalty_scratch = Vec::with_capacity(config.num_particles);
        PdrCore { config, plan, pf, rng, start, penalty_scratch }
    }

    /// Spawns a cloud around `center`, rejecting positions separated from
    /// the center by a wall (you cannot be on the other side of a wall from
    /// where you know you are).
    fn spawn_cloud(
        rng: &mut Rng,
        plan: &FloorPlan,
        center: Point,
        config: &PdrConfig,
    ) -> Vec<PdrParticle> {
        (0..config.num_particles)
            .map(|_| {
                let mut pos = center;
                for _ in 0..8 {
                    let cand = center
                        + Vector2::new(
                            gauss(rng) * config.init_spread,
                            gauss(rng) * config.init_spread,
                        );
                    if !plan.blocks(center, cand) {
                        pos = cand;
                        break;
                    }
                }
                PdrParticle {
                    pos,
                    length_scale: 1.0 + 0.05 * gauss(rng),
                    heading_offset: 0.03 * gauss(rng),
                }
            })
            .collect()
    }

    pub fn reset(&mut self) {
        let cloud = Self::spawn_cloud(&mut self.rng, &self.plan, self.start, &self.config);
        self.pf.reinitialize(cloud);
    }

    /// Advances every particle by one measured step. A particle whose step
    /// would cross a wall slides along that wall (the standard
    /// map-constrained PDR behaviour) and is down-weighted; a particle that
    /// cannot even slide stays put and is penalized harder.
    pub fn advance_step(&mut self, step: &StepMeasurement) {
        let cfg = self.config;
        let mut penalties = std::mem::take(&mut self.penalty_scratch);
        penalties.clear();
        penalties.reserve(self.pf.len());
        let plan = &self.plan;
        self.pf.predict(&mut self.rng, |p, rng| {
            let heading = step.heading_est + p.heading_offset + cfg.heading_noise * gauss(rng);
            let length =
                (step.length_est * p.length_scale * (1.0 + cfg.step_length_noise * gauss(rng)))
                    .max(0.0);
            let old = p.pos;
            let delta = Vector2::from_heading(heading, length);
            let cand = old + delta;
            if let Some(wall) = plan.blocking_wall(old, cand) {
                // Slide: keep only the wall-parallel motion component.
                let along = (wall.segment.b - wall.segment.a).normalized();
                let slid = along
                    .map(|d| old + d * delta.dot(d))
                    .filter(|&q| !plan.blocks(old, q));
                match slid {
                    Some(q) => {
                        p.pos = q;
                        penalties.push(0.9);
                    }
                    None => {
                        // Boxed in: stay put, heavy penalty.
                        penalties.push(0.4);
                    }
                }
            } else {
                p.pos = cand;
                penalties.push(1.0);
            }
        });
        let mut idx = 0usize;
        let survived = self.pf.reweight(|_| {
            let w = penalties[idx];
            idx += 1;
            w
        });
        debug_assert!(survived, "penalties are always positive");
        self.penalty_scratch = penalties;
        self.pf.maybe_resample(self.config.resample_frac, &mut self.rng);
    }

    /// Landmark calibration: reweight the cloud around the landmark's known
    /// position. A landmark is an *absolute* fix — when the cloud has
    /// drifted hopelessly far (beyond 3 sigma), reweighting would only snap
    /// to the nearest edge of the wrong cloud, so the filter re-initializes
    /// at the landmark instead (kidnapped-filter recovery, which is what a
    /// recognized door/signature physically justifies).
    pub fn calibrate_landmark(&mut self, landmark_pos: Point) {
        let est = self.estimate().position;
        if est.distance(landmark_pos) > 3.0 * self.config.landmark_sigma {
            let cloud = Self::spawn_cloud(&mut self.rng, &self.plan, landmark_pos, &self.config);
            self.pf.reinitialize(cloud);
            return;
        }
        let sigma2 = 2.0 * self.config.landmark_sigma * self.config.landmark_sigma;
        let ok = self
            .pf
            .reweight(|p| (-p.pos.distance_sq(landmark_pos) / sigma2).exp());
        if !ok {
            let cloud = Self::spawn_cloud(&mut self.rng, &self.plan, landmark_pos, &self.config);
            self.pf.reinitialize(cloud);
        }
        self.pf.maybe_resample(self.config.resample_frac, &mut self.rng);
    }

    /// A subsampled particle-cloud posterior (up to 32 representatives).
    pub fn posterior(&self) -> Vec<(Point, f64)> {
        let n = self.pf.len();
        let step = (n / 32).max(1);
        self.pf
            .particles()
            .iter()
            .step_by(step)
            .map(|p| (p.state.pos, p.weight.max(1e-12)))
            .collect()
    }

    /// The weighted mean of [`posterior`](Self::posterior) without
    /// materializing the candidate list — bit-identical to summing the
    /// subsampled candidates' weights, weighted x's, and weighted y's in
    /// order (the `LocalizationScheme::posterior_mean` contract).
    pub fn posterior_mean(&self) -> Option<Point> {
        let n = self.pf.len();
        let step = (n / 32).max(1);
        let particles = self.pf.particles();
        let w: f64 = particles.iter().step_by(step).map(|p| p.weight.max(1e-12)).sum();
        if w > 0.0 {
            let x = particles
                .iter()
                .step_by(step)
                .map(|p| p.weight.max(1e-12) * p.state.pos.x)
                .sum::<f64>()
                / w;
            let y = particles
                .iter()
                .step_by(step)
                .map(|p| p.weight.max(1e-12) * p.state.pos.y)
                .sum::<f64>()
                / w;
            Some(Point::new(x, y))
        } else {
            None
        }
    }

    /// Weighted-mean estimate and cloud spread.
    pub fn estimate(&self) -> LocationEstimate {
        let (x, y) = self.pf.estimate_xy(|p| (p.pos.x, p.pos.y));
        let mean = Point::new(x, y);
        let var = self.pf.estimate(|p| p.pos.distance_sq(mean));
        LocationEstimate::with_spread(mean, var.sqrt())
    }
}

fn gauss(rng: &mut Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The motion-based PDR scheme.
///
/// # Examples
///
/// ```no_run
/// use uniloc_env::campus;
/// use uniloc_schemes::{PdrConfig, PdrScheme};
///
/// let scenario = campus::daily_path(1);
/// let scheme = PdrScheme::new(
///     scenario.world.floorplan().clone(),
///     scenario.route.start(),
///     PdrConfig::default(),
///     7,
/// );
/// ```
#[derive(Debug, Clone)]
pub struct PdrScheme {
    core: PdrCore,
}

impl PdrScheme {
    /// Creates the scheme with the venue floor plan and the walk's start
    /// position (PDR is a relative scheme; like the original systems it is
    /// anchored at a known start, e.g. the building entrance).
    pub fn new(plan: FloorPlan, start: Point, config: PdrConfig, seed: u64) -> Self {
        PdrScheme { core: PdrCore::new(plan, start, config, seed) }
    }
}

impl LocalizationScheme for PdrScheme {
    fn id(&self) -> SchemeId {
        SchemeId::Motion
    }

    fn update(&mut self, frame: &SensorFrame) -> Option<LocationEstimate> {
        for step in &frame.steps {
            self.core.advance_step(step);
        }
        if let Some(lm) = frame.landmark {
            self.core.calibrate_landmark(lm.position);
        }
        // Sidecar-only telemetry: degeneracy of the particle cloud.
        uniloc_obs::global_metrics()
            .gauge("pdr.particle_filter.ess")
            .set(self.core.pf.effective_sample_size());
        Some(self.core.estimate())
    }

    fn posterior(&self) -> Option<Vec<(Point, f64)>> {
        Some(self.core.posterior())
    }

    fn posterior_mean(&self) -> Option<Point> {
        self.core.posterior_mean()
    }

    fn reset(&mut self) {
        self.core.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniloc_env::{campus, venues, GaitProfile, Walker};
    use uniloc_sensors::{DeviceProfile, SensorHub};

    fn run(scenario: &campus::Scenario, seed: u64) -> Vec<(f64, f64)> {
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(seed));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), seed + 1);
        let frames = hub.sample_walk(&walk, 0.5);
        let mut scheme = PdrScheme::new(
            scenario.world.floorplan().clone(),
            scenario.route.start(),
            PdrConfig::default(),
            seed + 2,
        );
        frames
            .iter()
            .filter_map(|f| {
                scheme.update(f).map(|e| {
                    let (_, station) = scenario.route.project(f.true_position);
                    (station, e.position.distance(f.true_position))
                })
            })
            .collect()
    }

    #[test]
    fn tracks_office_walk_tightly() {
        let scenario = venues::training_office(71);
        let results = run(&scenario, 72);
        let errs: Vec<f64> = results.iter().map(|r| r.1).collect();
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        // Landmark-calibrated PDR in a walled office: a few meters (the
        // paper's indoor motion scheme sits at ~3-6 m too).
        assert!(mean < 7.0, "office PDR mean error {mean}");
    }

    #[test]
    fn error_grows_on_long_unlandmarked_stretch() {
        // The open-space tail of the daily path has no landmarks: drift
        // accumulates, as the paper's beta_1 feature captures. A single
        // walk's drift is noisy, so the claim is averaged over several
        // seeds.
        let mut open = Vec::new();
        let mut office = Vec::new();
        for seed in 0..6 {
            let scenario = campus::daily_path(73 + seed);
            let results = run(&scenario, 74 + seed);
            open.extend(results.iter().filter(|r| r.0 > 240.0).map(|r| r.1));
            office.extend(results.iter().filter(|r| r.0 < 50.0).map(|r| r.1));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&open) > mean(&office),
            "open-space drift ({}) must exceed office error ({})",
            mean(&open),
            mean(&office)
        );
    }

    #[test]
    fn always_available() {
        let scenario = campus::daily_path(75);
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(76));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 77);
        let frames = hub.sample_walk(&walk, 0.5);
        let mut scheme = PdrScheme::new(
            scenario.world.floorplan().clone(),
            scenario.route.start(),
            PdrConfig::default(),
            78,
        );
        assert!(frames.iter().all(|f| scheme.update(f).is_some()));
    }

    #[test]
    fn landmark_calibration_pulls_cloud() {
        let plan = FloorPlan::new();
        let mut core = PdrCore::new(plan, Point::origin(), PdrConfig::default(), 79);
        // Drift the cloud artificially.
        core.pf.predict(&mut Rng::seed_from_u64(1), |p, _| {
            p.pos += Vector2::new(10.0, 0.0);
        });
        let before = core.estimate().position;
        assert!((before.x - 10.0).abs() < 1.0);
        // Calibrate against a landmark at (12, 1).
        core.calibrate_landmark(Point::new(12.0, 1.0));
        let after = core.estimate().position;
        assert!(
            after.distance(Point::new(12.0, 1.0)) < before.distance(Point::new(12.0, 1.0)),
            "calibration must pull toward the landmark"
        );
    }

    #[test]
    fn reset_returns_to_start() {
        let scenario = venues::training_office(80);
        let mut scheme = PdrScheme::new(
            scenario.world.floorplan().clone(),
            scenario.route.start(),
            PdrConfig::default(),
            81,
        );
        // Walk a bit.
        let mut walker = Walker::new(GaitProfile::average(), Rng::seed_from_u64(82));
        let walk = walker.walk(&scenario.route);
        let mut hub = SensorHub::new(&scenario.world, DeviceProfile::nexus_5x(), 83);
        for f in hub.sample_walk(&walk, 0.5).iter().take(40) {
            scheme.update(f);
        }
        scheme.reset();
        let est = scheme.core.estimate().position;
        assert!(est.distance(scenario.route.start()) < 2.0);
    }

    #[test]
    fn wall_constraint_blocks_drift_through_walls() {
        // A narrow corridor with heavy heading bias: particles that try to
        // cross the walls die, keeping the estimate inside.
        let mut plan = FloorPlan::new();
        plan.add_wall(Point::new(-6.0, 1.5), Point::new(60.0, 1.5));
        plan.add_wall(Point::new(-6.0, -1.5), Point::new(60.0, -1.5));
        plan.add_wall(Point::new(-6.0, -1.5), Point::new(-6.0, 1.5));
        let mut core = PdrCore::new(plan, Point::origin(), PdrConfig::default(), 84);
        // 40 steps east with a strong northward heading bias.
        for i in 0..40 {
            let step = StepMeasurement {
                t: i as f64 * 0.5,
                duration: 0.5,
                length_est: 0.65,
                // ~17 degrees north of east.
                heading_est: std::f64::consts::FRAC_PI_2 - 0.3,
            };
            core.advance_step(&step);
        }
        let est = core.estimate().position;
        assert!(est.y.abs() < 2.0, "estimate must stay in the corridor, y={}", est.y);
        assert!(est.x > 15.0, "estimate must progress along the corridor, x={}", est.x);
    }
}
